"""The observability CLI surface: stats, explain --trace, --metrics-out.

Also the in-process equivalent of ``make metrics-smoke``: generate →
stats --metrics-out → validate against the checked-in schema.
"""

from __future__ import annotations

import io
import json

import pytest

from repro.cli import main
from repro.obs.check import validate_file

SCHEMA_PATH = "schemas/metrics_snapshot.schema.json"


@pytest.fixture
def workload_files(tmp_path):
    """A tiny subscription/event pair on disk."""
    subs = tmp_path / "subs.jsonl"
    subs.write_text(
        '{"id": "s1", "predicates": [["movie", "=", "gd"], ["price", "<=", 10]]}\n'
        '{"id": "s2", "predicates": [["movie", "=", "other"]]}\n'
        '{"id": "s3", "predicates": [["price", ">", 3]]}\n'
    )
    events = tmp_path / "events.jsonl"
    events.write_text(
        '{"pairs": {"movie": "gd", "price": 8}}\n'
        '{"pairs": {"movie": "gd", "price": 50}}\n'
    )
    return str(subs), str(events)


def _run(argv):
    out = io.StringIO()
    rc = main(argv, out=out)
    return rc, out.getvalue()


class TestStatsCommand:
    @pytest.mark.parametrize("engine", ["static", "dynamic"])
    def test_prometheus_output(self, workload_files, engine):
        subs, events = workload_files
        rc, text = _run(
            ["stats", "--subscriptions", subs, "--events", events, "--engine", engine]
        )
        assert rc == 0
        assert f'repro_events_total{{engine="{engine}",shard=""}} 2' in text
        assert "# TYPE repro_match_phase_seconds histogram" in text

    def test_sharded_prometheus_output(self, workload_files):
        subs, events = workload_files
        rc, text = _run(
            ["stats", "--subscriptions", subs, "--events", events,
             "--engine", "dynamic", "--shards", "2"]
        )
        assert rc == 0
        assert "repro_sharded_events_total 2" in text
        assert 'repro_sharded_shard_visits_total{shard="0"}' in text
        # Inner engines report under per-shard labels in the same registry.
        assert 'repro_events_total{engine="dynamic",shard="0"}' in text

    def test_json_format(self, workload_files):
        subs, events = workload_files
        rc, text = _run(
            ["stats", "--subscriptions", subs, "--events", events, "--format", "json"]
        )
        assert rc == 0
        snap = json.loads(text)
        assert snap["version"] == 1
        assert snap["context"]["engine"] == "dynamic"
        assert snap["context"]["events"] == 2
        assert {m["name"] for m in snap["metrics"]} >= {"repro_events_total"}

    def test_metrics_out_passes_schema(self, workload_files, tmp_path):
        subs, events = workload_files
        snapshot = tmp_path / "snap.json"
        rc, _ = _run(
            ["stats", "--subscriptions", subs, "--events", events,
             "--shards", "2", "--metrics-out", str(snapshot)]
        )
        assert rc == 0
        assert validate_file(str(snapshot), SCHEMA_PATH) == []


class TestMatchMetricsOut:
    def test_snapshot_written_and_valid(self, workload_files, tmp_path):
        subs, events = workload_files
        snapshot = tmp_path / "snap.json"
        rc, text = _run(
            ["match", "--subscriptions", subs, "--events", events,
             "--metrics-out", str(snapshot)]
        )
        assert rc == 0
        # Matching output is unchanged...
        lines = [json.loads(l) for l in text.splitlines() if l]
        assert sorted(lines[0]["matched"]) == ["s1", "s3"]
        # ...and the snapshot validates and reflects the run.
        assert validate_file(str(snapshot), SCHEMA_PATH) == []
        snap = json.loads(snapshot.read_text())
        assert snap["context"]["command"] == "match"

    def test_no_snapshot_without_flag(self, workload_files, tmp_path):
        subs, events = workload_files
        rc, _ = _run(["match", "--subscriptions", subs, "--events", events])
        assert rc == 0
        assert list(tmp_path.glob("*.json")) == []


class TestExplainCommand:
    def test_explain_prints_phases(self, workload_files):
        subs, events = workload_files
        rc, text = _run(
            ["explain", "--subscriptions", subs, "--events", events]
        )
        assert rc == 0
        assert "phase 1:" in text and "phase 2:" in text
        assert "matched: ['s1', 's3']" in text

    def test_explain_trace_prints_span_tree(self, workload_files):
        subs, events = workload_files
        rc, text = _run(
            ["explain", "--subscriptions", subs, "--events", events, "--trace"]
        )
        assert rc == 0
        assert "trace:" in text
        assert "match engine=dynamic" in text
        assert "predicate_ns=" in text and "subscription_ns=" in text

    def test_explain_sharded_trace(self, workload_files):
        subs, events = workload_files
        rc, text = _run(
            ["explain", "--subscriptions", subs, "--events", events,
             "--shards", "2", "--trace"]
        )
        assert rc == 0
        assert "fanout engine=sharded" in text

    def test_event_index_selects_event(self, workload_files):
        subs, events = workload_files
        rc, text = _run(
            ["explain", "--subscriptions", subs, "--events", events,
             "--event-index", "1"]
        )
        assert rc == 0
        # Second event has price 50: only the price > 3 subscription fires.
        assert "matched: ['s3']" in text

    def test_event_index_out_of_range(self, workload_files):
        subs, events = workload_files
        rc, text = _run(
            ["explain", "--subscriptions", subs, "--events", events,
             "--event-index", "9"]
        )
        assert rc == 1
        assert "out of range" in text


class TestMetricsSmoke:
    def test_generate_stats_validate_pipeline(self, tmp_path):
        """The make metrics-smoke pipeline, in-process."""
        subs = tmp_path / "subs.jsonl"
        events = tmp_path / "events.jsonl"
        with open(subs, "w") as fp:
            assert main(
                ["generate", "--kind", "subscriptions", "--count", "50",
                 "--seed", "7"], out=fp) == 0
        with open(events, "w") as fp:
            assert main(
                ["generate", "--kind", "events", "--count", "10", "--seed", "8"],
                out=fp) == 0
        snapshot = tmp_path / "snapshot.json"
        rc, text = _run(
            ["stats", "--subscriptions", str(subs), "--events", str(events),
             "--engine", "dynamic", "--shards", "2",
             "--metrics-out", str(snapshot)]
        )
        assert rc == 0
        assert text.startswith("# HELP")
        assert validate_file(str(snapshot), SCHEMA_PATH) == []
