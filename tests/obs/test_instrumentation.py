"""Engines actually record into an attached registry/tracer.

Covers the two-phase instrumentation (counts agree with the engines'
own bookkeeping counters), the static/dynamic engine extras, the
sharded fan-out families, and the batch server's queue/latency metrics.
"""

from __future__ import annotations

import random

import pytest

from repro.matchers import DynamicMatcher, StaticMatcher
from repro.obs import MetricsRegistry, Tracer
from repro.system.server import BatchServer
from repro.system.sharding import ShardedMatcher

from tests.conftest import make_event, make_subscription


def _workload(n_subs=40, n_events=15, seed=3):
    rng = random.Random(seed)
    subs = [make_subscription(rng, f"s{i}") for i in range(n_subs)]
    events = [make_event(rng) for _ in range(n_events)]
    return subs, events


def _child_value(registry, name, **labels):
    return registry.family(name).labels(**labels).value


class TestTwoPhaseMetrics:
    def test_registry_mirrors_engine_counters(self):
        subs, events = _workload()
        matcher = DynamicMatcher()
        registry = matcher.use_metrics()
        for sub in subs:
            matcher.add(sub)
        for event in events:
            matcher.match(event)
        labels = {"engine": "dynamic", "shard": ""}
        assert _child_value(registry, "repro_events_total", **labels) == len(events)
        assert (
            _child_value(registry, "repro_predicates_satisfied_total", **labels)
            == matcher.counters["predicates_satisfied"]
        )
        assert (
            _child_value(registry, "repro_subscription_checks_total", **labels)
            == matcher.counters["subscription_checks"]
        )
        assert _child_value(registry, "repro_subscriptions", **labels) == len(subs)

    def test_subscriptions_gauge_tracks_removal(self):
        subs, _ = _workload()
        matcher = DynamicMatcher()
        registry = matcher.use_metrics()
        for sub in subs:
            matcher.add(sub)
        matcher.remove(subs[0].id)
        assert (
            _child_value(
                registry, "repro_subscriptions", engine="dynamic", shard=""
            )
            == len(subs) - 1
        )

    def test_phase_histograms_record_per_event(self):
        subs, events = _workload()
        matcher = DynamicMatcher()
        registry = matcher.use_metrics()
        for sub in subs:
            matcher.add(sub)
        for event in events:
            matcher.match(event)
        fam = registry.family("repro_match_phase_seconds")
        for phase in ("predicate", "subscription"):
            child = fam.labels(engine="dynamic", shard="", phase=phase)
            assert child.count == len(events)
            assert child.sum > 0.0

    def test_match_results_unchanged_by_instrumentation(self):
        subs, events = _workload()
        plain = DynamicMatcher()
        instrumented = DynamicMatcher()
        instrumented.use_metrics()
        instrumented.use_tracer(Tracer())
        for sub in subs:
            plain.add(sub)
            instrumented.add(sub)
        for event in events:
            assert sorted(plain.match(event), key=str) == sorted(
                instrumented.match(event), key=str
            )


class TestTracerSpans:
    def test_match_span_fields(self):
        subs, events = _workload()
        matcher = DynamicMatcher()
        tracer = matcher.use_tracer(Tracer())
        for sub in subs:
            matcher.add(sub)
        matched = matcher.match(events[0])
        span = tracer.last()
        assert span is not None and span.name == "match"
        assert span.fields["engine"] == "dynamic"
        assert span.fields["matched"] == len(matched)
        assert span.fields["predicate_ns"] >= 0
        assert span.fields["subscription_ns"] >= 0
        assert span.fields["subscriptions_checked"] >= len(matched)
        assert span.fields["clusters_visited"] >= 0

    def test_table_children_enumerate_probes(self):
        subs, events = _workload()
        matcher = DynamicMatcher()
        tracer = matcher.use_tracer(Tracer())
        for sub in subs:
            matcher.add(sub)
        matcher.match(events[0])
        span = tracer.last()
        probed = [c for c in span.children if c.name in ("table", "universal")]
        # The universal list is not a schema table: only "table" children count.
        tables = [c for c in probed if c.name == "table"]
        assert len(tables) == span.fields["tables_probed"]
        assert (
            sum(c.fields.get("clusters", 0) for c in probed)
            >= span.fields["clusters_visited"]
        )


class TestStaticExtras:
    def test_rebuild_counter_and_plan_gauge(self):
        from repro.bench.harness import uniform_statistics_for
        from repro.workload.scenarios import paper_workloads

        spec = paper_workloads(0.001)["W0"]
        matcher = StaticMatcher(statistics=uniform_statistics_for(spec))
        registry = matcher.use_metrics()
        subs, _ = _workload()
        for sub in subs:
            matcher.add(sub)
        matcher.rebuild()
        matcher.rebuild()
        labels = {"engine": "static", "shard": ""}
        assert _child_value(registry, "repro_static_rebuilds_total", **labels) == 2
        assert _child_value(registry, "repro_static_plan_schemas", **labels) > 0


class TestDynamicExtras:
    def test_maintenance_counters_mirror_dict(self):
        subs, events = _workload(n_subs=80, n_events=30)
        matcher = DynamicMatcher()
        registry = matcher.use_metrics()
        for sub in subs:
            matcher.add(sub)
        for event in events:
            matcher.match(event)
        fam = registry.family("repro_dynamic_maintenance_total")
        mirrored = {
            labels[-1]: child.value for labels, child in fam.children()
        }
        for kind, value in matcher.maintenance.items():
            assert mirrored.get(kind, 0) == value

    def test_threshold_crossing_counters_exist(self):
        subs, events = _workload(n_subs=80, n_events=30)
        matcher = DynamicMatcher()
        registry = matcher.use_metrics()
        for sub in subs:
            matcher.add(sub)
        for event in events:
            matcher.match(event)
        fam = registry.family("repro_dynamic_threshold_crossings_total")
        thresholds = {labels[-1] for labels, _ in fam.children()}
        assert thresholds == {"bm_max", "b_create", "b_delete"}


class TestShardedMetrics:
    def test_fanout_families_and_shard_labels(self):
        subs, events = _workload()
        sm = ShardedMatcher(shards=3, router="roundrobin", inner="dynamic")
        registry = sm.use_metrics()
        for sub in subs:
            sm.add(sub)
        for event in events:
            sm.match(event)
        assert registry.family("repro_sharded_events_total").labels().value == len(
            events
        )
        visits = registry.family("repro_sharded_shard_visits_total")
        per_shard = {labels[0]: child.value for labels, child in visits.children()}
        # Round-robin never prunes: every shard sees every event.
        assert per_shard == {"0": float(len(events)), "1": float(len(events)),
                             "2": float(len(events))} or per_shard == {
            "0": len(events), "1": len(events), "2": len(events)}
        # Inner engines report into the same registry, one series per shard.
        inner_events = registry.family("repro_events_total")
        shards_seen = {labels[1] for labels, _ in inner_events.children()}
        assert shards_seen == {"0", "1", "2"}

    def test_counters_property_matches_registry(self):
        subs, events = _workload()
        sm = ShardedMatcher(shards=2, router="affinity", inner="dynamic")
        for sub in subs:
            sm.add(sub)
        for event in events:
            sm.match(event)
        counters = sm.counters
        assert counters["events"] == len(events)
        assert counters["shard_visits"] + counters["shards_skipped"] == 2 * len(
            events
        )
        assert set(counters) == {
            "events",
            "shard_visits",
            "shards_skipped",
            "fanout_seconds",
            "merge_seconds",
            "degraded_events",
            "quarantine_skips",
            "rerouted_subscriptions",
        }

    def test_fanout_span_children(self):
        subs, events = _workload()
        sm = ShardedMatcher(shards=3, router="roundrobin", inner="dynamic")
        tracer = sm.use_tracer(Tracer())
        for sub in subs:
            sm.add(sub)
        matched = sm.match(events[0])
        fanouts = [s for s in tracer.spans() if s.name == "fanout"]
        assert len(fanouts) == 1
        span = fanouts[0]
        assert span.fields["matched"] == len(matched)
        shard_children = [c for c in span.children if c.name == "shard"]
        assert len(shard_children) == span.fields["candidates"]


class TestServerMetrics:
    def test_batch_families_and_queue_gauge(self):
        rng = random.Random(5)
        registry = MetricsRegistry()
        with BatchServer(DynamicMatcher(), metrics=registry) as server:
            server.submit_subscriptions(
                [make_subscription(rng, f"s{i}") for i in range(12)]
            )
            server.submit_events([make_event(rng) for _ in range(6)])
            server.submit_events([make_event(rng) for _ in range(4)])
        batches = registry.family("repro_server_batches_total")
        assert batches.labels(kind="subscribe").value == 1
        assert batches.labels(kind="publish").value == 2
        items = registry.family("repro_server_items_total")
        assert items.labels(kind="publish").value == 10
        seconds = registry.family("repro_server_batch_seconds")
        assert seconds.labels(kind="publish").count == 2
        # Everything drained: the queue-depth gauge ends at zero.
        assert registry.family("repro_server_queue_depth").labels().value == 0
