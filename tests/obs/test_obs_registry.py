"""The metrics registry: instruments, families, snapshots, no-op mode."""

from __future__ import annotations

import json
import math

import pytest

from repro.obs import (
    DEFAULT_BUCKETS,
    MetricsRegistry,
    NOOP_REGISTRY,
    NoopRegistry,
    exponential_buckets,
)
from repro.obs.registry import Counter, Gauge, Histogram


class TestCounter:
    def test_starts_at_zero_and_accumulates(self):
        c = Counter()
        assert c.value == 0
        c.inc()
        c.inc(5)
        assert c.value == 6

    def test_rejects_negative_increments(self):
        with pytest.raises(ValueError):
            Counter().inc(-1)


class TestGauge:
    def test_set_inc_dec(self):
        g = Gauge()
        g.set(10)
        g.inc(2.5)
        g.dec(0.5)
        assert g.value == 12.0


class TestHistogramBuckets:
    def test_exponential_buckets_shape(self):
        bounds = exponential_buckets(1.0, 2.0, 4)
        assert bounds == (1.0, 2.0, 4.0, 8.0)

    def test_exponential_buckets_validation(self):
        with pytest.raises(ValueError):
            exponential_buckets(0.0, 2.0, 4)
        with pytest.raises(ValueError):
            exponential_buckets(1.0, 1.0, 4)
        with pytest.raises(ValueError):
            exponential_buckets(1.0, 2.0, 0)

    def test_default_buckets_span_microseconds_to_seconds(self):
        assert DEFAULT_BUCKETS[0] == pytest.approx(1e-6)
        assert DEFAULT_BUCKETS[-1] > 1.0

    def test_value_exactly_on_boundary_counts_in_that_bucket(self):
        # Prometheus buckets are `le` (inclusive upper bound).
        h = Histogram([1.0, 2.0, 4.0])
        h.observe(2.0)
        assert h.counts == [0, 1, 0, 0]
        assert dict(h.cumulative())[2.0] == 1

    def test_zero_lands_in_first_bucket(self):
        h = Histogram([1.0, 2.0])
        h.observe(0.0)
        assert h.counts[0] == 1

    def test_inf_lands_in_overflow_bucket(self):
        h = Histogram([1.0, 2.0])
        h.observe(math.inf)
        assert h.counts[-1] == 1
        cumulative = h.cumulative()
        assert cumulative[-1] == (math.inf, 1)

    def test_value_above_largest_bound_overflows(self):
        h = Histogram([1.0, 2.0])
        h.observe(100.0)
        assert h.counts == [0, 0, 1]

    def test_explicit_trailing_inf_bound_is_collapsed(self):
        h = Histogram([1.0, math.inf])
        assert h.bounds == (1.0,)
        h.observe(5.0)
        assert h.counts == [0, 1]

    def test_cumulative_is_monotone_and_ends_at_total(self):
        h = Histogram([1.0, 2.0, 4.0])
        for v in (0.5, 1.0, 3.0, 9.0, 2.0):
            h.observe(v)
        cumulative = h.cumulative()
        counts = [c for _, c in cumulative]
        assert counts == sorted(counts)
        assert cumulative[-1][1] == h.count == 5
        assert h.sum == pytest.approx(15.5)

    def test_unsorted_bounds_rejected(self):
        with pytest.raises(ValueError):
            Histogram([2.0, 1.0])


class TestFamily:
    def test_same_labels_return_same_child(self):
        reg = MetricsRegistry()
        fam = reg.counter("f_total", "help.", ("engine",))
        assert fam.labels(engine="x") is fam.labels(engine="x")
        assert fam.labels(engine="x") is not fam.labels(engine="y")

    def test_label_names_enforced(self):
        reg = MetricsRegistry()
        fam = reg.counter("f_total", "help.", ("engine",))
        with pytest.raises(ValueError):
            fam.labels(shard="0")
        with pytest.raises(ValueError):
            fam.labels(engine="x", shard="0")

    def test_label_values_coerced_to_str(self):
        reg = MetricsRegistry()
        fam = reg.gauge("g", "help.", ("shard",))
        assert fam.labels(shard=3) is fam.labels(shard="3")

    def test_unlabeled_family_has_one_child(self):
        reg = MetricsRegistry()
        c = reg.counter("plain_total", "help.").labels()
        c.inc()
        (labels, child), = reg.family("plain_total").children()
        assert labels == ()
        assert child.value == 1


class TestRegistry:
    def test_register_idempotent(self):
        reg = MetricsRegistry()
        first = reg.counter("c_total", "help.", ("engine",))
        again = reg.counter("c_total", "different help ignored.", ("engine",))
        assert first is again

    def test_register_conflicting_kind_raises(self):
        reg = MetricsRegistry()
        reg.counter("x_total", "help.")
        with pytest.raises(ValueError):
            reg.gauge("x_total", "help.")

    def test_register_conflicting_labels_raises(self):
        reg = MetricsRegistry()
        reg.counter("y_total", "help.", ("engine",))
        with pytest.raises(ValueError):
            reg.counter("y_total", "help.", ("engine", "shard"))

    def test_snapshot_is_strict_json(self):
        reg = MetricsRegistry()
        reg.counter("a_total", "help.").labels().inc(3)
        h = reg.histogram("b_seconds", "help.", ("phase",))
        h.labels(phase="predicate").observe(0.5)
        snap = reg.snapshot()
        text = json.dumps(snap, allow_nan=False)
        assert json.loads(text) == snap
        assert snap["version"] == 1
        names = {m["name"] for m in snap["metrics"]}
        assert names == {"a_total", "b_seconds"}

    def test_snapshot_histogram_buckets_cumulative(self):
        reg = MetricsRegistry()
        fam = reg.histogram("h", "help.")
        child = fam.labels()
        child.observe(2e-6)
        child.observe(123.0)
        (metric,) = reg.snapshot()["metrics"]
        (sample,) = metric["samples"]
        assert sample["count"] == 2
        assert sample["buckets"][-1]["le"] == "+Inf"
        assert sample["buckets"][-1]["count"] == 2


class TestNoopRegistry:
    def test_disabled_and_inert(self):
        reg = NoopRegistry()
        assert not reg.enabled
        c = reg.counter("anything", "help.", ("engine",)).labels(engine="x")
        c.inc(100)
        assert c.value == 0
        h = reg.histogram("h", "help.").labels()
        h.observe(1.0)
        assert h.count == 0 and h.sum == 0.0

    def test_singleton_snapshot_is_valid_and_empty(self):
        snap = NOOP_REGISTRY.snapshot()
        assert snap["version"] == 1
        assert snap["metrics"] == []
