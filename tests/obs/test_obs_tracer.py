"""Span trees and the tracer ring buffer."""

from __future__ import annotations

from repro.obs import NULL_TRACER, NullTracer, Span, Tracer


class TestSpan:
    def test_child_nesting_and_to_dict(self):
        root = Span("match", engine="dynamic")
        table = root.child("table", schema="a/b", checked=3)
        table.child("cluster", size=2)
        root.add(matched=1)
        d = root.to_dict()
        assert d["name"] == "match"
        assert d["fields"] == {"engine": "dynamic", "matched": 1}
        assert d["children"][0]["name"] == "table"
        assert d["children"][0]["children"][0]["fields"] == {"size": 2}

    def test_format_indents_children(self):
        root = Span("match", engine="x")
        root.child("table", schema="s")
        text = root.format()
        lines = text.splitlines()
        assert lines[0].lstrip().startswith("match")
        assert lines[1].startswith("  ") and "table" in lines[1]

    def test_format_renders_floats_compactly(self):
        text = Span("s", ratio=0.3333333333333).format()
        assert "0.333333" in text


class TestTracer:
    def test_start_finish_last(self):
        tracer = Tracer()
        span = tracer.start("match", engine="e")
        assert tracer.last() is None  # not finished yet
        tracer.finish(span)
        assert tracer.last() is span
        assert len(tracer) == 1

    def test_ring_capacity_drops_oldest(self):
        tracer = Tracer(capacity=3)
        spans = [tracer.start("s", i=i) for i in range(5)]
        for span in spans:
            tracer.finish(span)
        kept = tracer.spans()
        assert len(kept) == 3
        assert [s.fields["i"] for s in kept] == [2, 3, 4]

    def test_clear(self):
        tracer = Tracer()
        tracer.finish(tracer.start("s"))
        tracer.clear()
        assert len(tracer) == 0 and tracer.last() is None


class TestNullTracer:
    def test_disabled_and_discards(self):
        tracer = NullTracer()
        assert not tracer.enabled
        tracer.finish(tracer.start("s", a=1))
        assert len(tracer) == 0
        assert tracer.last() is None

    def test_singleton_disabled(self):
        assert not NULL_TRACER.enabled
