"""Exporters: Prometheus text format, JSON snapshots, the schema checker."""

from __future__ import annotations

import json
import math

from repro.obs import MetricsRegistry, json_snapshot, prometheus_text, write_json_snapshot
from repro.obs.check import validate, validate_file
from repro.obs.export import escape_help, escape_label_value

SCHEMA_PATH = "schemas/metrics_snapshot.schema.json"


class TestLabelEscaping:
    def test_backslash_quote_newline(self):
        assert escape_label_value(r"a\b") == "a\\\\b"
        assert escape_label_value('say "hi"') == 'say \\"hi\\"'
        assert escape_label_value("line1\nline2") == "line1\\nline2"

    def test_escaped_value_round_trips_in_exposition(self):
        reg = MetricsRegistry()
        reg.counter("esc_total", "help.", ("v",)).labels(v='q"\\\n').inc()
        text = prometheus_text(reg)
        assert 'esc_total{v="q\\"\\\\\\n"} 1' in text

    def test_help_escaping(self):
        assert escape_help("multi\nline \\ help") == "multi\\nline \\\\ help"


class TestPrometheusText:
    def test_counter_and_gauge_lines(self):
        reg = MetricsRegistry()
        reg.counter("events_total", "Events seen.", ("engine",)).labels(
            engine="dynamic"
        ).inc(7)
        reg.gauge("live", "Live things.").labels().set(3)
        text = prometheus_text(reg)
        assert "# HELP events_total Events seen.\n" in text
        assert "# TYPE events_total counter\n" in text
        assert 'events_total{engine="dynamic"} 7\n' in text
        assert "# TYPE live gauge\n" in text
        assert "live 3\n" in text

    def test_histogram_exposition(self):
        reg = MetricsRegistry()
        fam = reg.histogram("lat_seconds", "Latency.", ("phase",))
        child = fam.labels(phase="p1")
        child.observe(0.5)
        child.observe(123.0)
        text = prometheus_text(reg)
        assert 'lat_seconds_bucket{phase="p1",le="+Inf"} 2\n' in text
        assert 'lat_seconds_sum{phase="p1"} 123.5\n' in text
        assert 'lat_seconds_count{phase="p1"} 2\n' in text
        # Bucket counts are cumulative and the series is monotone.
        counts = [
            int(line.rsplit(" ", 1)[1])
            for line in text.splitlines()
            if line.startswith("lat_seconds_bucket")
        ]
        assert counts == sorted(counts)

    def test_non_finite_sample_rendering(self):
        reg = MetricsRegistry()
        reg.gauge("weird", "help.").labels().set(math.inf)
        assert "weird +Inf\n" in prometheus_text(reg)


class TestJsonSnapshot:
    def test_context_embedded(self):
        reg = MetricsRegistry()
        snap = json_snapshot(reg, context={"engine": "static"})
        assert snap["context"] == {"engine": "static"}

    def test_written_file_passes_schema(self, tmp_path):
        reg = MetricsRegistry()
        reg.counter("a_total", "help.", ("engine", "shard")).labels(
            engine="x", shard="0"
        ).inc()
        reg.histogram("b_seconds", "help.").labels().observe(0.1)
        path = tmp_path / "snap.json"
        write_json_snapshot(reg, str(path), context={"events": 1})
        assert validate_file(str(path), SCHEMA_PATH) == []

    def test_non_finite_sum_serializes_as_string(self, tmp_path):
        reg = MetricsRegistry()
        reg.histogram("h", "help.").labels().observe(math.inf)
        path = tmp_path / "snap.json"
        write_json_snapshot(reg, str(path))
        data = json.loads(path.read_text())
        (metric,) = data["metrics"]
        assert metric["samples"][0]["sum"] == "+Inf"


class TestSchemaChecker:
    def test_rejects_wrong_version(self):
        schema = json.load(open(SCHEMA_PATH))
        bad = {"version": 2, "metrics": []}
        assert validate(bad, schema) != []

    def test_rejects_missing_required(self):
        schema = json.load(open(SCHEMA_PATH))
        bad = {"version": 1, "metrics": [{"name": "x"}]}
        assert validate(bad, schema) != []

    def test_rejects_unknown_top_level_key(self):
        schema = json.load(open(SCHEMA_PATH))
        bad = {"version": 1, "metrics": [], "extra": 1}
        assert validate(bad, schema) != []

    def test_accepts_real_snapshot(self):
        schema = json.load(open(SCHEMA_PATH))
        reg = MetricsRegistry()
        reg.counter("ok_total", "help.").labels().inc()
        assert validate(json_snapshot(reg), schema) == []
