"""The unified stats() contract across every component that exposes one.

Contract: ``stats()`` returns a dict that is (a) JSON-serializable with
``json.dumps`` under strict mode, (b) keyed only by strings at every
level, and (c) for matchers, carries at least ``name`` (str),
``subscriptions`` (int) and ``counters`` (flat dict).  Keys must be
stable across calls so dashboards can rely on them.
"""

from __future__ import annotations

import json
import random

import pytest

from repro.bench.harness import matcher_for, uniform_statistics_for
from repro.cache.metrics import CacheMetrics
from repro.core.threadsafe import ThreadSafeMatcher
from repro.matchers import MATCHER_FACTORIES, DynamicMatcher
from repro.system.router import ROUTERS, make_router
from repro.system.server import BatchServer
from repro.workload.scenarios import paper_workloads

from tests.conftest import make_event, make_subscription


def _exercised(matcher):
    """Load a small workload and match a few events through *matcher*."""
    rng = random.Random(7)
    for i in range(30):
        matcher.add(make_subscription(rng, f"s{i}"))
    rebuild = getattr(matcher, "rebuild", None)
    if callable(rebuild):
        rebuild()
    for _ in range(10):
        matcher.match(make_event(rng))
    return matcher


def _assert_str_keys(obj, path="$"):
    if isinstance(obj, dict):
        for key, value in obj.items():
            assert isinstance(key, str), f"non-str key {key!r} at {path}"
            _assert_str_keys(value, f"{path}.{key}")
    elif isinstance(obj, list):
        for i, value in enumerate(obj):
            _assert_str_keys(value, f"{path}[{i}]")


def _assert_contract(stats):
    # Strict JSON (no NaN/Infinity literals) and str keys throughout.
    json.loads(json.dumps(stats, allow_nan=False))
    _assert_str_keys(stats)


@pytest.mark.parametrize("algorithm", sorted(MATCHER_FACTORIES))
def test_every_registered_matcher(algorithm):
    spec = paper_workloads(0.001)["W0"]
    matcher = _exercised(matcher_for(algorithm, spec))
    stats = matcher.stats()
    _assert_contract(stats)
    assert isinstance(stats["name"], str) and stats["name"]
    assert stats["subscriptions"] == 30
    assert isinstance(stats["counters"], dict)


@pytest.mark.parametrize("algorithm", sorted(MATCHER_FACTORIES))
def test_keys_stable_across_calls(algorithm):
    spec = paper_workloads(0.001)["W0"]
    matcher = _exercised(matcher_for(algorithm, spec))
    first = set(matcher.stats())
    matcher.match(make_event(random.Random(9)))
    assert set(matcher.stats()) == first


def test_thread_safe_wrapper():
    matcher = _exercised(ThreadSafeMatcher(DynamicMatcher()))
    stats = matcher.stats()
    _assert_contract(stats)
    assert stats["subscriptions"] == 30


def test_batch_server():
    rng = random.Random(7)
    with BatchServer(DynamicMatcher()) as server:
        server.submit_subscriptions(
            [make_subscription(rng, f"s{i}") for i in range(10)]
        )
        server.submit_events([make_event(rng) for _ in range(5)])
        stats = server.stats()
    _assert_contract(stats)
    assert stats["name"] == "batch-server"
    assert stats["subscriptions"] == 10
    assert stats["counters"]["batches_publish"] == 1
    assert stats["counters"]["items_publish"] == 5
    assert stats["matcher"]["name"] == "dynamic"


@pytest.mark.parametrize("policy", sorted(ROUTERS))
def test_routers(policy):
    rng = random.Random(7)
    router = make_router(policy, 4)
    for i in range(20):
        router.shard_for(make_subscription(rng, f"s{i}"))
    stats = router.stats()
    _assert_contract(stats)
    assert stats["router"] == policy
    assert stats["shards"] == 4


def test_cache_metrics():
    metrics = CacheMetrics(accesses=10, hits=7, misses=3, cycles=100, stall_cycles=30)
    stats = metrics.stats()
    _assert_contract(stats)
    assert stats["name"] == "cache"
    assert stats["counters"]["misses"] == 3
    assert stats["miss_rate"] == pytest.approx(0.3)
