"""API quality gates: public surface is documented and importable."""

import importlib
import inspect
import pkgutil

import pytest

import repro

PACKAGES = [
    "repro",
    "repro.core",
    "repro.indexes",
    "repro.algorithms",
    "repro.clustering",
    "repro.matchers",
    "repro.obs",
    "repro.cache",
    "repro.workload",
    "repro.system",
    "repro.lang",
    "repro.sqltrigger",
    "repro.analysis",
    "repro.bench",
]


def public_modules():
    """Every repro module (recursively), import-checked.

    ``repro.__main__`` is excluded: importing it runs the CLI.
    """
    out = []
    for modinfo in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        if modinfo.name.endswith("__main__"):
            continue
        out.append(modinfo.name)
    return out


class TestImportability:
    @pytest.mark.parametrize("name", public_modules())
    def test_every_module_imports(self, name):
        importlib.import_module(name)

    @pytest.mark.parametrize("package", PACKAGES)
    def test_all_exports_resolve(self, package):
        mod = importlib.import_module(package)
        exported = getattr(mod, "__all__", [])
        for name in exported:
            assert hasattr(mod, name), f"{package}.__all__ lists missing {name!r}"

    def test_top_level_all_sorted_unique(self):
        names = [n for n in repro.__all__]
        assert len(names) == len(set(names))


class TestDocstrings:
    @pytest.mark.parametrize("name", public_modules())
    def test_module_docstrings(self, name):
        mod = importlib.import_module(name)
        assert inspect.getdoc(mod), f"{name} lacks a module docstring"

    @pytest.mark.parametrize("package", PACKAGES)
    def test_exported_objects_documented(self, package):
        mod = importlib.import_module(package)
        undocumented = []
        for name in getattr(mod, "__all__", []):
            obj = getattr(mod, name)
            if inspect.isclass(obj) or inspect.isfunction(obj):
                if not inspect.getdoc(obj):
                    undocumented.append(name)
        assert not undocumented, f"{package}: undocumented exports {undocumented}"

    def test_public_methods_of_core_classes_documented(self):
        from repro.core import BitVector, Event, Matcher, Predicate, Subscription
        from repro.matchers import DynamicMatcher, StaticMatcher

        undocumented = []
        for cls in (Predicate, Subscription, Event, BitVector, Matcher,
                    DynamicMatcher, StaticMatcher):
            for name, member in inspect.getmembers(cls):
                if name.startswith("_") or not callable(member):
                    continue
                if not inspect.getdoc(member):
                    undocumented.append(f"{cls.__name__}.{name}")
        assert not undocumented, undocumented
