"""The analytical work model vs the real engines' counters."""

import pytest

from repro.analysis.selectivity import expected_checks, predicate_match_probability
from repro.core import Operator
from repro.workload.scenarios import w0


class TestPredicateProbability:
    def test_equality(self):
        spec = w0()
        assert predicate_match_probability(spec, "attr00", Operator.EQ) == pytest.approx(
            1 / 35
        )

    def test_not_equal(self):
        spec = w0()
        assert predicate_match_probability(spec, "attr00", Operator.NE) == pytest.approx(
            34 / 35
        )

    def test_le_exceeds_half(self):
        spec = w0()
        p = predicate_match_probability(spec, "attr00", Operator.LE)
        assert p == pytest.approx(36 / 70)

    def test_strict_below_half(self):
        spec = w0()
        p = predicate_match_probability(spec, "attr00", Operator.LT)
        assert p == pytest.approx(34 / 70)

    def test_le_ge_complement_with_eq(self):
        spec = w0()
        le = predicate_match_probability(spec, "attr00", Operator.LE)
        gt = predicate_match_probability(spec, "attr00", Operator.GT)
        assert le + gt == pytest.approx(1.0)


class TestExpectedChecks:
    def test_w0_closed_forms(self):
        spec = w0(n_subscriptions=35_000)
        model = expected_checks(spec)
        # counting: 5 equality predicates/sub, each 1/35 → n·5/35
        assert model["counting"] == pytest.approx(35_000 * 5 / 35)
        # propagation: single-pair access → n/35
        assert model["propagation"] == pytest.approx(1000)
        # clustered over the fixed pair → n/35²
        assert model["clustered"] == pytest.approx(35_000 / 1225)

    def test_ordering_matches_figure3a(self):
        model = expected_checks(w0(n_subscriptions=100_000))
        assert model["clustered"] < model["propagation"] < model["counting"]


class TestModelAgainstImplementation:
    @pytest.fixture(scope="class")
    def measured(self):
        from repro.bench.experiments.common import materialize
        from repro.bench.harness import load_subscriptions, matcher_for

        spec = w0(seed=6, n_subscriptions=8000)
        subs, events = materialize(spec, 8000, 40)
        out = {}
        for name in ("counting", "propagation", "dynamic"):
            m = matcher_for(name, spec)
            load_subscriptions(m, subs)
            for e in events:
                m.match(e)
            out[name] = m.counters["subscription_checks"] / m.counters["events"]
        return spec, out

    def test_counting_within_factor_two(self, measured):
        spec, got = measured
        predicted = expected_checks(spec)["counting"]
        assert predicted / 2 <= got["counting"] <= predicted * 2

    def test_propagation_within_factor_two(self, measured):
        spec, got = measured
        predicted = expected_checks(spec)["propagation"]
        assert predicted / 2 <= got["propagation"] <= predicted * 2

    def test_dynamic_bounded_by_propagation_model(self, measured):
        spec, got = measured
        # dynamic sits between the pair-clustered ideal and propagation.
        assert got["dynamic"] < expected_checks(spec)["propagation"]
        assert got["dynamic"] >= expected_checks(spec)["clustered"] * 0.5
