"""Example 3.1 reproduced analytically.

Paper numbers: C1 tables each serve 2.33 M subscriptions with clusters
of 23,300; C2 populations A/B/C/AB/BC = 1.5/1/1.5/1.5/1.5 M with
singleton clusters of 15,000/10,000/15,000; an A∧B event costs
2 lookups + 46,600 checks under C1 vs 3 lookups + 26,500 under C2.

The pair-cluster size the paper prints (1,500) divides the 1.5 M
population by 1,000 instead of the 100×100 = 10,000 value combinations
its own setup implies; the consistent value is 150 (and the C2 event
cost 25,150).  These tests pin the *consistent* arithmetic and the
paper's qualitative conclusion (C2 wins).
"""

import pytest

from repro.analysis import AnalyticClustering, GroupSpec, example_31


@pytest.fixture(scope="module")
def instances():
    return example_31()


class TestC1:
    def test_population_per_table(self, instances):
        c1 = instances["C1"]
        for attr in ("A", "B", "C"):
            # 1M own + 0.5M from each pair + 1/3M from the triple.
            assert c1.table_population((attr,)) == pytest.approx(2_333_333.33, rel=1e-4)

    def test_cluster_size(self, instances):
        assert instances["C1"].cluster_size(("A",)) == pytest.approx(23_333.33, rel=1e-4)

    def test_ab_event_cost(self, instances):
        lookups, checks = instances["C1"].event_cost({"A", "B"})
        assert lookups == 2
        assert checks == pytest.approx(46_666.67, rel=1e-4)


class TestC2:
    def test_populations(self, instances):
        c2 = instances["C2"]
        assert c2.table_population(("A",)) == pytest.approx(1_500_000)
        assert c2.table_population(("B",)) == pytest.approx(1_000_000)
        assert c2.table_population(("C",)) == pytest.approx(1_500_000)
        assert c2.table_population(("A", "B")) == pytest.approx(1_500_000)
        assert c2.table_population(("B", "C")) == pytest.approx(1_500_000)

    def test_singleton_cluster_sizes(self, instances):
        c2 = instances["C2"]
        assert c2.cluster_size(("A",)) == pytest.approx(15_000)
        assert c2.cluster_size(("B",)) == pytest.approx(10_000)
        assert c2.cluster_size(("C",)) == pytest.approx(15_000)

    def test_pair_cluster_size_consistent_value(self, instances):
        # 1.5 M / (100 × 100) — not the paper's 1,500 (see module docstring).
        assert instances["C2"].cluster_size(("A", "B")) == pytest.approx(150)

    def test_ab_event_cost(self, instances):
        lookups, checks = instances["C2"].event_cost({"A", "B"})
        assert lookups == 3
        assert checks == pytest.approx(25_150)

    def test_c2_beats_c1(self, instances):
        _l1, checks1 = instances["C1"].event_cost({"A", "B"})
        _l2, checks2 = instances["C2"].event_cost({"A", "B"})
        assert checks2 < checks1


class TestAnalyticClusteringGeneric:
    def test_maximal_schema_placement(self):
        inst = AnalyticClustering(
            [GroupSpec(frozenset({"A", "B"}), 100)],
            [("A",), ("A", "B")],
            {"A": 10, "B": 10},
        )
        assert inst.table_population(("A", "B")) == 100
        assert inst.table_population(("A",)) == 0

    def test_uniform_split_over_ties(self):
        inst = AnalyticClustering(
            [GroupSpec(frozenset({"A", "B"}), 100)],
            [("A",), ("B",)],
            {"A": 10, "B": 10},
        )
        assert inst.table_population(("A",)) == 50
        assert inst.table_population(("B",)) == 50

    def test_no_eligible_schema_rejected(self):
        with pytest.raises(ValueError):
            AnalyticClustering(
                [GroupSpec(frozenset({"Z"}), 1)], [("A",)], {"A": 10}
            )

    def test_event_without_coverage_costs_nothing(self):
        inst = AnalyticClustering(
            [GroupSpec(frozenset({"A"}), 10)], [("A",)], {"A": 10}
        )
        assert inst.event_cost({"B"}) == (0, 0.0)

    def test_group_validation(self):
        with pytest.raises(ValueError):
            GroupSpec(frozenset(), 1)
        with pytest.raises(ValueError):
            GroupSpec(frozenset({"A"}), -1)

    def test_duplicate_schemas_rejected(self):
        with pytest.raises(ValueError):
            AnalyticClustering(
                [GroupSpec(frozenset({"A"}), 1)], [("A",), ("A",)], {"A": 10}
            )
