"""Unit pins for the shared-memory data plane (:mod:`repro.system.shm`).

Three layers, bottom up: the reader-acked :class:`SlotRing` (round-robin
reuse, generation bumping, stale/over-ack detection, timeout), the slot
and result-region codecs over a live arena (header validation, zero-copy
round trips, graceful too-big refusals), and segment lifecycle (create →
attach → close leaves ``/dev/shm`` exactly as it was).
"""

import json
import threading
import time

import numpy as np
import pytest

from repro.batch.bitmatrix import unpack_bits
from repro.core import Event
from repro.system.procpool import decode_events, encode_events
from repro.system.shm import (
    EVENT_DTYPES,
    ShmArena,
    ShmLayoutError,
    SlotRing,
    pack_dtype_table,
    unpack_dtype_table,
)
from tests.conftest import shm_entries


# ----------------------------------------------------------------------
# SlotRing
# ----------------------------------------------------------------------
class TestSlotRing:
    def test_round_robin_hands_out_distinct_slots(self):
        ring = SlotRing(3)
        tickets = [ring.acquire(1) for _ in range(3)]
        assert [t.index for t in tickets] == [0, 1, 2]
        assert ring.in_flight() == 3
        assert ring.pending() == [1, 1, 1]

    def test_acked_slot_is_reused_with_a_higher_generation(self):
        ring = SlotRing(3)
        tickets = [ring.acquire(1) for _ in range(3)]
        ring.ack(tickets[1])
        again = ring.acquire(1)
        assert again.index == 1
        assert again.generation == tickets[1].generation + 1

    def test_full_ring_times_out_until_every_reader_acks(self):
        ring = SlotRing(1)
        ticket = ring.acquire(2)
        assert ring.acquire(1, timeout=0.05) is None
        ring.ack(ticket)  # one of two readers: still busy
        assert ring.acquire(1, timeout=0.05) is None
        ring.ack(ticket)
        fresh = ring.acquire(1, timeout=0.05)
        assert fresh is not None and fresh.generation == ticket.generation + 1

    def test_stale_ticket_ack_raises(self):
        ring = SlotRing(1)
        old = ring.acquire(1)
        ring.ack(old)
        ring.acquire(1)  # same slot, new generation
        with pytest.raises(ShmLayoutError, match="stale ack"):
            ring.ack(old)

    def test_over_ack_raises(self):
        ring = SlotRing(2)
        ticket = ring.acquire(1)
        ring.ack(ticket)
        with pytest.raises(ShmLayoutError, match="over-ack"):
            ring.ack(ticket)

    def test_constructor_and_acquire_validate_arguments(self):
        with pytest.raises(ValueError):
            SlotRing(0)
        ring = SlotRing(1)
        with pytest.raises(ValueError):
            ring.acquire(0)

    def test_blocked_acquire_wakes_when_a_reader_acks(self):
        ring = SlotRing(1)
        ticket = ring.acquire(1)
        releaser = threading.Timer(0.05, ring.ack, args=(ticket,))
        releaser.start()
        try:
            start = time.monotonic()
            fresh = ring.acquire(1, timeout=5.0)
            assert fresh is not None
            assert time.monotonic() - start < 4.0  # woke on notify, not timeout
        finally:
            releaser.cancel()


# ----------------------------------------------------------------------
# dtype table
# ----------------------------------------------------------------------
class TestDtypeTable:
    def test_event_layout_round_trips(self):
        word = pack_dtype_table(EVENT_DTYPES)
        assert unpack_dtype_table(word, len(EVENT_DTYPES)) == EVENT_DTYPES

    def test_unknown_dtype_and_code_fail_loudly(self):
        with pytest.raises(ValueError, match="unknown section dtype"):
            pack_dtype_table(("<f4",))
        with pytest.raises(ShmLayoutError, match="unknown dtype code"):
            unpack_dtype_table(0xFF, 1)

    def test_table_is_capped_at_eight_sections(self):
        with pytest.raises(ValueError, match="at most 8"):
            pack_dtype_table(("<f8",) * 9)


# ----------------------------------------------------------------------
# arena codecs
# ----------------------------------------------------------------------
def numeric_events(n=6):
    return [Event({"a": i, "b": i * 0.5, "c": -i}) for i in range(n)]


def columnar(events):
    payload = encode_events(events, "auto")
    assert payload[0] == "cols", "test workload must ride the columnar layout"
    return payload[1:]  # (attrs, values, presence, ints)


def publish(arena, events, readers=1):
    attrs, values, presence, ints = columnar(events)
    ticket = arena.ring.acquire(readers, timeout=1.0)
    assert ticket is not None
    nbytes = arena.write_slot(ticket, attrs, values, presence, ints)
    return ticket, nbytes


def read_copy(arena, ticket, rows=None):
    """Read a slot and materialize events (copies — views must not
    outlive this frame, or closing the segment would raise BufferError)."""
    attrs, values, presence, ints = arena.read_slot(ticket.index, ticket.generation)
    return decode_events(
        ("cols", list(attrs), values.copy(), presence.copy(), ints.copy()), rows
    )


@pytest.fixture
def arena():
    with ShmArena.create(workers=2, slots=2, slot_bytes=1 << 16) as a:
        yield a


class TestEventSlotCodec:
    def test_slot_round_trip_is_exact(self, arena):
        events = numeric_events()
        ticket, nbytes = publish(arena, events)
        blob = json.dumps(columnar(events)[0]).encode()
        assert nbytes == arena.payload_bytes(len(events), 3, len(blob))
        got = read_copy(arena, ticket)
        assert [e.pairs for e in got] == [e.pairs for e in events]
        arena.ring.ack(ticket)

    def test_row_subset_selects_in_given_order(self, arena):
        events = numeric_events()
        ticket, _ = publish(arena, events)
        got = read_copy(arena, ticket, rows=[4, 0, 2])
        assert [e.pairs for e in got] == [events[i].pairs for i in (4, 0, 2)]
        arena.ring.ack(ticket)

    def test_oversized_batch_is_refused_without_writing(self, arena):
        big = [Event({f"a{j}": float(i + j) for j in range(40)}) for i in range(300)]
        attrs, values, presence, ints = columnar(big)
        ticket = arena.ring.acquire(1, timeout=1.0)
        assert arena.write_slot(ticket, attrs, values, presence, ints) is None
        arena.ring.ack(ticket)

    def test_unwritten_slot_fails_magic_validation(self, arena):
        with pytest.raises(ShmLayoutError, match="bad magic"):
            arena.read_slot(1, 1)

    def test_generation_mismatch_is_detected(self, arena):
        ticket, _ = publish(arena, numeric_events())
        with pytest.raises(ShmLayoutError, match="generation"):
            arena.read_slot(ticket.index, ticket.generation + 1)
        arena.ring.ack(ticket)

    def test_slot_index_bounds_are_enforced(self, arena):
        with pytest.raises(ShmLayoutError, match="out of range"):
            arena.read_slot(arena.slots, 1)


class TestResultRegionCodec:
    def test_result_round_trip_is_exact(self, arena):
        rng = np.random.default_rng(7)
        truth = rng.random((5, 13)) < 0.4
        assert arena.write_result(1, generation=3, truth=truth) == (5, 1)
        packed = arena.read_result(1, generation=3, n_rows=5, n_words=1)
        np.testing.assert_array_equal(unpack_bits(packed.copy(), 13), truth)

    def test_oversized_matrix_is_refused(self):
        with ShmArena.create(workers=1, result_bytes=64) as tiny:
            truth = np.ones((100, 100), dtype=bool)
            assert tiny.write_result(0, generation=1, truth=truth) is None

    def test_generation_and_shape_mismatches_are_detected(self, arena):
        truth = np.ones((2, 3), dtype=bool)
        arena.write_result(0, generation=5, truth=truth)
        with pytest.raises(ShmLayoutError, match="generation"):
            arena.read_result(0, generation=6, n_rows=2, n_words=1)
        with pytest.raises(ShmLayoutError, match="shape"):
            arena.read_result(0, generation=5, n_rows=3, n_words=1)

    def test_worker_index_bounds_are_enforced(self, arena):
        with pytest.raises(ShmLayoutError, match="out of range"):
            arena.read_result(arena.workers, 1, 1, 1)


# ----------------------------------------------------------------------
# segment lifecycle
# ----------------------------------------------------------------------
class TestSegmentLifecycle:
    def test_spec_attach_shares_the_same_memory(self):
        events = numeric_events()
        with ShmArena.create(workers=1, slots=2, slot_bytes=1 << 16) as parent:
            twin = ShmArena.attach(parent.spec())
            try:
                ticket, _ = publish(parent, events)
                got = read_copy(twin, ticket)  # worker side, zero re-encode
                assert [e.pairs for e in got] == [e.pairs for e in events]
                truth = np.eye(4, 9, dtype=bool)
                assert twin.write_result(0, ticket.generation, truth) == (4, 1)
                packed = parent.read_result(0, ticket.generation, 4, 1).copy()
                np.testing.assert_array_equal(unpack_bits(packed, 9), truth)
                parent.ring.ack(ticket)
            finally:
                twin.close()

    def test_close_unlinks_and_is_idempotent(self):
        before = shm_entries()
        arena = ShmArena.create(workers=1)
        created = shm_entries() - before
        assert len(created) == 2  # event ring + result regions
        assert set(arena.health()["segments"]) == created
        arena.close()
        assert shm_entries() == before
        arena.close()  # idempotent

    def test_constructor_validates_sizes(self):
        with pytest.raises(ValueError):
            ShmArena.create(workers=0)
        with pytest.raises(ValueError):
            ShmArena.create(workers=1, slots=0)
        with pytest.raises(ValueError):
            ShmArena.create(workers=1, slot_bytes=8)
        with pytest.raises(ValueError):
            ShmArena.create(workers=1, result_bytes=8)
