"""Clocks, the event store and notification sinks."""

import pytest

from repro.core import Event
from repro.system import (
    CallbackNotifier,
    EventStore,
    FanoutNotifier,
    Notification,
    NullNotifier,
    QueueNotifier,
    SystemClock,
    VirtualClock,
)


class TestClocks:
    def test_system_clock_monotone(self):
        c = SystemClock()
        assert c.now() <= c.now()

    def test_virtual_clock_advance(self):
        c = VirtualClock(10.0)
        assert c.now() == 10.0
        assert c.advance(5) == 15.0

    def test_virtual_clock_set(self):
        c = VirtualClock()
        c.set(100.0)
        assert c.now() == 100.0

    def test_no_time_travel(self):
        c = VirtualClock(10.0)
        with pytest.raises(ValueError):
            c.advance(-1)
        with pytest.raises(ValueError):
            c.set(5.0)


class TestEventStore:
    def test_add_and_valid(self):
        store = EventStore()
        store.add(Event({"a": 1}), expires_at=10.0)
        store.add(Event({"b": 2}), expires_at=20.0)
        assert len(store) == 2
        assert [e for e in store.valid_events(15.0)] == [Event({"b": 2})]

    def test_purge(self):
        store = EventStore()
        store.add(Event({"a": 1}), 10.0)
        store.add(Event({"b": 2}), 20.0)
        assert store.purge(10.0) == 1
        assert len(store) == 1

    def test_purge_boundary_inclusive(self):
        store = EventStore()
        store.add(Event({"a": 1}), 10.0)
        assert store.purge(10.0) == 1

    def test_publication_order_preserved(self):
        store = EventStore()
        for i in range(5):
            store.add(Event({"n": i}), 100.0)
        assert [e["n"] for e in store.valid_events(0.0)] == [0, 1, 2, 3, 4]


class TestNotifiers:
    def _note(self):
        return Notification("s1", Event({"a": 1}), 0.0)

    def test_queue_drains_in_order(self):
        q = QueueNotifier()
        q.deliver(self._note())
        q.deliver(Notification("s2", Event({"a": 2}), 1.0))
        drained = q.drain()
        assert [n.sub_id for n in drained] == ["s1", "s2"]
        assert len(q) == 0 and q.drain() == []

    def test_queue_maxlen_drops_oldest(self):
        q = QueueNotifier(maxlen=2)
        for i in range(5):
            q.deliver(Notification(f"s{i}", Event({"a": 1}), 0.0))
        assert [n.sub_id for n in q.drain()] == ["s3", "s4"]

    def test_callback(self):
        seen = []
        CallbackNotifier(seen.append).deliver(self._note())
        assert seen[0].sub_id == "s1"

    def test_null_discards(self):
        NullNotifier().deliver(self._note())  # must not raise

    def test_fanout(self):
        q1, q2 = QueueNotifier(), QueueNotifier()
        f = FanoutNotifier([q1, q2])
        f.deliver(self._note())
        assert len(q1) == 1 and len(q2) == 1

    def test_deliver_all(self):
        q = QueueNotifier()
        n = q.deliver_all([self._note(), self._note()])
        assert n == 2 and len(q) == 2
