"""Chaos suite: subscriber failures against the at-least-once layer.

Each scenario injects a subscriber fault from ``repro.testing``
(crash-on-deliver, stall-past-deadline, process death between deliver
and ack) and asserts the delivery guarantees hold: surviving
subscribers receive every notification at least once, one sick
subscriber never starves the healthy ones, and a crash with deliveries
in flight is recovered without losing a single unacked notification.
"""

import random

from repro.core.types import Event, Subscription, eq
from repro.system import (
    DeliveryManager,
    PubSubBroker,
    QueueNotifier,
    RetryPolicy,
    VirtualClock,
    WriteAheadLog,
    recover_files,
)
from repro.testing import CrashySubscriber, StallingSubscriber


def make_stack(clock=None, max_attempts=5, **manager_kwargs):
    clock = clock if clock is not None else VirtualClock()
    manager = DeliveryManager(
        clock=clock,
        ack_timeout=5.0,
        retry=RetryPolicy(
            max_attempts=max_attempts, base_delay=1.0, rng=random.Random(11)
        ),
        **manager_kwargs,
    )
    broker = PubSubBroker(clock=clock, notifier=QueueNotifier(), delivery=manager)
    return broker, manager, clock


def drive(manager, clock, total, step=1.0):
    elapsed = 0.0
    while elapsed < total:
        clock.advance(step)
        elapsed += step
        manager.pump()


class TestCrashySubscriber:
    def test_crash_mid_burst_then_heal_loses_nothing(self):
        broker, manager, clock = make_stack()
        broker.subscribe(Subscription("s1", [eq("topic", "x")]))
        # Crashes on its first two deliveries, then heals and acks.
        subscriber = CrashySubscriber(failures=2, manager=manager)
        manager.register("s1", sink=subscriber)

        published = [Event({"topic": "x", "n": i}) for i in range(10)]
        for event in published:
            broker.publish(event)
        assert subscriber.crashes == 2
        drive(manager, clock, 120.0)

        # Every notification for the (eventually healthy) subscriber
        # arrived at least once, and nothing was dead-lettered.
        got = sorted(n.event["n"] for n in subscriber.received)
        assert got == list(range(10))
        assert len(manager.dead_letters) == 0
        assert manager.inflight == 0
        assert manager.channel("s1").counters["redeliveries"] >= 2

    def test_permanently_dead_subscriber_dead_letters_everything(self):
        broker, manager, clock = make_stack(max_attempts=3)
        broker.subscribe(Subscription("s1", [eq("topic", "x")]))
        subscriber = CrashySubscriber()  # infinite failure budget
        manager.register("s1", sink=subscriber)
        for i in range(5):
            broker.publish(Event({"topic": "x", "n": i}))
        drive(manager, clock, 300.0)
        assert subscriber.received == []
        # Exactly the notifications that exceeded the retry budget are
        # dead — all five, each after max_attempts sends.
        assert len(manager.dead_letters) == 5
        assert all(e.reason == "budget" for e in manager.dead_letters)
        assert all(e.attempts == 3 for e in manager.dead_letters)
        assert manager.inflight == 0

    def test_relapse_after_heal_still_converges(self):
        broker, manager, clock = make_stack()
        broker.subscribe(Subscription("s1", [eq("topic", "x")]))
        subscriber = CrashySubscriber(failures=1, manager=manager)
        manager.register("s1", sink=subscriber)
        broker.publish(Event({"topic": "x", "n": 0}))
        drive(manager, clock, 30.0)
        assert [n.event["n"] for n in subscriber.received] == [0]
        subscriber.rearm(failures=1)  # relapse
        broker.publish(Event({"topic": "x", "n": 1}))
        drive(manager, clock, 30.0)
        assert sorted(n.event["n"] for n in subscriber.received) == [0, 1]
        assert manager.inflight == 0


class TestStallingSubscriber:
    def test_stalled_consumer_is_isolated_from_healthy_ones(self):
        broker, manager, clock = make_stack()
        broker.subscribe(Subscription("slow", [eq("topic", "x")]))
        broker.subscribe(Subscription("fast", [eq("topic", "x")]))
        slow = StallingSubscriber(manager, "slow", stall_after=2)
        fast = CrashySubscriber(failures=0, manager=manager)
        # The slow channel sheds its oldest instead of growing (or
        # blocking the publisher) once the window fills.
        manager.register("slow", sink=slow, capacity=3, overflow="shed-oldest")
        manager.register("fast", sink=fast)

        for i in range(20):
            broker.publish(Event({"topic": "x", "n": i}))
            clock.advance(0.1)

        # The healthy subscriber saw the whole burst, unimpeded.
        assert sorted(n.event["n"] for n in fast.received) == list(range(20))
        # The stalled channel is bounded, with the loss accounted.
        channel = manager.channel("slow")
        assert channel.outstanding <= 3
        assert channel.counters["shed"] > 0
        assert len(manager.dead_letters) == 0  # shed is not dead-lettering

    def test_resume_drains_the_backlog(self):
        broker, manager, clock = make_stack()
        broker.subscribe(Subscription("slow", [eq("topic", "x")]))
        slow = StallingSubscriber(manager, "slow", stall_after=1)
        manager.register("slow", sink=slow, capacity=10)
        for i in range(4):
            broker.publish(Event({"topic": "x", "n": i}))
        assert manager.inflight > 0
        slow.resume()
        drive(manager, clock, 60.0)
        assert manager.inflight == 0
        assert len(manager.dead_letters) == 0
        assert sorted(set(n.event["n"] for n in slow.received)) == [0, 1, 2, 3]

    def test_stall_past_deadline_redelivers_to_the_same_channel(self):
        broker, manager, clock = make_stack()
        broker.subscribe(Subscription("slow", [eq("topic", "x")]))
        slow = StallingSubscriber(manager, "slow", stall_after=0)  # never acks
        manager.register("slow", sink=slow)
        broker.publish(Event({"topic": "x", "n": 0}))
        drive(manager, clock, 15.0)
        # Ack timeouts fired: the same seq was re-sent, not duplicated
        # under a fresh seq.
        assert len(slow.received) >= 2
        assert len(set(slow.seqs())) == 1


class TestCrashRecovery:
    def test_crash_between_deliver_and_ack_redelivers(self, tmp_path):
        clock = VirtualClock()
        wal = WriteAheadLog(tmp_path / "wal.jsonl", fsync="never", clock=clock)
        manager = DeliveryManager(clock=clock, ack_timeout=5.0)
        broker = PubSubBroker(
            clock=clock, notifier=QueueNotifier(), wal=wal, delivery=manager
        )
        broker.subscribe(Subscription("s1", [eq("topic", "x")]))
        received_pre_crash = []
        manager.register("s1", sink=received_pre_crash.append)
        broker.publish(Event({"topic": "x", "n": 0}))
        assert len(received_pre_crash) == 1
        # The process dies before the subscriber acks.
        wal.close()

        clock2 = VirtualClock()
        manager2 = DeliveryManager(clock=clock2, ack_timeout=5.0)
        restored = PubSubBroker(
            clock=clock2, notifier=QueueNotifier(), delivery=manager2
        )
        report = recover_files(restored, wal_path=tmp_path / "wal.jsonl")
        assert report.unacked_deliveries == 1
        subscriber = CrashySubscriber(failures=0, manager=manager2)
        manager2.register("s1", sink=subscriber)
        manager2.pump()
        assert [n.event["n"] for n in subscriber.received] == [0]
        assert manager2.inflight == 0  # acked this time

    def test_acked_workload_is_never_replayed(self, tmp_path):
        clock = VirtualClock()
        wal = WriteAheadLog(tmp_path / "wal.jsonl", fsync="never", clock=clock)
        manager = DeliveryManager(clock=clock, ack_timeout=5.0)
        broker = PubSubBroker(
            clock=clock, notifier=QueueNotifier(), wal=wal, delivery=manager
        )
        broker.subscribe(Subscription("s1", [eq("topic", "x")]))
        subscriber = CrashySubscriber(failures=0, manager=manager)
        manager.register("s1", sink=subscriber)
        for i in range(5):
            broker.publish(Event({"topic": "x", "n": i}))
        assert manager.inflight == 0  # all acked pre-crash
        wal.close()

        manager2 = DeliveryManager(clock=VirtualClock())
        restored = PubSubBroker(
            clock=VirtualClock(), notifier=QueueNotifier(), delivery=manager2
        )
        report = recover_files(restored, wal_path=tmp_path / "wal.jsonl")
        assert report.replayed_deliveries == 5
        assert report.replayed_settles == 5
        assert report.unacked_deliveries == 0
        assert manager2.inflight == 0
