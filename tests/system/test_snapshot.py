"""Broker snapshot save/restore."""

import io

import pytest

from repro.bench.harness import matcher_for
from repro.core import Event, Subscription, eq, le
from repro.core.threadsafe import ThreadSafeMatcher
from repro.matchers import DynamicMatcher
from repro.system import PubSubBroker, QueueNotifier, VirtualClock
from repro.system.snapshot import SnapshotError, load_snapshot, save_snapshot
from repro.workload.scenarios import paper_workloads

#: Every matcher backend a broker can sit on, wrappers included.
BACKENDS = (
    "oracle",
    "counting",
    "propagation",
    "propagation-wp",
    "static",
    "dynamic",
    "test-network",
    "sharded",
    "threadsafe",
    "trigger",
)


def backend_matcher(name):
    if name == "threadsafe":
        return ThreadSafeMatcher(DynamicMatcher())
    if name == "trigger":
        from repro.sqltrigger.matcher import TriggerMatcher

        return TriggerMatcher()
    return matcher_for(name, paper_workloads(0.001)["W0"])


def fresh(clock=None, matcher=None):
    return PubSubBroker(
        matcher=matcher,
        clock=clock or VirtualClock(), notifier=QueueNotifier(),
        event_retention_ttl=50.0,
    )


class TestRoundTrip:
    def test_plain_subscriptions(self):
        src = fresh()
        src.subscribe(Subscription("a", [eq("x", 1)]))
        src.subscribe(Subscription("b", [eq("y", 2), le("z", 5)]))
        buf = io.StringIO()
        assert save_snapshot(src, buf) == 2
        buf.seek(0)
        dst = fresh()
        assert load_snapshot(dst, buf) == 2
        assert sorted(dst.publish(Event({"x": 1, "y": 2, "z": 3}))) == ["a", "b"]

    def test_ttls_resume_relative(self):
        src_clock = VirtualClock(1000.0)
        src = fresh(src_clock)
        src.subscribe(Subscription("short", [eq("x", 1)]), ttl=30.0)
        src_clock.advance(10)  # 20 s remaining
        buf = io.StringIO()
        save_snapshot(src, buf)
        buf.seek(0)
        dst_clock = VirtualClock(0.0)
        dst = fresh(dst_clock)
        load_snapshot(dst, buf)
        dst_clock.advance(15)
        assert dst.publish(Event({"x": 1})) == ["short"]
        dst_clock.advance(6)  # past the 20 s remainder
        assert dst.publish(Event({"x": 1})) == []

    def test_expired_not_persisted(self):
        clock = VirtualClock()
        src = fresh(clock)
        src.subscribe(Subscription("gone", [eq("x", 1)]), ttl=5.0)
        clock.advance(6)
        buf = io.StringIO()
        assert save_snapshot(src, buf) == 0

    def test_formula_identity_survives(self):
        src = fresh()
        src.subscribe_formula("a = 1 or b = 2", "logical")
        buf = io.StringIO()
        save_snapshot(src, buf)
        buf.seek(0)
        dst = fresh()
        load_snapshot(dst, buf)
        assert dst.publish(Event({"a": 1, "b": 2})) == ["logical"]
        dst.unsubscribe("logical")
        assert dst.publish(Event({"a": 1})) == []

    def test_no_retro_notifications_on_restore(self):
        src = fresh()
        src.subscribe(Subscription("a", [eq("x", 1)]))
        buf = io.StringIO()
        save_snapshot(src, buf)
        buf.seek(0)
        dst = fresh()
        dst.publish(Event({"x": 1}))  # retained event pre-restore
        dst.notifier.drain()
        load_snapshot(dst, buf)
        assert dst.notifier.drain() == []


class TestValidation:
    def test_restore_requires_empty_broker(self):
        src = fresh()
        src.subscribe(Subscription("a", [eq("x", 1)]))
        buf = io.StringIO()
        save_snapshot(src, buf)
        buf.seek(0)
        dst = fresh()
        dst.subscribe(Subscription("pre", [eq("q", 1)]))
        with pytest.raises(SnapshotError):
            load_snapshot(dst, buf)

    @pytest.mark.parametrize(
        "payload",
        [
            "",
            "not json\n",
            '{"type": "something-else"}\n',
            '{"type": "repro-broker-snapshot", "version": 99}\n',
            '{"type": "repro-broker-snapshot", "version": 1}\n{"type": "weird"}\n',
            '{"type": "repro-broker-snapshot", "version": 1}\nnot json\n',
        ],
    )
    def test_malformed_rejected(self, payload):
        with pytest.raises(SnapshotError):
            load_snapshot(fresh(), io.StringIO(payload))


class TestExpiredRecordRegression:
    """An on-disk record with ``ttl_remaining: 0.0`` (writable by the
    pre-fix save path) used to be revived *immortal*: the old restore
    collapsed it with ``ttl or None``."""

    SNAPSHOT = (
        '{"type": "repro-broker-snapshot", "version": 1, "clock": 0.0}\n'
        '{"type": "subscription", "subscription": '
        '{"id": "dead", "predicates": [["x", "=", 1]]}, "ttl_remaining": 0.0}\n'
        '{"type": "subscription", "subscription": '
        '{"id": "live", "predicates": [["x", "=", 2]]}, "ttl_remaining": 9.0}\n'
    )

    def test_zero_ttl_record_stays_dead(self):
        clock = VirtualClock()  # frozen: nothing can expire after restore
        dst = fresh(clock)
        assert load_snapshot(dst, io.StringIO(self.SNAPSHOT)) == 1
        assert dst.publish(Event({"x": 1})) == []  # not revived
        assert dst.publish(Event({"x": 2})) == ["live"]

    def test_negative_ttl_record_stays_dead(self):
        payload = self.SNAPSHOT.replace('"ttl_remaining": 0.0', '"ttl_remaining": -3.0')
        dst = fresh(VirtualClock())
        assert load_snapshot(dst, io.StringIO(payload)) == 1
        assert dst.publish(Event({"x": 1})) == []


class TestWrapperRegression:
    """``save_snapshot`` used to read ``broker.matcher._subs`` directly,
    which raised AttributeError on the sharded and thread-safe wrappers
    (they hold no ``_subs`` of their own)."""

    @pytest.mark.parametrize("name", ["sharded", "threadsafe"])
    def test_save_through_wrapper(self, name):
        src = fresh(matcher=backend_matcher(name))
        src.subscribe(Subscription("a", [eq("x", 1)]))
        src.subscribe(Subscription("b", [eq("y", 2)]))
        buf = io.StringIO()
        assert save_snapshot(src, buf) == 2  # AttributeError before the fix
        buf.seek(0)
        dst = fresh(matcher=backend_matcher(name))
        assert load_snapshot(dst, buf) == 2
        assert dst.publish(Event({"x": 1})) == ["a"]


class TestEveryBackend:
    """Snapshot and WAL round-trips across every registered backend."""

    EVENTS = [
        Event({"x": 1}),
        Event({"x": 1, "y": 2}),
        Event({"y": 2, "z": 3}),
        Event({"q": 9}),
    ]

    def populate(self, broker):
        broker.subscribe(Subscription("a", [eq("x", 1)]))
        broker.subscribe(Subscription("b", [eq("y", 2), le("z", 5)]), ttl=60.0)
        broker.subscribe(Subscription("c", [eq("q", 9)]))
        broker.unsubscribe("c")

    def matches(self, broker):
        return [sorted(broker.publish(e)) for e in self.EVENTS]

    @pytest.mark.parametrize("name", BACKENDS)
    def test_snapshot_round_trip(self, name):
        src = fresh(matcher=backend_matcher(name))
        self.populate(src)
        buf = io.StringIO()
        assert save_snapshot(src, buf) == 2
        buf.seek(0)
        dst = fresh(matcher=backend_matcher(name))
        assert load_snapshot(dst, buf) == 2
        assert self.matches(dst) == self.matches(src)

    @pytest.mark.parametrize("name", BACKENDS)
    def test_wal_recovery_round_trip(self, name, tmp_path):
        from repro.system import WriteAheadLog, recover_files

        clock = VirtualClock()
        wal = WriteAheadLog(tmp_path / "b.wal", clock=clock)
        src = fresh(clock, matcher=backend_matcher(name))
        src.attach_wal(wal)
        self.populate(src)
        wal.close()
        dst = fresh(matcher=backend_matcher(name))
        report = recover_files(dst, wal_path=wal.path)
        assert report.restored == 2
        assert self.matches(dst) == self.matches(src)
