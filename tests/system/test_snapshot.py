"""Broker snapshot save/restore."""

import io

import pytest

from repro.core import Event, Subscription, eq, le
from repro.system import PubSubBroker, QueueNotifier, VirtualClock
from repro.system.snapshot import SnapshotError, load_snapshot, save_snapshot


def fresh(clock=None):
    return PubSubBroker(
        clock=clock or VirtualClock(), notifier=QueueNotifier(),
        event_retention_ttl=50.0,
    )


class TestRoundTrip:
    def test_plain_subscriptions(self):
        src = fresh()
        src.subscribe(Subscription("a", [eq("x", 1)]))
        src.subscribe(Subscription("b", [eq("y", 2), le("z", 5)]))
        buf = io.StringIO()
        assert save_snapshot(src, buf) == 2
        buf.seek(0)
        dst = fresh()
        assert load_snapshot(dst, buf) == 2
        assert sorted(dst.publish(Event({"x": 1, "y": 2, "z": 3}))) == ["a", "b"]

    def test_ttls_resume_relative(self):
        src_clock = VirtualClock(1000.0)
        src = fresh(src_clock)
        src.subscribe(Subscription("short", [eq("x", 1)]), ttl=30.0)
        src_clock.advance(10)  # 20 s remaining
        buf = io.StringIO()
        save_snapshot(src, buf)
        buf.seek(0)
        dst_clock = VirtualClock(0.0)
        dst = fresh(dst_clock)
        load_snapshot(dst, buf)
        dst_clock.advance(15)
        assert dst.publish(Event({"x": 1})) == ["short"]
        dst_clock.advance(6)  # past the 20 s remainder
        assert dst.publish(Event({"x": 1})) == []

    def test_expired_not_persisted(self):
        clock = VirtualClock()
        src = fresh(clock)
        src.subscribe(Subscription("gone", [eq("x", 1)]), ttl=5.0)
        clock.advance(6)
        buf = io.StringIO()
        assert save_snapshot(src, buf) == 0

    def test_formula_identity_survives(self):
        src = fresh()
        src.subscribe_formula("a = 1 or b = 2", "logical")
        buf = io.StringIO()
        save_snapshot(src, buf)
        buf.seek(0)
        dst = fresh()
        load_snapshot(dst, buf)
        assert dst.publish(Event({"a": 1, "b": 2})) == ["logical"]
        dst.unsubscribe("logical")
        assert dst.publish(Event({"a": 1})) == []

    def test_no_retro_notifications_on_restore(self):
        src = fresh()
        src.subscribe(Subscription("a", [eq("x", 1)]))
        buf = io.StringIO()
        save_snapshot(src, buf)
        buf.seek(0)
        dst = fresh()
        dst.publish(Event({"x": 1}))  # retained event pre-restore
        dst.notifier.drain()
        load_snapshot(dst, buf)
        assert dst.notifier.drain() == []


class TestValidation:
    def test_restore_requires_empty_broker(self):
        src = fresh()
        src.subscribe(Subscription("a", [eq("x", 1)]))
        buf = io.StringIO()
        save_snapshot(src, buf)
        buf.seek(0)
        dst = fresh()
        dst.subscribe(Subscription("pre", [eq("q", 1)]))
        with pytest.raises(SnapshotError):
            load_snapshot(dst, buf)

    @pytest.mark.parametrize(
        "payload",
        [
            "",
            "not json\n",
            '{"type": "something-else"}\n',
            '{"type": "repro-broker-snapshot", "version": 99}\n',
            '{"type": "repro-broker-snapshot", "version": 1}\n{"type": "weird"}\n',
            '{"type": "repro-broker-snapshot", "version": 1}\nnot json\n',
        ],
    )
    def test_malformed_rejected(self, payload):
        with pytest.raises(SnapshotError):
            load_snapshot(fresh(), io.StringIO(payload))
