"""The event store's retro-matching index."""

import random

import pytest

from repro.core import Event, Subscription, eq, ge, le
from repro.system.event_store import EventStore
from tests.conftest import make_event, make_subscription


class TestRetroMatch:
    @pytest.fixture
    def store(self):
        s = EventStore()
        s.add(Event({"movie": "gd", "price": 8}), expires_at=100.0)
        s.add(Event({"movie": "gd", "price": 14}), expires_at=100.0)
        s.add(Event({"movie": "other", "price": 5}), expires_at=100.0)
        return s

    def test_equality_narrowing(self, store):
        sub = Subscription("s", [eq("movie", "gd"), le("price", 10)])
        assert store.retro_match(sub, now=0.0) == [Event({"movie": "gd", "price": 8})]

    def test_unknown_pair_short_circuits(self, store):
        sub = Subscription("s", [eq("movie", "missing")])
        assert store.retro_match(sub, now=0.0) == []

    def test_no_equality_scans(self, store):
        sub = Subscription("s", [le("price", 8)])
        got = store.retro_match(sub, now=0.0)
        assert got == [
            Event({"movie": "gd", "price": 8}),
            Event({"movie": "other", "price": 5}),
        ]

    def test_expired_events_excluded(self, store):
        sub = Subscription("s", [eq("movie", "gd")])
        assert store.retro_match(sub, now=100.0) == []

    def test_purge_cleans_index(self, store):
        store.purge(100.0)
        sub = Subscription("s", [eq("movie", "gd")])
        assert store.retro_match(sub, now=0.0) == []
        assert "pairs=0" in repr(store)

    def test_publication_order(self):
        store = EventStore()
        for i in range(5):
            store.add(Event({"k": 1, "n": i}), 100.0)
        sub = Subscription("s", [eq("k", 1)])
        assert [e["n"] for e in store.retro_match(sub, 0.0)] == [0, 1, 2, 3, 4]

    def test_rarest_pair_probed(self):
        store = EventStore()
        for i in range(50):
            store.add(Event({"common": 1, "unique": i}), 100.0)
        sub = Subscription("s", [eq("common", 1), eq("unique", 7)])
        got = store.retro_match(sub, 0.0)
        assert got == [Event({"common": 1, "unique": 7})]

    def test_agrees_with_scan(self, rng):
        store = EventStore()
        events = [make_event(rng) for _ in range(100)]
        for e in events:
            store.add(e, 100.0)
        for i in range(40):
            sub = make_subscription(rng, f"s{i}")
            expected = [e for e in events if sub.is_satisfied_by(e)]
            assert store.retro_match(sub, 0.0) == expected
