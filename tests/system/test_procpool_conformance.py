"""Differential conformance: process executor vs. thread executor vs. oracle.

The process backend must be observationally identical to the thread
backend (which is itself pinned against the oracle): same matches on the
mixed-type workload for every registered two-phase engine, same behavior
on the edge batches (empty, size 1), under mid-stream churn, and through
``match_all``.  Anything the pipe transport mangles — string values,
floats, NaN/inf, > 2^53 integers, the packed result bit matrix — shows
up here as a differential mismatch.
"""

import pytest

from repro.core import Event, Subscription, eq, ge, le
from repro.system.sharding import ShardedMatcher
from tests.matchers.test_batch_conformance import _random_workload, build, norm

#: Every registered two-phase backend (the oracle and the sharded
#: wrapper itself are excluded: one is the reference, one is the rig).
TWO_PHASE = ["counting", "propagation", "propagation-wp", "static", "dynamic"]

SHARDS = 3


def sharded(engine, executor, **kwargs):
    kwargs.setdefault("worker_timeout", 60.0)
    if executor == "thread":
        kwargs.pop("worker_timeout", None)
        kwargs.pop("codec", None)
    return ShardedMatcher(
        shards=SHARDS,
        router="hash",
        inner=lambda: build(engine),
        executor=executor,
        **kwargs,
    )


def populated(matcher, subs):
    for s in subs:
        matcher.add(s)
    rebuild = getattr(matcher, "rebuild", None)
    if callable(rebuild):
        rebuild()
    return matcher


@pytest.fixture(params=TWO_PHASE)
def engine(request):
    return request.param


@pytest.mark.watchdog(120)
class TestProcessMatchesThreadAndOracle:
    def test_mixed_type_workload_differential(self, engine):
        subs, events = _random_workload(seed=3)
        oracle = populated(build("oracle"), subs)
        expected = [norm(oracle.match(e)) for e in events]
        with sharded(engine, "process") as proc, sharded(engine, "thread") as thr:
            populated(proc, subs)
            populated(thr, subs)
            got_proc = [norm(ids) for ids in proc.match_batch(events)]
            got_thr = [norm(ids) for ids in thr.match_batch(events)]
        assert got_thr == expected
        assert got_proc == expected

    def test_pickle_codec_differential(self, engine):
        """Forcing the object-transport fallback changes nothing."""
        subs, events = _random_workload(seed=11, n_subs=60, n_events=60)
        oracle = populated(build("oracle"), subs)
        expected = [norm(oracle.match(e)) for e in events]
        with sharded(engine, "process", codec="pickle") as proc:
            populated(proc, subs)
            got = [norm(ids) for ids in proc.match_batch(events)]
        assert got == expected

    def test_shm_codec_differential(self, engine):
        """The zero-copy shared-memory transport changes nothing — the
        mixed-type workload forces both the arena path (numeric batches)
        and the pickle odd-path fallback (strings/NaN) through it."""
        subs, events = _random_workload(seed=11, n_subs=60, n_events=60)
        oracle = populated(build("oracle"), subs)
        expected = [norm(oracle.match(e)) for e in events]
        with sharded(engine, "process", codec="shm") as proc:
            populated(proc, subs)
            got = [norm(ids) for ids in proc.match_batch(events)]
            health = proc.executor_health()
            assert health["codec"] == "shm"
            assert health["shm"]["slots_in_flight"] == 0  # every slot acked
        assert got == expected

    def test_shm_numeric_batch_rides_the_arena(self, engine):
        """An all-numeric batch must actually transit shared memory:
        bytes flow in both arena directions and no fallback fires."""
        subs = [
            Subscription(f"n{i}", [ge("a", i % 7), le("b", 3.5 + i % 5)])
            for i in range(45)
        ]
        events = [Event({"a": i % 9, "b": i * 0.5, "c": -i}) for i in range(40)]
        oracle = populated(build("oracle"), subs)
        expected = [norm(oracle.match(e)) for e in events]
        with sharded(engine, "process", codec="shm") as proc:
            populated(proc, subs)
            got = [norm(ids) for ids in proc.match_batch(events)]
            shm = proc._procpool.stats()["shm"]
            assert shm["bytes"]["publish"] > 0
            assert shm["bytes"]["result"] > 0
            assert all(n == 0 for n in shm["fallbacks"].values())
        assert got == expected

    def test_numeric_only_workload_takes_columnar_path(self, engine):
        """All-numeric events ride the packed bit-matrix transport."""
        subs = [
            Subscription(f"n{i}", [ge("a", i % 7), le("b", 3.5 + i % 5)])
            for i in range(45)
        ]
        events = [Event({"a": i % 9, "b": i * 0.5, "c": -i}) for i in range(40)]
        oracle = populated(build("oracle"), subs)
        expected = [norm(oracle.match(e)) for e in events]
        with sharded(engine, "process") as proc:
            populated(proc, subs)
            got = [norm(ids) for ids in proc.match_batch(events)]
        assert got == expected

    def test_empty_and_single_event_batches(self, engine):
        with sharded(engine, "process") as proc:
            populated(proc, [Subscription("s", [eq("x", 1), le("y", 5)])])
            assert proc.match_batch([]) == []
            assert [norm(r) for r in proc.match_batch([Event({"x": 1, "y": 3})])] == [
                ["s"]
            ]
            assert proc.match_batch([Event({"x": 1, "y": 9})]) == [[]]

    def test_mid_stream_churn_differential(self, engine):
        """subscribe/unsubscribe between batches reaches every worker in
        order; the process results track a freshly-built thread twin."""
        subs, events = _random_workload(seed=7, n_subs=80, n_events=40)
        half = len(subs) // 2
        with sharded(engine, "process") as proc, sharded(engine, "thread") as thr:
            populated(proc, subs[:half])
            populated(thr, subs[:half])
            assert [norm(r) for r in proc.match_batch(events)] == [
                norm(r) for r in thr.match_batch(events)
            ]
            # churn: add the second half, drop a third of the first.
            for s in subs[half:]:
                proc.add(s)
                thr.add(s)
            for s in subs[: half // 3]:
                proc.remove(s.id)
                thr.remove(s.id)
            rebuild = getattr(proc, "rebuild", None)
            if callable(rebuild):
                proc.rebuild()
                thr.rebuild()
            assert [norm(r) for r in proc.match_batch(events)] == [
                norm(r) for r in thr.match_batch(events)
            ]

    def test_match_serial_differential(self, engine):
        """The pipelined scalar lane answers exactly like the scalar
        loop — on both executors, against the oracle."""
        subs, events = _random_workload(seed=13, n_subs=70, n_events=50)
        oracle = populated(build("oracle"), subs)
        expected = [norm(oracle.match(e)) for e in events]
        with sharded(engine, "process") as proc, sharded(engine, "thread") as thr:
            populated(proc, subs)
            populated(thr, subs)
            assert [norm(r) for r in proc.match_serial(events)] == expected
            assert [norm(r) for r in thr.match_serial(events)] == expected
            assert proc.match_serial([]) == []

    def test_match_all_routes_through_process_batches(self, engine):
        with sharded(engine, "process") as proc:
            populated(proc, [Subscription("s", [eq("x", 1)])])
            events = [Event({"x": 1}), Event({"x": 2}), Event({"x": 1})]
            assert proc.match_all(events) == proc.match_batch(events)
            assert [norm(r) for r in proc.match_all(events)] == [["s"], [], ["s"]]


@pytest.mark.watchdog(120)
class TestProcessExecutorSurface:
    def test_scalar_match_differential(self):
        subs, events = _random_workload(seed=5, n_subs=60, n_events=30)
        oracle = populated(build("oracle"), subs)
        with sharded("counting", "process") as proc:
            populated(proc, subs)
            for e in events:
                assert norm(proc.match(e)) == norm(oracle.match(e))

    def test_remove_returns_subscription_and_len_tracks(self):
        sub = Subscription("s", [eq("x", 1)])
        with sharded("counting", "process") as proc:
            proc.add(sub)
            assert len(proc) == 1
            assert proc.get("s") == sub
            removed = proc.remove("s")
            assert removed == sub
            assert len(proc) == 0

    def test_iter_subscriptions_answers_from_parent_mirror(self):
        subs, _ = _random_workload(seed=2, n_subs=30, n_events=1)
        with sharded("counting", "process") as proc:
            populated(proc, subs)
            assert sorted(s.id for s in proc.iter_subscriptions()) == sorted(
                s.id for s in subs
            )

    def test_stats_and_health_report_process_executor(self):
        with sharded("counting", "process") as proc:
            proc.add(Subscription("s", [eq("x", 1)]))
            st = proc.stats()
            assert st["executor"] == "process"
            assert st["procpool"]["workers"] == SHARDS
            assert st["procpool"]["alive"] == SHARDS
            health = proc.executor_health()
            assert health["executor"] == "process"
            assert health["alive"] == health["workers"] == SHARDS

    def test_close_is_idempotent_and_stops_workers(self):
        proc = sharded("counting", "process")
        pool = proc._procpool
        assert pool.alive_count() == SHARDS
        proc.close()
        assert pool.alive_count() == 0
        proc.close()  # idempotent

    def test_unknown_executor_rejected(self):
        with pytest.raises(ValueError):
            ShardedMatcher(shards=2, executor="fiber")
