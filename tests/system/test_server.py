"""The loopback batch server."""

import threading

import pytest

from repro.core import (
    DuplicateSubscriptionError,
    Event,
    Subscription,
    eq,
    le,
)
from repro.core.threadsafe import ThreadSafeMatcher
from repro.matchers import DynamicMatcher
from repro.system.server import BatchReply, BatchServer, ServerClosedError
from repro.system.sharding import ShardedMatcher


@pytest.fixture
def server():
    srv = BatchServer()
    yield srv
    srv.close()


class TestBatches:
    def test_subscribe_then_publish(self, server):
        reply = server.submit_subscriptions(
            [
                Subscription("a", [eq("x", 1)]),
                Subscription("b", [eq("x", 1), le("y", 5)]),
            ]
        )
        assert reply.results == 2
        out = server.submit_events([Event({"x": 1, "y": 3}), Event({"x": 2})])
        assert [sorted(r) for r in out.results] == [["a", "b"], []]

    def test_timings_populated(self, server):
        server.submit_subscriptions([Subscription("a", [eq("x", 1)])])
        reply = server.submit_events([Event({"x": 1})] * 50)
        assert isinstance(reply, BatchReply)
        assert reply.processing_seconds > 0
        assert reply.round_trip_seconds >= reply.processing_seconds

    def test_unsubscribe_batch(self, server):
        server.submit_subscriptions(
            [Subscription(f"s{i}", [eq("x", i)]) for i in range(5)]
        )
        reply = server.submit_unsubscriptions(["s0", "s3"])
        assert reply.results == ["s0", "s3"]
        out = server.submit_events([Event({"x": 0}), Event({"x": 1})])
        assert out.results == [[], ["s1"]]

    def test_errors_propagate_to_client(self, server):
        server.submit_subscriptions([Subscription("a", [eq("x", 1)])])
        with pytest.raises(DuplicateSubscriptionError):
            server.submit_subscriptions([Subscription("a", [eq("x", 2)])])
        # server keeps serving afterwards
        out = server.submit_events([Event({"x": 1})])
        assert out.results == [["a"]]

    def test_custom_matcher(self):
        from repro.core import OracleMatcher

        with BatchServer(matcher=OracleMatcher()) as srv:
            srv.submit_subscriptions([Subscription("a", [eq("x", 1)])])
            assert srv.submit_events([Event({"x": 1})]).results == [["a"]]


class TestLifecycle:
    def test_close_idempotent(self):
        srv = BatchServer()
        srv.close()
        srv.close()

    def test_submit_after_close_rejected(self):
        srv = BatchServer()
        srv.close()
        with pytest.raises(ServerClosedError):
            srv.submit_events([Event({"x": 1})])

    def test_context_manager(self):
        with BatchServer() as srv:
            srv.submit_subscriptions([Subscription("a", [eq("x", 1)])])
        with pytest.raises(ServerClosedError):
            srv.submit_events([Event({"x": 1})])

    def test_concurrent_clients_serialized_safely(self, server):
        server.submit_subscriptions(
            [Subscription(f"s{i}", [eq("x", i % 4)]) for i in range(40)]
        )
        errors = []

        def client(k):
            try:
                for i in range(30):
                    reply = server.submit_events([Event({"x": (k + i) % 4})])
                    (matched,) = reply.results
                    assert all(m.startswith("s") for m in matched)
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        threads = [threading.Thread(target=client, args=(k,)) for k in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors


class TestMultiWorker:
    def test_single_worker_is_default(self):
        with BatchServer() as srv:
            assert srv.workers == 1

    def test_plain_matcher_gets_wrapped(self):
        from repro.core import OracleMatcher

        with BatchServer(OracleMatcher(), workers=3) as srv:
            assert isinstance(srv.matcher, ThreadSafeMatcher)

    def test_thread_safe_matcher_not_wrapped(self):
        matcher = ShardedMatcher(shards=2, parallel=False)
        with BatchServer(matcher, workers=3) as srv:
            assert srv.matcher is matcher
        matcher.close()

    def test_bad_worker_count_rejected(self):
        with pytest.raises(ValueError):
            BatchServer(workers=0)

    @pytest.mark.parametrize("workers", [1, 4])
    def test_no_lost_or_duplicate_replies_under_churn(self, workers):
        """Concurrent publishers + subscription churn: every submitted
        batch gets exactly one complete reply, and matches only ever
        name subscriptions that existed at some point."""
        matcher = ShardedMatcher(shards=4, router="affinity", parallel=False)
        ever_added = {f"base{i}" for i in range(20)}
        with BatchServer(matcher, workers=workers) as srv:
            srv.submit_subscriptions(
                [Subscription(f"base{i}", [eq("x", i % 5)]) for i in range(20)]
            )
            errors = []
            reply_counts = [0] * 4
            n_batches, batch_size = 25, 8

            def publisher(k):
                try:
                    for i in range(n_batches):
                        batch = [Event({"x": (k + i) % 5, "y": i})] * batch_size
                        reply = srv.submit_events(batch)
                        assert len(reply.results) == batch_size
                        for matched in reply.results:
                            assert len(matched) == len(set(matched))
                            assert set(matched) <= ever_added
                        reply_counts[k] += 1
                except Exception as exc:
                    errors.append(exc)

            def churner():
                try:
                    for i in range(60):
                        sid = f"churn{i}"
                        ever_added.add(sid)
                        srv.submit_subscriptions(
                            [Subscription(sid, [eq("x", i % 5)])]
                        )
                        if i % 2:
                            srv.submit_unsubscriptions([sid])
                except Exception as exc:
                    errors.append(exc)

            threads = [
                threading.Thread(target=publisher, args=(k,)) for k in range(4)
            ]
            threads.append(threading.Thread(target=churner))
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            assert not errors
            assert reply_counts == [n_batches] * 4
        # Shutdown is clean and terminal for every caller.
        with pytest.raises(ServerClosedError):
            srv.submit_events([Event({"x": 1})])
        with pytest.raises(ServerClosedError):
            srv.submit_subscriptions([Subscription("late", [eq("x", 1)])])
        matcher.close()


class _KernelSpy(ThreadSafeMatcher):
    """Counts batch-kernel invocations vs scalar match calls."""

    def __init__(self, inner):
        super().__init__(inner)
        self.batch_calls = 0
        self.scalar_calls = 0

    def match(self, event):
        self.scalar_calls += 1
        return super().match(event)

    def match_batch(self, events):
        self.batch_calls += 1
        return super().match_batch(events)


class TestBatchKernelRouting:
    def test_publish_is_one_kernel_invocation_per_batch(self):
        """Regression: the publish path must not fall back to a scalar
        per-event loop — one submit_events call is one match_batch call."""
        spy = _KernelSpy(DynamicMatcher())
        with BatchServer(matcher=spy) as srv:
            srv.submit_subscriptions([Subscription("a", [eq("x", 1)])])
            srv.submit_events([Event({"x": 1})] * 17)
            srv.submit_events([Event({"x": 2})] * 5)
        assert spy.batch_calls == 2
        assert spy.scalar_calls == 0
