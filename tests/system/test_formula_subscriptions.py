"""Formula (DNF) subscriptions at the broker level."""

import pytest

from repro.core import Event, UnknownSubscriptionError
from repro.system import PubSubBroker, QueueNotifier, VirtualClock


@pytest.fixture
def broker():
    return PubSubBroker(
        clock=VirtualClock(), notifier=QueueNotifier(), event_retention_ttl=100.0
    )


class TestFormulaMatching:
    def test_or_matches_either_branch(self, broker):
        broker.subscribe_formula("genre = comedy or genre = drama", "fan")
        assert broker.publish(Event({"genre": "comedy"})) == ["fan"]
        assert broker.publish(Event({"genre": "drama"})) == ["fan"]
        assert broker.publish(Event({"genre": "horror"})) == []

    def test_one_notification_when_both_branches_match(self, broker):
        broker.subscribe_formula("price <= 10 or price <= 20", "dedup")
        matched = broker.publish(Event({"price": 5}))  # both disjuncts fire
        assert matched == ["dedup"]
        assert len(broker.notifier.drain()) == 1

    def test_logical_id_returned_not_disjunct_ids(self, broker):
        sid = broker.subscribe_formula("a = 1 or b = 2", "logical")
        assert sid == "logical"
        assert broker.publish(Event({"a": 1, "b": 2})) == ["logical"]

    def test_auto_id(self, broker):
        sid = broker.subscribe_formula("a = 1 or b = 2")
        assert sid.startswith("sub-")

    def test_mixed_with_plain_subscriptions(self, broker):
        from repro.core import Subscription, eq

        broker.subscribe(Subscription("plain", [eq("a", 1)]))
        broker.subscribe_formula("a = 1 or b = 2", "formula")
        assert sorted(broker.publish(Event({"a": 1}))) == ["formula", "plain"]


class TestFormulaLifecycle:
    def test_unsubscribe_removes_all_disjuncts(self, broker):
        broker.subscribe_formula("a = 1 or b = 2", "f")
        broker.unsubscribe("f")
        assert broker.publish(Event({"a": 1})) == []
        assert broker.publish(Event({"b": 2})) == []

    def test_unsubscribe_unknown_formula(self, broker):
        with pytest.raises(UnknownSubscriptionError):
            broker.unsubscribe("ghost")

    def test_formula_ttl(self, broker):
        broker.subscribe_formula("a = 1 or b = 2", "f", ttl=10.0)
        assert broker.publish(Event({"a": 1})) == ["f"]
        broker.clock.advance(11)
        assert broker.publish(Event({"a": 1})) == []

    def test_retro_match_deduplicated(self, broker):
        broker.publish(Event({"a": 1, "b": 2}))  # satisfies both branches
        broker.notifier.drain()
        broker.subscribe_formula("a = 1 or b = 2", "late")
        notes = broker.notifier.drain()
        assert [n.sub_id for n in notes] == ["late"]

    def test_not_formula(self, broker):
        broker.subscribe_formula("not (price <= 10)", "expensive")
        assert broker.publish(Event({"price": 50})) == ["expensive"]
        assert broker.publish(Event({"price": 5})) == []
