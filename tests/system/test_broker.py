"""The publish/subscribe broker: validity intervals, notifications."""

import pytest

from repro.core import (
    Event,
    OracleMatcher,
    Subscription,
    UnknownSubscriptionError,
    eq,
    le,
)
from repro.core.errors import ExpiredError, InvalidSubscriptionError
from repro.system import PubSubBroker, QueueNotifier, VirtualClock


@pytest.fixture
def clock():
    return VirtualClock()


@pytest.fixture
def inbox():
    return QueueNotifier()


@pytest.fixture
def broker(clock, inbox):
    return PubSubBroker(clock=clock, notifier=inbox, event_retention_ttl=100.0)


class TestSubscribe:
    def test_subscription_object(self, broker):
        sid = broker.subscribe(Subscription("alice", [eq("x", 1)]))
        assert sid == "alice" and broker.subscription_count == 1

    def test_bare_predicates_get_auto_id(self, broker):
        sid = broker.subscribe([eq("x", 1), le("y", 5)])
        assert sid.startswith("sub-")

    def test_empty_predicates_rejected(self, broker):
        with pytest.raises(InvalidSubscriptionError):
            broker.subscribe([])

    def test_bad_ttl_rejected(self, broker):
        with pytest.raises(ExpiredError):
            broker.subscribe([eq("x", 1)], ttl=0)

    def test_unsubscribe(self, broker):
        broker.subscribe(Subscription("a", [eq("x", 1)]))
        sub = broker.unsubscribe("a")
        assert sub.id == "a" and broker.subscription_count == 0

    def test_unsubscribe_unknown(self, broker):
        with pytest.raises(UnknownSubscriptionError):
            broker.unsubscribe("nope")

    def test_subscribe_batch(self, broker):
        ids = broker.subscribe_batch(
            [Subscription(f"s{i}", [eq("x", i)]) for i in range(5)]
        )
        assert len(ids) == 5 and broker.subscription_count == 5


class TestPublish:
    def test_publish_matches_and_notifies(self, broker, inbox):
        broker.subscribe(Subscription("a", [eq("x", 1)]))
        matched = broker.publish(Event({"x": 1}))
        assert matched == ["a"]
        notes = inbox.drain()
        assert len(notes) == 1 and notes[0].sub_id == "a"

    def test_publish_batch(self, broker):
        broker.subscribe(Subscription("a", [eq("x", 1)]))
        results = broker.publish_batch([Event({"x": 1}), Event({"x": 2})])
        assert results == [["a"], []]

    def test_counters(self, broker):
        broker.subscribe(Subscription("a", [eq("x", 1)]))
        broker.publish(Event({"x": 1}))
        c = broker.stats()["counters"]
        assert c["published"] == 1 and c["subscribed"] == 1 and c["notifications"] == 1


class TestValidityIntervals:
    def test_subscription_expires(self, broker, clock):
        broker.subscribe(Subscription("a", [eq("x", 1)]), ttl=10.0)
        assert broker.publish(Event({"x": 1})) == ["a"]
        clock.advance(11)
        assert broker.publish(Event({"x": 1})) == []
        assert broker.counters["expired_subscriptions"] == 1

    def test_default_subscription_ttl(self, clock):
        broker = PubSubBroker(clock=clock, default_subscription_ttl=5.0)
        broker.subscribe(Subscription("a", [eq("x", 1)]))
        clock.advance(6)
        assert broker.publish(Event({"x": 1})) == []

    def test_explicit_unsubscribe_before_expiry_is_safe(self, broker, clock):
        broker.subscribe(Subscription("a", [eq("x", 1)]), ttl=10.0)
        broker.unsubscribe("a")
        clock.advance(11)
        broker.purge_expired()  # stale heap entry must not blow up
        assert broker.subscription_count == 0

    def test_event_retention_and_expiry(self, broker, clock):
        broker.publish(Event({"x": 1}))
        assert broker.retained_event_count == 1
        clock.advance(101)
        broker.purge_expired()
        assert broker.retained_event_count == 0

    def test_no_retention_by_default(self, clock):
        broker = PubSubBroker(clock=clock)
        broker.publish(Event({"x": 1}))
        assert broker.retained_event_count == 0


class TestRetroMatching:
    def test_new_subscription_sees_valid_events(self, broker, inbox, clock):
        broker.publish(Event({"x": 1}))
        clock.advance(50)
        broker.subscribe(Subscription("late", [eq("x", 1)]))
        notes = inbox.drain()
        assert [n.sub_id for n in notes] == ["late"]

    def test_expired_events_not_retro_matched(self, broker, inbox, clock):
        broker.publish(Event({"x": 1}))
        clock.advance(200)
        broker.subscribe(Subscription("late", [eq("x", 1)]))
        assert inbox.drain() == []

    def test_retro_matching_can_be_disabled(self, broker, inbox):
        broker.publish(Event({"x": 1}))
        broker.subscribe(Subscription("late", [eq("x", 1)]), notify_retained=False)
        assert inbox.drain() == []

    def test_per_publish_ttl_override(self, clock, inbox):
        broker = PubSubBroker(clock=clock, notifier=inbox)
        broker.publish(Event({"x": 1}), ttl=30.0)
        broker.subscribe(Subscription("late", [eq("x", 1)]))
        assert [n.sub_id for n in inbox.drain()] == ["late"]


class TestPluggableMatcher:
    def test_custom_matcher(self, clock):
        broker = PubSubBroker(matcher=OracleMatcher(), clock=clock)
        broker.subscribe(Subscription("a", [eq("x", 1)]))
        assert broker.publish(Event({"x": 1})) == ["a"]
        assert broker.stats()["matcher"]["name"] == "oracle"
