"""Crash recovery: merging a snapshot with the WAL tail."""

import io
import json

import pytest

from repro.core import Event, Subscription, eq
from repro.obs import MetricsRegistry
from repro.system import (
    PubSubBroker,
    QueueNotifier,
    RecoveryError,
    VirtualClock,
    WriteAheadLog,
    recover,
    recover_files,
    save_snapshot,
)


def fresh(clock=None, wal=None):
    return PubSubBroker(
        clock=clock or VirtualClock(), notifier=QueueNotifier(), wal=wal
    )


def wal_text(*records, clock=0.0):
    """Hand-rolled WAL stream: header plus the given record dicts."""
    header = {"type": "repro-broker-wal", "version": 1, "clock": clock}
    return "".join(json.dumps(r, sort_keys=True) + "\n" for r in [header, *records])


def subscribe_record(sub_id, at, ttl=None, **extra):
    sub = {"id": sub_id, "predicates": [["x", "=", at]]}
    return {"type": "subscribe", "at": at, "subscription": sub, "ttl": ttl, **extra}


class TestSources:
    def test_snapshot_only(self):
        src = fresh()
        src.subscribe(Subscription("a", [eq("x", 1)]), ttl=30.0)
        buf = io.StringIO()
        save_snapshot(src, buf)
        buf.seek(0)
        dst = fresh()
        report = recover(dst, snapshot_fp=buf)
        assert (report.restored, report.snapshot_records, report.wal_records) == (1, 1, 0)
        assert dst.publish(Event({"x": 1})) == ["a"]

    def test_wal_only(self):
        stream = io.StringIO(
            wal_text(
                subscribe_record("a", at=1.0),
                subscribe_record("b", at=2.0),
                {"type": "unsubscribe", "at": 3.0, "id": "a"},
            )
        )
        dst = fresh()
        report = recover(dst, wal_fp=stream)
        assert report.restored == 1
        assert report.replayed_subscribes == 2
        assert report.replayed_unsubscribes == 1
        assert report.source_clock == 3.0
        assert dst.publish(Event({"x": 2.0})) == ["b"]

    def test_neither_source_is_a_noop(self):
        dst = fresh()
        report = recover(dst)
        assert report.restored == 0 and report.source_clock is None

    def test_wal_unsubscribe_removes_snapshot_resident_sub(self):
        src = fresh()
        src.subscribe(Subscription("a", [eq("x", 1)]))
        src.subscribe(Subscription("b", [eq("x", 2)]))
        snap = io.StringIO()
        save_snapshot(src, snap)
        snap.seek(0)
        wal = io.StringIO(wal_text({"type": "unsubscribe", "at": 1.0, "id": "a"}))
        dst = fresh()
        report = recover(dst, snapshot_fp=snap, wal_fp=wal)
        assert report.restored == 1
        assert dst.publish(Event({"x": 1})) == []
        assert dst.publish(Event({"x": 2})) == ["b"]

    def test_wal_subscribe_overwrites_snapshot_entry(self):
        # Re-subscribing an id after the snapshot wins over the old copy.
        src = fresh()
        src.subscribe(Subscription("a", [eq("x", 1)]))
        snap = io.StringIO()
        save_snapshot(src, snap)
        snap.seek(0)
        replacement = {"id": "a", "predicates": [["x", "=", 99]]}
        wal = io.StringIO(
            wal_text(
                {"type": "subscribe", "at": 1.0, "subscription": replacement, "ttl": None}
            )
        )
        dst = fresh()
        recover(dst, snapshot_fp=snap, wal_fp=wal)
        assert dst.publish(Event({"x": 99})) == ["a"]
        assert dst.publish(Event({"x": 1})) == []

    def test_replay_is_idempotent_over_the_snapshot(self):
        # A crash between compaction's snapshot rename and its log
        # restart leaves pre-snapshot records in the WAL; replaying them
        # over the snapshot must not change the result.
        clock = VirtualClock()
        wal = WriteAheadLog("/dev/null", clock=clock, opener=lambda p, m: io.StringIO())
        src = fresh(clock, wal=wal)
        src.subscribe(Subscription("a", [eq("x", 1)]), ttl=50.0)
        src.subscribe(Subscription("b", [eq("x", 2)]))
        src.unsubscribe("b")
        snap = io.StringIO()
        save_snapshot(src, snap)
        log_text = wal._fp.getvalue()  # full pre-snapshot history
        snap.seek(0)
        dst = fresh()
        report = recover(dst, snapshot_fp=snap, wal_fp=io.StringIO(log_text))
        assert report.restored == 1
        assert dst.publish(Event({"x": 1})) == ["a"]
        assert dst.publish(Event({"x": 2})) == []


class TestTtlAging:
    def snapshot_with(self, ttl, clock_at=0.0):
        src = fresh(VirtualClock(clock_at))
        src.subscribe(Subscription("a", [eq("x", 1)]), ttl=ttl)
        buf = io.StringIO()
        save_snapshot(src, buf)
        buf.seek(0)
        return buf

    def test_anchor_ages_snapshot_ttls(self):
        snap = self.snapshot_with(ttl=30.0)
        wal = io.StringIO(wal_text({"type": "anchor", "at": 20.0}))
        dst_clock = VirtualClock()
        dst = fresh(dst_clock)
        recover(dst, snapshot_fp=snap, wal_fp=wal)
        dst_clock.advance(9.0)  # 10 s were left at the crash
        assert dst.publish(Event({"x": 1})) == ["a"]
        dst_clock.advance(2.0)
        assert dst.publish(Event({"x": 1})) == []

    def test_anchor_past_expiry_skips_entry(self):
        snap = self.snapshot_with(ttl=30.0)
        wal = io.StringIO(wal_text({"type": "anchor", "at": 40.0}))
        dst = fresh()
        report = recover(dst, snapshot_fp=snap, wal_fp=wal)
        assert report.restored == 0 and report.skipped_expired == 1

    def test_negative_skew_cannot_rewind_the_clock(self):
        # A WAL record stamped *before* the snapshot clock (skew between
        # two monotonic readings) must not extend anyone's validity.
        snap = self.snapshot_with(ttl=30.0, clock_at=100.0)
        wal = io.StringIO(wal_text({"type": "anchor", "at": 50.0}))
        dst_clock = VirtualClock()
        dst = fresh(dst_clock)
        report = recover(dst, snapshot_fp=snap, wal_fp=wal)
        assert report.source_clock == 100.0  # max() held the line
        dst_clock.advance(31.0)
        assert dst.publish(Event({"x": 1})) == []

    def test_immortal_subscriptions_ignore_aging(self):
        snap = self.snapshot_with(ttl=None)
        wal = io.StringIO(wal_text({"type": "anchor", "at": 1e6}))
        dst = fresh()
        assert recover(dst, snapshot_fp=snap, wal_fp=wal).restored == 1

    def test_wal_subscribe_ttl_ages_from_its_own_timestamp(self):
        wal = io.StringIO(
            wal_text(
                subscribe_record("a", at=10.0, ttl=30.0),  # expires at 40
                subscribe_record("b", at=36.0, ttl=2.0),  # expires at 38
                {"type": "anchor", "at": 39.0},  # the crash-time estimate
            )
        )
        dst_clock = VirtualClock()
        dst = fresh(dst_clock)
        report = recover(dst, wal_fp=wal)
        # "b" expired before the crash; "a" has one second left.
        assert report.restored == 1 and report.skipped_expired == 1
        dst_clock.advance(0.5)
        assert dst.publish(Event({"x": 10.0})) == ["a"]
        dst_clock.advance(1.0)
        assert dst.publish(Event({"x": 10.0})) == []

    def test_legacy_snapshot_without_clock_anchors_at_first_wal_time(self):
        legacy = io.StringIO(
            '{"type": "repro-broker-snapshot", "version": 1}\n'
            '{"type": "subscription", "subscription": '
            '{"id": "a", "predicates": [["x", "=", 1]]}, "ttl_remaining": 30.0}\n'
        )
        wal = io.StringIO(
            wal_text({"type": "anchor", "at": 500.0}, {"type": "anchor", "at": 520.0})
        )
        dst = fresh()
        report = recover(dst, snapshot_fp=legacy, wal_fp=wal)
        # Anchored at 500 (the earliest WAL time), aged 20 s by the
        # crash-time estimate of 520 → 10 s remain, not expired.
        assert report.restored == 1 and report.source_clock == 520.0


class TestDamageTolerance:
    def test_torn_tail_counted_and_prefix_restored(self):
        text = wal_text(
            subscribe_record("a", at=1.0), subscribe_record("b", at=2.0)
        ) + '{"type": "subscribe", "at": 3.0, "subscr'
        dst = fresh()
        report = recover(dst, wal_fp=io.StringIO(text))
        assert report.restored == 2 and report.torn_tail_discarded == 1

    def test_undecodable_subscription_distrusts_the_rest(self):
        wal = io.StringIO(
            wal_text(
                subscribe_record("a", at=1.0),
                {"type": "subscribe", "at": 2.0, "subscription": {"bogus": True}},
                subscribe_record("c", at=3.0),  # beyond the damage: dropped
            )
        )
        dst = fresh()
        report = recover(dst, wal_fp=wal)
        assert report.restored == 1
        assert report.torn_tail_discarded == 2

    def test_unknown_unsubscribe_tolerated(self):
        # The target expired at the source before the crash; recovery
        # must shrug, not fail.
        wal = io.StringIO(wal_text({"type": "unsubscribe", "at": 1.0, "id": "ghost"}))
        dst = fresh()
        report = recover(dst, wal_fp=wal)
        assert report.unknown_unsubscribes == 1 and report.restored == 0


class TestSemantics:
    def test_requires_empty_broker(self):
        dst = fresh()
        dst.subscribe(Subscription("pre", [eq("q", 1)]))
        with pytest.raises(RecoveryError):
            recover(dst, wal_fp=io.StringIO(wal_text()))

    def test_formula_identity_survives_recovery(self):
        clock = VirtualClock()
        wal = WriteAheadLog("/dev/null", clock=clock, opener=lambda p, m: io.StringIO())
        src = fresh(clock, wal=wal)
        src.subscribe_formula("a = 1 or b = 2", "logical")
        dst = fresh()
        recover(dst, wal_fp=io.StringIO(wal._fp.getvalue()))
        assert dst.publish(Event({"a": 1, "b": 2})) == ["logical"]
        dst.unsubscribe("logical")
        assert dst.publish(Event({"a": 1})) == []

    def test_logical_unsubscribe_in_wal_removes_all_disjuncts(self):
        clock = VirtualClock()
        wal = WriteAheadLog("/dev/null", clock=clock, opener=lambda p, m: io.StringIO())
        src = fresh(clock, wal=wal)
        src.subscribe_formula("a = 1 or b = 2", "logical")
        src.unsubscribe("logical")
        dst = fresh()
        report = recover(dst, wal_fp=io.StringIO(wal._fp.getvalue()))
        assert report.restored == 0
        assert dst.publish(Event({"a": 1})) == []

    def test_recovered_state_is_not_relogged(self):
        src = fresh()
        src.subscribe(Subscription("a", [eq("x", 1)]))
        snap = io.StringIO()
        save_snapshot(src, snap)
        snap.seek(0)
        clock = VirtualClock()
        new_wal = WriteAheadLog(
            "/dev/null", clock=clock, opener=lambda p, m: io.StringIO()
        )
        dst = fresh(clock, wal=new_wal)
        recover(dst, snapshot_fp=snap)
        # Only the attach anchor; the restore itself was suppressed.
        assert new_wal.counters["appends"] == 1

    def test_metrics_filled(self):
        registry = MetricsRegistry()
        wal = io.StringIO(
            wal_text(
                subscribe_record("a", at=1.0),
                {"type": "anchor", "at": 2.0},
                {"type": "unsubscribe", "at": 3.0, "id": "ghost"},
            )
        )
        recover(fresh(), wal_fp=wal, metrics=registry)
        replayed = registry.counter(
            "repro_recovery_replayed_total",
            "WAL records replayed during recovery, by kind.",
            ("kind",),
        )
        assert replayed.labels(kind="subscribe").value == 1
        assert replayed.labels(kind="unsubscribe").value == 1
        assert replayed.labels(kind="anchor").value == 1

    def test_report_as_dict_round_trips_json(self):
        dst = fresh()
        report = recover(dst, wal_fp=io.StringIO(wal_text(subscribe_record("a", 1.0))))
        assert json.loads(json.dumps(report.as_dict()))["restored"] == 1


class TestRecoverFiles:
    def test_missing_files_are_an_empty_state(self, tmp_path):
        dst = fresh()
        report = recover_files(
            dst,
            snapshot_path=tmp_path / "never.snap",
            wal_path=tmp_path / "never.wal",
        )
        assert report.restored == 0

    def test_round_trip_via_paths(self, tmp_path):
        clock = VirtualClock()
        wal = WriteAheadLog(tmp_path / "a.wal", clock=clock)
        src = fresh(clock, wal=wal)
        src.subscribe(Subscription("a", [eq("x", 1)]))
        snap = tmp_path / "a.snap"
        wal.compact(src, snap)
        src.subscribe(Subscription("b", [eq("x", 2)]))
        wal.close()
        dst = fresh()
        report = recover_files(dst, snapshot_path=snap, wal_path=wal.path)
        assert report.restored == 2
        assert sorted(dst.publish(Event({"x": 1})) + dst.publish(Event({"x": 2}))) == [
            "a",
            "b",
        ]
