"""The delivery CLI surface: ``repro deliveries`` and ``repro dlq``.

Both commands replay the delivery ledger straight from a WAL file, so
each test journals a small workload first and then inspects it the way
an operator would.
"""

from __future__ import annotations

import io
import json
import random

import pytest

from repro.cli import main
from repro.core.types import Event
from repro.system import DeliveryManager, RetryPolicy, VirtualClock, WriteAheadLog


def _run(argv):
    out = io.StringIO()
    rc = main(argv, out=out)
    return rc, out.getvalue()


@pytest.fixture
def wal_with_deliveries(tmp_path):
    """A WAL holding 3 deliveries for s1 (1 acked, 1 dead, 1 unacked)
    and 1 acked delivery for s2."""
    clock = VirtualClock()
    wal = WriteAheadLog(tmp_path / "wal.jsonl", clock=clock, fsync="never")
    manager = DeliveryManager(
        clock=clock,
        # Far past the pump loop below: the deliberately-unacked lease
        # must stay leased, not burn its own budget via ack timeouts.
        ack_timeout=300.0,
        retry=RetryPolicy(max_attempts=2, base_delay=1.0, rng=random.Random(3)),
        wal=wal,
    )
    manager.register("s1", sink=lambda n: None)
    manager.register("s2", sink=lambda n: None)
    acked = manager.dispatch("s1", Event({"n": 0}))
    doomed = manager.dispatch("s1", Event({"n": 1}))
    manager.dispatch("s1", Event({"n": 2}))  # left unacked, still leased
    other = manager.dispatch("s2", Event({"n": 3}))
    manager.ack("s1", acked)
    manager.ack("s2", other)
    # Burn the 2-attempt budget: nack, let the backoff elapse so the
    # redelivery goes back in flight, nack again → dead-letter.
    manager.nack("s1", doomed)
    for _ in range(10):
        clock.advance(1.0)
        manager.pump()
        if manager.nack("s1", doomed):
            break
    wal.close()
    return str(tmp_path / "wal.jsonl")


class TestDeliveriesCommand:
    def test_summary_shape(self, wal_with_deliveries):
        rc, text = _run(["deliveries", "--wal", wal_with_deliveries])
        assert rc == 0
        summary = json.loads(text)
        totals = summary["totals"]
        # 4 initial sends + 1 redelivery journaled after the first nack
        assert totals["delivers"] >= 4
        assert totals["acked"] == 2
        assert totals["unacked"] == 1
        assert totals["dead_lettered"] == 1
        channels = summary["channels"]
        assert channels["s1"]["unacked"] == 1
        assert channels["s1"]["dead_lettered"] == 1
        assert channels["s1"]["oldest_seq"] is not None
        # Fully-acked subscribers carry no debt: they don't appear.
        assert "s2" not in channels

    def test_empty_wal(self, tmp_path):
        wal = WriteAheadLog(tmp_path / "empty.jsonl", fsync="never")
        wal.close()
        rc, text = _run(["deliveries", "--wal", str(tmp_path / "empty.jsonl")])
        assert rc == 0
        summary = json.loads(text)
        assert summary["totals"]["delivers"] == 0
        assert summary["totals"]["unacked"] == 0
        assert summary["channels"] == {}


class TestDlqCommand:
    def test_lists_dead_letters(self, wal_with_deliveries):
        rc, text = _run(["dlq", "--wal", wal_with_deliveries])
        assert rc == 0
        payload = json.loads(text)
        assert payload["total"] == 1
        (entry,) = payload["dead_letters"]
        assert entry["sub"] == "s1"
        assert entry["reason"] == "budget"
        assert entry["attempts"] == 2
        assert entry["event"] == {"pairs": {"n": 1}}

    def test_sub_filter(self, wal_with_deliveries):
        rc, text = _run(["dlq", "--wal", wal_with_deliveries, "--sub", "s2"])
        assert rc == 0
        payload = json.loads(text)
        assert payload["total"] == 0
        assert payload["dead_letters"] == []

    def test_limit(self, tmp_path):
        clock = VirtualClock()
        wal = WriteAheadLog(tmp_path / "wal.jsonl", clock=clock, fsync="never")
        manager = DeliveryManager(
            clock=clock,
            ack_timeout=2.0,
            retry=RetryPolicy(max_attempts=1, base_delay=1.0, rng=random.Random(3)),
            wal=wal,
        )
        manager.register("s1", sink=lambda n: None)
        for i in range(5):
            seq = manager.dispatch("s1", Event({"n": i}))
            manager.nack("s1", seq)  # 1-attempt budget: instant dead-letter
        wal.close()
        rc, text = _run(["dlq", "--wal", str(tmp_path / "wal.jsonl"), "--limit", "2"])
        assert rc == 0
        payload = json.loads(text)
        assert payload["total"] == 5
        assert len(payload["dead_letters"]) == 2
