"""Chaos suite for the overload-safe serving layer.

Injected shard faults, slow matchers and overload bursts driven through
the public API: bounded queues shed instead of deadlocking, deadlines
expire queued work, the retrying client survives transient overload,
and a quarantined shard degrades results without corrupting them, then
heals through the breaker's half-open probe.
"""

from __future__ import annotations

import random
import threading
import time

import pytest

from repro.core import Event, OracleMatcher, Subscription, eq
from repro.matchers import DynamicMatcher
from repro.system import (
    BREAKER_CLOSED,
    BREAKER_HALF_OPEN,
    BREAKER_OPEN,
    BatchServer,
    CircuitBreaker,
    DeadlineExceededError,
    PartialResults,
    RetryBudgetExceededError,
    RetryPolicy,
    RetryingClient,
    ServerClosedError,
    ServerOverloadedError,
    ShardedMatcher,
    VirtualClock,
)
from repro.testing import FlakyMatcher, InjectedFault, SlowMatcher


class TestCircuitBreaker:
    def test_initially_closed_and_allowing(self):
        b = CircuitBreaker()
        assert b.state == BREAKER_CLOSED
        assert b.allow()

    def test_opens_after_consecutive_failures(self):
        clock = VirtualClock()
        b = CircuitBreaker(failure_threshold=3, reset_timeout=10.0, clock=clock)
        for _ in range(2):
            b.record_failure()
        assert b.state == BREAKER_CLOSED
        b.record_failure()
        assert b.state == BREAKER_OPEN
        assert not b.allow()

    def test_success_resets_consecutive_count(self):
        b = CircuitBreaker(failure_threshold=2)
        b.record_failure()
        b.record_success()
        b.record_failure()
        assert b.state == BREAKER_CLOSED

    def test_half_open_after_cooldown_then_close_on_probe_success(self):
        clock = VirtualClock()
        b = CircuitBreaker(failure_threshold=1, reset_timeout=5.0, clock=clock)
        b.record_failure()
        assert b.state == BREAKER_OPEN
        clock.advance(4.9)
        assert not b.allow()
        clock.advance(0.2)
        assert b.state == BREAKER_HALF_OPEN
        assert b.allow()
        b.record_success()
        assert b.state == BREAKER_CLOSED

    def test_half_open_probe_failure_reopens_and_restarts_cooldown(self):
        clock = VirtualClock()
        b = CircuitBreaker(failure_threshold=1, reset_timeout=5.0, clock=clock)
        b.record_failure()
        clock.advance(5.0)
        assert b.allow()  # the half-open probe
        b.record_failure()
        assert b.state == BREAKER_OPEN
        clock.advance(4.0)
        assert b.state == BREAKER_OPEN  # cool-down restarted at reopen
        clock.advance(1.1)
        assert b.state == BREAKER_HALF_OPEN

    def test_half_open_limits_concurrent_probes(self):
        clock = VirtualClock()
        b = CircuitBreaker(
            failure_threshold=1, reset_timeout=1.0, half_open_probes=2, clock=clock
        )
        b.record_failure()
        clock.advance(1.0)
        assert b.allow()
        assert b.allow()
        assert not b.allow()  # both probe slots in flight
        b.record_success()
        b.record_success()
        assert b.state == BREAKER_CLOSED

    def test_transition_callback_fires_once_per_change(self):
        clock = VirtualClock()
        seen = []
        b = CircuitBreaker(
            failure_threshold=1,
            reset_timeout=1.0,
            clock=clock,
            on_transition=lambda old, new: seen.append((old, new)),
        )
        b.record_failure()
        clock.advance(1.0)
        b.allow()
        b.record_success()
        assert seen == [
            (BREAKER_CLOSED, BREAKER_OPEN),
            (BREAKER_OPEN, BREAKER_HALF_OPEN),
            (BREAKER_HALF_OPEN, BREAKER_CLOSED),
        ]

    def test_force_open_and_reset(self):
        b = CircuitBreaker()
        b.force_open()
        assert not b.allow()
        b.reset()
        assert b.allow()

    def test_stats_shape(self):
        b = CircuitBreaker(failure_threshold=2)
        b.record_failure()
        stats = b.stats()
        assert stats["state"] == BREAKER_CLOSED
        assert stats["consecutive_failures"] == 1
        assert stats["counters"]["failures"] == 1

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            CircuitBreaker(failure_threshold=0)
        with pytest.raises(ValueError):
            CircuitBreaker(reset_timeout=-1)
        with pytest.raises(ValueError):
            CircuitBreaker(half_open_probes=0)


class _FlakyServer:
    """Submit surface that fails N times, then succeeds."""

    def __init__(self, failures, exc=ServerOverloadedError):
        self.failures = failures
        self.exc = exc
        self.calls = 0

    def submit_events(self, batch, **kwargs):
        self.calls += 1
        if self.calls <= self.failures:
            raise self.exc("injected overload")
        return ("ok", batch)

    submit_subscriptions = submit_events
    submit_unsubscriptions = submit_events


class TestRetryingClient:
    def test_succeeds_within_budget(self):
        server = _FlakyServer(failures=3)
        sleeps = []
        client = RetryingClient(
            server,
            RetryPolicy(max_attempts=5, base_delay=0.01, rng=random.Random(7)),
            sleep=sleeps.append,
        )
        assert client.submit_events([1, 2])[0] == "ok"
        assert server.calls == 4
        assert len(sleeps) == 3
        assert client.counters == {"attempts": 4, "retries": 3, "exhausted": 0}

    def test_budget_exhaustion_raises_with_cause(self):
        server = _FlakyServer(failures=10)
        client = RetryingClient(
            server,
            RetryPolicy(max_attempts=3, base_delay=0.01, rng=random.Random(7)),
            sleep=lambda _d: None,
        )
        with pytest.raises(RetryBudgetExceededError) as info:
            client.submit_events([1])
        assert isinstance(info.value.__cause__, ServerOverloadedError)
        assert server.calls == 3
        assert client.counters["exhausted"] == 1

    def test_non_retryable_errors_pass_through_immediately(self):
        server = _FlakyServer(failures=10, exc=KeyError)
        client = RetryingClient(server, RetryPolicy(max_attempts=5))
        with pytest.raises(KeyError):
            client.submit_events([1])
        assert server.calls == 1

    def test_backoff_is_capped_and_positive(self):
        policy = RetryPolicy(
            max_attempts=30, base_delay=0.01, max_delay=0.5, rng=random.Random(3)
        )
        delays = list(policy.delays())
        assert len(delays) == 29
        assert all(0.01 <= d <= 0.5 for d in delays)
        assert max(delays) == 0.5  # the cap is reached and respected

    def test_wall_clock_budget(self):
        server = _FlakyServer(failures=100)
        fake_now = [0.0]

        def sleep(d):
            fake_now[0] += d

        client = RetryingClient(
            server,
            RetryPolicy(
                max_attempts=1000,
                base_delay=0.1,
                max_delay=0.1,
                budget_seconds=0.35,
                rng=random.Random(1),
            ),
            sleep=sleep,
            time_source=lambda: fake_now[0],
        )
        with pytest.raises(RetryBudgetExceededError):
            client.submit_events([1])
        assert fake_now[0] <= 0.35

    def test_policy_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(base_delay=-1)
        with pytest.raises(ValueError):
            RetryPolicy(base_delay=0.5, max_delay=0.1)
        with pytest.raises(ValueError):
            RetryPolicy(budget_seconds=-1)


def _gated_server(queue_limit, admission, workers=1):
    """A server whose (single) worker blocks on a gate we control."""
    gate = threading.Event()
    matcher = SlowMatcher(
        DynamicMatcher(),
        delay=1.0,  # any positive value; the sleep is the gate wait
        operations=("match",),
        sleep=lambda _d: gate.wait(timeout=10.0),
    )
    server = BatchServer(
        matcher, workers=workers, queue_limit=queue_limit, admission=admission
    )
    return server, gate


def _wait_for(predicate, timeout=5.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(0.002)
    return False


class TestBackpressure:
    def test_queue_limit_validation(self):
        with pytest.raises(ValueError):
            BatchServer(queue_limit=0)
        with pytest.raises(ValueError):
            BatchServer(admission="drop-everything")

    def test_reject_policy_sheds_when_full(self):
        server, gate = _gated_server(queue_limit=2, admission="reject")
        try:
            server.submit_subscriptions([Subscription("a", [eq("x", 1)])])
            replies = []

            def client():
                replies.append(server.submit_events([Event({"x": 1})]))

            threads = [threading.Thread(target=client)]
            threads[0].start()  # occupies the worker
            assert _wait_for(lambda: server.matcher.delayed >= 1)
            for _ in range(2):  # fill the queue
                t = threading.Thread(target=client)
                t.start()
                threads.append(t)
            assert _wait_for(lambda: server._requests.qsize() >= 2)
            with pytest.raises(ServerOverloadedError):
                server.submit_events([Event({"x": 1})])
            assert server.health()["shed"]["overload"] == 1
            gate.set()
            for t in threads:
                t.join(timeout=5.0)
            assert len(replies) == 3  # queued work was served, not lost
        finally:
            gate.set()
            server.close()

    def test_shed_oldest_policy_evicts_stalest_request(self):
        server, gate = _gated_server(queue_limit=1, admission="shed-oldest")
        try:
            server.submit_subscriptions([Subscription("a", [eq("x", 1)])])
            outcomes = {}

            def client(name):
                try:
                    outcomes[name] = server.submit_events([Event({"x": 1})])
                except Exception as exc:
                    outcomes[name] = exc

            first = threading.Thread(target=client, args=("occupant",))
            first.start()
            assert _wait_for(lambda: server.matcher.delayed >= 1)
            second = threading.Thread(target=client, args=("victim",))
            second.start()
            assert _wait_for(lambda: server._requests.qsize() >= 1)
            third = threading.Thread(target=client, args=("fresh",))
            third.start()
            # The victim is evicted in favour of the fresh request.
            second.join(timeout=5.0)
            assert isinstance(outcomes["victim"], ServerOverloadedError)
            gate.set()
            first.join(timeout=5.0)
            third.join(timeout=5.0)
            assert outcomes["occupant"].results == [["a"]]
            assert outcomes["fresh"].results == [["a"]]
            assert server.health()["shed"]["overload"] == 1
        finally:
            gate.set()
            server.close()

    def test_block_policy_waits_for_space(self):
        server, gate = _gated_server(queue_limit=1, admission="block")
        try:
            server.submit_subscriptions([Subscription("a", [eq("x", 1)])])
            replies = []
            threads = [
                threading.Thread(
                    target=lambda: replies.append(
                        server.submit_events([Event({"x": 1})])
                    ),
                )
                for _ in range(4)
            ]
            for t in threads:
                t.start()
            # Nothing sheds: producers block until space opens up.
            time.sleep(0.05)
            gate.set()
            for t in threads:
                t.join(timeout=5.0)
            assert len(replies) == 4
            assert server.health()["shed"]["overload"] == 0
        finally:
            gate.set()
            server.close()


class TestDeadlines:
    def test_deadline_validation(self):
        with BatchServer() as server:
            with pytest.raises(ValueError):
                server.submit_events([Event({"x": 1})], deadline=0)

    def test_expired_queued_work_is_shed_not_matched(self):
        server, gate = _gated_server(queue_limit=None, admission="block")
        try:
            server.submit_subscriptions([Subscription("a", [eq("x", 1)])])
            outcomes = {}

            def occupant():
                outcomes["occupant"] = server.submit_events([Event({"x": 1})])

            def doomed():
                try:
                    outcomes["doomed"] = server.submit_events(
                        [Event({"x": 1})], deadline=0.02
                    )
                except Exception as exc:
                    outcomes["doomed"] = exc

            t1 = threading.Thread(target=occupant)
            t1.start()
            assert _wait_for(lambda: server.matcher.delayed >= 1)
            t2 = threading.Thread(target=doomed)
            t2.start()
            assert _wait_for(lambda: server._requests.qsize() >= 1)
            time.sleep(0.05)  # let the deadline lapse while queued
            before = server.stats()["counters"]["batches_publish"]
            gate.set()
            t1.join(timeout=5.0)
            t2.join(timeout=5.0)
            assert isinstance(outcomes["doomed"], DeadlineExceededError)
            assert server.health()["shed"]["deadline"] == 1
            # The expired batch was never matched.
            assert server.stats()["counters"]["batches_publish"] == before + 1
        finally:
            gate.set()
            server.close()

    def test_blocked_producer_gives_up_at_deadline(self):
        server, gate = _gated_server(queue_limit=1, admission="block")
        try:
            server.submit_subscriptions([Subscription("a", [eq("x", 1)])])
            done = []
            threads = [
                threading.Thread(
                    target=lambda: done.append(server.submit_events([Event({"x": 1})]))
                )
                for _ in range(2)  # occupy the worker and fill the queue
            ]
            for t in threads:
                t.start()
            assert _wait_for(lambda: server._requests.qsize() >= 1)
            with pytest.raises(DeadlineExceededError):
                server.submit_events([Event({"x": 1})], deadline=0.05)
            assert server.health()["shed"]["deadline"] == 1
            gate.set()
            for t in threads:
                t.join(timeout=5.0)
        finally:
            gate.set()
            server.close()


class _BrokenWorker(BatchServer):
    """A server whose worker loop has a bug (not a per-request failure)."""

    def _handle(self, request):
        raise RuntimeError("worker bug")


class TestLifecycle:
    def test_double_close_is_noop_and_submit_after_close_raises(self):
        server = BatchServer()
        server.close()
        server.close()
        with pytest.raises(ServerClosedError):
            server.submit_events([Event({"x": 1})])
        with pytest.raises(ServerClosedError):
            server.submit_subscriptions([Subscription("a", [eq("x", 1)])])

    def test_close_drains_unserved_requests(self):
        # Kill the workers first so queued requests can never be served,
        # then verify close() answers them instead of leaving callers
        # blocked forever.
        server = BatchServer()
        server._requests.put(None)  # worker exits as if closing
        assert _wait_for(lambda: not server._threads[0].is_alive())
        outcome = {}

        def client():
            try:
                outcome["reply"] = server.submit_events([Event({"x": 1})])
            except Exception as exc:
                outcome["reply"] = exc

        t = threading.Thread(target=client)
        t.start()
        assert _wait_for(lambda: server._requests.qsize() >= 1)
        server.close()
        t.join(timeout=5.0)
        assert isinstance(outcome["reply"], ServerClosedError)
        assert server.health()["shed"]["closed"] == 1

    @pytest.mark.filterwarnings(
        "ignore::pytest.PytestUnhandledThreadExceptionWarning"
    )
    def test_exit_propagates_worker_exceptions(self):
        server = _BrokenWorker()
        outcome = {}

        def client():
            try:
                outcome["reply"] = server.submit_events([Event({"x": 1})])
            except Exception as exc:
                outcome["reply"] = exc

        t = threading.Thread(target=client)
        t.start()
        t.join(timeout=5.0)
        # The caller is not left hanging: the bug is delivered to it.
        assert isinstance(outcome["reply"], RuntimeError)
        with pytest.raises(RuntimeError, match="worker bug"):
            server.__exit__(None, None, None)

    @pytest.mark.filterwarnings(
        "ignore::pytest.PytestUnhandledThreadExceptionWarning"
    )
    def test_exit_does_not_mask_a_propagating_exception(self):
        server = _BrokenWorker()

        def client():
            try:
                server.submit_events([Event({"x": 1})])
            except Exception:
                pass

        t = threading.Thread(target=client)
        t.start()
        t.join(timeout=5.0)
        with pytest.raises(KeyError):  # the caller's error, not the worker's
            with server:
                raise KeyError("caller bug")


def _quarantine_matcher(clock, failures=0, shards=3):
    """ShardedMatcher with a FlakyMatcher inner on shard 0."""
    flaky_holder = []

    def inner():
        engine = DynamicMatcher()
        if not flaky_holder:
            engine = FlakyMatcher(engine, failures=failures)
            flaky_holder.append(engine)
        return engine

    matcher = ShardedMatcher(
        shards=shards,
        router="roundrobin",
        inner=inner,
        parallel=False,
        breaker={"failure_threshold": 2, "reset_timeout": 5.0, "clock": clock},
    )
    return matcher, flaky_holder[0]


class TestShardQuarantine:
    def test_healthy_breaker_mode_is_transparent(self):
        clock = VirtualClock()
        matcher, _flaky = _quarantine_matcher(clock)
        oracle = OracleMatcher()
        for i in range(12):
            sub = Subscription(f"s{i}", [eq("x", i % 3)])
            matcher.add(sub)
            oracle.add(sub)
        for v in range(3):
            got = matcher.match(Event({"x": v}))
            assert isinstance(got, PartialResults)
            assert not got.degraded
            assert sorted(got) == sorted(oracle.match(Event({"x": v})))
        matcher.close()

    def test_faulty_shard_degrades_then_quarantines_then_heals(self):
        clock = VirtualClock()
        matcher, flaky = _quarantine_matcher(clock)
        oracle = OracleMatcher()
        for i in range(12):
            sub = Subscription(f"s{i}", [eq("x", 1)])
            matcher.add(sub)
            oracle.add(sub)
        sick = set(matcher.shard_ids()[0])
        assert sick  # round-robin placed work on the sick shard
        event = Event({"x": 1})
        full = set(oracle.match(event))

        flaky.rearm(2)  # exactly enough to trip the breaker
        r1 = matcher.match(event)
        assert r1.degraded and r1.failed_shards == (0,)
        assert set(r1) == full - sick  # healthy shards stay correct
        r2 = matcher.match(event)
        assert r2.degraded
        assert matcher.breaker_states()[0] == BREAKER_OPEN

        # Quarantined: the sick shard is skipped without being probed.
        before = flaky.injected
        r3 = matcher.match(event)
        assert r3.degraded and set(r3) == full - sick
        assert flaky.injected == before

        # Cool-down elapses; the half-open probe succeeds (budget spent)
        # and the shard returns to full service.
        clock.advance(5.0)
        assert matcher.breaker_states()[0] == BREAKER_HALF_OPEN
        r4 = matcher.match(event)
        assert not r4.degraded
        assert set(r4) == full
        assert matcher.breaker_states()[0] == BREAKER_CLOSED
        matcher.close()

    def test_new_subscriptions_route_away_from_quarantined_shard(self):
        clock = VirtualClock()
        matcher, flaky = _quarantine_matcher(clock)
        for i in range(6):
            matcher.add(Subscription(f"s{i}", [eq("x", 1)]))
        flaky.rearm(2)
        event = Event({"x": 1})
        matcher.match(event)
        matcher.match(event)
        assert matcher.breaker_states()[0] == BREAKER_OPEN

        pop_before = list(matcher.stats()["per_shard_subscriptions"])
        added = [Subscription(f"q{i}", [eq("x", 1)]) for i in range(6)]
        for sub in added:
            matcher.add(sub)
        stats = matcher.stats()
        # Nothing landed on the quarantined shard; overflow bookkeeping
        # keeps every rerouted subscription findable.
        assert stats["per_shard_subscriptions"][0] == pop_before[0]
        assert sum(stats["overflow_per_shard"]) > 0
        got = matcher.match(event)
        assert set(s.id for s in added) <= set(got)
        assert stats["counters"]["rerouted_subscriptions"] > 0

        # Removal unwinds the overflow accounting.
        for sub in added:
            matcher.remove(sub.id)
        assert sum(matcher.stats()["overflow_per_shard"]) == 0
        matcher.close()

    def test_overflow_placement_stays_matchable_under_affinity_routing(self):
        # Affinity pruning must still probe shards holding overflow
        # placements, or rerouted subscriptions would silently unmatch.
        clock = VirtualClock()
        matcher = ShardedMatcher(
            shards=4,
            router="affinity",
            inner="dynamic",
            parallel=False,
            breaker={"failure_threshold": 1, "reset_timeout": 100.0, "clock": clock},
        )
        probe = Event({"k": "hot"})
        pathfinder = Subscription("pathfinder", [eq("k", "hot")])
        home = matcher.router.shard_for(pathfinder)  # records, then remove
        matcher.router.on_remove(pathfinder, home)
        matcher.breaker(home).force_open()
        matcher.add(pathfinder)
        assert matcher._shard_of["pathfinder"] != home
        got = matcher.match(probe)
        assert list(got) == ["pathfinder"]
        assert not got.degraded  # the sick shard holds nothing yet
        matcher.close()

    def test_slow_shard_counts_against_health(self):
        clock = VirtualClock()

        def inner():
            return SlowMatcher(DynamicMatcher(), delay=0.02, operations=("match",))

        matcher = ShardedMatcher(
            shards=2,
            router="roundrobin",
            inner=inner,
            parallel=False,
            breaker={"failure_threshold": 2, "reset_timeout": 60.0, "clock": clock},
            slow_match_seconds=0.001,
        )
        matcher.add(Subscription("a", [eq("x", 1)]))
        matcher.add(Subscription("b", [eq("x", 1)]))
        event = Event({"x": 1})
        r1 = matcher.match(event)
        # Slow answers are still used — correctness over latency...
        assert sorted(r1) == ["a", "b"]
        matcher.match(event)
        # ...but both shards' breakers have now tripped on slowness.
        assert matcher.breaker_states() == {0: BREAKER_OPEN, 1: BREAKER_OPEN}
        r3 = matcher.match(event)
        assert r3.degraded and list(r3) == []
        matcher.close()

    def test_breaker_metrics_exported(self):
        clock = VirtualClock()
        matcher, flaky = _quarantine_matcher(clock)
        registry = matcher.use_metrics()
        for i in range(6):
            matcher.add(Subscription(f"s{i}", [eq("x", 1)]))
        flaky.rearm(2)
        event = Event({"x": 1})
        matcher.match(event)
        matcher.match(event)
        state = registry.family("repro_breaker_state")
        assert state.labels(shard="0").value == 2  # open
        transitions = registry.family("repro_breaker_transitions_total")
        assert transitions.labels(shard="0", state="open").value == 1
        degraded = registry.family("repro_sharded_degraded_total")
        assert degraded.labels().value == 2
        matcher.close()

    def test_without_breakers_exceptions_still_propagate(self):
        matcher = ShardedMatcher(
            shards=2,
            router="roundrobin",
            inner=lambda: FlakyMatcher(DynamicMatcher(), failures=1),
            parallel=False,
        )
        matcher.add(Subscription("a", [eq("x", 1)]))
        with pytest.raises(InjectedFault):
            matcher.match(Event({"x": 1}))
        matcher.close()


class TestBrokerDegradedPublish:
    def test_publish_propagates_degraded_flag(self):
        from repro.system import PubSubBroker

        clock = VirtualClock()
        matcher, flaky = _quarantine_matcher(clock)
        broker = PubSubBroker(matcher=matcher)
        for i in range(6):
            broker.subscribe(Subscription(f"s{i}", [eq("x", 1)]))
        flaky.rearm(1)
        matched = broker.publish(Event({"x": 1}))
        assert getattr(matched, "degraded", False)
        assert matched.failed_shards == (0,)
        assert broker.counters["degraded_publishes"] == 1
        healthy = broker.publish(Event({"x": 1}))
        assert not getattr(healthy, "degraded", False)
        assert broker.counters["degraded_publishes"] == 1
        matcher.close()


class TestHealth:
    def test_health_reports_degraded_breakers_and_wal_lag(self, tmp_path):
        from repro.system import WriteAheadLog

        clock = VirtualClock()
        matcher, flaky = _quarantine_matcher(clock)
        wal = WriteAheadLog(tmp_path / "server.wal", fsync="never")
        server = BatchServer(matcher, wal=wal)
        try:
            server.submit_subscriptions(
                [Subscription(f"s{i}", [eq("x", 1)]) for i in range(6)]
            )
            report = server.health()
            assert report["status"] == "ok"
            assert report["breakers"] == {"0": "closed", "1": "closed", "2": "closed"}
            assert report["wal"]["unsynced_appends"] == 0  # batch-boundary sync
            flaky.rearm(2)
            server.submit_events([Event({"x": 1}), Event({"x": 1})])
            report = server.health()
            assert report["status"] == "degraded"
            assert report["breakers"]["0"] == "open"
        finally:
            server.close()
            matcher.close()
            wal.close()

    def test_health_status_closed(self):
        server = BatchServer()
        server.close()
        assert server.health()["status"] == "closed"


@pytest.mark.slow
class TestOverloadBurstChaos:
    def test_burst_sheds_retrying_clients_recover_and_results_match(self):
        """A 10x overload burst: the bounded queue sheds rather than
        deadlocking, retrying clients succeed within their budgets, and
        after the storm the server still answers correctly."""
        matcher = SlowMatcher(DynamicMatcher(), delay=0.002, operations=("match",))
        oracle = OracleMatcher()
        server = BatchServer(matcher, queue_limit=4, admission="reject")
        try:
            subs = [Subscription(f"s{i}", [eq("x", i % 5)]) for i in range(25)]
            server.submit_subscriptions(subs)
            for sub in subs:
                oracle.add(sub)
            errors = []
            completed = [0] * 8

            def blaster(k):
                client = RetryingClient(
                    server,
                    RetryPolicy(
                        max_attempts=200,
                        base_delay=0.001,
                        max_delay=0.02,
                        rng=random.Random(k),
                    ),
                )
                try:
                    for i in range(5):
                        event = Event({"x": (k + i) % 5})
                        reply = client.submit_events([event])
                        assert sorted(reply.results[0]) == sorted(oracle.match(event))
                        completed[k] += 1
                except Exception as exc:  # pragma: no cover - failure detail
                    errors.append(exc)

            threads = [threading.Thread(target=blaster, args=(k,)) for k in range(8)]
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=60.0)
            assert not errors
            assert completed == [5] * 8
            health = server.health()
            assert health["shed"]["overload"] > 0  # the burst really shed
            assert health["status"] == "ok"
        finally:
            server.close()
