"""Back-compat shim: the fault harness is now ``repro.testing.faults``.

The toolkit was promoted from this private test module to the public
package so chaos tests and users share one harness; existing test
imports keep working through this re-export.
"""

from repro.testing.faults import (  # noqa: F401
    FAULT_MODES,
    FaultyFile,
    FlakyMatcher,
    InjectedFault,
    MATCHER_OPS,
    SimulatedCrash,
    SlowMatcher,
    crash_at,
    faulty_opener,
)
