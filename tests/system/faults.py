"""Fault injection for the durability subsystem.

Two complementary failure models:

* :class:`FaultyFile` — a wrapper file object that silently *drops*,
  *truncates* (partial write) or *garbles* everything written after the
  first N bytes, while reporting success to the writer — the way a
  kernel page cache lies to an application when the machine dies before
  writeback.  Inject it through the :class:`~repro.system.wal.WriteAheadLog`
  ``opener`` parameter.
* :class:`SimulatedCrash` + :func:`crash_at` — a broker ``crash_hook``
  that raises at one named crash point (e.g. ``"subscribe:pre-log"``),
  modeling a process death between applying a mutation and journaling
  it.

Both leave real bytes on disk for recovery to chew on, which is the
point: the property suite asserts that *whatever* the damage, recovery
yields a prefix-consistent subscription set.
"""

from __future__ import annotations

from typing import IO

#: Supported damage models for writes past the byte budget.
FAULT_MODES = ("drop", "truncate", "garble")


class SimulatedCrash(RuntimeError):
    """Raised by an injected crash hook; carries the crash point name."""


def crash_at(point: str):
    """A broker ``crash_hook`` that dies at the named crash point."""

    def hook(reached: str) -> None:
        if reached == point:
            raise SimulatedCrash(point)

    return hook


class FaultyFile:
    """A text-file wrapper whose writes start failing after N bytes.

    Modes (all report full success to the writer):

    * ``drop`` — the write that would cross the budget, and every write
      after it, vanishes entirely (damage lands on a line boundary);
    * ``truncate`` — the crossing write lands partially, then nothing
      (a torn line mid-record);
    * ``garble`` — the crossing write lands with its tail replaced by
      junk bytes, then nothing (a corrupted record, newline included).
    """

    def __init__(self, inner: IO[str], fail_after: int, mode: str = "truncate") -> None:
        if mode not in FAULT_MODES:
            raise ValueError(f"unknown fault mode {mode!r}; known: {FAULT_MODES}")
        if fail_after < 0:
            raise ValueError(f"fail_after must be >= 0, got {fail_after}")
        self.inner = inner
        self.fail_after = fail_after
        self.mode = mode
        self.written = 0
        self.faulted = False

    def write(self, text: str) -> int:
        budget = self.fail_after - self.written
        if not self.faulted and len(text) <= budget:
            self.inner.write(text)
            self.written += len(text)
            return len(text)
        # This write crosses the budget (or we already faulted).
        if not self.faulted:
            self.faulted = True
            head = text[:budget]
            if self.mode == "truncate":
                self.inner.write(head)
            elif self.mode == "garble":
                self.inner.write(head + "#" * (len(text) - budget))
            # drop: nothing of the crossing write lands
            self.written = self.fail_after
        return len(text)  # the lie every buffered write tells

    # -- transparent proxies ------------------------------------------------
    def flush(self) -> None:
        self.inner.flush()

    def fileno(self) -> int:
        return self.inner.fileno()

    def close(self) -> None:
        self.inner.close()

    @property
    def closed(self) -> bool:
        return self.inner.closed

    def __enter__(self) -> "FaultyFile":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def faulty_opener(fail_after: int, mode: str = "truncate"):
    """An ``opener`` for :class:`~repro.system.wal.WriteAheadLog` whose
    files fail after *fail_after* bytes (budget counted per open)."""

    def opener(path: str, file_mode: str) -> FaultyFile:
        return FaultyFile(
            open(path, file_mode, encoding="utf-8"), fail_after, mode=mode
        )

    return opener
