"""Unit suite for the at-least-once delivery layer.

Everything runs under a :class:`VirtualClock` so ack timeouts, backoff
delays and dead-letter deadlines are driven deterministically by
``manager.pump()`` — no sleeps, no threads.
"""

import os
import random

import pytest

from repro.core.types import Event, Subscription, eq
from repro.obs.registry import MetricsRegistry
from repro.system import (
    ChannelOverflowError,
    DeliveryError,
    DeliveryManager,
    PubSubBroker,
    QueueNotifier,
    RetryPolicy,
    UnknownChannelError,
    VirtualClock,
    WriteAheadLog,
    recover_files,
)


def make_manager(clock=None, **kwargs):
    clock = clock if clock is not None else VirtualClock()
    kwargs.setdefault(
        "retry", RetryPolicy(max_attempts=3, base_delay=1.0, rng=random.Random(7))
    )
    kwargs.setdefault("ack_timeout", 5.0)
    return DeliveryManager(clock=clock, **kwargs), clock


def drive(manager, clock, total, step=1.0):
    """Advance virtual time in steps, pumping after each advance."""
    elapsed = 0.0
    while elapsed < total:
        clock.advance(step)
        elapsed += step
        manager.pump()


class TestChannelLifecycle:
    def test_register_dispatch_ack(self):
        manager, _clock = make_manager()
        got = []
        manager.register("s1", sink=got.append)
        seq = manager.dispatch("s1", Event({"a": 1}))
        assert [n.seq for n in got] == [seq]
        assert manager.inflight == 1
        assert manager.ack("s1", seq) is True
        assert manager.inflight == 0
        assert manager.channel("s1").counters["acks"] == 1

    def test_ack_is_idempotent(self):
        manager, _clock = make_manager()
        manager.register("s1", sink=lambda n: None)
        seq = manager.dispatch("s1", Event({"a": 1}))
        assert manager.ack("s1", seq) is True
        assert manager.ack("s1", seq) is False
        assert manager.channel("s1").counters["unknown_acks"] == 1

    def test_unknown_channel_raises(self):
        manager, _clock = make_manager()
        with pytest.raises(UnknownChannelError):
            manager.dispatch("ghost", Event({"a": 1}))
        with pytest.raises(UnknownChannelError):
            manager.ack("ghost", 0)
        with pytest.raises(UnknownChannelError):
            manager.channel("ghost")

    def test_invalid_knobs_rejected(self):
        with pytest.raises(DeliveryError):
            DeliveryManager(overflow="bogus")
        with pytest.raises(DeliveryError):
            DeliveryManager(ack_timeout=0)
        with pytest.raises(DeliveryError):
            DeliveryManager(capacity=0)
        manager, _clock = make_manager()
        with pytest.raises(DeliveryError):
            manager.register("s1", overflow="bogus")

    def test_unregister_dead_letters_outstanding(self):
        manager, _clock = make_manager()
        manager.register("s1", sink=lambda n: None)
        manager.dispatch("s1", Event({"a": 1}))
        assert manager.unregister("s1") == 1
        assert not manager.handles("s1")
        assert [e.reason for e in manager.dead_letters] == ["disconnected"]

    def test_reregister_preserves_sequence_numbering(self):
        manager, _clock = make_manager()
        manager.register("s1", sink=lambda n: None)
        seq = manager.dispatch("s1", Event({"a": 1}))
        manager.ack("s1", seq)
        manager.unregister("s1")
        manager.register("s1", sink=lambda n: None)
        # New deliveries never reuse a sequence number the subscriber
        # may have seen before the reconnect.
        assert manager.dispatch("s1", Event({"a": 2})) > seq

    def test_auto_ack_mode(self):
        manager, _clock = make_manager()
        manager.register("s1", sink=lambda n: None, auto_ack=True)
        manager.dispatch("s1", Event({"a": 1}))
        assert manager.inflight == 0
        assert manager.channel("s1").counters["acks"] == 1


class TestRedelivery:
    def test_ack_timeout_redelivers(self):
        manager, clock = make_manager()
        got = []
        manager.register("s1", sink=got.append)
        manager.dispatch("s1", Event({"a": 1}))
        assert len(got) == 1
        drive(manager, clock, 10.0)
        assert len(got) >= 2  # at least one redelivery happened
        assert all(n.seq == got[0].seq for n in got)
        assert manager.channel("s1").counters["redeliveries"] == len(got) - 1

    def test_sink_error_counts_as_failed_attempt(self):
        manager, clock = make_manager()
        calls = []

        def sink(n):
            calls.append(n)
            raise RuntimeError("subscriber down")

        manager.register("s1", sink=sink)
        manager.dispatch("s1", Event({"a": 1}))
        drive(manager, clock, 60.0)
        # max_attempts=3: the initial send plus two retries, then dead.
        assert len(calls) == 3
        assert [e.reason for e in manager.dead_letters] == ["budget"]
        assert manager.inflight == 0

    def test_budget_exhaustion_dead_letters_exactly_once(self):
        manager, clock = make_manager()
        manager.register("s1", sink=lambda n: None)  # never acked
        manager.dispatch("s1", Event({"a": 1}))
        drive(manager, clock, 120.0)
        assert len(manager.dead_letters) == 1
        entry = manager.dead_letters.entries()[0]
        assert entry.reason == "budget"
        assert entry.attempts == 3

    def test_nack_requests_immediate_retry(self):
        manager, clock = make_manager()
        got = []
        manager.register("s1", sink=got.append)
        seq = manager.dispatch("s1", Event({"a": 1}))
        assert manager.nack("s1", seq) is True
        drive(manager, clock, 5.0)
        assert len(got) >= 2
        assert manager.nack("s1", 999) is False

    def test_acked_delivery_never_redelivered(self):
        manager, clock = make_manager()
        got = []
        manager.register("s1", sink=got.append)
        seq = manager.dispatch("s1", Event({"a": 1}))
        manager.ack("s1", seq)
        drive(manager, clock, 120.0)
        assert len(got) == 1
        assert len(manager.dead_letters) == 0


class TestPullMode:
    def test_poll_leases_and_ack(self):
        manager, _clock = make_manager()
        manager.register("s1")  # no sink: pull mode
        manager.dispatch("s1", Event({"a": 1}))
        manager.dispatch("s1", Event({"a": 2}))
        leased = manager.poll("s1")
        assert [n.seq for n in leased] == [0, 1]
        assert manager.poll("s1") == []  # already leased, not yet due
        for n in leased:
            assert manager.ack("s1", n.seq)
        assert manager.inflight == 0

    def test_unacked_lease_reappears_after_timeout(self):
        manager, clock = make_manager()
        manager.register("s1")
        manager.dispatch("s1", Event({"a": 1}))
        first = manager.poll("s1")
        assert len(first) == 1
        clock.advance(6.0)  # past the ack timeout
        manager.pump()
        # The lease re-enters pending behind its jittered backoff; walk
        # time forward until it becomes pollable again.
        again = []
        for _ in range(20):
            clock.advance(1.0)
            manager.pump()
            again += manager.poll("s1")
            if again:
                break
        assert [n.seq for n in again] == [n.seq for n in first]
        assert manager.channel("s1").counters["redeliveries"] == 1

    def test_poll_respects_limit(self):
        manager, _clock = make_manager()
        manager.register("s1")
        for i in range(5):
            manager.dispatch("s1", Event({"a": i}))
        assert len(manager.poll("s1", limit=2)) == 2
        assert len(manager.poll("s1")) == 3


class TestOverflowPolicies:
    def test_shed_oldest_evicts_and_counts(self):
        manager, _clock = make_manager(capacity=2, overflow="shed-oldest")
        manager.register("s1")
        seqs = [manager.dispatch("s1", Event({"a": i})) for i in range(5)]
        channel = manager.channel("s1")
        assert channel.outstanding == 2
        assert channel.counters["shed"] == 3
        # The survivors are the newest two; shed is NOT dead-lettering.
        assert [n.seq for n in manager.poll("s1")] == seqs[-2:]
        assert len(manager.dead_letters) == 0

    def test_shed_metric(self):
        registry = MetricsRegistry()
        manager, _clock = make_manager(
            capacity=1, overflow="shed-oldest", metrics=registry
        )
        manager.register("s1")
        manager.dispatch("s1", Event({"a": 1}))
        manager.dispatch("s1", Event({"a": 2}))
        assert registry.family("repro_delivery_shed_total").labels().value == 1

    def test_block_times_out_when_no_consumer_progress(self):
        manager, _clock = make_manager(
            capacity=1, overflow="block", block_timeout=0.05
        )
        manager.register("s1")
        manager.dispatch("s1", Event({"a": 1}))
        with pytest.raises(ChannelOverflowError):
            manager.dispatch("s1", Event({"a": 2}))

    def test_disconnect_quarantines_the_subscriber(self):
        manager, _clock = make_manager(capacity=1, overflow="disconnect")
        manager.register("s1", sink=lambda n: None)
        manager.dispatch("s1", Event({"a": 1}))
        with pytest.raises(ChannelOverflowError):
            manager.dispatch("s1", Event({"a": 2}))
        channel = manager.channel("s1")
        assert not channel.connected
        # The overflowing window went to the DLQ...
        assert all(e.reason == "disconnected" for e in manager.dead_letters)
        assert len(manager.dead_letters) == 1
        # ...and further dispatches keep dead-lettering, never blocking.
        manager.dispatch("s1", Event({"a": 3}))
        assert len(manager.dead_letters) == 2
        assert manager.health()["disconnected"] == ["s1"]

    def test_reconnect_and_redrive_after_disconnect(self):
        manager, _clock = make_manager(capacity=1, overflow="disconnect")
        manager.register("s1", sink=lambda n: None)
        manager.dispatch("s1", Event({"a": 1}))
        with pytest.raises(ChannelOverflowError):
            manager.dispatch("s1", Event({"a": 2}))
        got = []
        manager.register("s1", sink=got.append, capacity=10, overflow="block")
        assert manager.channel("s1").connected
        redriven = manager.redrive("s1")
        assert redriven == 1
        assert len(manager.dead_letters) == 0
        assert len(got) == 1


class TestDeadLetterQueue:
    def _dead_lettered_manager(self):
        manager, clock = make_manager()
        sink_calls = []

        def sink(n):
            sink_calls.append(n)
            raise RuntimeError("down")

        manager.register("s1", sink=sink)
        manager.dispatch("s1", Event({"a": 1}))
        drive(manager, clock, 60.0)
        assert len(manager.dead_letters) == 1
        return manager, sink_calls

    def test_entries_are_inspectable(self):
        manager, _calls = self._dead_lettered_manager()
        entry = manager.dead_letters.entries("s1")[0]
        d = entry.as_dict()
        assert d["sub"] == "s1" and d["reason"] == "budget"
        assert d["event"] == {"a": 1}
        stats = manager.dead_letters.stats()
        assert stats["counters"]["reason_budget"] == 1

    def test_redrive_resets_the_attempt_budget(self):
        manager, calls = self._dead_lettered_manager()
        before = len(calls)
        # Heal the subscriber, then redrive: fresh delivery, fresh seq.
        got = []
        manager.register("s1", sink=got.append)
        assert manager.redrive() == 1
        assert len(manager.dead_letters) == 0
        assert len(got) == 1
        assert got[0].seq > calls[before - 1].seq

    def test_redrive_skips_disconnected_subscribers(self):
        manager, _calls = self._dead_lettered_manager()
        manager.disconnect("s1")
        assert manager.redrive() == 0
        # disconnect() itself added nothing (window was empty), so the
        # original dead letter is still there.
        assert len(manager.dead_letters) == 1

    def test_take_with_limit(self):
        manager, _clock = make_manager()
        manager.register("s1", sink=lambda n: None)
        manager.dispatch("s1", Event({"a": 1}))
        manager.dispatch("s1", Event({"a": 2}))
        manager.unregister("s1")  # both dead-lettered as disconnected
        taken = manager.dead_letters.take(limit=1)
        assert len(taken) == 1 and len(manager.dead_letters) == 1


class TestMetricsAndStats:
    def test_delivery_metric_families(self):
        registry = MetricsRegistry()
        manager, clock = make_manager(metrics=registry)
        manager.register("s1", sink=lambda n: None)
        seq = manager.dispatch("s1", Event({"a": 1}))
        manager.ack("s1", seq)
        manager.dispatch("s1", Event({"a": 2}))
        drive(manager, clock, 120.0)
        f = registry.family
        assert f("repro_delivery_acks_total").labels().value == 1
        assert f("repro_delivery_redeliveries_total").labels().value >= 1
        assert (
            f("repro_delivery_dead_lettered_total").labels(reason="budget").value == 1
        )
        assert f("repro_delivery_inflight").labels().value == 0
        assert f("repro_delivery_channels").labels().value == 1

    def test_stats_shape(self):
        manager, _clock = make_manager()
        manager.register("s1", sink=lambda n: None)
        manager.dispatch("s1", Event({"a": 1}))
        stats = manager.stats()
        assert stats["name"] == "delivery"
        assert stats["channels"] == 1
        assert stats["inflight"] == 1
        assert stats["counters"]["dispatched"] == 1
        assert stats["per_channel"]["s1"]["mode"] == "push"
        assert stats["per_channel"]["s1"]["inflight"] == 1

    def test_health_shape(self):
        manager, _clock = make_manager()
        manager.register("s1", sink=lambda n: None)
        health = manager.health()
        assert health == {
            "channels": 1,
            "connected": 1,
            "disconnected": [],
            "inflight": 0,
            "dead_letters": 0,
        }


class TestBrokerIntegration:
    def _broker(self, **kwargs):
        clock = VirtualClock()
        manager = DeliveryManager(
            clock=clock,
            ack_timeout=5.0,
            retry=RetryPolicy(max_attempts=3, base_delay=1.0, rng=random.Random(3)),
        )
        broker = PubSubBroker(
            clock=clock, notifier=QueueNotifier(), delivery=manager, **kwargs
        )
        return broker, manager, clock

    def test_registered_subscriber_routes_through_delivery(self):
        broker, manager, _clock = self._broker()
        broker.subscribe(Subscription("s1", [eq("a", 1)]))
        got = []
        manager.register("s1", sink=got.append)
        broker.publish(Event({"a": 1}))
        assert [n.sub_id for n in got] == ["s1"]
        assert len(broker.notifier) == 0  # not double-delivered

    def test_unregistered_subscriber_keeps_fire_and_forget(self):
        broker, _manager, _clock = self._broker()
        broker.subscribe(Subscription("s1", [eq("a", 1)]))
        broker.publish(Event({"a": 1}))
        assert [n.sub_id for n in broker.notifier.drain()] == ["s1"]

    def test_publish_pumps_redeliveries(self):
        broker, manager, clock = self._broker()
        broker.subscribe(Subscription("s1", [eq("a", 1)]))
        got = []
        manager.register("s1", sink=got.append)
        broker.publish(Event({"a": 1}))
        # No explicit pump: publishes (of a non-matching event) advance
        # the redelivery state machine lazily — one to expire the ack
        # deadline, later ones to re-send once the backoff elapses.
        for _ in range(10):
            clock.advance(6.0)
            broker.publish(Event({"a": 99}))
            if len(got) > 1:
                break
        assert len(got) == 2

    def test_broker_stats_include_delivery(self):
        broker, manager, _clock = self._broker()
        manager.register("s1", sink=lambda n: None)
        assert broker.stats()["delivery"]["channels"] == 1


class TestWalIntegration:
    def test_deliver_and_settle_are_journaled(self, tmp_path):
        clock = VirtualClock()
        wal = WriteAheadLog(tmp_path / "wal.jsonl", fsync="never", clock=clock)
        manager = DeliveryManager(clock=clock, wal=wal, ack_timeout=5.0)
        manager.register("s1", sink=lambda n: None)
        seq = manager.dispatch("s1", Event({"a": 1}))
        manager.ack("s1", seq)
        wal.close()
        from repro.system import read_wal

        with open(tmp_path / "wal.jsonl") as fp:
            records, _ = read_wal(fp)
        kinds = [r["type"] for r in records]
        assert kinds == ["deliver", "settle"]
        assert records[0]["sub"] == "s1" and records[0]["seq"] == seq
        assert records[1]["outcome"] == "ack"

    def test_recovery_requeues_unacked_deliveries(self, tmp_path):
        clock = VirtualClock()
        wal = WriteAheadLog(tmp_path / "wal.jsonl", fsync="never", clock=clock)
        manager = DeliveryManager(clock=clock, ack_timeout=5.0)
        broker = PubSubBroker(
            clock=clock, notifier=QueueNotifier(), wal=wal, delivery=manager
        )
        broker.subscribe(Subscription("s1", [eq("a", 1)]))
        manager.register("s1", sink=lambda n: None)
        broker.publish(Event({"a": 1}))  # delivered, never acked
        wal.close()  # crash with one delivery in flight

        clock2 = VirtualClock()
        manager2 = DeliveryManager(clock=clock2, ack_timeout=5.0)
        restored = PubSubBroker(
            clock=clock2, notifier=QueueNotifier(), delivery=manager2
        )
        report = recover_files(restored, wal_path=tmp_path / "wal.jsonl")
        assert report.replayed_deliveries == 1
        assert report.unacked_deliveries == 1
        # The subscriber has not re-registered yet: the delivery is
        # parked, not lost.
        assert manager2.inflight == 1
        got = []
        manager2.register("s1", sink=got.append)
        manager2.pump()
        assert [n.sub_id for n in got] == ["s1"]
        assert dict(got[0].event.items()) == {"a": 1}

    def test_recovery_restores_dead_letters(self, tmp_path):
        clock = VirtualClock()
        wal = WriteAheadLog(tmp_path / "wal.jsonl", fsync="never", clock=clock)
        manager = DeliveryManager(
            clock=clock,
            wal=wal,
            ack_timeout=5.0,
            retry=RetryPolicy(max_attempts=2, base_delay=1.0, rng=random.Random(5)),
        )
        manager.register("s1", sink=lambda n: None)
        manager.dispatch("s1", Event({"a": 1}))
        drive(manager, clock, 60.0)
        assert len(manager.dead_letters) == 1
        wal.close()

        clock2 = VirtualClock()
        manager2 = DeliveryManager(clock=clock2)
        restored = PubSubBroker(
            clock=clock2, notifier=QueueNotifier(), delivery=manager2
        )
        report = recover_files(restored, wal_path=tmp_path / "wal.jsonl")
        assert report.recovered_dead_letters == 1
        assert report.unacked_deliveries == 0
        assert [e.reason for e in manager2.dead_letters] == ["budget"]

    def test_compaction_rejournals_open_deliveries(self, tmp_path):
        clock = VirtualClock()
        wal = WriteAheadLog(tmp_path / "wal.jsonl", fsync="never", clock=clock)
        manager = DeliveryManager(clock=clock, ack_timeout=5.0)
        broker = PubSubBroker(
            clock=clock, notifier=QueueNotifier(), wal=wal, delivery=manager
        )
        broker.subscribe(Subscription("s1", [eq("a", 1)]))
        manager.register("s1", sink=lambda n: None)
        broker.publish(Event({"a": 1}))  # one unacked in-flight
        wal.compact(broker, tmp_path / "snap.jsonl")
        wal.close()

        clock2 = VirtualClock()
        manager2 = DeliveryManager(clock=clock2)
        restored = PubSubBroker(
            clock=clock2, notifier=QueueNotifier(), delivery=manager2
        )
        report = recover_files(
            restored,
            snapshot_path=tmp_path / "snap.jsonl",
            wal_path=tmp_path / "wal.jsonl",
        )
        # The compacted log still carries the open delivery.
        assert report.unacked_deliveries == 1
        assert manager2.inflight == 1

    def test_attach_wal_propagates_to_delivery(self, tmp_path):
        clock = VirtualClock()
        manager = DeliveryManager(clock=clock)
        broker = PubSubBroker(
            clock=clock, notifier=QueueNotifier(), delivery=manager
        )
        assert manager.wal is None
        wal = WriteAheadLog(tmp_path / "wal.jsonl", fsync="never", clock=clock)
        broker.attach_wal(wal)
        assert manager.wal is wal
        wal.close()


class TestServerHealth:
    def test_health_reports_delivery_block(self):
        from repro.system import BatchServer

        manager, _clock = make_manager()
        manager.register("s1", sink=lambda n: None)
        with BatchServer(delivery=manager) as server:
            health = server.health()
            assert health["status"] == "ok"
            assert health["delivery"]["channels"] == 1
            manager.disconnect("s1")
            health = server.health()
            assert health["status"] == "degraded"
            assert health["delivery"]["disconnected"] == ["s1"]
