"""Write-ahead log: format, fsync policies, torn tails, compaction."""

import json
import os

import pytest

from repro.core import Event, Subscription, eq
from repro.system import (
    BatchServer,
    PubSubBroker,
    QueueNotifier,
    VirtualClock,
    WalError,
    WriteAheadLog,
    read_wal,
    recover_files,
)
from repro.system.wal import HEADER_TYPE, scan_valid_prefix
from tests.system.faults import SimulatedCrash, crash_at, faulty_opener


def fresh_broker(clock=None, wal=None):
    return PubSubBroker(
        clock=clock or VirtualClock(), notifier=QueueNotifier(), wal=wal
    )


def read_lines(path):
    with open(path, encoding="utf-8") as fp:
        return fp.read().splitlines()


class TestFormat:
    def test_header_first_then_records(self, tmp_path):
        path = tmp_path / "a.wal"
        clock = VirtualClock(100.0)
        with WriteAheadLog(path, clock=clock) as wal:
            wal.append_anchor()
            wal.append_subscribe(Subscription("s1", [eq("x", 1)]), ttl=30.0)
            wal.append_unsubscribe("s1")
        lines = [json.loads(line) for line in read_lines(path)]
        assert lines[0] == {"type": HEADER_TYPE, "version": 1, "clock": 100.0}
        assert [r["type"] for r in lines[1:]] == ["anchor", "subscribe", "unsubscribe"]
        assert lines[2]["ttl"] == 30.0
        assert lines[3]["id"] == "s1"

    def test_read_wal_round_trip(self, tmp_path):
        path = tmp_path / "a.wal"
        with WriteAheadLog(path, clock=VirtualClock()) as wal:
            wal.append_subscribe(Subscription("s1", [eq("x", 1)]), at=1.0)
            wal.append_subscribe(
                Subscription("s2", [eq("y", 2)]), ttl=5.0, logical="f", at=2.0
            )
        with open(path, encoding="utf-8") as fp:
            records, discarded = read_wal(fp)
        assert discarded == 0
        assert [r["type"] for r in records] == ["subscribe", "subscribe"]
        assert records[1]["logical"] == "f"

    def test_logical_id_recorded_for_formulas(self, tmp_path):
        clock = VirtualClock()
        wal = WriteAheadLog(tmp_path / "a.wal", clock=clock)
        broker = fresh_broker(clock, wal=wal)
        broker.subscribe_formula("a = 1 or b = 2", "logical")
        wal.close()
        with open(wal.path, encoding="utf-8") as fp:
            records, _ = read_wal(fp)
        subs = [r for r in records if r["type"] == "subscribe"]
        assert len(subs) == 2 and all(r["logical"] == "logical" for r in subs)

    def test_alien_file_rejected(self, tmp_path):
        path = tmp_path / "alien.json"
        path.write_text('{"type": "something-else"}\n{"more": 1}\n')
        with pytest.raises(WalError):
            WriteAheadLog(path)
        with pytest.raises(WalError):
            with open(path, encoding="utf-8") as fp:
                read_wal(fp)

    def test_append_after_close_rejected(self, tmp_path):
        wal = WriteAheadLog(tmp_path / "a.wal", clock=VirtualClock())
        wal.close()
        assert wal.closed
        with pytest.raises(WalError):
            wal.append_anchor(1.0)

    def test_bad_configuration_rejected(self, tmp_path):
        with pytest.raises(WalError):
            WriteAheadLog(tmp_path / "a.wal", fsync="sometimes")
        with pytest.raises(WalError):
            WriteAheadLog(tmp_path / "a.wal", fsync="interval", fsync_interval=-1)


class TestFsyncPolicies:
    def append_n(self, tmp_path, n, **kwargs):
        wal = WriteAheadLog(tmp_path / "a.wal", clock=VirtualClock(), **kwargs)
        for i in range(n):
            wal.append_anchor(float(i))
        return wal

    def test_always_syncs_every_append(self, tmp_path):
        wal = self.append_n(tmp_path, 5, fsync="always")
        assert wal.counters["fsyncs"] == 5
        wal.close()  # close adds one more
        assert wal.counters["fsyncs"] == 6

    def test_interval_zero_behaves_like_always(self, tmp_path):
        wal = self.append_n(tmp_path, 5, fsync="interval", fsync_interval=0.0)
        assert wal.counters["fsyncs"] == 5

    def test_long_interval_defers_to_explicit_sync(self, tmp_path):
        wal = self.append_n(tmp_path, 5, fsync="interval", fsync_interval=3600.0)
        assert wal.counters["fsyncs"] == 0
        wal.sync()
        assert wal.counters["fsyncs"] == 1

    def test_never_still_flushes_but_does_not_fsync(self, tmp_path):
        wal = self.append_n(tmp_path, 5, fsync="never")
        # Bytes reach the OS on every append (readable before close) ...
        with open(wal.path, encoding="utf-8") as fp:
            records, _ = read_wal(fp)
        assert len(records) == 5
        wal.close()
        # ... but no fsync is ever issued, not even on close.
        assert wal.counters["fsyncs"] == 0

    def test_stats_shape(self, tmp_path):
        wal = self.append_n(tmp_path, 3, fsync="always")
        stats = wal.stats()
        assert stats["name"] == "wal"
        assert stats["counters"]["appends"] == 3
        assert stats["bytes"] == wal.tell() == os.path.getsize(wal.path)


class TestTornTail:
    def make_log(self, tmp_path, n=3):
        path = tmp_path / "a.wal"
        with WriteAheadLog(path, clock=VirtualClock()) as wal:
            for i in range(n):
                wal.append_subscribe(Subscription(f"s{i}", [eq("x", i)]), at=float(i))
        return path

    def test_scan_valid_prefix_whole_file(self, tmp_path):
        path = self.make_log(tmp_path)
        prefix, records, discarded, last_at = scan_valid_prefix(path)
        assert prefix == os.path.getsize(path)
        assert (records, discarded, last_at) == (3, 0, 2.0)

    def test_truncated_tail_detected(self, tmp_path):
        path = self.make_log(tmp_path)
        with open(path, "r+b") as raw:
            raw.truncate(os.path.getsize(path) - 5)  # tear the last record
        with open(path, encoding="utf-8") as fp:
            records, discarded = read_wal(fp)
        assert len(records) == 2 and discarded == 1

    def test_garbled_tail_detected(self, tmp_path):
        path = self.make_log(tmp_path)
        with open(path, "a", encoding="utf-8") as fp:
            fp.write('{"type": "subscribe", oops\n{"half')
        with open(path, encoding="utf-8") as fp:
            records, discarded = read_wal(fp)
        assert len(records) == 3 and discarded == 2

    def test_reopen_truncates_damage_before_appending(self, tmp_path):
        path = self.make_log(tmp_path)
        intact = os.path.getsize(path)
        with open(path, "a", encoding="utf-8") as fp:
            fp.write('{"torn')
        wal = WriteAheadLog(path, clock=VirtualClock(10.0))
        assert wal.counters["torn_tail_discarded"] == 1
        assert os.path.getsize(path) == intact  # damage gone, prefix kept
        wal.append_subscribe(Subscription("new", [eq("z", 1)]), at=10.0)
        wal.close()
        with open(path, encoding="utf-8") as fp:
            records, discarded = read_wal(fp)
        # The new record is visible *because* the damage was cut first.
        assert [r["subscription"]["id"] for r in records] == ["s0", "s1", "s2", "new"]
        assert discarded == 0

    def test_reopen_with_damaged_header_restarts_log(self, tmp_path):
        path = tmp_path / "a.wal"
        path.write_text('{"type": "repro-broker-w')  # torn mid-header
        wal = WriteAheadLog(path, clock=VirtualClock(5.0))
        wal.append_anchor(5.0)
        wal.close()
        with open(path, encoding="utf-8") as fp:
            records, discarded = read_wal(fp)
        assert len(records) == 1 and discarded == 0

    @pytest.mark.parametrize("mode", ["truncate", "garble", "drop"])
    def test_faulty_file_yields_valid_prefix(self, tmp_path, mode):
        path = tmp_path / "a.wal"
        wal = WriteAheadLog(
            path,
            clock=VirtualClock(),
            fsync="never",
            opener=faulty_opener(fail_after=260, mode=mode),
        )
        for i in range(10):
            wal.append_subscribe(Subscription(f"s{i}", [eq("x", i)]), at=float(i))
        wal.close()
        with open(path, encoding="utf-8") as fp:
            records, discarded = read_wal(fp)
        ids = [r["subscription"]["id"] for r in records]
        # Whatever landed is a strict prefix of what was written.
        assert ids == [f"s{i}" for i in range(len(ids))]
        assert len(ids) < 10
        if mode == "drop":
            assert discarded == 0  # damage fell on a line boundary
        # Recovery happily consumes the damaged file end to end.
        broker = fresh_broker()
        report = recover_files(broker, wal_path=path)
        assert report.restored == len(ids)


class TestCompaction:
    def test_compact_snapshots_and_restarts(self, tmp_path):
        clock = VirtualClock()
        wal = WriteAheadLog(tmp_path / "a.wal", clock=clock, fsync="always")
        broker = fresh_broker(clock, wal=wal)
        for i in range(4):
            broker.subscribe(Subscription(f"s{i}", [eq("x", i)]))
        grown = wal.tell()
        snap = tmp_path / "a.snap"
        assert wal.compact(broker, snap) == 4
        assert wal.counters["compactions"] == 1
        assert wal.tell() < grown  # only a fresh header remains
        # Post-compaction mutations land in the restarted log.
        broker.unsubscribe("s0")
        broker.subscribe(Subscription("s9", [eq("x", 9)]))
        wal.close()
        restored = fresh_broker()
        report = recover_files(restored, snapshot_path=snap, wal_path=wal.path)
        assert report.restored == 4
        assert sorted(restored.publish(Event({"x": 1}))) == ["s1"]
        assert restored.publish(Event({"x": 9})) == ["s9"]
        assert restored.publish(Event({"x": 0})) == []

    def test_compact_on_closed_wal_rejected(self, tmp_path):
        clock = VirtualClock()
        wal = WriteAheadLog(tmp_path / "a.wal", clock=clock)
        broker = fresh_broker(clock, wal=wal)
        wal.close()
        with pytest.raises(WalError):
            wal.compact(broker, tmp_path / "a.snap")


class TestBrokerIntegration:
    def test_mutations_journaled(self, tmp_path):
        clock = VirtualClock()
        wal = WriteAheadLog(tmp_path / "a.wal", clock=clock)
        broker = fresh_broker(clock, wal=wal)
        broker.subscribe(Subscription("a", [eq("x", 1)]), ttl=60.0)
        broker.unsubscribe("a")
        assert broker.stats()["wal"]["counters"]["appends"] == 3  # anchor+sub+unsub
        wal.close()
        with open(wal.path, encoding="utf-8") as fp:
            records, _ = read_wal(fp)
        assert [r["type"] for r in records] == ["anchor", "subscribe", "unsubscribe"]

    def test_suppression_skips_journaling(self, tmp_path):
        clock = VirtualClock()
        wal = WriteAheadLog(tmp_path / "a.wal", clock=clock)
        broker = fresh_broker(clock, wal=wal)
        with broker.wal_suppressed():
            broker.subscribe(Subscription("quiet", [eq("x", 1)]))
        assert wal.counters["appends"] == 1  # just the attach anchor

    def test_expiry_appends_anchor(self, tmp_path):
        clock = VirtualClock()
        wal = WriteAheadLog(tmp_path / "a.wal", clock=clock)
        broker = fresh_broker(clock, wal=wal)
        broker.subscribe(Subscription("brief", [eq("x", 1)]), ttl=5.0)
        clock.advance(10.0)
        assert broker.purge_expired() == 1
        wal.close()
        with open(wal.path, encoding="utf-8") as fp:
            records, _ = read_wal(fp)
        assert records[-1] == {"type": "anchor", "at": 10.0}

    def test_crash_before_log_loses_only_that_mutation(self, tmp_path):
        clock = VirtualClock()
        wal = WriteAheadLog(tmp_path / "a.wal", clock=clock, fsync="always")
        broker = fresh_broker(clock, wal=wal)
        broker.subscribe(Subscription("kept", [eq("x", 1)]))
        broker.crash_hook = crash_at("subscribe:pre-log")
        with pytest.raises(SimulatedCrash):
            broker.subscribe(Subscription("lost", [eq("y", 2)]))
        # Applied in memory but never acknowledged/journaled ...
        assert broker.subscription_count == 2
        restored = fresh_broker()
        recover_files(restored, wal_path=wal.path)
        # ... so after the crash only the acknowledged prefix survives.
        assert restored.publish(Event({"x": 1})) == ["kept"]
        assert restored.publish(Event({"y": 2})) == []

    def test_crash_before_unsubscribe_log_keeps_subscription(self, tmp_path):
        clock = VirtualClock()
        wal = WriteAheadLog(tmp_path / "a.wal", clock=clock, fsync="always")
        broker = fresh_broker(clock, wal=wal)
        broker.subscribe(Subscription("a", [eq("x", 1)]))
        broker.crash_hook = crash_at("unsubscribe:pre-log")
        with pytest.raises(SimulatedCrash):
            broker.unsubscribe("a")
        restored = fresh_broker()
        recover_files(restored, wal_path=wal.path)
        # The removal was never acknowledged; durably, "a" still exists.
        assert restored.publish(Event({"x": 1})) == ["a"]


class TestBatchServer:
    def test_batches_journaled_and_synced_per_batch(self, tmp_path):
        wal = WriteAheadLog(
            tmp_path / "a.wal", clock=VirtualClock(), fsync="interval",
            fsync_interval=3600.0,
        )
        with BatchServer(wal=wal) as server:
            subs = [Subscription(f"s{i}", [eq("x", i)]) for i in range(5)]
            assert server.submit_subscriptions(subs).results == 5
            assert server.submit_unsubscriptions(["s0", "s1"]).results == ["s0", "s1"]
            server.submit_events([Event({"x": 2})])
            assert server.stats()["wal"]["counters"]["appends"] == 7
            # One explicit sync per mutating batch, none for publishes.
            assert wal.counters["fsyncs"] == 2
        wal.close()
        restored = fresh_broker()
        report = recover_files(restored, wal_path=wal.path)
        assert report.restored == 3
        assert restored.publish(Event({"x": 4})) == ["s4"]
