"""Dedicated notifier edge-case suite.

The basics (drain order, callback, null, fanout happy path) live in
``test_clock_store_notifier.py``; this file pins the failure-mode
contracts: bounded-queue eviction is *accounted*, fan-out isolates
per-sink errors, and ``deliver_all`` counts correctly on degenerate
inputs.
"""

import pytest

from repro.core.types import Event
from repro.obs.registry import MetricsRegistry
from repro.system import (
    CallbackNotifier,
    FanoutDeliveryError,
    FanoutNotifier,
    Notification,
    NullNotifier,
    QueueNotifier,
)


def note(sub_id="s1", ts=0.0, **pairs):
    return Notification(sub_id, Event(pairs or {"a": 1}), ts)


class TestQueueNotifierEviction:
    def test_unbounded_queue_never_drops(self):
        q = QueueNotifier()
        for i in range(100):
            q.deliver(note(f"s{i}"))
        assert len(q) == 100
        assert q.dropped == 0
        assert q.stats()["counters"]["dropped"] == 0

    def test_maxlen_eviction_is_counted(self):
        q = QueueNotifier(maxlen=3)
        for i in range(10):
            q.deliver(note(f"s{i}"))
        # Newest three survive, the seven evictions are all accounted.
        assert [n.sub_id for n in q.drain()] == ["s7", "s8", "s9"]
        assert q.dropped == 7

    def test_stats_shape(self):
        q = QueueNotifier(maxlen=2)
        q.deliver(note("s0"))
        q.deliver(note("s1"))
        q.deliver(note("s2"))
        stats = q.stats()
        assert stats["name"] == "queue-notifier"
        assert stats["queued"] == 2
        assert stats["maxlen"] == 2
        assert stats["counters"]["dropped"] == 1

    def test_dropped_metric(self):
        registry = MetricsRegistry()
        q = QueueNotifier(maxlen=1, metrics=registry)
        q.deliver(note("s0"))
        q.deliver(note("s1"))
        q.deliver(note("s2"))
        family = registry.family("repro_notifier_dropped_total")
        assert family.labels().value == 2

    def test_use_metrics_rebinds(self):
        q = QueueNotifier(maxlen=1)
        q.deliver(note("s0"))
        q.deliver(note("s1"))  # one drop on the private registry
        shared = q.use_metrics()
        q.deliver(note("s2"))
        assert shared.family("repro_notifier_dropped_total").labels().value == 1
        assert q.dropped == 2  # the plain counter spans both registries

    def test_drain_does_not_reset_drop_count(self):
        q = QueueNotifier(maxlen=1)
        q.deliver(note("s0"))
        q.deliver(note("s1"))
        q.drain()
        assert q.dropped == 1
        q.deliver(note("s2"))
        assert len(q) == 1 and q.dropped == 1  # room again: no new drop


class _BoomNotifier(NullNotifier):
    def __init__(self, exc):
        self.exc = exc

    def deliver(self, notification):
        raise self.exc


class TestFanoutIsolation:
    def test_one_raising_sink_does_not_starve_the_rest(self):
        q1, q2 = QueueNotifier(), QueueNotifier()
        f = FanoutNotifier([q1, _BoomNotifier(RuntimeError("boom")), q2])
        with pytest.raises(FanoutDeliveryError):
            f.deliver(note())
        # Both healthy sinks, including the one *after* the failure,
        # still received the notification.
        assert len(q1) == 1 and len(q2) == 1

    def test_aggregate_error_carries_every_failure(self):
        first, second = RuntimeError("first"), ValueError("second")
        f = FanoutNotifier([_BoomNotifier(first), _BoomNotifier(second)])
        n = note()
        with pytest.raises(FanoutDeliveryError) as excinfo:
            f.deliver(n)
        err = excinfo.value
        assert err.notification is n
        assert [exc for _sink, exc in err.errors] == [first, second]
        assert "2 sink(s) failed" in str(err)

    def test_all_healthy_sinks_raise_nothing(self):
        q = QueueNotifier()
        FanoutNotifier([q, NullNotifier()]).deliver(note())
        assert len(q) == 1

    def test_empty_fanout_is_a_noop(self):
        FanoutNotifier([]).deliver(note())  # must not raise


class TestDeliverAll:
    def test_empty_iterable_counts_zero(self):
        assert QueueNotifier().deliver_all([]) == 0
        assert NullNotifier().deliver_all(iter(())) == 0

    def test_one_shot_iterator_counts_every_item(self):
        q = QueueNotifier()
        count = q.deliver_all(note(f"s{i}") for i in range(5))
        assert count == 5
        assert [n.sub_id for n in q.drain()] == [f"s{i}" for i in range(5)]

    def test_counts_against_a_bounded_queue(self):
        # deliver_all counts *deliveries*, not survivors.
        q = QueueNotifier(maxlen=2)
        assert q.deliver_all([note(f"s{i}") for i in range(4)]) == 4
        assert len(q) == 2 and q.dropped == 2

    def test_callback_sink(self):
        seen = []
        assert CallbackNotifier(seen.append).deliver_all([note(), note("s2")]) == 2
        assert [n.sub_id for n in seen] == ["s1", "s2"]
