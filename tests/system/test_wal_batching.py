"""One durability boundary per batch: WAL fsync-call accounting.

``PubSubBroker.subscribe_batch`` and the ``BatchServer`` journal whole
batches under ``WriteAheadLog.batched()``; under the ``always`` fsync
policy that must cost exactly one fsync per batch, not one per item.
These tests pin the call counts through the WAL's own fsync counter.
"""

from repro.core import Subscription, eq
from repro.system import PubSubBroker, QueueNotifier, VirtualClock, WriteAheadLog


def subs(n, start=0):
    return [Subscription(f"s{start + i}", [eq("x", i)]) for i in range(n)]


def fresh(tmp_path, fsync="always"):
    clock = VirtualClock()
    wal = WriteAheadLog(tmp_path / "b.wal", fsync=fsync, clock=clock)
    broker = PubSubBroker(clock=clock, notifier=QueueNotifier(), wal=wal)
    return broker, wal


class TestBatchedContext:
    def test_always_policy_defers_to_one_fsync(self, tmp_path):
        clock = VirtualClock()
        wal = WriteAheadLog(tmp_path / "w.wal", fsync="always", clock=clock)
        base = wal.counters["fsyncs"]
        with wal.batched():
            for s in subs(10):
                wal.append_subscribe(s, at=wal.now())
        assert wal.counters["fsyncs"] == base + 1
        assert wal.counters["appends"] >= 10
        wal.close()

    def test_nested_batches_sync_once_at_outermost_exit(self, tmp_path):
        clock = VirtualClock()
        wal = WriteAheadLog(tmp_path / "w.wal", fsync="always", clock=clock)
        base = wal.counters["fsyncs"]
        with wal.batched():
            wal.append_subscribe(subs(1)[0], at=wal.now())
            with wal.batched():
                wal.append_subscribe(subs(1, start=1)[0], at=wal.now())
            assert wal.counters["fsyncs"] == base  # still inside
        assert wal.counters["fsyncs"] == base + 1
        wal.close()

    def test_never_policy_stays_unsynced(self, tmp_path):
        clock = VirtualClock()
        wal = WriteAheadLog(tmp_path / "w.wal", fsync="never", clock=clock)
        base = wal.counters["fsyncs"]
        with wal.batched():
            for s in subs(5):
                wal.append_subscribe(s, at=wal.now())
        assert wal.counters["fsyncs"] == base
        wal.close()

    def test_explicit_sync_inside_batch_not_doubled(self, tmp_path):
        clock = VirtualClock()
        wal = WriteAheadLog(tmp_path / "w.wal", fsync="always", clock=clock)
        base = wal.counters["fsyncs"]
        with wal.batched():
            wal.append_subscribe(subs(1)[0], at=wal.now())
            wal.sync()
        # The exit finds nothing unsynced; one fsync total.
        assert wal.counters["fsyncs"] == base + 1
        wal.close()


class TestBrokerSubscribeBatch:
    def test_one_fsync_per_batch_under_always(self, tmp_path):
        broker, wal = fresh(tmp_path, fsync="always")
        base = wal.counters["fsyncs"]
        ids = broker.subscribe_batch(subs(20))
        assert len(ids) == 20
        assert wal.counters["fsyncs"] == base + 1
        wal.close()

    def test_per_item_subscribe_still_fsyncs_each(self, tmp_path):
        """The regression's control: the scalar path keeps its promise
        that every acknowledged subscription is individually durable."""
        broker, wal = fresh(tmp_path, fsync="always")
        base = wal.counters["fsyncs"]
        for s in subs(5):
            broker.subscribe(s)
        assert wal.counters["fsyncs"] == base + 5
        wal.close()

    def test_batch_is_journaled_completely(self, tmp_path):
        broker, wal = fresh(tmp_path, fsync="always")
        broker.subscribe_batch(subs(7))
        appends = wal.counters["appends"]
        assert appends >= 7
        wal.close()
