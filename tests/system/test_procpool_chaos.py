"""Worker-death chaos for the process executor.

The acceptance contract: SIGKILL-ing a shard worker mid-batch must yield
a degraded ``PartialResults`` (never a hang, never wrong results), trip
that shard's breaker into quarantine, and — after the cool-down — let
the half-open probe respawn the worker, replay its subscriptions from
the parent mirror, and re-converge exactly with the oracle.

Deaths are injected with :class:`repro.testing.faults.KillableWorker`
(the worker kills *itself* at the Nth matching operation, after the
inner engine has matched but before the reply is sent — a genuine
mid-request loss), armed one-shot through a filesystem latch so the
respawned worker stays alive and the tests are deterministic.
"""

import os
import signal
import time

import pytest

from repro.core import Event, Subscription, eq
from repro.matchers import make_matcher
from repro.system.resilience import PartialResults, WorkerDiedError
from repro.system.sharding import ShardedMatcher
from repro.testing.faults import killable_worker

SHARDS = 2


def norm(ids):
    return sorted(ids, key=repr)


def workload(n_subs=40, n_events=12):
    subs = [Subscription(f"s{i}", [eq("x", i % 5)]) for i in range(n_subs)]
    events = [Event({"x": i % 5, "y": i}) for i in range(n_events)]
    return subs, events


def oracle_for(subs):
    oracle = make_matcher("oracle")
    for s in subs:
        oracle.add(s)
    return oracle


def chaos_matcher(tmp_path, die_at, breaker=True, codec="auto"):
    """2 process shards; the first-spawned worker dies at op *die_at*."""
    factory = killable_worker(
        lambda: make_matcher("counting"),
        die_at=die_at,
        latch_path=str(tmp_path / "kill-latch"),
    )
    spec = {"failure_threshold": 1, "reset_timeout": 0.05} if breaker else None
    return ShardedMatcher(
        shards=SHARDS,
        router="hash",
        inner=factory,
        executor="process",
        breaker=spec,
        worker_timeout=30.0,
        codec=codec,
    )


@pytest.mark.watchdog(60)
class TestWorkerDeathLifecycle:
    def test_sigkill_mid_match_degrades_quarantines_and_heals(self, tmp_path):
        subs, events = workload()
        oracle = oracle_for(subs)
        with chaos_matcher(tmp_path, die_at=3) as m:
            for s in subs:
                m.add(s)
            ev = events[0]
            expected = norm(oracle.match(ev))
            # ops 1 and 2: healthy, both shards answer.
            for _ in range(2):
                r = m.match(ev)
                assert not r.degraded and norm(r) == expected
            # op 3: the armed worker SIGKILLs itself mid-request.
            r = m.match(ev)
            assert isinstance(r, PartialResults)
            assert r.degraded and r.failed_shards
            dead = r.failed_shards[0]
            # healthy-shard results are still correct (a subset).
            assert set(norm(r)) <= set(expected)
            # while the breaker is open the shard is skipped, still degraded.
            r = m.match(ev)
            assert r.degraded and dead in r.failed_shards
            assert m.breaker_states()[dead] == "open"
            # cool-down, then the half-open probe respawns + replays.
            time.sleep(0.1)
            healed = m.match(ev)
            assert not healed.degraded
            assert norm(healed) == expected
            assert m.breaker_states()[dead] == "closed"
            assert m._procpool.stats()["counters"]["respawns"] == 1

    def test_sigkill_mid_batch_never_hangs_or_lies(self, tmp_path):
        """The batch path (breaker mode falls back per event) survives a
        mid-batch death: every row is either complete or degraded —
        never silently wrong, never a hang (the watchdog enforces it)."""
        subs, events = workload(n_events=10)
        oracle = oracle_for(subs)
        expected = [norm(oracle.match(e)) for e in events]
        with chaos_matcher(tmp_path, die_at=4) as m:
            for s in subs:
                m.add(s)
            rows = m.match_batch(events)
            assert len(rows) == len(events)
            for row, exp in zip(rows, expected):
                if getattr(row, "degraded", False):
                    assert set(norm(row)) <= set(exp)
                else:
                    assert norm(row) == exp
            # after cool-down the whole batch matches the oracle again.
            time.sleep(0.1)
            rows = m.match_batch(events)
            assert all(not r.degraded for r in rows)
            assert [norm(r) for r in rows] == expected

    def test_respawned_worker_replays_subscriptions_exactly(self, tmp_path):
        """Post-heal, the respawned worker's subscription set equals the
        parent mirror — including churn applied before the death."""
        subs, events = workload()
        with chaos_matcher(tmp_path, die_at=1) as m:
            for s in subs:
                m.add(s)
            removed = [s.id for s in subs[::4]]
            for sub_id in removed:
                m.remove(sub_id)
            live = [s for s in subs if s.id not in set(removed)]
            oracle = oracle_for(live)
            expected = [norm(oracle.match(e)) for e in events]
            r = m.match(events[0])  # op 1: death
            assert r.degraded
            time.sleep(0.1)
            healed = m.match(events[0])
            assert not healed.degraded and norm(healed) == expected[0]
            got = [norm(row) for row in m.match_batch(events)]
            assert got == expected
            # the mirror-backed views never flinched.
            assert len(m) == len(live)
            assert sorted(s.id for s in m.iter_subscriptions()) == sorted(
                s.id for s in live
            )

    def test_health_reports_dead_worker_before_probe(self, tmp_path):
        subs, _ = workload()
        with chaos_matcher(tmp_path, die_at=1) as m:
            for s in subs:
                m.add(s)
            assert m.executor_health()["alive"] == SHARDS
            r = m.match(Event({"x": 0}))
            assert r.degraded
            health = m.executor_health()
            assert health["alive"] == SHARDS - 1
            assert health["workers"] == SHARDS


@pytest.mark.watchdog(60)
class TestWorkerDeathWithoutBreaker:
    def test_death_raises_then_next_call_self_heals(self, tmp_path):
        """Pre-quarantine contract: the in-flight call raises
        WorkerDiedError; the next call respawns, replays and answers."""
        subs, events = workload()
        oracle = oracle_for(subs)
        with chaos_matcher(tmp_path, die_at=2, breaker=False) as m:
            for s in subs:
                m.add(s)
            ev = events[0]
            assert norm(m.match(ev)) == norm(oracle.match(ev))  # op 1
            with pytest.raises(WorkerDiedError):
                m.match(ev)  # op 2: mid-request death propagates
            assert norm(m.match(ev)) == norm(oracle.match(ev))  # healed
            assert m._procpool.stats()["counters"]["respawns"] == 1

    def test_match_serial_death_mid_stream_raises_then_heals(self, tmp_path):
        """A worker dying inside a pipelined burst surfaces as
        WorkerDiedError (the drain never hangs); the next burst heals."""
        subs, events = workload()
        oracle = oracle_for(subs)
        expected = [norm(oracle.match(e)) for e in events]
        with chaos_matcher(tmp_path, die_at=1, breaker=False) as m:
            for s in subs:
                m.add(s)
            with pytest.raises(WorkerDiedError):
                m.match_serial(events)
            got = [norm(r) for r in m.match_serial(events)]
            assert got == expected
            assert m._procpool.stats()["counters"]["respawns"] == 1

    def test_external_sigkill_between_requests_heals_silently(self, tmp_path):
        """A worker killed while idle never surfaces an error at all:
        the next call finds it dead *before* sending and self-heals."""
        subs, events = workload()
        oracle = oracle_for(subs)
        # die_at high enough that the injector never fires; we kill by pid.
        with chaos_matcher(tmp_path, die_at=10_000, breaker=False) as m:
            for s in subs:
                m.add(s)
            os.kill(m._procpool.worker_pid(0), signal.SIGKILL)
            deadline = time.monotonic() + 5.0
            while m._procpool.alive(0) and time.monotonic() < deadline:
                time.sleep(0.01)
            got = [norm(r) for r in m.match_batch(events)]
            assert got == [norm(oracle.match(e)) for e in events]


@pytest.mark.watchdog(60)
class TestShmSlotLifecycleUnderChaos:
    """Worker death must never strand an event slot or leak a segment."""

    def test_sigkill_while_holding_a_slot_frees_it(self, tmp_path):
        """The armed worker SIGKILLs itself *inside* a batch_shm request —
        after the slot was published to it, before the ack-bearing reply.
        The parent's finally-ack must free the slot anyway, and after the
        self-heal the same arena serves correct batches again."""
        subs, events = workload()
        oracle = oracle_for(subs)
        expected = [norm(oracle.match(e)) for e in events]
        with chaos_matcher(tmp_path, die_at=2, breaker=False, codec="shm") as m:
            for s in subs:
                m.add(s)
            pool = m._procpool
            segments = set(pool.arena.health()["segments"])
            assert [norm(r) for r in m.match_batch(events)] == expected  # op 1
            with pytest.raises(WorkerDiedError):
                m.match_batch(events)  # op 2: death while reading the slot
            # the dead reader's slot was acked in the finally — no strand.
            assert pool.arena.ring.in_flight() == 0
            # the respawned worker reattaches the *same* segments and
            # replays its subscriptions; results reconverge exactly.
            assert [norm(r) for r in m.match_batch(events)] == expected
            assert pool.stats()["counters"]["respawns"] == 1
            assert set(pool.arena.health()["segments"]) == segments
            assert pool.arena.ring.in_flight() == 0
        # parent close() is the only unlink; nothing survives in /dev/shm.
        from tests.conftest import shm_entries

        assert not segments & shm_entries()

    def test_external_sigkill_between_requests_heals_on_shm(self, tmp_path):
        """An idle-worker SIGKILL under codec='shm' self-heals silently
        and the batch still rides the arena afterwards."""
        subs, events = workload()
        oracle = oracle_for(subs)
        with chaos_matcher(tmp_path, die_at=10_000, breaker=False, codec="shm") as m:
            for s in subs:
                m.add(s)
            os.kill(m._procpool.worker_pid(0), signal.SIGKILL)
            deadline = time.monotonic() + 5.0
            while m._procpool.alive(0) and time.monotonic() < deadline:
                time.sleep(0.01)
            got = [norm(r) for r in m.match_batch(events)]
            assert got == [norm(oracle.match(e)) for e in events]
            stats = m._procpool.stats()
            assert stats["shm"]["bytes"]["publish"] > 0
            assert m._procpool.arena.ring.in_flight() == 0

    def test_breaker_mode_death_then_heal_restores_the_arena_path(self, tmp_path):
        """Breaker mode routes per event (the documented shm-less
        fallback), so the quarantine arc leaves the ring untouched; once
        healed, batches ride the arena again through the respawned
        worker."""
        subs, events = workload()
        oracle = oracle_for(subs)
        ev = events[0]
        expected = norm(oracle.match(ev))
        with chaos_matcher(tmp_path, die_at=3, codec="shm") as m:
            for s in subs:
                m.add(s)
            for _ in range(2):  # ops 1-2: healthy, per-event path
                assert norm(m.match(ev)) == expected
            r = m.match(ev)  # op 3: mid-request SIGKILL → degraded
            assert r.degraded
            assert m._procpool.arena.ring.in_flight() == 0
            time.sleep(0.1)
            healed = m.match(ev)  # half-open probe respawns + replays
            assert not healed.degraded and norm(healed) == expected
            # breaker mode pins match_batch to the per-event path, so
            # the arena must still be pristine: no slot ever claimed.
            before = m._procpool.stats()["shm"]["bytes"]["publish"]
            assert before == 0
            batch = [norm(row) for row in m.match_batch(events)]
            assert batch == [norm(oracle.match(e)) for e in events]
            assert m._procpool.arena.ring.in_flight() == 0


@pytest.mark.slow
@pytest.mark.watchdog(120)
class TestRepeatedChaos:
    def test_many_kill_heal_cycles_converge(self, tmp_path):
        """Kill → quarantine → heal, five times over, with churn between
        cycles; every healed state matches a fresh oracle."""
        subs, events = workload(n_subs=60, n_events=8)
        with ShardedMatcher(
            shards=SHARDS,
            router="hash",
            inner=lambda: make_matcher("counting"),
            executor="process",
            breaker={"failure_threshold": 1, "reset_timeout": 0.05},
            worker_timeout=30.0,
        ) as m:
            live = {}
            for s in subs:
                m.add(s)
                live[s.id] = s
            for cycle in range(5):
                victim = cycle % SHARDS
                os.kill(m._procpool.worker_pid(victim), signal.SIGKILL)
                deadline = time.monotonic() + 5.0
                while m._procpool.alive(victim) and time.monotonic() < deadline:
                    time.sleep(0.01)
                # churn while the worker is down (mirror absorbs it).
                extra = Subscription(f"c{cycle}", [eq("x", cycle % 5)])
                m.add(extra)
                live[extra.id] = extra
                drop = subs[cycle].id
                if drop in live:
                    m.remove(drop)
                    del live[drop]
                time.sleep(0.1)
                oracle = oracle_for(list(live.values()))
                rows = [m.match(e) for e in events]
                assert all(not r.degraded for r in rows)
                assert [norm(r) for r in rows] == [
                    norm(oracle.match(e)) for e in events
                ]
