"""Access predicates and multi-attribute hash tables."""

import pytest

from repro.clustering import (
    AccessPredicate,
    HashingConfiguration,
    MultiAttrHashTable,
    access_for_schema,
    key_for_schema,
    normalize_schema,
)
from repro.core import Event, Subscription, eq, le
from repro.core.errors import ClusteringError


class TestAccessPredicate:
    def test_schema_and_key_sorted_by_attribute(self):
        ap = AccessPredicate([eq("b", 2), eq("a", 1)])
        assert ap.schema == ("a", "b")
        assert ap.key == (1, 2)

    def test_rejects_non_equality(self):
        with pytest.raises(ClusteringError):
            AccessPredicate([le("a", 1)])

    def test_rejects_duplicate_attribute(self):
        with pytest.raises(ClusteringError):
            AccessPredicate([eq("a", 1), eq("a", 2)])

    def test_rejects_empty(self):
        with pytest.raises(ClusteringError):
            AccessPredicate([])

    def test_equality_and_hash(self):
        assert AccessPredicate([eq("a", 1)]) == AccessPredicate([eq("a", 1)])
        assert hash(AccessPredicate([eq("a", 1)])) == hash(AccessPredicate([eq("a", 1)]))

    def test_immutable(self):
        ap = AccessPredicate([eq("a", 1)])
        with pytest.raises(AttributeError):
            ap.key = (9,)


class TestSchemaHelpers:
    def test_normalize_schema(self):
        assert normalize_schema(["b", "a", "b"]) == ("a", "b")

    def test_access_for_schema(self):
        sub = Subscription("s", [le("p", 9), eq("b", 2), eq("a", 1)])
        ap = access_for_schema(sub, ("a", "b"))
        assert ap.key == (1, 2)

    def test_access_for_schema_missing_attr_raises(self):
        sub = Subscription("s", [eq("a", 1)])
        with pytest.raises(ClusteringError):
            access_for_schema(sub, ("a", "b"))

    def test_key_for_schema(self):
        sub = Subscription("s", [eq("b", 2), eq("a", 1)])
        assert key_for_schema(sub, ("a", "b")) == (1, 2)

    def test_key_for_schema_missing_raises(self):
        with pytest.raises(ClusteringError):
            key_for_schema(Subscription("s", [eq("a", 1)]), ("a", "z"))

    def test_key_uses_first_equality_per_attribute(self):
        # Contradictory but legal: two equalities on one attribute.
        sub = Subscription("s", [eq("a", 1), eq("a", 2)])
        ap = access_for_schema(sub, ("a",))
        assert ap.key == (1,)
        assert key_for_schema(sub, ("a",)) == (1,)


class TestMultiAttrHashTable:
    def test_schema_validation(self):
        with pytest.raises(ValueError):
            MultiAttrHashTable(("b", "a"))
        with pytest.raises(ValueError):
            MultiAttrHashTable(())

    def test_add_probe(self):
        t = MultiAttrHashTable(("a", "b"))
        t.add("s1", (1, 2), [7])
        lst = t.probe(Event({"a": 1, "b": 2, "c": 9}))
        assert lst is not None and len(lst) == 1

    def test_probe_missing_attribute_is_none(self):
        t = MultiAttrHashTable(("a", "b"))
        t.add("s1", (1, 2), [7])
        assert t.probe(Event({"a": 1})) is None

    def test_probe_unknown_combination_is_none(self):
        t = MultiAttrHashTable(("a",))
        t.add("s1", (1,), [])
        assert t.probe(Event({"a": 99})) is None

    def test_remove_prunes_entry(self):
        t = MultiAttrHashTable(("a",))
        t.add("s1", (1,), [5])
        t.remove("s1", (1,), 1)
        assert t.entry_count == 0 and len(t) == 0

    def test_counts(self):
        t = MultiAttrHashTable(("a",))
        t.add("s1", (1,), [5])
        t.add("s2", (1,), [6])
        t.add("s3", (2,), [7])
        assert len(t) == 3 and t.entry_count == 2

    def test_memory_bytes(self):
        t = MultiAttrHashTable(("a",))
        t.add("s1", (1,), [5])
        assert t.memory_bytes() > 0


class TestHashingConfiguration:
    def test_ensure_and_drop(self):
        cfg = HashingConfiguration()
        t = cfg.ensure_table(("a",))
        assert cfg.ensure_table(("a",)) is t
        assert ("a",) in cfg and len(cfg) == 1
        cfg.drop_table(("a",))
        assert ("a",) not in cfg

    def test_drop_missing_raises(self):
        with pytest.raises(KeyError):
            HashingConfiguration().drop_table(("a",))

    def test_eligible_schemas(self):
        cfg = HashingConfiguration()
        cfg.ensure_table(("a",))
        cfg.ensure_table(("a", "b"))
        cfg.ensure_table(("c",))
        eligible = cfg.eligible_schemas(frozenset({"a", "b"}))
        assert sorted(eligible) == [("a",), ("a", "b")]

    def test_schemas_and_tables(self):
        cfg = HashingConfiguration()
        cfg.ensure_table(("a",))
        cfg.ensure_table(("b",))
        assert set(cfg.schemas()) == {("a",), ("b",)}
        assert len(list(cfg.tables())) == 2
