"""ν/μ estimators: closed-form and online."""

import pytest

from repro.clustering import EventStatistics, UniformStatistics, nu_of_predicates
from repro.core import Event, eq


class TestUniformStatistics:
    def test_pair_prob_is_attrprob_over_domain(self):
        s = UniformStatistics(domains={"a": 100}, default_domain=35)
        assert s.pair_prob("a", 1) == pytest.approx(1 / 100)
        assert s.pair_prob("other", 1) == pytest.approx(1 / 35)

    def test_attr_prob_defaults_to_one(self):
        s = UniformStatistics()
        assert s.attr_prob("anything") == 1.0

    def test_attr_prob_override(self):
        s = UniformStatistics(attr_probs={"rare": 0.25})
        assert s.attr_prob("rare") == 0.25
        assert s.mu_of_schema(["rare", "common"]) == pytest.approx(0.25)

    def test_nu_of_pairs_multiplies(self):
        s = UniformStatistics(default_domain=10)
        assert s.nu_of_pairs([("a", 1), ("b", 2)]) == pytest.approx(0.01)

    def test_expected_nu_schema(self):
        s = UniformStatistics(default_domain=10)
        assert s.expected_nu_schema(("a", "b")) == pytest.approx(0.01)

    def test_nu_of_predicates_helper(self):
        s = UniformStatistics(default_domain=10)
        assert nu_of_predicates(s, [eq("a", 1), eq("b", 2)]) == pytest.approx(0.01)

    def test_example31_values(self):
        # Example 3.1's setting: 100 values per attribute, always present.
        s = UniformStatistics(domains={"A": 100, "B": 100, "C": 100})
        assert s.expected_nu_schema(("A",)) == pytest.approx(0.01)
        assert s.expected_nu_schema(("A", "B")) == pytest.approx(0.0001)


class TestEventStatisticsPriors:
    def test_prior_before_observations(self):
        s = EventStatistics(prior_domain=35)
        assert s.attr_prob("a") == pytest.approx(1.0)
        assert s.pair_prob("a", 1) == pytest.approx(1 / 35, rel=0.01)

    def test_decay_validation(self):
        with pytest.raises(ValueError):
            EventStatistics(decay=0.0)
        with pytest.raises(ValueError):
            EventStatistics(decay=1.5)


class TestEventStatisticsLearning:
    def test_attr_prob_tracks_presence(self):
        s = EventStatistics(prior_weight=1.0)
        for _ in range(100):
            s.observe(Event({"always": 1}))
        assert s.attr_prob("always") == pytest.approx(1.0, abs=0.02)
        assert s.attr_prob("never") == pytest.approx(0.01, abs=0.02)

    def test_pair_prob_tracks_distribution(self):
        s = EventStatistics(prior_weight=1.0, prior_domain=2)
        for i in range(200):
            s.observe(Event({"a": i % 2}))  # 50/50 over two values
        assert s.pair_prob("a", 0) == pytest.approx(0.5, abs=0.1)

    def test_skew_raises_expected_nu(self):
        uniform = EventStatistics(prior_weight=1.0, prior_domain=35)
        skewed = EventStatistics(prior_weight=1.0, prior_domain=35)
        for i in range(400):
            uniform.observe(Event({"a": i % 35}))
            skewed.observe(Event({"a": i % 2}))
        assert skewed.expected_nu_schema(("a",)) > 5 * uniform.expected_nu_schema(("a",))

    def test_decay_forgets_old_traffic(self):
        s = EventStatistics(prior_weight=0.5, decay=0.5, decay_every=50)
        for _ in range(200):
            s.observe(Event({"a": 1}))
        for _ in range(600):
            s.observe(Event({"a": 2}))
        assert s.pair_prob("a", 2) > 5 * s.pair_prob("a", 1)

    def test_event_weight_decays(self):
        s = EventStatistics(decay=0.5, decay_every=10)
        for _ in range(10):
            s.observe(Event({"a": 1}))
        assert s.event_weight == pytest.approx(5.0)
        assert s.events_observed == 10

    def test_value_distribution_normalized(self):
        s = EventStatistics()
        for i in range(10):
            s.observe(Event({"a": i % 2}))
        dist = s.value_distribution("a")
        assert sum(dist.values()) == pytest.approx(1.0)
        assert dist[0] == pytest.approx(0.5)

    def test_value_distribution_empty(self):
        assert EventStatistics().value_distribution("missing") == {}

    def test_mu_of_schema_composes(self):
        s = EventStatistics(prior_weight=1.0)
        for _ in range(50):
            s.observe(Event({"a": 1, "b": 2}))
        assert s.mu_of_schema(("a", "b")) == pytest.approx(1.0, abs=0.05)

    def test_estimates_bounded_by_one(self):
        s = EventStatistics(prior_weight=1.0, prior_domain=1)
        for _ in range(50):
            s.observe(Event({"a": 7}))
        assert 0.0 <= s.pair_prob("a", 7) <= 1.0
        assert 0.0 <= s.expected_nu_schema(("a",)) <= 1.0
