"""Cost model (Section 3.1) and the greedy optimizer (Section 3.2)."""

import math

import pytest

from repro.clustering import (
    CostConstants,
    CostModel,
    GreedyClusteringOptimizer,
    SignatureGroup,
    UniformStatistics,
    candidate_schemas,
    group_signatures,
)
from repro.core import Subscription, eq, le


def stats10():
    return UniformStatistics(default_domain=10)


class TestCostModel:
    def test_check_cost_linear_in_residual(self):
        cm = CostModel(stats10(), CostConstants(c_check=1.0, k_check=2.0))
        assert cm.check_cost(0) == 1.0
        assert cm.check_cost(3) == 7.0

    def test_table_overhead_grows_with_schema(self):
        cm = CostModel(stats10())
        assert cm.table_overhead(("a", "b")) > cm.table_overhead(("a",))

    def test_group_cost_drops_with_bigger_schema(self):
        cm = CostModel(stats10())
        g = SignatureGroup(frozenset({"a", "b"}), 4, 100)
        assert cm.expected_group_check_cost(g, ("a", "b")) < cm.expected_group_check_cost(
            g, ("a",)
        )

    def test_matching_cost_sums_components(self):
        cm = CostModel(stats10())
        g = SignatureGroup(frozenset({"a"}), 2, 10)
        total = cm.matching_cost([("a",)], {g: ("a",)})
        assert total == pytest.approx(
            cm.table_overhead(("a",)) + cm.expected_group_check_cost(g, ("a",))
        )

    def test_space_cost_components(self):
        cm = CostModel(stats10())
        g = SignatureGroup(frozenset({"a"}), 3, 10)
        space = cm.space_cost({g: ("a",)}, {("a",): 5.0})
        c = cm.constants
        expected = c.i_space + 5.0 * c.h_space + 10 * (c.k_space * 2 + c.id_space)
        assert space == pytest.approx(expected)

    def test_estimate_entries_bounds(self):
        cm = CostModel(stats10())
        # cannot exceed subscriptions
        assert cm.estimate_entries(("a",), 3, {"a": 100}) <= 3.0
        # cannot exceed combinations
        assert cm.estimate_entries(("a",), 10_000, {"a": 5}) <= 5.0
        # zero subscriptions -> zero entries
        assert cm.estimate_entries(("a",), 0, {"a": 5}) == 0.0


class TestSignatures:
    def test_group_signatures_aggregates(self):
        obs = [
            (frozenset({"a"}), 3),
            (frozenset({"a"}), 3),
            (frozenset({"a", "b"}), 3),
        ]
        groups = group_signatures(obs)
        assert groups[(frozenset({"a"}), 3)].count == 2
        assert groups[(frozenset({"a", "b"}), 3)].count == 1

    def test_residual(self):
        g = SignatureGroup(frozenset({"a", "b"}), 5, 1)
        assert g.residual(2) == 3


class TestCandidateSchemas:
    def test_all_subsets_up_to_cap(self):
        got = candidate_schemas([frozenset({"a", "b", "c"})], max_schema_size=2)
        assert got == [
            ("a",), ("a", "b"), ("a", "c"), ("b",), ("b", "c"), ("c",),
        ]

    def test_cap_respected(self):
        got = candidate_schemas([frozenset({"a", "b", "c"})], max_schema_size=3)
        assert ("a", "b", "c") in got

    def test_dedup_across_groups(self):
        got = candidate_schemas(
            [frozenset({"a", "b"}), frozenset({"a", "c"})], max_schema_size=2
        )
        assert got.count(("a",)) == 1


def common_pair_population(n=60):
    """Subscriptions that all fix equality on (f1, f2) plus one free attr."""
    subs = []
    for i in range(n):
        subs.append(
            Subscription(
                f"s{i}",
                [
                    eq("f1", i % 10),
                    eq("f2", i % 7),
                    eq(f"x{i % 5}", i % 10),
                    le("price", 10 + i),
                ],
            )
        )
    return subs


class TestGreedy:
    def test_prefers_common_pair(self):
        plan = GreedyClusteringOptimizer(stats10()).optimize(common_pair_population())
        multi = [s for s in plan.schemas if len(s) > 1]
        assert ("f1", "f2") in multi

    def test_singletons_always_present(self):
        plan = GreedyClusteringOptimizer(stats10()).optimize(common_pair_population())
        assert ("f1",) in plan.schemas and ("f2",) in plan.schemas

    def test_space_bound_limits_tables(self):
        tight = GreedyClusteringOptimizer(stats10(), max_space=1.0).optimize(
            common_pair_population()
        )
        loose = GreedyClusteringOptimizer(stats10(), max_space=math.inf).optimize(
            common_pair_population()
        )
        assert len(tight.schemas) <= len(loose.schemas)

    def test_plan_cost_improves_on_singletons_only(self):
        subs = common_pair_population()
        opt = GreedyClusteringOptimizer(stats10())
        plan = opt.optimize(subs)
        # recompute the singleton-only cost for comparison
        singleton_plan = GreedyClusteringOptimizer(
            stats10(), max_space=0.0
        ).optimize(subs)
        assert plan.matching_cost <= singleton_plan.matching_cost

    def test_choose_schema_prefers_assignment(self):
        subs = common_pair_population()
        plan = GreedyClusteringOptimizer(stats10()).optimize(subs)
        chosen = plan.choose_schema(subs[0])
        assert chosen is not None
        assert set(chosen) <= subs[0].equality_attributes

    def test_choose_schema_handles_unseen_signature(self):
        plan = GreedyClusteringOptimizer(stats10()).optimize(common_pair_population())
        new_sub = Subscription("new", [eq("f1", 3), le("q", 2)])
        assert plan.choose_schema(new_sub) == ("f1",)

    def test_choose_schema_none_without_equality(self):
        plan = GreedyClusteringOptimizer(stats10()).optimize(common_pair_population())
        assert plan.choose_schema(Subscription("r", [le("q", 2)])) is None

    def test_empty_population(self):
        plan = GreedyClusteringOptimizer(stats10()).optimize([])
        assert plan.schemas == () and plan.matching_cost == 0.0

    def test_max_schema_size_respected(self):
        plan = GreedyClusteringOptimizer(stats10(), max_schema_size=1).optimize(
            common_pair_population()
        )
        assert all(len(s) == 1 for s in plan.schemas)
