"""DynamicParams validation and the potential-table tracker."""

import pytest

from repro.clustering import DynamicParams, PotentialTableTracker


class TestDynamicParams:
    def test_defaults_valid(self):
        p = DynamicParams()
        assert p.bm_max > 0 and p.b_create >= 1

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"bm_max": 0},
            {"bm_max": -1},
            {"b_create": 0},
            {"b_delete": -1},
            {"min_improvement": 0.0},
            {"min_improvement": 1.5},
            {"growth_factor": 0.5},
        ],
    )
    def test_invalid_rejected(self, kwargs):
        with pytest.raises(ValueError):
            DynamicParams(**kwargs)

    def test_frozen(self):
        p = DynamicParams()
        with pytest.raises(Exception):
            p.bm_max = 9


class TestPotentialTableTracker:
    def test_note_accumulates_and_marks(self):
        t = PotentialTableTracker()
        t.note("s1", [("a", "b")], (("a",), (1,)))
        t.note("s2", [("a", "b")], (("a",), (2,)))
        assert t.benefit_of(("a", "b")) == 2
        assert t.is_marked("s1") and t.is_marked("s2")

    def test_marked_sub_not_counted_twice(self):
        t = PotentialTableTracker()
        t.note("s1", [("a", "b")], (("a",), (1,)))
        t.note("s1", [("a", "b")], (("a",), (1,)))
        assert t.benefit_of(("a", "b")) == 1

    def test_note_without_schemas_does_not_mark(self):
        t = PotentialTableTracker()
        t.note("s1", [], (("a",), (1,)))
        assert not t.is_marked("s1")

    def test_ready_sorted_by_benefit(self):
        t = PotentialTableTracker()
        for i in range(3):
            t.note(f"x{i}", [("a", "b")], (("a",), (1,)))
        for i in range(5):
            t.note(f"y{i}", [("b", "c")], (("b",), (1,)))
        assert t.ready(3) == [("b", "c"), ("a", "b")]
        assert t.ready(4) == [("b", "c")]
        assert t.ready(100) == []

    def test_candidates_recorded(self):
        t = PotentialTableTracker()
        t.note("s1", [("a", "b")], (("a",), (1,)))
        t.note("s2", [("a", "b")], (("a",), (2,)))
        assert t.candidates_of(("a", "b")) == ((("a",), (1,)), (("a",), (2,)))

    def test_clear_schema(self):
        t = PotentialTableTracker()
        t.note("s1", [("a", "b")], (("a",), (1,)))
        t.clear_schema(("a", "b"))
        assert t.benefit_of(("a", "b")) == 0
        assert t.candidates_of(("a", "b")) == ()
        assert t.potential_count == 0

    def test_unmark_allows_recount(self):
        t = PotentialTableTracker()
        t.note("s1", [("a", "b")], (("a",), (1,)))
        t.unmark("s1")
        t.note("s1", [("a", "b")], (("a",), (1,)))
        assert t.benefit_of(("a", "b")) == 2

    def test_reset_votes_scoped_to_eligible(self):
        t = PotentialTableTracker()
        for i in range(5):
            t.note(f"x{i}", [("a", "b")], (("a",), (1,)))
            t.note(f"y{i}", [("c", "d")], (("c",), (1,)))
        t.reset_votes(frozenset({"a", "b"}))
        assert t.benefit_of(("a", "b")) == 1
        assert t.benefit_of(("c", "d")) == 5

    def test_reset_clears_everything(self):
        t = PotentialTableTracker()
        t.note("s1", [("a", "b")], (("a",), (1,)))
        t.reset()
        assert t.potential_count == 0 and not t.is_marked("s1")
