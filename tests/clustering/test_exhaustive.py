"""Greedy vs exhaustive: how good is the §3.2 local optimum?"""

import random

import pytest

from repro.clustering import GreedyClusteringOptimizer, UniformStatistics
from repro.clustering.exhaustive import ExhaustiveClusteringOptimizer
from repro.core import Subscription, eq, le


def stats():
    return UniformStatistics(default_domain=10)


def population(seed, n=60, attrs=4):
    """Subscriptions over a tiny attribute universe (exhaustive-friendly)."""
    rng = random.Random(seed)
    names = [f"k{i}" for i in range(attrs)]
    subs = []
    for i in range(n):
        chosen = rng.sample(names, rng.randint(1, min(3, attrs)))
        preds = [eq(a, rng.randint(1, 10)) for a in chosen]
        preds.append(le("price", rng.randint(1, 100)))
        subs.append(Subscription(f"s{i}", preds))
    return subs


class TestExhaustive:
    def test_never_worse_than_greedy(self):
        for seed in range(5):
            subs = population(seed)
            greedy = GreedyClusteringOptimizer(stats()).optimize(subs)
            exact = ExhaustiveClusteringOptimizer(stats()).optimize(subs)
            assert exact.matching_cost <= greedy.matching_cost + 1e-9

    def test_greedy_close_to_optimum(self):
        """The local optimum the paper settles for stays within 25 % of
        the true optimum on these instances."""
        for seed in range(5):
            subs = population(seed)
            greedy = GreedyClusteringOptimizer(stats()).optimize(subs)
            exact = ExhaustiveClusteringOptimizer(stats()).optimize(subs)
            assert greedy.matching_cost <= 1.25 * exact.matching_cost

    def test_includes_singletons(self):
        plan = ExhaustiveClusteringOptimizer(stats()).optimize(population(1))
        for attr in ("k0", "k1", "k2", "k3"):
            present = any(s == (attr,) for s in plan.schemas)
            used = any(attr in g for g, _ in plan.assignment.items() for g in [g[0]])
            assert present or not used

    def test_space_bound_respected(self):
        subs = population(2)
        tight = ExhaustiveClusteringOptimizer(stats(), max_space=2000.0).optimize(subs)
        loose = ExhaustiveClusteringOptimizer(stats()).optimize(subs)
        assert len(tight.schemas) <= len(loose.schemas)
        assert tight.matching_cost >= loose.matching_cost - 1e-9

    def test_candidate_bound_enforced(self):
        rng = random.Random(0)
        names = [f"a{i}" for i in range(12)]
        subs = [
            Subscription(
                f"s{i}", [eq(a, 1) for a in rng.sample(names, 3)]
            )
            for i in range(50)
        ]
        with pytest.raises(ValueError, match="exhaustive bound"):
            ExhaustiveClusteringOptimizer(stats(), max_candidates=10).optimize(subs)

    def test_empty_population(self):
        plan = ExhaustiveClusteringOptimizer(stats()).optimize([])
        assert plan.schemas == ()

    def test_agrees_with_greedy_on_obvious_instance(self):
        # Everyone shares the (f1, f2) pair: both must pick it.
        subs = [
            Subscription(f"s{i}", [eq("f1", i % 5), eq("f2", i % 3), le("p", i)])
            for i in range(80)
        ]
        greedy = GreedyClusteringOptimizer(stats()).optimize(subs)
        exact = ExhaustiveClusteringOptimizer(stats()).optimize(subs)
        assert ("f1", "f2") in exact.schemas
        assert ("f1", "f2") in greedy.schemas
