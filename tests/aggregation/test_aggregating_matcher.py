"""AggregatingMatcher: dedup, covering, expansion, composition, metrics."""

import pytest

from repro.aggregation import AggregatingMatcher
from repro.core import (
    DuplicateSubscriptionError,
    Event,
    Subscription,
    UnknownSubscriptionError,
    eq,
    ge,
    le,
)
from repro.core.oracle import OracleMatcher
from repro.matchers import MATCHER_FACTORIES, make_matcher
from repro.system.resilience import PartialResults
from repro.system.sharding import ShardedMatcher
from repro.workload import WorkloadGenerator, w0


def sub(sid, *preds):
    return Subscription(sid, list(preds))


def norm(ids):
    return sorted(ids, key=str)


class TestDedup:
    def test_exact_duplicates_share_one_frontier_entry(self):
        m = AggregatingMatcher()
        for i in range(5):
            m.add(sub(f"u{i}", eq("x", 1)))
        assert len(m) == 5 and m.frontier_size == 1
        assert len(m.inner) == 1
        assert norm(m.match(Event({"x": 1}))) == [f"u{i}" for i in range(5)]

    def test_syntactic_variants_canonicalize_together(self):
        m = AggregatingMatcher()
        m.add(sub("a", eq("x", 5), le("x", 9)))  # simplifies to x = 5
        m.add(sub("b", eq("x", 5)))
        m.add(sub("c", le("x", 9), eq("x", 5.0)))  # 5.0 interns with 5
        assert m.frontier_size == 1
        assert norm(m.match(Event({"x": 5}))) == ["a", "b", "c"]

    def test_refcount_survives_partial_removal(self):
        m = AggregatingMatcher()
        m.add(sub("a", eq("x", 1)))
        m.add(sub("b", eq("x", 1)))
        m.remove("a")
        assert m.match(Event({"x": 1})) == ["b"]
        m.remove("b")
        assert m.match(Event({"x": 1})) == [] and m.frontier_size == 0

    def test_duplicate_id_rejected(self):
        m = AggregatingMatcher()
        m.add(sub("a", eq("x", 1)))
        with pytest.raises(DuplicateSubscriptionError):
            m.add(sub("a", eq("x", 2)))

    def test_unknown_removal_rejected(self):
        m = AggregatingMatcher()
        with pytest.raises(UnknownSubscriptionError):
            m.remove("ghost")


class TestCovering:
    def test_covered_subscription_never_reaches_inner(self):
        m = AggregatingMatcher()
        m.add(sub("broad", le("p", 100)))
        m.add(sub("narrow", le("p", 50)))
        assert len(m.inner) == 1 and m.frontier_size == 1

    def test_expansion_tests_covered_children(self):
        m = AggregatingMatcher()
        m.add(sub("broad", le("p", 100)))
        m.add(sub("narrow", le("p", 50)))
        assert norm(m.match(Event({"p": 30}))) == ["broad", "narrow"]
        # Covering is one-directional: the parent matching must not
        # drag a non-matching child into the result.
        assert norm(m.match(Event({"p": 80}))) == ["broad"]

    def test_broad_late_arrival_demotes(self):
        m = AggregatingMatcher()
        m.add(sub("narrow", le("p", 50)))
        m.add(sub("broad", le("p", 100)))
        assert m.frontier_size == 1 and len(m.inner) == 1
        assert norm(m.match(Event({"p": 30}))) == ["broad", "narrow"]

    def test_unsubscribing_frontier_promotes_covered(self):
        m = AggregatingMatcher()
        m.add(sub("broad", le("p", 100)))
        m.add(sub("narrow", le("p", 50)))
        m.remove("broad")
        assert m.frontier_size == 1
        assert m.match(Event({"p": 30})) == ["narrow"]
        assert m.match(Event({"p": 80})) == []

    def test_unsatisfiable_subscription_is_inert(self):
        m = AggregatingMatcher()
        m.add(sub("never", eq("x", 1), eq("x", 2)))
        assert len(m) == 1 and m.frontier_size == 0 and len(m.inner) == 0
        assert m.match(Event({"x": 1})) == []
        assert m.remove("never").id == "never"
        assert len(m) == 0


class TestMatcherSurface:
    def test_iter_subscriptions_returns_raw(self):
        m = AggregatingMatcher()
        raw = [sub("a", le("p", 100)), sub("b", le("p", 50)), sub("c", le("p", 50))]
        for s in raw:
            m.add(s)
        assert sorted(s.id for s in m.iter_subscriptions()) == ["a", "b", "c"]
        assert m.get("b").predicates == raw[1].predicates
        with pytest.raises(UnknownSubscriptionError):
            m.get("ghost")

    def test_match_batch_equals_scalar(self):
        gen = WorkloadGenerator(w0(n_subscriptions=300, seed=3))
        subs = list(gen.subscriptions())
        events = list(gen.events(30))
        a, b = AggregatingMatcher(), AggregatingMatcher()
        for s in subs:
            a.add(s)
            b.add(s)
        batched = a.match_batch(events)
        for e, ids in zip(events, batched):
            assert norm(ids) == norm(b.match(e))

    def test_stats_contract_and_shape(self):
        m = AggregatingMatcher()
        m.add(sub("a", le("p", 100)))
        m.add(sub("b", le("p", 50)))
        m.add(sub("c", le("p", 50)))
        m.match(Event({"p": 10}))
        st = m.stats()
        assert st["name"] == "aggregating"
        assert st["subscriptions"] == 3
        assert st["frontier_size"] == 1
        assert st["groups"] == 2 and st["covered_groups"] == 1
        assert st["counters"]["duplicates"] == 1
        assert st["counters"]["covered"] == 1
        assert st["counters"]["expansions"] == 3
        assert st["inner"]["name"]

    def test_metrics_families_exported(self):
        m = AggregatingMatcher()
        registry = m.use_metrics()
        m.add(sub("a", le("p", 100)))
        m.add(sub("b", le("p", 50)))
        m.add(sub("c", le("p", 50)))
        m.match(Event({"p": 10}))
        snap = registry.snapshot()
        values = {
            fam["name"]: fam["samples"][0]["value"]
            for fam in snap["metrics"]
            if fam["name"].startswith("repro_agg_") and fam["samples"]
        }
        assert values["repro_agg_frontier_size"] == 1
        assert values["repro_agg_subscribers"] == 3
        assert values["repro_agg_duplicates_total"] == 1
        assert values["repro_agg_covered_total"] == 1
        assert values["repro_agg_expansions_total"] == 3

    def test_registered_in_factories(self):
        m = make_matcher("aggregating", inner="counting")
        assert isinstance(m, AggregatingMatcher)
        assert "aggregating" in MATCHER_FACTORIES


class TestComposition:
    def test_sharded_inner_preserves_degraded_flag(self):
        m = AggregatingMatcher(
            inner=lambda: ShardedMatcher(shards=2, router="hash", breaker=True)
        )
        m.add(sub("a", eq("x", 1)))
        m.add(sub("b", eq("x", 1)))
        sharded = m.inner
        # Force both breakers open: every shard is quarantined, so the
        # match degrades instead of failing.
        for breaker in sharded._breakers:
            while breaker.state != "open":
                breaker.record_failure()
        result = m.match(Event({"x": 1}))
        assert isinstance(result, PartialResults) and result.degraded
        m.close()

    def test_aggregating_as_sharded_inner(self):
        m = ShardedMatcher(shards=2, router="hash", inner="aggregating")
        gen = WorkloadGenerator(w0(n_subscriptions=200, seed=5))
        subs = list(gen.subscriptions())
        events = list(gen.events(20))
        oracle = OracleMatcher()
        for s in subs:
            m.add(s)
            oracle.add(s)
        for e in events:
            assert norm(m.match(e)) == norm(oracle.match(e))
        m.close()

    def test_differential_with_churn(self):
        gen = WorkloadGenerator(w0(n_subscriptions=400, seed=9))
        subs = list(gen.subscriptions())
        events = list(gen.events(25))
        m, oracle = AggregatingMatcher(), OracleMatcher()
        for s in subs:
            m.add(s)
            oracle.add(s)
        for e in events[:10]:
            assert norm(m.match(e)) == norm(oracle.match(e))
        # Churn: remove every third subscription (frontier members
        # among them — promotions exercised), then re-check.
        for s in subs[::3]:
            m.remove(s.id)
            oracle.remove(s.id)
        for e in events[10:]:
            assert norm(m.match(e)) == norm(oracle.match(e))
        assert len(m) == len(oracle)
