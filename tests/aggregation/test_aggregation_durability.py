"""Aggregated state through the durability layer.

The aggregation layer persists nothing of its own: ``iter_subscriptions``
exposes the *raw* subscriptions, so snapshots and WAL replay re-add them
through ``AggregatingMatcher.add``, which deterministically rebuilds the
refcounts and the covering forest.  These tests pin that round trip —
including refcounts, frontier size, and differential equality with the
oracle after recovery — plus broker composition on the live path.
"""

import pytest

from repro.aggregation import AggregatingMatcher
from repro.core import Event, Subscription, eq, le
from repro.core.oracle import OracleMatcher
from repro.system import (
    PubSubBroker,
    QueueNotifier,
    VirtualClock,
    WriteAheadLog,
    recover_files,
    save_snapshot,
)
from repro.workload import WorkloadGenerator, w0


def sub(sid, *preds):
    return Subscription(sid, list(preds))


def norm(ids):
    return sorted(ids, key=str)


def agg_broker(clock, wal=None):
    return PubSubBroker(
        matcher=AggregatingMatcher(),
        clock=clock,
        notifier=QueueNotifier(),
        wal=wal,
    )


class TestBrokerComposition:
    def test_publish_expands_through_broker(self):
        broker = agg_broker(VirtualClock())
        broker.subscribe(sub("a", le("p", 100)))
        broker.subscribe(sub("b", le("p", 50)))
        broker.subscribe(sub("c", le("p", 50)))
        assert norm(broker.publish(Event({"p": 10}))) == ["a", "b", "c"]
        assert norm(broker.publish(Event({"p": 70}))) == ["a"]
        broker.unsubscribe("a")
        assert norm(broker.publish(Event({"p": 10}))) == ["b", "c"]
        assert broker.publish(Event({"p": 70})) == []


class TestRecoveryRoundTrip:
    def test_wal_replay_rebuilds_refcounts_and_forest(self, tmp_path):
        wal_path = tmp_path / "agg.wal"
        clock = VirtualClock()
        src = agg_broker(clock, wal=WriteAheadLog(wal_path, fsync="always", clock=clock))
        src.subscribe(sub("dup1", eq("x", 1)))
        src.subscribe(sub("dup2", eq("x", 1)))
        src.subscribe(sub("broad", le("p", 100)))
        src.subscribe(sub("narrow", le("p", 50)))
        src.subscribe(sub("never", eq("y", 1), eq("y", 2)))
        src.unsubscribe("dup1")
        before = src.matcher.stats()
        src.wal.close()

        clock2 = VirtualClock()
        dst = agg_broker(clock2)
        recover_files(dst, wal_path=wal_path)
        after = dst.matcher.stats()
        assert after["subscriptions"] == 4
        assert after["frontier_size"] == before["frontier_size"] == 2
        assert after["groups"] == before["groups"]
        assert after["unsatisfiable_groups"] == 1
        # Refcounts: the surviving duplicate still answers alone.
        assert dst.publish(Event({"x": 1})) == ["dup2"]
        assert norm(dst.publish(Event({"p": 30}))) == ["broad", "narrow"]
        assert dst.publish(Event({"p": 70})) == ["broad"]

    def test_snapshot_plus_wal_tail_differential(self, tmp_path):
        gen = WorkloadGenerator(w0(n_subscriptions=300, seed=21))
        subs = list(gen.subscriptions())
        # Duplicate-heavy population: every third subscription has an
        # exact clone under a different subscriber id.
        subs += [
            Subscription(f"{s.id}-dup", s.predicates) for s in subs[::3]
        ]
        events = list(gen.events(20))
        wal_path = tmp_path / "agg.wal"
        snap_path = tmp_path / "agg.snap"
        clock = VirtualClock()
        src = agg_broker(clock, wal=WriteAheadLog(wal_path, fsync="always", clock=clock))
        oracle = OracleMatcher()
        for s in subs[:200]:
            src.subscribe(s)
            oracle.add(s)
        with open(snap_path, "w") as fp:
            save_snapshot(src, fp)
        # Post-snapshot churn lands only in the WAL tail.
        for s in subs[200:]:
            src.subscribe(s)
            oracle.add(s)
        for s in subs[::5]:
            src.unsubscribe(s.id)
            oracle.remove(s.id)
        src.wal.close()

        dst = agg_broker(VirtualClock())
        recover_files(dst, snapshot_path=snap_path, wal_path=wal_path)
        assert len(dst.matcher) == len(oracle)
        # The recovered frontier must still be an aggregation: the
        # W0 population has heavy canonical-key collisions.
        assert dst.matcher.frontier_size < len(dst.matcher)
        for e in events:
            assert norm(dst.publish(e)) == norm(oracle.match(e))

    def test_recovered_churn_still_promotes(self, tmp_path):
        """Covering state rebuilt by replay behaves under further churn."""
        wal_path = tmp_path / "agg.wal"
        clock = VirtualClock()
        src = agg_broker(clock, wal=WriteAheadLog(wal_path, fsync="always", clock=clock))
        src.subscribe(sub("broad", le("p", 100)))
        src.subscribe(sub("narrow", le("p", 50)))
        src.wal.close()

        dst = agg_broker(VirtualClock())
        recover_files(dst, wal_path=wal_path)
        dst.unsubscribe("broad")
        assert dst.matcher.frontier_size == 1
        assert dst.publish(Event({"p": 30})) == ["narrow"]
        assert dst.publish(Event({"p": 70})) == []
