"""Covering-forest invariants: placement, demotion, promotion."""

import pytest

from repro.aggregation.forest import CoveringForest
from repro.core.covering import _by_attribute, covers
from repro.core import Subscription, eq, le
from repro.core.simplify import simplify_predicates


def attrs_of(*preds):
    return _by_attribute(simplify_predicates(list(preds)))


class TestInsert:
    def test_first_group_joins_frontier(self):
        f = CoveringForest()
        parent, demoted = f.insert(0, attrs_of(eq("x", 1)))
        assert parent is None and demoted == []
        assert f.is_frontier(0) and f.frontier_size == 1

    def test_covered_newcomer_attaches(self):
        f = CoveringForest()
        f.insert(0, attrs_of(le("p", 100)))
        parent, demoted = f.insert(1, attrs_of(le("p", 50)))
        assert parent == 0 and demoted == []
        assert not f.is_frontier(1) and f.parent(1) == 0
        assert f.children(0) == (1,)
        assert f.frontier_size == 1

    def test_broad_newcomer_demotes_frontier(self):
        f = CoveringForest()
        f.insert(0, attrs_of(le("p", 50)))
        parent, demoted = f.insert(1, attrs_of(le("p", 100)))
        assert parent is None and demoted == [0]
        assert f.is_frontier(1) and not f.is_frontier(0)
        assert f.children(1) == (0,)
        assert f.frontier_size == 1

    def test_demotion_reparents_grandchildren(self):
        f = CoveringForest()
        f.insert(0, attrs_of(le("p", 50)))
        f.insert(1, attrs_of(le("p", 30)))  # child of 0
        f.insert(2, attrs_of(le("p", 100)))  # demotes 0; 1 re-parents to 2
        assert f.parent(0) == 2 and f.parent(1) == 2
        assert set(f.children(2)) == {0, 1}
        assert f.frontier_size == 1  # flat: depth never exceeds 2

    def test_incomparable_groups_coexist_on_frontier(self):
        f = CoveringForest()
        f.insert(0, attrs_of(eq("x", 1)))
        f.insert(1, attrs_of(eq("y", 1)))
        assert f.frontier_size == 2

    def test_duplicate_gid_rejected(self):
        f = CoveringForest()
        f.insert(0, attrs_of(eq("x", 1)))
        with pytest.raises(KeyError):
            f.insert(0, attrs_of(eq("x", 2)))


class TestRemove:
    def test_remove_covered_group_touches_nothing(self):
        f = CoveringForest()
        f.insert(0, attrs_of(le("p", 100)))
        f.insert(1, attrs_of(le("p", 50)))
        promoted, demoted = f.remove(1)
        assert promoted == [] and demoted == []
        assert f.frontier_size == 1 and 1 not in f

    def test_remove_root_promotes_orphan(self):
        f = CoveringForest()
        f.insert(0, attrs_of(le("p", 100)))
        f.insert(1, attrs_of(le("p", 50)))
        promoted, demoted = f.remove(0)
        assert promoted == [1] and demoted == []
        assert f.is_frontier(1) and f.frontier_size == 1

    def test_remove_root_rehomes_under_other_coverer(self):
        f = CoveringForest()
        f.insert(0, attrs_of(le("p", 100)))
        f.insert(1, attrs_of(le("p", 90)))  # covered by 0
        f.insert(2, attrs_of(le("p", 50)))  # covered by 0
        promoted, demoted = f.remove(0)
        # 1 promotes first (deterministic order), then 2 attaches under it.
        assert promoted == [1] and demoted == []
        assert f.parent(2) == 1

    def test_promotion_cascade_nets_out(self):
        # Root covers both orphans; the wider orphan promotes and the
        # narrower one attaches beneath it, whichever order they are
        # processed in — net: exactly one promotion, nothing demoted
        # that was promoted in the same removal.
        f = CoveringForest()
        f.insert(0, attrs_of(le("p", 100)))
        f.insert(1, attrs_of(le("p", 10)))
        f.insert(2, attrs_of(le("p", 90)))
        promoted, demoted = f.remove(0)
        assert set(promoted) and not (set(promoted) & set(demoted))
        assert f.frontier_size == 1
        root = promoted[-1] if len(promoted) == 1 else None
        # Whatever the processing order, the surviving frontier root
        # semantically covers the attached child.
        roots = f.frontier()
        assert len(roots) == 1
        child = [g for g in (1, 2) if g != roots[0]][0]
        assert f.parent(child) == roots[0]

    def test_parent_always_semantically_covers_child(self):
        # Build a chain, force re-parenting, and verify the semantic
        # (not merely provable) invariant with covers() directly.
        specs = {
            0: [le("p", 50)],
            1: [le("p", 30)],
            2: [le("p", 100)],
            3: [le("p", 80)],
        }
        f = CoveringForest()
        for gid, preds in specs.items():
            f.insert(gid, attrs_of(*preds))
        f.remove(2)  # the broadest root dies; everyone re-homes
        for gid in (0, 1, 3):
            parent = f.parent(gid)
            if parent is not None:
                broad = Subscription(parent, specs[parent])
                narrow = Subscription(gid, specs[gid])
                assert covers(broad, narrow), (parent, gid)
