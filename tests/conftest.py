"""Shared fixtures and deterministic random-model helpers."""

from __future__ import annotations

import faulthandler
import os
import random
from typing import List

import pytest

from repro.core import Event, Operator, Predicate, Subscription

ATTRS = [f"a{i}" for i in range(8)]

#: Per-test watchdog budget in seconds; 0 disables it.  The chaos suite
#: exercises bounded queues and breakers — a regression there deadlocks
#: rather than fails, so every test gets a dependency-free stdlib timer
#: that dumps all thread stacks and aborts the run instead of hanging CI.
WATCHDOG_SECONDS = float(os.environ.get("REPRO_TEST_TIMEOUT", "300"))


def shm_entries() -> set:
    """Names of this suite's shared-memory segments live in ``/dev/shm``."""
    try:
        return {n for n in os.listdir("/dev/shm") if n.startswith("repro_shm_")}
    except (FileNotFoundError, NotADirectoryError):  # pragma: no cover
        return set()


@pytest.fixture(scope="session", autouse=True)
def _shm_leak_guard():
    """Fail the run if any test leaks a shared-memory segment.

    Every ``repro_shm_*`` segment is owned (and unlinked) by exactly one
    parent :class:`~repro.system.procpool.ProcessPool`; anything still in
    ``/dev/shm`` after the session — including across the SIGKILL chaos
    suite — is a lifecycle bug, not cleanup noise.
    """
    before = shm_entries()
    yield
    leaked = shm_entries() - before
    assert not leaked, f"leaked shared-memory segments: {sorted(leaked)}"


@pytest.fixture(autouse=True)
def _watchdog(request):
    """Fail a wedged test fast (stack dump + abort) instead of hanging.

    A test may tighten (or loosen) its own budget with
    ``@pytest.mark.watchdog(seconds)`` — the process-executor suites use
    this so an IPC deadlock aborts in seconds, not minutes.  The
    ``REPRO_TEST_TIMEOUT`` environment default still caps everything
    else; 0 (from either source) disables the timer for that scope.
    """
    budget = WATCHDOG_SECONDS
    marker = request.node.get_closest_marker("watchdog")
    if marker is not None and marker.args:
        budget = float(marker.args[0])
    if budget <= 0 or not hasattr(faulthandler, "dump_traceback_later"):
        yield
        return
    faulthandler.dump_traceback_later(budget, exit=True)
    try:
        yield
    finally:
        faulthandler.cancel_dump_traceback_later()


def make_subscription(rng: random.Random, sub_id, max_preds: int = 5) -> Subscription:
    """Random subscription over the small shared attribute pool."""
    chosen = rng.sample(ATTRS, rng.randint(1, max_preds))
    preds = [
        Predicate(a, rng.choice(list(Operator)), rng.randint(1, 10)) for a in chosen
    ]
    return Subscription(sub_id, preds)


def make_event(rng: random.Random, min_attrs: int = 3) -> Event:
    """Random event over the small shared attribute pool."""
    attrs = rng.sample(ATTRS, rng.randint(min_attrs, len(ATTRS)))
    return Event({a: rng.randint(1, 10) for a in attrs})


@pytest.fixture
def rng() -> random.Random:
    """Per-test deterministic RNG."""
    return random.Random(12345)


@pytest.fixture
def small_population(rng) -> List[Subscription]:
    """200 random subscriptions."""
    return [make_subscription(rng, f"s{i}") for i in range(200)]


@pytest.fixture
def small_events(rng) -> List[Event]:
    """50 random events."""
    return [make_event(rng) for _ in range(50)]
