"""Predicate and Operator semantics."""

import pytest

from repro.core import (
    InvalidPredicateError,
    Operator,
    Predicate,
    eq,
    ge,
    gt,
    le,
    lt,
    ne,
)


class TestOperator:
    def test_symbols_round_trip(self):
        for op in Operator:
            assert Operator.from_symbol(op.value) is op

    def test_double_equals_alias(self):
        assert Operator.from_symbol("==") is Operator.EQ

    def test_unknown_symbol_rejected(self):
        with pytest.raises(InvalidPredicateError):
            Operator.from_symbol("<>")

    def test_is_equality(self):
        assert Operator.EQ.is_equality
        assert not any(
            op.is_equality for op in Operator if op is not Operator.EQ
        )

    def test_is_range(self):
        assert {op for op in Operator if op.is_range} == {
            Operator.LT,
            Operator.LE,
            Operator.GE,
            Operator.GT,
        }

    @pytest.mark.parametrize(
        "op,complement",
        [
            (Operator.LT, Operator.GE),
            (Operator.LE, Operator.GT),
            (Operator.EQ, Operator.NE),
        ],
    )
    def test_negate_is_involution(self, op, complement):
        assert op.negate() is complement
        assert complement.negate() is op

    def test_python_callable_order(self):
        # event_value on the left: 8 <= 10 is True for (price, 10, <=).
        assert Operator.LE.python(8, 10) is True
        assert Operator.LE.python(12, 10) is False


class TestPredicateMatching:
    @pytest.mark.parametrize(
        "op,value,event_value,expected",
        [
            (Operator.LT, 10, 9, True),
            (Operator.LT, 10, 10, False),
            (Operator.LE, 10, 10, True),
            (Operator.LE, 10, 11, False),
            (Operator.EQ, 10, 10, True),
            (Operator.EQ, 10, 9, False),
            (Operator.NE, 10, 9, True),
            (Operator.NE, 10, 10, False),
            (Operator.GE, 10, 10, True),
            (Operator.GE, 10, 9, False),
            (Operator.GT, 10, 11, True),
            (Operator.GT, 10, 10, False),
        ],
    )
    def test_numeric_semantics(self, op, value, event_value, expected):
        assert Predicate("x", op, value).matches(event_value) is expected

    def test_paper_example(self):
        # (price, $8) matches (price, $10, <=) because 8 <= 10.
        assert le("price", 10).matches(8)

    def test_string_equality(self):
        p = eq("movie", "groundhog day")
        assert p.matches("groundhog day")
        assert not p.matches("casablanca")

    def test_string_inequality(self):
        assert ne("movie", "casablanca").matches("groundhog day")

    def test_mixed_types_eq_is_false(self):
        assert not eq("x", "5").matches(5)
        assert not eq("x", 5).matches("5")

    def test_mixed_types_ne_is_true(self):
        assert ne("x", "5").matches(5)

    def test_mixed_types_range_is_false(self):
        assert not le("x", 10).matches("3")

    def test_int_float_cross_match(self):
        assert eq("x", 5).matches(5.0)
        assert le("x", 5.5).matches(5)

    def test_bool_normalized_to_int(self):
        assert Predicate("x", Operator.EQ, True).value == 1
        assert eq("x", 1).matches(True) or eq("x", 1).matches(1)


class TestPredicateValidation:
    def test_empty_attribute_rejected(self):
        with pytest.raises(InvalidPredicateError):
            Predicate("", Operator.EQ, 1)

    def test_non_string_attribute_rejected(self):
        with pytest.raises(InvalidPredicateError):
            Predicate(5, Operator.EQ, 1)

    def test_string_with_range_operator_rejected(self):
        with pytest.raises(InvalidPredicateError):
            Predicate("x", Operator.LE, "abc")

    def test_unsupported_value_type_rejected(self):
        with pytest.raises(InvalidPredicateError):
            Predicate("x", Operator.EQ, [1, 2])

    def test_operator_coerced_from_symbol(self):
        assert Predicate("x", "<=", 3).operator is Operator.LE

    def test_immutable(self):
        p = eq("x", 1)
        with pytest.raises(AttributeError):
            p.value = 2


class TestPredicateIdentity:
    def test_structural_equality_and_hash(self):
        assert eq("x", 3) == eq("x", 3)
        assert hash(eq("x", 3)) == hash(eq("x", 3))

    def test_distinct_operator_not_equal(self):
        assert eq("x", 3) != le("x", 3)

    def test_usable_as_dict_key(self):
        d = {eq("x", 3): "a"}
        assert d[eq("x", 3)] == "a"

    def test_as_tuple(self):
        assert ge("y", 7).as_tuple() == ("y", ">=", 7)

    def test_repr_mentions_parts(self):
        r = repr(lt("price", 400))
        assert "price" in r and "<" in r and "400" in r


class TestPredicateCovers:
    def test_identical_covers(self):
        assert le("x", 5).covers(le("x", 5))

    def test_le_covers_tighter_le(self):
        assert le("x", 10).covers(le("x", 5))
        assert not le("x", 5).covers(le("x", 10))

    def test_lt_le_boundary(self):
        assert le("x", 10).covers(lt("x", 10))
        assert not lt("x", 10).covers(le("x", 10))

    def test_ge_covers_tighter(self):
        assert ge("x", 1).covers(ge("x", 5))
        assert ge("x", 1).covers(gt("x", 1))

    def test_covers_eq_point(self):
        assert le("x", 10).covers(eq("x", 7))
        assert not le("x", 10).covers(eq("x", 11))

    def test_ne_covered_by_excluding_range(self):
        assert ne("x", 5).covers(lt("x", 5))
        assert ne("x", 5).covers(gt("x", 5))
        assert not ne("x", 5).covers(lt("x", 6))

    def test_different_attribute_never_covers(self):
        assert not le("x", 10).covers(le("y", 5))

    def test_opposite_directions_do_not_cover(self):
        assert not le("x", 10).covers(ge("x", 1))
