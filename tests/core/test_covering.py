"""Subscription covering (subsumption)."""

import pytest

from repro.core import Subscription, eq, ge, gt, le, lt, ne
from repro.core.covering import AttributeIndex, CoverageIndex, covers


def sub(sid, *preds):
    return Subscription(sid, list(preds))


class TestCovers:
    def test_reflexive(self):
        s = sub("a", eq("x", 1), le("y", 5))
        assert covers(s, s)

    def test_looser_bound_covers_tighter(self):
        assert covers(sub("b", le("p", 100)), sub("n", le("p", 50)))
        assert not covers(sub("b", le("p", 50)), sub("n", le("p", 100)))

    def test_fewer_attributes_covers_more(self):
        broad = sub("b", eq("movie", "gd"))
        narrow = sub("n", eq("movie", "gd"), le("price", 10))
        assert covers(broad, narrow)
        assert not covers(narrow, broad)

    def test_range_covers_equality_point(self):
        assert covers(sub("b", le("p", 10)), sub("n", eq("p", 7)))
        assert not covers(sub("b", le("p", 10)), sub("n", eq("p", 11)))

    def test_interval_containment(self):
        broad = sub("b", ge("p", 0), le("p", 100))
        narrow = sub("n", ge("p", 10), le("p", 20))
        assert covers(broad, narrow)
        assert not covers(narrow, broad)

    def test_strictness_at_boundary(self):
        assert covers(sub("b", le("p", 10)), sub("n", lt("p", 10)))
        assert not covers(sub("b", lt("p", 10)), sub("n", le("p", 10)))

    def test_ne_covered_by_disjoint_range(self):
        assert covers(sub("b", ne("p", 5)), sub("n", gt("p", 5)))
        assert not covers(sub("b", ne("p", 5)), sub("n", gt("p", 4)))

    def test_different_attributes_incomparable(self):
        assert not covers(sub("b", eq("x", 1)), sub("n", eq("y", 1)))

    def test_unsatisfiable_narrow_vacuously_covered(self):
        impossible = sub("n", eq("x", 1), eq("x", 2))
        assert covers(sub("b", eq("zzz", 9)), impossible)

    def test_unsatisfiable_broad_covers_nothing_satisfiable(self):
        impossible = sub("b", eq("x", 1), eq("x", 2))
        assert not covers(impossible, sub("n", eq("x", 1)))

    def test_redundant_predicates_do_not_confuse(self):
        broad = sub("b", le("p", 100), le("p", 90))
        narrow = sub("n", le("p", 95), le("p", 80))
        assert covers(broad, narrow)

    def test_semantic_soundness_sampled(self, rng):
        """If covers() says yes, no sampled event may contradict it."""
        from tests.conftest import make_event, make_subscription

        pairs = 0
        for i in range(150):
            a = make_subscription(rng, f"a{i}", max_preds=3)
            b = make_subscription(rng, f"b{i}", max_preds=3)
            if covers(a, b):
                pairs += 1
                for _ in range(30):
                    e = make_event(rng)
                    if b.is_satisfied_by(e):
                        assert a.is_satisfied_by(e), (a, b, e)


class TestCoverageIndex:
    def test_redundant_detection(self):
        idx = CoverageIndex()
        idx.add(sub("broad", le("p", 100)))
        redundant, covered = idx.add(sub("narrow", le("p", 50)))
        assert redundant and covered == []

    def test_newly_covered_reported(self):
        idx = CoverageIndex()
        idx.add(sub("narrow", le("p", 50)))
        redundant, covered = idx.add(sub("broad", le("p", 100)))
        assert not redundant and covered == ["narrow"]

    def test_covering_set_minimal(self):
        idx = CoverageIndex()
        idx.add(sub("a", le("p", 100)))
        idx.add(sub("b", le("p", 50)))
        idx.add(sub("c", eq("q", 1)))
        kept = {s.id for s in idx.covering_set()}
        assert kept == {"a", "c"}

    def test_equivalent_subscriptions_keep_one(self):
        idx = CoverageIndex()
        idx.add(sub("first", le("p", 10)))
        idx.add(sub("second", le("p", 10)))
        assert [s.id for s in idx.covering_set()] == ["first"]

    def test_remove(self):
        idx = CoverageIndex()
        idx.add(sub("a", le("p", 100)))
        idx.remove("a")
        assert len(idx) == 0 and "a" not in idx
        with pytest.raises(KeyError):
            idx.remove("a")

    def test_duplicate_id_rejected(self):
        from repro.core import InvalidSubscriptionError

        idx = CoverageIndex()
        idx.add(sub("a", le("p", 1)))
        with pytest.raises(InvalidSubscriptionError):
            idx.add(sub("a", le("p", 2)))


class TestRemoveLifecycle:
    """Regression: ``remove`` must report newly-uncovered subscriptions.

    The seed silently dropped covering relations on removal, so a
    routing/aggregation layer built on the index could never learn that
    a departure exposed previously-covered subscriptions — stale
    frontier state.  ``remove`` now mirrors ``add``.
    """

    def test_removing_coverer_reports_uncovered(self):
        idx = CoverageIndex()
        idx.add(sub("broad", le("p", 100)))
        idx.add(sub("narrow", le("p", 50)))
        removed, uncovered = idx.remove("broad")
        assert removed.id == "broad"
        assert uncovered == ["narrow"]

    def test_backup_coverer_keeps_sub_covered(self):
        idx = CoverageIndex()
        idx.add(sub("broad1", le("p", 100)))
        idx.add(sub("broad2", le("p", 90)))
        idx.add(sub("narrow", le("p", 50)))
        _, uncovered = idx.remove("broad1")
        # narrow stays covered by broad2; broad2 itself (covered only
        # by the departing broad1) is what surfaces.
        assert uncovered == ["broad2"]
        _, uncovered = idx.remove("broad2")
        assert uncovered == ["narrow"]

    def test_removing_covered_sub_uncovers_nothing(self):
        idx = CoverageIndex()
        idx.add(sub("broad", le("p", 100)))
        idx.add(sub("narrow", le("p", 50)))
        _, uncovered = idx.remove("narrow")
        assert uncovered == []

    def test_removing_unrelated_sub_uncovers_nothing(self):
        idx = CoverageIndex()
        idx.add(sub("a", eq("x", 1)))
        idx.add(sub("b", eq("y", 1)))
        _, uncovered = idx.remove("a")
        assert uncovered == []

    def test_multiple_newly_uncovered(self):
        idx = CoverageIndex()
        idx.add(sub("broad", le("p", 100)))
        idx.add(sub("n1", le("p", 50)))
        idx.add(sub("n2", eq("q", 1)))
        _, uncovered = idx.remove("broad")
        assert sorted(uncovered) == ["n1"]  # n2 was never covered
        idx.add(sub("wide", le("p", 80), ge("p", 0)))
        _, uncovered = idx.remove("n1")
        assert uncovered == []  # wide is incomparable, nothing exposed

    def test_unsatisfiable_subs_never_reported_uncovered(self):
        idx = CoverageIndex()
        idx.add(sub("broad", le("p", 100)))
        idx.add(sub("never", eq("p", 1), eq("p", 2)))
        _, uncovered = idx.remove("broad")
        assert uncovered == []  # vacuously covered forever

    def test_add_remove_symmetry(self):
        """What add reports covered, removing the coverer reports back."""
        idx = CoverageIndex()
        idx.add(sub("n1", le("p", 50)))
        idx.add(sub("n2", le("p", 40)))
        _, covered = idx.add(sub("broad", le("p", 100)))
        assert sorted(covered) == ["n1", "n2"]
        _, uncovered = idx.remove("broad")
        # n2 stays covered by n1 (p<=50 covers p<=40); only n1 surfaces.
        assert sorted(uncovered) == ["n1"]


class TestAttributeIndex:
    def test_subset_and_superset_candidates(self):
        ai = AttributeIndex()
        ai.add("xy", ["x", "y"])
        ai.add("x", ["x"])
        ai.add("xyz", ["x", "y", "z"])
        assert sorted(ai.subset_candidates(["x", "y"])) == ["x", "xy"]
        assert sorted(ai.superset_candidates(["x", "y"])) == ["xy", "xyz"]
        assert sorted(ai.subset_candidates(["x"])) == ["x"]
        assert sorted(ai.superset_candidates(["z"])) == ["xyz"]

    def test_remove_purges_postings(self):
        ai = AttributeIndex()
        ai.add("a", ["x", "y"])
        ai.remove("a")
        assert len(ai) == 0 and "a" not in ai
        assert ai.subset_candidates(["x", "y"]) == []
        assert ai.superset_candidates(["x"]) == []

    def test_duplicate_key_rejected(self):
        ai = AttributeIndex()
        ai.add("a", ["x"])
        with pytest.raises(KeyError):
            ai.add("a", ["y"])

    def test_empty_signature_rejected(self):
        ai = AttributeIndex()
        with pytest.raises(ValueError):
            ai.add("a", [])
