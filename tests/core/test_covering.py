"""Subscription covering (subsumption)."""

import pytest

from repro.core import Subscription, eq, ge, gt, le, lt, ne
from repro.core.covering import CoverageIndex, covers


def sub(sid, *preds):
    return Subscription(sid, list(preds))


class TestCovers:
    def test_reflexive(self):
        s = sub("a", eq("x", 1), le("y", 5))
        assert covers(s, s)

    def test_looser_bound_covers_tighter(self):
        assert covers(sub("b", le("p", 100)), sub("n", le("p", 50)))
        assert not covers(sub("b", le("p", 50)), sub("n", le("p", 100)))

    def test_fewer_attributes_covers_more(self):
        broad = sub("b", eq("movie", "gd"))
        narrow = sub("n", eq("movie", "gd"), le("price", 10))
        assert covers(broad, narrow)
        assert not covers(narrow, broad)

    def test_range_covers_equality_point(self):
        assert covers(sub("b", le("p", 10)), sub("n", eq("p", 7)))
        assert not covers(sub("b", le("p", 10)), sub("n", eq("p", 11)))

    def test_interval_containment(self):
        broad = sub("b", ge("p", 0), le("p", 100))
        narrow = sub("n", ge("p", 10), le("p", 20))
        assert covers(broad, narrow)
        assert not covers(narrow, broad)

    def test_strictness_at_boundary(self):
        assert covers(sub("b", le("p", 10)), sub("n", lt("p", 10)))
        assert not covers(sub("b", lt("p", 10)), sub("n", le("p", 10)))

    def test_ne_covered_by_disjoint_range(self):
        assert covers(sub("b", ne("p", 5)), sub("n", gt("p", 5)))
        assert not covers(sub("b", ne("p", 5)), sub("n", gt("p", 4)))

    def test_different_attributes_incomparable(self):
        assert not covers(sub("b", eq("x", 1)), sub("n", eq("y", 1)))

    def test_unsatisfiable_narrow_vacuously_covered(self):
        impossible = sub("n", eq("x", 1), eq("x", 2))
        assert covers(sub("b", eq("zzz", 9)), impossible)

    def test_unsatisfiable_broad_covers_nothing_satisfiable(self):
        impossible = sub("b", eq("x", 1), eq("x", 2))
        assert not covers(impossible, sub("n", eq("x", 1)))

    def test_redundant_predicates_do_not_confuse(self):
        broad = sub("b", le("p", 100), le("p", 90))
        narrow = sub("n", le("p", 95), le("p", 80))
        assert covers(broad, narrow)

    def test_semantic_soundness_sampled(self, rng):
        """If covers() says yes, no sampled event may contradict it."""
        from tests.conftest import make_event, make_subscription

        pairs = 0
        for i in range(150):
            a = make_subscription(rng, f"a{i}", max_preds=3)
            b = make_subscription(rng, f"b{i}", max_preds=3)
            if covers(a, b):
                pairs += 1
                for _ in range(30):
                    e = make_event(rng)
                    if b.is_satisfied_by(e):
                        assert a.is_satisfied_by(e), (a, b, e)


class TestCoverageIndex:
    def test_redundant_detection(self):
        idx = CoverageIndex()
        idx.add(sub("broad", le("p", 100)))
        redundant, covered = idx.add(sub("narrow", le("p", 50)))
        assert redundant and covered == []

    def test_newly_covered_reported(self):
        idx = CoverageIndex()
        idx.add(sub("narrow", le("p", 50)))
        redundant, covered = idx.add(sub("broad", le("p", 100)))
        assert not redundant and covered == ["narrow"]

    def test_covering_set_minimal(self):
        idx = CoverageIndex()
        idx.add(sub("a", le("p", 100)))
        idx.add(sub("b", le("p", 50)))
        idx.add(sub("c", eq("q", 1)))
        kept = {s.id for s in idx.covering_set()}
        assert kept == {"a", "c"}

    def test_equivalent_subscriptions_keep_one(self):
        idx = CoverageIndex()
        idx.add(sub("first", le("p", 10)))
        idx.add(sub("second", le("p", 10)))
        assert [s.id for s in idx.covering_set()] == ["first"]

    def test_remove(self):
        idx = CoverageIndex()
        idx.add(sub("a", le("p", 100)))
        idx.remove("a")
        assert len(idx) == 0 and "a" not in idx
        with pytest.raises(KeyError):
            idx.remove("a")

    def test_duplicate_id_rejected(self):
        from repro.core import InvalidSubscriptionError

        idx = CoverageIndex()
        idx.add(sub("a", le("p", 1)))
        with pytest.raises(InvalidSubscriptionError):
            idx.add(sub("a", le("p", 2)))
