"""The command-line interface."""

import io
import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_engine_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["match", "--subscriptions", "s", "--events", "e", "--engine", "warp"]
            )

    def test_version(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["--version"])
        assert "repro" in capsys.readouterr().out

    def test_unknown_codec_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["match", "--subscriptions", "s", "--events", "e",
                 "--codec", "telegraph"]
            )

    def test_executor_knobs_parse_on_match_stats_health(self):
        for command in ("match", "stats", "health"):
            args = build_parser().parse_args(
                [command, "--subscriptions", "s", "--events", "e",
                 "--codec", "shm", "--worker-timeout", "2.5"]
            )
            assert args.codec == "shm"
            assert args.worker_timeout == 2.5


class TestDemo:
    def test_demo_runs(self):
        out = io.StringIO()
        assert main(["demo"], out=out) == 0
        assert "matched" in out.getvalue() and "s1" in out.getvalue()


class TestGenerate:
    def test_generate_subscriptions(self):
        out = io.StringIO()
        rc = main(
            ["generate", "--kind", "subscriptions", "--count", "7", "--workload", "W0"],
            out=out,
        )
        assert rc == 0
        lines = [l for l in out.getvalue().splitlines() if l]
        assert len(lines) == 7
        record = json.loads(lines[0])
        assert "id" in record and "predicates" in record

    def test_generate_events(self):
        out = io.StringIO()
        assert main(["generate", "--kind", "events", "--count", "3"], out=out) == 0
        lines = [l for l in out.getvalue().splitlines() if l]
        assert len(lines) == 3
        assert "pairs" in json.loads(lines[0])

    def test_generate_deterministic_by_seed(self):
        a, b = io.StringIO(), io.StringIO()
        main(["generate", "--kind", "events", "--count", "2", "--seed", "9"], out=a)
        main(["generate", "--kind", "events", "--count", "2", "--seed", "9"], out=b)
        assert a.getvalue() == b.getvalue()


class TestMatch:
    @pytest.mark.parametrize("engine", ["oracle", "dynamic", "static"])
    def test_match_files(self, tmp_path, engine):
        subs_file = tmp_path / "subs.jsonl"
        subs_file.write_text(
            '{"id": "s1", "predicates": [["movie", "=", "gd"], ["price", "<=", 10]]}\n'
            '{"id": "s2", "predicates": [["movie", "=", "other"]]}\n'
        )
        events_file = tmp_path / "events.jsonl"
        events_file.write_text(
            '{"pairs": {"movie": "gd", "price": 8}}\n'
            '{"pairs": {"movie": "gd", "price": 50}}\n'
        )
        out = io.StringIO()
        rc = main(
            [
                "match",
                "--subscriptions", str(subs_file),
                "--events", str(events_file),
                "--engine", engine,
            ],
            out=out,
        )
        assert rc == 0
        lines = [json.loads(l) for l in out.getvalue().splitlines() if l]
        assert lines[0]["matched"] == ["s1"]
        assert lines[1]["matched"] == []

    def test_match_sharded_process_shm_codec(self, tmp_path):
        """End-to-end: the shm transport behind the CLI flags."""
        subs_file = tmp_path / "subs.jsonl"
        subs_file.write_text(
            '{"id": "s1", "predicates": [["price", "<=", 10]]}\n'
            '{"id": "s2", "predicates": [["price", ">=", 40]]}\n'
        )
        events_file = tmp_path / "events.jsonl"
        events_file.write_text(
            '{"pairs": {"price": 8}}\n{"pairs": {"price": 50}}\n'
        )
        out = io.StringIO()
        rc = main(
            [
                "match",
                "--subscriptions", str(subs_file),
                "--events", str(events_file),
                "--engine", "counting",
                "--shards", "2",
                "--executor", "process",
                "--codec", "shm",
                "--worker-timeout", "60",
            ],
            out=out,
        )
        assert rc == 0
        lines = [json.loads(l) for l in out.getvalue().splitlines() if l]
        assert lines[0]["matched"] == ["s1"]
        assert lines[1]["matched"] == ["s2"]


class TestBenchCommand:
    def test_bench_example31(self):
        out = io.StringIO()
        assert main(["bench", "example3.1"], out=out) == 0
        assert "Example 3.1" in out.getvalue()
