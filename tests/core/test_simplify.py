"""Subscription canonicalization."""

import pytest

from repro.core import (
    InvalidSubscriptionError,
    Subscription,
    eq,
    ge,
    gt,
    le,
    lt,
    ne,
    simplify,
    simplify_predicates,
)


def simp(*preds):
    return simplify_predicates(tuple(preds))


class TestRangeCollapse:
    def test_two_upper_bounds_keep_tightest(self):
        assert simp(le("x", 10), le("x", 5)) == [le("x", 5)]

    def test_two_lower_bounds_keep_tightest(self):
        assert simp(ge("x", 1), gt("x", 3)) == [gt("x", 3)]

    def test_strictness_wins_at_equal_bound(self):
        assert simp(le("x", 5), lt("x", 5)) == [lt("x", 5)]
        assert simp(ge("x", 5), gt("x", 5)) == [gt("x", 5)]

    def test_interval_keeps_both_sides(self):
        assert set(simp(ge("x", 1), le("x", 9), le("x", 12))) == {
            ge("x", 1),
            le("x", 9),
        }

    def test_untouched_single_predicate(self):
        assert simp(le("x", 5)) == [le("x", 5)]


class TestEqualityAbsorption:
    def test_equality_absorbs_compatible_range(self):
        assert simp(eq("x", 5), le("x", 9), gt("x", 1)) == [eq("x", 5)]

    def test_equality_absorbs_compatible_ne(self):
        assert simp(eq("x", 5), ne("x", 7)) == [eq("x", 5)]

    def test_duplicate_equalities_collapse(self):
        assert simp(eq("x", 5), eq("x", 5)) == [eq("x", 5)]


class TestNotEqualPruning:
    def test_ne_outside_interval_dropped(self):
        assert simp(ne("x", 3), gt("x", 7)) == [gt("x", 7)]

    def test_ne_inside_interval_kept(self):
        assert set(simp(ne("x", 8), gt("x", 7))) == {gt("x", 7), ne("x", 8)}

    def test_ne_at_excluded_boundary_dropped(self):
        assert simp(ne("x", 7), gt("x", 7)) == [gt("x", 7)]

    def test_ne_at_included_boundary_kept(self):
        assert set(simp(ne("x", 7), ge("x", 7))) == {ge("x", 7), ne("x", 7)}

    def test_string_ne_kept(self):
        assert simp(ne("x", "a"), ne("x", "b")) == [ne("x", "a"), ne("x", "b")]


class TestContradictions:
    @pytest.mark.parametrize(
        "preds",
        [
            (eq("x", 1), eq("x", 2)),
            (eq("x", 1), gt("x", 5)),
            (eq("x", 5), ne("x", 5)),
            (lt("x", 3), gt("x", 7)),
            (lt("x", 5), ge("x", 5)),
        ],
    )
    def test_detected(self, preds):
        with pytest.raises(InvalidSubscriptionError):
            simplify_predicates(preds)

    def test_point_interval_survives(self):
        assert set(simp(le("x", 5), ge("x", 5))) == {le("x", 5), ge("x", 5)}


class TestSubscriptionLevel:
    def test_simplify_preserves_id_and_semantics(self):
        from repro.core import Event

        s = Subscription("s", [le("x", 10), le("x", 5), eq("y", 2), ne("y", 9)])
        slim = simplify(s)
        assert slim.id == "s"
        assert slim.size < s.size
        for xv in (3, 5, 6, 11):
            for yv in (2, 9):
                e = Event({"x": xv, "y": yv})
                assert slim.is_satisfied_by(e) == s.is_satisfied_by(e)

    def test_multi_attribute_order_stable(self):
        s = Subscription("s", [le("b", 5), eq("a", 1), ge("b", 1)])
        slim = simplify(s)
        assert [p.attribute for p in slim.predicates] == ["b", "b", "a"]
