"""The brute-force oracle matcher and the Matcher base conveniences."""

import pytest

from repro.core import (
    DuplicateSubscriptionError,
    Event,
    OracleMatcher,
    Subscription,
    UnknownSubscriptionError,
    eq,
    le,
)


@pytest.fixture
def oracle():
    m = OracleMatcher()
    m.add(Subscription("cheap", [eq("movie", "gd"), le("price", 10)]))
    m.add(Subscription("any", [eq("movie", "gd")]))
    return m


class TestOracle:
    def test_match(self, oracle):
        got = oracle.match(Event({"movie": "gd", "price": 8}))
        assert sorted(got) == ["any", "cheap"]

    def test_partial_match(self, oracle):
        assert oracle.match(Event({"movie": "gd", "price": 20})) == ["any"]

    def test_no_match(self, oracle):
        assert oracle.match(Event({"movie": "other", "price": 5})) == []

    def test_duplicate_id_rejected(self, oracle):
        with pytest.raises(DuplicateSubscriptionError):
            oracle.add(Subscription("cheap", [eq("x", 1)]))

    def test_remove_returns_subscription(self, oracle):
        sub = oracle.remove("cheap")
        assert sub.id == "cheap"
        assert len(oracle) == 1

    def test_remove_unknown_raises(self, oracle):
        with pytest.raises(UnknownSubscriptionError):
            oracle.remove("nope")

    def test_get(self, oracle):
        assert oracle.get("any").id == "any"
        with pytest.raises(UnknownSubscriptionError):
            oracle.get("nope")


class TestMatcherConveniences:
    def test_add_all(self):
        m = OracleMatcher()
        n = m.add_all(Subscription(f"s{i}", [eq("x", i)]) for i in range(5))
        assert n == 5 and len(m) == 5

    def test_match_all(self):
        m = OracleMatcher()
        m.add(Subscription("s", [eq("x", 1)]))
        results = m.match_all([Event({"x": 1}), Event({"x": 2})])
        assert results == [["s"], []]

    def test_stats(self):
        m = OracleMatcher()
        m.add(Subscription("s", [eq("x", 1)]))
        s = m.stats()
        assert s["name"] == "oracle" and s["subscriptions"] == 1
