"""The predicate bit vector."""

import numpy as np
import pytest

from repro.core import BitVector


class TestSizing:
    def test_starts_empty(self):
        bv = BitVector()
        assert bv.size == 0 and len(bv) == 0

    def test_allocate_returns_consecutive_slots(self):
        bv = BitVector()
        assert [bv.allocate() for _ in range(5)] == [0, 1, 2, 3, 4]
        assert bv.size == 5

    def test_grow_to_is_monotonic(self):
        bv = BitVector()
        bv.grow_to(10)
        bv.grow_to(3)
        assert bv.size == 10

    def test_growth_beyond_capacity(self):
        bv = BitVector(capacity=2)
        bv.grow_to(1000)
        assert bv.capacity >= 1000
        assert not bv.get(999)

    def test_growth_preserves_bits(self):
        bv = BitVector(capacity=2)
        bv.grow_to(2)
        bv.set(1)
        bv.grow_to(5000)
        assert bv.get(1)

    def test_min_capacity_clamped(self):
        assert BitVector(capacity=0).capacity >= 1


class TestBits:
    def test_set_get(self):
        bv = BitVector()
        bv.grow_to(8)
        bv.set(3)
        assert bv.get(3) and bv[3]
        assert not bv.get(2)

    def test_set_many(self):
        bv = BitVector()
        bv.grow_to(8)
        bv.set_many([1, 4, 6])
        assert [bv.get(i) for i in range(8)] == [
            False, True, False, False, True, False, True, False,
        ]

    def test_reset_clears_only_dirty(self):
        bv = BitVector()
        bv.grow_to(16)
        bv.set_many(range(4))
        bv.reset()
        assert all(not bv.get(i) for i in range(16))
        assert bv.count_set() == 0

    def test_dense_reset_path(self):
        bv = BitVector()
        bv.grow_to(64)
        bv.set_many(range(64))
        bv.reset()
        assert all(not bv.get(i) for i in range(64))

    def test_idempotent_set_counts_once(self):
        bv = BitVector()
        bv.grow_to(4)
        bv.set(2)
        bv.set(2)
        assert bv.count_set() == 1

    def test_set_indexes_order(self):
        bv = BitVector()
        bv.grow_to(8)
        bv.set_many([5, 1, 7])
        assert list(bv.set_indexes()) == [5, 1, 7]

    def test_reset_twice_is_noop(self):
        bv = BitVector()
        bv.grow_to(4)
        bv.set(0)
        bv.reset()
        bv.reset()
        assert bv.count_set() == 0


class TestBulk:
    def test_gather(self):
        bv = BitVector()
        bv.grow_to(8)
        bv.set_many([1, 3])
        refs = np.array([[1, 3], [0, 3]], dtype=np.int32)
        got = bv.gather(refs)
        assert got.tolist() == [[1, 1], [0, 1]]

    def test_array_view_reflects_sets(self):
        bv = BitVector()
        bv.grow_to(4)
        bv.set(2)
        assert bv.array[2] == 1

    def test_repr(self):
        bv = BitVector()
        bv.grow_to(4)
        bv.set(0)
        assert "set=1" in repr(bv)
