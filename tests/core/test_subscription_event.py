"""Subscription and Event value types."""

import pytest

from repro.core import (
    Event,
    InvalidEventError,
    InvalidSubscriptionError,
    Subscription,
    eq,
    ge,
    gt,
    le,
    lt,
    ne,
)


class TestSubscriptionConstruction:
    def test_requires_predicates(self):
        with pytest.raises(InvalidSubscriptionError):
            Subscription("s", [])

    def test_rejects_non_predicates(self):
        with pytest.raises(InvalidSubscriptionError):
            Subscription("s", [("x", "=", 1)])

    def test_duplicates_collapse(self):
        s = Subscription("s", [eq("x", 1), eq("x", 1), le("y", 2)])
        assert s.size == 2

    def test_preserves_first_occurrence_order(self):
        s = Subscription("s", [le("y", 2), eq("x", 1), le("y", 2)])
        assert [p.attribute for p in s.predicates] == ["y", "x"]

    def test_immutable(self):
        s = Subscription("s", [eq("x", 1)])
        with pytest.raises(AttributeError):
            s.id = "t"

    def test_len_and_iter(self):
        s = Subscription("s", [eq("x", 1), le("y", 2)])
        assert len(s) == 2
        assert set(s) == {eq("x", 1), le("y", 2)}


class TestSubscriptionNotation:
    """The paper's P(s) and A(s)."""

    def test_equality_predicates(self):
        s = Subscription("s", [eq("movie", "gd"), le("price", 10), ge("price", 5)])
        assert s.equality_predicates() == (eq("movie", "gd"),)

    def test_equality_attributes(self):
        s = Subscription("s", [eq("movie", "gd"), le("price", 10)])
        assert s.equality_attributes == frozenset({"movie"})

    def test_attributes(self):
        s = Subscription("s", [eq("movie", "gd"), le("price", 10)])
        assert s.attributes == frozenset({"movie", "price"})

    def test_predicates_on(self):
        s = Subscription("s", [le("price", 10), ge("price", 5), eq("m", 1)])
        assert set(s.predicates_on("price")) == {le("price", 10), ge("price", 5)}


class TestSatisfaction:
    def test_paper_example(self):
        # Event (movie, groundhog day), (price, $8), (theater, odeon)
        # satisfies (movie =), (price <= 10), (price >= 5).
        e = Event({"movie": "groundhog day", "price": 8, "theater": "odeon"})
        s = Subscription(
            "s", [eq("movie", "groundhog day"), le("price", 10), ge("price", 5)]
        )
        assert s.is_satisfied_by(e)

    def test_missing_attribute_fails(self):
        e = Event({"movie": "groundhog day"})
        s = Subscription("s", [eq("movie", "groundhog day"), le("price", 10)])
        assert not s.is_satisfied_by(e)

    def test_one_failing_predicate_fails(self):
        e = Event({"movie": "groundhog day", "price": 12})
        s = Subscription("s", [eq("movie", "groundhog day"), le("price", 10)])
        assert not s.is_satisfied_by(e)

    def test_extra_event_attributes_ignored(self):
        e = Event({"x": 1, "y": 2, "z": 3})
        assert Subscription("s", [eq("x", 1)]).is_satisfied_by(e)


class TestSatisfiability:
    def test_plain_conjunction_satisfiable(self):
        assert Subscription("s", [le("x", 10), ge("x", 5)]).is_satisfiable()

    def test_contradictory_equalities(self):
        assert not Subscription("s", [eq("x", 1), eq("x", 2)]).is_satisfiable()

    def test_equality_outside_range(self):
        assert not Subscription("s", [eq("x", 1), ge("x", 5)]).is_satisfiable()

    def test_empty_interval(self):
        assert not Subscription("s", [lt("x", 5), gt("x", 5)]).is_satisfiable()
        assert not Subscription("s", [le("x", 4), ge("x", 5)]).is_satisfiable()

    def test_point_interval_ok(self):
        assert Subscription("s", [le("x", 5), ge("x", 5)]).is_satisfiable()

    def test_point_interval_excluded_by_ne(self):
        assert not Subscription(
            "s", [le("x", 5), ge("x", 5), ne("x", 5)]
        ).is_satisfiable()

    def test_strict_point_interval(self):
        assert not Subscription("s", [lt("x", 5), ge("x", 5)]).is_satisfiable()

    def test_equality_with_ne_conflict(self):
        assert not Subscription("s", [eq("x", 5), ne("x", 5)]).is_satisfiable()


class TestEvent:
    def test_from_mapping_and_pairs(self):
        assert Event({"a": 1}) == Event([("a", 1)])

    def test_duplicate_attribute_rejected(self):
        with pytest.raises(InvalidEventError):
            Event([("a", 1), ("a", 2)])

    def test_empty_rejected(self):
        with pytest.raises(InvalidEventError):
            Event({})

    def test_bad_attribute_rejected(self):
        with pytest.raises(InvalidEventError):
            Event({"": 1})

    def test_bad_value_rejected(self):
        with pytest.raises(InvalidEventError):
            Event({"a": [1]})

    def test_schema(self):
        assert Event({"a": 1, "b": 2}).schema == frozenset({"a", "b"})

    def test_get_and_has(self):
        e = Event({"a": 1})
        assert e.get("a") == 1
        assert e.get("b") is None
        assert e.get("b", 9) == 9
        assert e.has("a") and not e.has("b")

    def test_contains_getitem_len(self):
        e = Event({"a": 1, "b": 2})
        assert "a" in e and e["b"] == 2 and len(e) == 2

    def test_equality_and_hash(self):
        assert Event({"a": 1, "b": 2}) == Event({"b": 2, "a": 1})
        assert hash(Event({"a": 1})) == hash(Event({"a": 1}))

    def test_immutable(self):
        e = Event({"a": 1})
        with pytest.raises(AttributeError):
            e.pairs = {}

    def test_bool_value_normalized(self):
        assert Event({"a": True})["a"] == 1
