"""Predicate registry: dedup, refcounts, slot recycling."""

import pytest

from repro.core import PredicateRegistry, eq, le


class TestIntern:
    def test_first_intern_allocates(self):
        r = PredicateRegistry()
        slot, added = r.intern(eq("x", 1))
        assert added and slot == 0
        assert len(r) == 1

    def test_second_intern_reuses(self):
        r = PredicateRegistry()
        s1, _ = r.intern(eq("x", 1))
        s2, added = r.intern(eq("x", 1))
        assert s2 == s1 and not added
        assert r.refcount(eq("x", 1)) == 2

    def test_distinct_predicates_get_distinct_slots(self):
        r = PredicateRegistry()
        s1, _ = r.intern(eq("x", 1))
        s2, _ = r.intern(le("x", 1))
        assert s1 != s2

    def test_inverse_lookup(self):
        r = PredicateRegistry()
        slot, _ = r.intern(eq("x", 1))
        assert r.predicate(slot) == eq("x", 1)
        assert r.slot(eq("x", 1)) == slot

    def test_contains_and_items(self):
        r = PredicateRegistry()
        r.intern(eq("x", 1))
        assert eq("x", 1) in r
        assert dict(r.items()) == {eq("x", 1): 0}


class TestRelease:
    def test_release_drops_to_zero_frees(self):
        r = PredicateRegistry()
        r.intern(eq("x", 1))
        slot, removed = r.release(eq("x", 1))
        assert removed and slot == 0
        assert eq("x", 1) not in r

    def test_release_with_remaining_refs(self):
        r = PredicateRegistry()
        r.intern(eq("x", 1))
        r.intern(eq("x", 1))
        _slot, removed = r.release(eq("x", 1))
        assert not removed
        assert r.refcount(eq("x", 1)) == 1

    def test_release_unknown_raises(self):
        r = PredicateRegistry()
        with pytest.raises(KeyError):
            r.release(eq("x", 1))

    def test_freed_slot_is_recycled(self):
        r = PredicateRegistry()
        s1, _ = r.intern(eq("x", 1))
        r.release(eq("x", 1))
        s2, _ = r.intern(le("y", 2))
        assert s2 == s1

    def test_refcount_zero_when_absent(self):
        assert PredicateRegistry().refcount(eq("x", 1)) == 0

    def test_grows_bitvector(self):
        r = PredicateRegistry()
        for i in range(100):
            r.intern(eq("x", i))
        assert r.bits.size >= 100
