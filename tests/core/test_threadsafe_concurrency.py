"""ThreadSafeMatcher under real concurrency, checked against an oracle.

Each worker thread owns a disjoint attribute namespace (thread *k* only
uses attribute ``t{k}``), so an event ``{t_k: v}`` can only ever match
thread *k*'s subscriptions — every other thread's subscriptions demand
an attribute the event does not carry.  That makes the interleaved run
exactly decomposable: replaying each thread's operation log against a
fresh single-threaded matcher must reproduce that thread's observed
match results, and the final resident set must be the union of the
per-thread survivors.  Corrupted shared state (the failure mode of a
missing lock) breaks one of those comparisons.
"""

from __future__ import annotations

import random
import threading

import pytest

from repro.core import Event, Subscription, eq
from repro.core.threadsafe import ThreadSafeMatcher
from repro.matchers import DynamicMatcher

THREADS = 6
OPS_PER_THREAD = 400


def _run_thread(k, shared, barrier, log, errors):
    rng = random.Random(1000 + k)
    attr = f"t{k}"
    alive = []
    serial = 0
    barrier.wait()
    try:
        for _ in range(OPS_PER_THREAD):
            roll = rng.random()
            if roll < 0.45 or not alive:
                sub_id = f"{attr}-{serial}"
                serial += 1
                value = rng.randint(1, 5)
                shared.add(Subscription(sub_id, [eq(attr, value)]))
                alive.append((sub_id, value))
                log.append(("add", sub_id, value))
            elif roll < 0.70:
                sub_id, _value = alive.pop(rng.randrange(len(alive)))
                removed = shared.remove(sub_id)
                assert removed.id == sub_id
                log.append(("remove", sub_id, None))
            else:
                value = rng.randint(1, 5)
                got = sorted(shared.match(Event({attr: value})))
                log.append(("match", value, got))
    except Exception as exc:  # pragma: no cover - failure detail
        errors.append((k, exc))


def _replay(k, log):
    """Drive thread *k*'s op log through a fresh single-threaded oracle."""
    attr = f"t{k}"
    oracle = DynamicMatcher()
    for op, a, b in log:
        if op == "add":
            oracle.add(Subscription(a, [eq(attr, b)]))
        elif op == "remove":
            oracle.remove(a)
        else:
            expected = sorted(oracle.match(Event({attr: a})))
            assert b == expected, (
                f"thread {k} observed {b} for {attr}={a}, oracle says {expected}"
            )
    return {s.id for s in oracle.iter_subscriptions()}


@pytest.mark.parametrize("seed_round", range(2))
def test_concurrent_mutation_matches_single_threaded_oracle(seed_round):
    shared = ThreadSafeMatcher(DynamicMatcher())
    barrier = threading.Barrier(THREADS)
    logs = [[] for _ in range(THREADS)]
    errors = []
    threads = [
        threading.Thread(
            target=_run_thread, args=(k + seed_round * 100, shared, barrier, logs[k], errors)
        )
        for k in range(THREADS)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=60.0)
    assert not any(t.is_alive() for t in threads)
    assert not errors, errors[:1]

    survivors = set()
    for k, log in enumerate(logs):
        survivors |= _replay(k + seed_round * 100, log)
    assert {s.id for s in shared.iter_subscriptions()} == survivors
    assert len(shared) == len(survivors)

    # The healed structure still answers correctly after the storm.
    for k in range(THREADS):
        attr = f"t{k + seed_round * 100}"
        for value in range(1, 6):
            got = set(shared.match(Event({attr: value})))
            want = {
                s.id
                for s in shared.iter_subscriptions()
                if s.id.startswith(f"{attr}-")
                and any(p.attribute == attr and p.value == value for p in s.predicates)
            }
            assert got == want


def test_concurrent_matchers_never_see_partial_state():
    """Readers hammer ``match`` while writers churn; every result must
    consist only of ids that were alive at some point, with no crashes
    from mid-mutation structure sharing."""
    shared = ThreadSafeMatcher(DynamicMatcher())
    stop = threading.Event()
    errors = []

    def writer(k):
        rng = random.Random(k)
        attr = f"t{k}"
        try:
            for i in range(300):
                sub_id = f"{attr}-{i}"
                shared.add(Subscription(sub_id, [eq(attr, rng.randint(1, 3))]))
                if i % 2:
                    shared.remove(sub_id)
        except Exception as exc:  # pragma: no cover - failure detail
            errors.append(exc)

    def reader(k):
        rng = random.Random(100 + k)
        attr = f"t{k % 2}"
        try:
            while not stop.is_set():
                for sid in shared.match(Event({attr: rng.randint(1, 3)})):
                    assert sid.startswith(f"{attr}-")
        except Exception as exc:  # pragma: no cover - failure detail
            errors.append(exc)

    writers = [threading.Thread(target=writer, args=(k,)) for k in range(2)]
    readers = [threading.Thread(target=reader, args=(k,)) for k in range(2)]
    for t in readers + writers:
        t.start()
    for t in writers:
        t.join(timeout=60.0)
    stop.set()
    for t in readers:
        t.join(timeout=60.0)
    assert not errors, errors[:1]
