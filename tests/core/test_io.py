"""JSON serialization round-trips."""

import io

import pytest

from repro.io import (
    SerializationError,
    dump_events,
    dump_spec,
    dump_subscriptions,
    event_from_dict,
    event_to_dict,
    load_events,
    load_spec,
    load_subscriptions,
    spec_from_dict,
    spec_to_dict,
    subscription_from_dict,
    subscription_to_dict,
)
from repro.core import Event, Subscription, eq, le, ne
from repro.workload import w3, w6


class TestSubscriptions:
    def test_roundtrip_dict(self):
        s = Subscription("s1", [eq("movie", "gd"), le("price", 10), ne("city", "x")])
        assert subscription_from_dict(subscription_to_dict(s)) == s

    def test_roundtrip_stream(self):
        subs = [Subscription(f"s{i}", [eq("x", i)]) for i in range(5)]
        buf = io.StringIO()
        assert dump_subscriptions(subs, buf) == 5
        buf.seek(0)
        assert load_subscriptions(buf) == subs

    def test_blank_lines_ignored(self):
        buf = io.StringIO('\n{"id": "a", "predicates": [["x", "=", 1]]}\n\n')
        assert len(load_subscriptions(buf)) == 1

    def test_bad_json_rejected(self):
        with pytest.raises(SerializationError):
            load_subscriptions(io.StringIO("{nope\n"))

    def test_bad_record_rejected(self):
        with pytest.raises(SerializationError):
            subscription_from_dict({"id": "a"})
        with pytest.raises(SerializationError):
            subscription_from_dict({"id": "a", "predicates": [["x", "<>", 1]]})


class TestEvents:
    def test_roundtrip_dict(self):
        e = Event({"movie": "gd", "price": 8})
        assert event_from_dict(event_to_dict(e)) == e

    def test_roundtrip_stream(self):
        events = [Event({"x": i}) for i in range(4)]
        buf = io.StringIO()
        assert dump_events(events, buf) == 4
        buf.seek(0)
        assert load_events(buf) == events

    def test_bad_record_rejected(self):
        with pytest.raises(SerializationError):
            event_from_dict({"wrong": 1})
        with pytest.raises(SerializationError):
            load_events(io.StringIO("not json\n"))


class TestSpecs:
    @pytest.mark.parametrize("factory", [w3, w6])
    def test_roundtrip(self, factory):
        spec = factory()
        assert spec_from_dict(spec_to_dict(spec)) == spec

    def test_stream_roundtrip(self):
        spec = w6()
        buf = io.StringIO()
        dump_spec(spec, buf)
        buf.seek(0)
        assert load_spec(buf) == spec

    def test_bad_spec_rejected(self):
        with pytest.raises(SerializationError):
            load_spec(io.StringIO("["))
        with pytest.raises(SerializationError):
            spec_from_dict({"fixed_predicates": [{"oops": 1}]})
