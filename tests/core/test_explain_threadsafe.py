"""Match explanation and the thread-safe wrapper."""

import threading

import pytest

from repro.core import Event, OracleMatcher, Subscription, eq, ge, le
from repro.core.explain import MatchExplanation, explain, why_not
from repro.core.threadsafe import ThreadSafeMatcher
from repro.matchers import DynamicMatcher, PropagationMatcher


@pytest.fixture
def matcher():
    m = DynamicMatcher()
    m.add(Subscription("cheap", [eq("movie", "gd"), le("price", 10)]))
    m.add(Subscription("any", [eq("movie", "gd")]))
    m.add(Subscription("other", [eq("movie", "casablanca")]))
    return m


class TestExplain:
    def test_structure(self, matcher):
        exp = explain(matcher, Event({"movie": "gd", "price": 8}))
        assert isinstance(exp, MatchExplanation)
        assert sorted(exp.matched) == ["any", "cheap"]
        assert exp.total_predicates == 3  # movie=gd shared between two subs
        sat = {p.as_tuple() for p, _bit in exp.satisfied_predicates}
        assert sat == {("movie", "=", "gd"), ("price", "<=", 10)}
        assert exp.subscriptions_checked >= 2

    def test_selectivity(self, matcher):
        exp = explain(matcher, Event({"movie": "gd", "price": 8}))
        assert exp.selectivity == pytest.approx(2 / 3)

    def test_describe_readable(self, matcher):
        text = explain(matcher, Event({"movie": "gd", "price": 8})).describe()
        assert "phase 1" in text and "phase 2" in text and "matched" in text
        assert "movie = 'gd'" in text

    def test_matches_plain_match(self, matcher):
        e = Event({"movie": "gd", "price": 30})
        assert sorted(explain(matcher, e).matched) == sorted(matcher.match(e))

    def test_requires_two_phase_matcher(self):
        with pytest.raises(TypeError):
            explain(OracleMatcher(), Event({"x": 1}))

    def test_works_on_propagation(self):
        m = PropagationMatcher()
        m.add(Subscription("s", [eq("x", 1), ge("y", 5)]))
        exp = explain(m, Event({"x": 1, "y": 2}))
        assert exp.matched == []
        assert len(exp.satisfied_predicates) == 1


class TestWhyNot:
    def test_lists_failing_predicates(self, matcher):
        failing = why_not(matcher, "cheap", Event({"movie": "gd", "price": 30}))
        assert failing == [le("price", 10)]

    def test_missing_attribute_reported(self, matcher):
        failing = why_not(matcher, "cheap", Event({"price": 5}))
        assert failing == [eq("movie", "gd")]

    def test_empty_when_matching(self, matcher):
        assert why_not(matcher, "cheap", Event({"movie": "gd", "price": 5})) == []


class TestThreadSafeMatcher:
    def test_delegation(self):
        ts = ThreadSafeMatcher(DynamicMatcher())
        ts.add(Subscription("s", [eq("x", 1)]))
        assert ts.match(Event({"x": 1})) == ["s"]
        assert len(ts) == 1
        assert ts.name == "dynamic"
        assert ts.stats()["thread_safe"] is True
        assert ts.remove("s").id == "s"

    def test_concurrent_hammering_stays_consistent(self):
        ts = ThreadSafeMatcher(DynamicMatcher())
        errors = []

        def worker(tid):
            try:
                for i in range(100):
                    sid = f"t{tid}-{i}"
                    ts.add(Subscription(sid, [eq("x", i % 5), le("y", i % 7)]))
                    ts.match(Event({"x": i % 5, "y": 3}))
                    ts.remove(sid)
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [threading.Thread(target=worker, args=(t,)) for t in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        assert len(ts) == 0
        # the engine is still coherent afterwards
        ts.add(Subscription("final", [eq("x", 1)]))
        assert ts.match(Event({"x": 1})) == ["final"]


class TestExactBenefitMargin:
    def test_exact_at_most_approximation(self):
        m = DynamicMatcher()
        for i in range(40):
            m.add(Subscription(f"s{i}", [eq("a", 1), eq("b", i % 4)]))
        approx = m.benefit_margin(("a",), (1,))
        exact = m.exact_benefit_margin(("a",), (1,))
        assert 0.0 <= exact <= approx + 1e-9

    def test_zero_for_missing_entry(self):
        m = DynamicMatcher()
        assert m.exact_benefit_margin(("a",), (1,)) == 0.0
