"""The promoted fault-injection toolkit: public surface and wrappers."""

from __future__ import annotations

import math

import pytest

from repro.core import Event, Subscription, eq
from repro.matchers import DynamicMatcher
from repro.testing import (
    FAULT_MODES,
    MATCHER_OPS,
    FaultyFile,
    FlakyMatcher,
    InjectedFault,
    SimulatedCrash,
    SlowMatcher,
    crash_at,
    faulty_opener,
)


def test_legacy_shim_still_exports_the_toolkit():
    # tests/system/faults.py predates the public package; existing suites
    # import from it, so it must keep re-exporting the same objects.
    from tests.system import faults as shim

    assert shim.FlakyMatcher is FlakyMatcher
    assert shim.SlowMatcher is SlowMatcher
    assert shim.FaultyFile is FaultyFile
    assert shim.crash_at is crash_at
    assert shim.faulty_opener is faulty_opener
    assert shim.SimulatedCrash is SimulatedCrash
    assert shim.FAULT_MODES == FAULT_MODES


def test_toolkit_is_importable_from_the_package_root():
    import repro.testing as testing

    for name in (
        "FaultyFile",
        "FlakyMatcher",
        "SlowMatcher",
        "InjectedFault",
        "SimulatedCrash",
        "crash_at",
        "faulty_opener",
    ):
        assert hasattr(testing, name)


class TestFlakyMatcher:
    def test_faults_until_budget_spent_then_heals(self):
        flaky = FlakyMatcher(DynamicMatcher(), failures=2)
        flaky.add(Subscription("a", [eq("x", 1)]))
        event = Event({"x": 1})
        for _ in range(2):
            with pytest.raises(InjectedFault):
                flaky.match(event)
        assert flaky.healed
        assert flaky.injected == 2
        assert flaky.match(event) == ["a"]

    def test_rearm_relapses_a_healed_matcher(self):
        flaky = FlakyMatcher(DynamicMatcher(), failures=0)
        flaky.add(Subscription("a", [eq("x", 1)]))
        assert flaky.match(Event({"x": 1})) == ["a"]
        flaky.rearm(1)
        assert not flaky.healed
        with pytest.raises(InjectedFault):
            flaky.match(Event({"x": 1}))
        assert flaky.injected == 1  # lifetime count survives rearm

    def test_infinite_budget_never_heals(self):
        flaky = FlakyMatcher(DynamicMatcher(), failures=math.inf)
        for _ in range(50):
            with pytest.raises(InjectedFault):
                flaky.match(Event({"x": 1}))
        assert not flaky.healed

    def test_faults_fire_before_the_inner_engine_is_touched(self):
        flaky = FlakyMatcher(
            DynamicMatcher(), failures=1, operations=("add",)
        )
        sub = Subscription("a", [eq("x", 1)])
        with pytest.raises(InjectedFault):
            flaky.add(sub)
        assert len(flaky) == 0  # no partial state behind a failed add
        flaky.add(sub)  # budget spent: the same add now lands
        assert flaky.match(Event({"x": 1})) == ["a"]

    def test_untargeted_operations_never_fault(self):
        flaky = FlakyMatcher(DynamicMatcher(), operations=("remove",))
        flaky.add(Subscription("a", [eq("x", 1)]))
        assert flaky.match(Event({"x": 1})) == ["a"]
        with pytest.raises(InjectedFault):
            flaky.remove("a")

    def test_custom_exception_factory(self):
        flaky = FlakyMatcher(
            DynamicMatcher(),
            failures=1,
            exc_factory=lambda op: OSError(f"disk died during {op}"),
        )
        with pytest.raises(OSError, match="disk died during match"):
            flaky.match(Event({"x": 1}))

    def test_validation(self):
        with pytest.raises(ValueError):
            FlakyMatcher(DynamicMatcher(), failures=-1)
        with pytest.raises(ValueError):
            FlakyMatcher(DynamicMatcher(), operations=("nonsense",))
        flaky = FlakyMatcher(DynamicMatcher())
        with pytest.raises(ValueError):
            flaky.rearm(-1)
        assert set(MATCHER_OPS) == {"add", "remove", "match"}

    def test_transparent_delegation(self):
        inner = DynamicMatcher()
        flaky = FlakyMatcher(inner, failures=0)
        flaky.add(Subscription("a", [eq("x", 1)]))
        assert len(flaky) == len(inner) == 1
        assert flaky.name == inner.name
        assert [s.id for s in flaky.iter_subscriptions()] == ["a"]
        assert flaky.stats() == inner.stats()
        assert flaky.remove("a").id == "a"


class TestSlowMatcher:
    def test_sleeps_before_delegating_targeted_operations(self):
        naps = []
        slow = SlowMatcher(
            DynamicMatcher(), delay=0.25, operations=("match",), sleep=naps.append
        )
        slow.add(Subscription("a", [eq("x", 1)]))
        assert naps == []  # add is not targeted
        assert slow.match(Event({"x": 1})) == ["a"]
        assert naps == [0.25]
        assert slow.delayed == 1

    def test_zero_delay_is_free(self):
        naps = []
        slow = SlowMatcher(DynamicMatcher(), delay=0.0, sleep=naps.append)
        slow.add(Subscription("a", [eq("x", 1)]))
        slow.match(Event({"x": 1}))
        assert naps == []
        assert slow.delayed == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            SlowMatcher(DynamicMatcher(), delay=-0.1)
        with pytest.raises(ValueError):
            SlowMatcher(DynamicMatcher(), operations=("flush",))
