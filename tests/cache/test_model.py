"""The set-associative cache simulator."""

import pytest

from repro.cache import CacheConfig, CacheSimulator


def tiny_config(**kw):
    defaults = dict(
        size_bytes=4 * 64,  # 4 lines
        line_size=64,
        associativity=2,   # 2 sets × 2 ways
        hit_cycles=1,
        miss_penalty=10,
        max_outstanding_prefetches=2,
    )
    defaults.update(kw)
    return CacheConfig(**defaults)


class TestConfig:
    def test_n_sets(self):
        assert tiny_config().n_sets == 2

    @pytest.mark.parametrize(
        "kw",
        [
            {"size_bytes": 0},
            {"line_size": 0},
            {"associativity": 0},
            {"size_bytes": 100},  # not a multiple
            {"hit_cycles": -1},
            {"miss_penalty": -1},
            {"max_outstanding_prefetches": -1},
        ],
    )
    def test_invalid_rejected(self, kw):
        with pytest.raises(ValueError):
            tiny_config(**kw)


class TestAccess:
    def test_cold_miss_then_hit(self):
        sim = CacheSimulator(tiny_config())
        assert sim.access(0) is False
        assert sim.access(0) is True
        assert sim.access(63) is True  # same line
        assert sim.metrics.accesses == 3
        assert sim.metrics.misses == 1 and sim.metrics.hits == 2

    def test_miss_costs_penalty(self):
        sim = CacheSimulator(tiny_config())
        sim.access(0)
        assert sim.metrics.cycles == 11  # 1 hit cycle + 10 penalty
        assert sim.metrics.stall_cycles == 10

    def test_lru_eviction_within_set(self):
        cfg = tiny_config()
        sim = CacheSimulator(cfg)
        # lines 0, 2, 4 map to set 0 (even line numbers with 2 sets)
        sim.access(0 * 64)
        sim.access(2 * 64)
        sim.access(4 * 64)  # evicts line 0
        assert not sim.resident(0)
        assert sim.resident(2 * 64) and sim.resident(4 * 64)

    def test_touch_refreshes_lru(self):
        sim = CacheSimulator(tiny_config())
        sim.access(0 * 64)
        sim.access(2 * 64)
        sim.access(0 * 64)      # 0 becomes MRU
        sim.access(4 * 64)      # evicts 2, not 0
        assert sim.resident(0)
        assert not sim.resident(2 * 64)

    def test_different_sets_do_not_interfere(self):
        sim = CacheSimulator(tiny_config())
        sim.access(0 * 64)  # set 0
        sim.access(1 * 64)  # set 1
        sim.access(3 * 64)  # set 1
        assert sim.resident(0)

    def test_compute_advances_time_only(self):
        sim = CacheSimulator(tiny_config())
        sim.compute(7)
        assert sim.metrics.cycles == 7 and sim.metrics.accesses == 0


class TestPrefetch:
    def test_prefetch_hides_latency_when_early(self):
        cfg = tiny_config()
        sim = CacheSimulator(cfg)
        sim.prefetch(0)
        sim.compute(cfg.miss_penalty + 1)
        assert sim.access(0) is True  # arrived during compute
        assert sim.metrics.stall_cycles == 0

    def test_late_access_stalls_partially(self):
        cfg = tiny_config()
        sim = CacheSimulator(cfg)
        sim.prefetch(0)
        sim.compute(4)
        sim.access(0)  # 10-cycle fetch, 5 cycles elapsed (issue+4+1)
        assert 0 < sim.metrics.stall_cycles < cfg.miss_penalty
        assert sim.metrics.prefetches_useful == 1

    def test_outstanding_limit_drops(self):
        sim = CacheSimulator(tiny_config())
        assert sim.prefetch(0 * 64)
        assert sim.prefetch(1 * 64)
        assert sim.prefetch(2 * 64) is False
        assert sim.metrics.prefetches_dropped == 1
        assert sim.metrics.prefetches_issued == 2

    def test_prefetch_of_resident_line_is_noop(self):
        sim = CacheSimulator(tiny_config())
        sim.access(0)
        assert sim.prefetch(0)
        assert sim.metrics.prefetches_issued == 0

    def test_duplicate_prefetch_not_double_counted(self):
        sim = CacheSimulator(tiny_config())
        sim.prefetch(0)
        assert sim.prefetch(0)
        assert sim.metrics.prefetches_issued == 1

    def test_zero_limit_drops_everything(self):
        sim = CacheSimulator(tiny_config(max_outstanding_prefetches=0))
        assert sim.prefetch(0) is False


class TestMetricsAndFlush:
    def test_invariant_hits_plus_misses(self):
        sim = CacheSimulator(tiny_config())
        for a in [0, 64, 0, 128, 64, 256]:
            sim.access(a)
        m = sim.metrics
        assert m.hits + m.misses == m.accesses

    def test_miss_rate_and_stall_fraction(self):
        sim = CacheSimulator(tiny_config())
        sim.access(0)
        sim.access(0)
        assert sim.metrics.miss_rate == pytest.approx(0.5)
        assert 0 < sim.metrics.stall_fraction < 1

    def test_merged(self):
        sim = CacheSimulator(tiny_config())
        sim.access(0)
        merged = sim.metrics.merged(sim.metrics)
        assert merged.accesses == 2 and merged.cycles == 2 * sim.metrics.cycles

    def test_flush_empties_cache(self):
        sim = CacheSimulator(tiny_config())
        sim.access(0)
        sim.flush()
        assert not sim.resident(0)
        assert sim.metrics.accesses == 1  # metrics survive
