"""Array layouts and the simulated scan kernels."""

import numpy as np
import pytest

from repro.cache import (
    Arena,
    CacheConfig,
    CacheSimulator,
    ClusterLayout,
    KernelParams,
    compare_layouts,
    scan_cluster,
    synthesize_cluster,
)


class TestArena:
    def test_alignment(self):
        arena = Arena(base=100, alignment=64)
        a = arena.allocate(10)
        b = arena.allocate(10)
        assert a % 64 == 0 and b % 64 == 0
        assert b >= a + 10

    def test_disjoint_ranges(self):
        arena = Arena()
        a = arena.allocate(1000)
        b = arena.allocate(1000)
        assert b >= a + 1000

    def test_invalid(self):
        with pytest.raises(ValueError):
            Arena(alignment=0)
        with pytest.raises(ValueError):
            Arena().allocate(-1)


class TestClusterLayout:
    def _layout(self, columnar):
        return ClusterLayout.build(3, 8, 64, Arena(), columnar=columnar)

    def test_columnar_rows_contiguous(self):
        lay = self._layout(columnar=True)
        # consecutive columns of one row are 4 bytes apart
        assert lay.ref_address(0, 1) - lay.ref_address(0, 0) == 4
        # consecutive rows of one column are count*4 apart
        assert lay.ref_address(1, 0) - lay.ref_address(0, 0) == 8 * 4

    def test_rowwise_columns_contiguous(self):
        lay = self._layout(columnar=False)
        assert lay.ref_address(1, 0) - lay.ref_address(0, 0) == 4
        assert lay.ref_address(0, 1) - lay.ref_address(0, 0) == 3 * 4

    def test_bounds_checked(self):
        lay = self._layout(True)
        with pytest.raises(IndexError):
            lay.ref_address(3, 0)
        with pytest.raises(IndexError):
            lay.ref_address(0, 8)

    def test_bit_and_id_addresses(self):
        lay = self._layout(True)
        assert lay.bit_address(5) - lay.bit_address(0) == 5
        assert lay.id_address(2) - lay.id_address(0) == 16

    def test_row_line_span(self):
        lay = self._layout(True)
        assert lay.row_line_span(32) == 1  # 8 cols × 4B = 32B


class TestSynthesize:
    def test_selectivity_controls_set_fraction(self):
        _refs, bits = synthesize_cluster(3, 100, 1000, selectivity=0.0, seed=1)
        assert bits.sum() == 0
        _refs, bits = synthesize_cluster(3, 100, 1000, selectivity=1.0, seed=1)
        assert bits.sum() == 1000

    def test_shapes(self):
        refs, bits = synthesize_cluster(4, 50, 128, 0.5, seed=2)
        assert refs.shape == (4, 50) and bits.shape == (128,)
        assert refs.max() < 128

    def test_invalid_selectivity(self):
        with pytest.raises(ValueError):
            synthesize_cluster(3, 10, 10, 1.5)


class TestScanKernel:
    def test_shape_mismatch_rejected(self):
        lay = ClusterLayout.build(3, 8, 64, Arena())
        refs = np.zeros((2, 8), dtype=np.int32)
        with pytest.raises(ValueError):
            scan_cluster(CacheSimulator(), lay, refs, np.zeros(64, dtype=np.uint8))

    def test_params_validation(self):
        with pytest.raises(ValueError):
            KernelParams(unfold=0)
        with pytest.raises(ValueError):
            KernelParams(lookahead=-1)
        with pytest.raises(ValueError):
            KernelParams(prefetch_rows=-1)

    def test_metrics_are_deltas(self):
        refs, bits = synthesize_cluster(3, 256, 256, 0.5, seed=3)
        lay = ClusterLayout.build(3, 256, 256, Arena())
        sim = CacheSimulator()
        m1 = scan_cluster(sim, lay, refs, bits, KernelParams(prefetch=False))
        m2 = scan_cluster(sim, lay, refs, bits, KernelParams(prefetch=False))
        # second scan is warm: strictly fewer misses
        assert m2.misses < m1.misses
        assert sim.metrics.accesses == m1.accesses + m2.accesses


class TestPaperClaims:
    """The Section 2.2/2.3 shapes the simulator must reproduce."""

    @pytest.fixture(scope="class")
    def ablation(self):
        return compare_layouts(size=3, count=2048, selectivity=0.25, seed=0)

    def test_prefetch_speeds_up_columnar(self, ablation):
        speedup = ablation["columnar"].cycles / ablation["columnar+prefetch"].cycles
        assert speedup > 1.2  # paper reports ≈1.5×

    def test_columnar_beats_rowwise(self, ablation):
        assert ablation["columnar"].cycles < ablation["rowwise"].cycles

    def test_columnar_fewer_misses_when_selective(self, ablation):
        assert ablation["columnar"].misses < ablation["rowwise"].misses

    def test_prefetches_mostly_useful(self, ablation):
        m = ablation["columnar+prefetch"]
        assert m.prefetches_issued > 0
        assert m.prefetches_useful > 0

    def test_small_bitvector_stays_resident(self):
        from repro.cache import bitvector_residency_sweep

        rates = bitvector_residency_sweep([256, 1 << 20], count=1024)
        # §2.3: a small bit vector is cache-resident; a huge one thrashes.
        assert rates[256] < 0.5 * rates[1 << 20]
