"""AST nodes directly: negation pushdown and DNF algebra."""

import pytest

from repro.core import Event, ParseError, Subscription, eq, ge, le, lt, ne
from repro.lang import And, Leaf, Not, Or


def leaf(p):
    return Leaf(p)


class TestNegation:
    def test_leaf_negates_operator(self):
        n = leaf(le("x", 5)).negated()
        assert n.predicate.as_tuple() == ("x", ">", 5)

    def test_and_negates_to_or(self):
        node = And([leaf(eq("a", 1)), leaf(eq("b", 2))]).negated()
        assert isinstance(node, Or)
        assert [l.predicate.as_tuple() for l in node.children] == [
            ("a", "!=", 1),
            ("b", "!=", 2),
        ]

    def test_or_negates_to_and(self):
        node = Or([leaf(eq("a", 1)), leaf(eq("b", 2))]).negated()
        assert isinstance(node, And)

    def test_not_negated_is_child(self):
        inner = leaf(eq("a", 1))
        assert Not(inner).negated() is inner


class TestDnf:
    def test_leaf(self):
        assert leaf(eq("a", 1)).dnf() == [(eq("a", 1),)]

    def test_and_distributes_over_or(self):
        node = And([leaf(eq("a", 1)), Or([leaf(eq("b", 1)), leaf(eq("b", 2))])])
        disjuncts = node.dnf()
        assert len(disjuncts) == 2
        assert all(eq("a", 1) in d for d in disjuncts)

    def test_duplicate_predicates_merged_within_conjunct(self):
        node = And([leaf(eq("a", 1)), leaf(eq("a", 1))])
        assert node.dnf() == [(eq("a", 1),)]

    def test_not_eliminated_before_dnf(self):
        node = Not(And([leaf(ge("x", 5)), leaf(le("x", 9))]))
        disjuncts = node.dnf()
        assert len(disjuncts) == 2
        subs = [Subscription(f"d{i}", d) for i, d in enumerate(disjuncts)]
        hit = lambda v: any(s.is_satisfied_by(Event({"x": v})) for s in subs)
        assert hit(4) and hit(10) and not hit(7)

    def test_nested_product_size(self):
        two = lambda a: Or([leaf(eq(a, 1)), leaf(eq(a, 2))])
        node = And([two("a"), two("b"), two("c")])
        assert len(node.dnf()) == 8

    def test_empty_children_rejected(self):
        with pytest.raises(ParseError):
            And([])
        with pytest.raises(ParseError):
            Or([])

    def test_reprs(self):
        node = Not(And([leaf(eq("a", 1))]))
        assert "Not" in repr(node) and "And" in repr(node) and "Leaf" in repr(node)
