"""Parser: predicates, boolean structure, DNF, events."""

import pytest

from repro.core import Event, Operator, ParseError, eq, ge, gt, le, lt, ne
from repro.lang import (
    parse_event,
    parse_formula,
    parse_subscription,
    parse_subscriptions,
)


class TestPredicates:
    def test_simple(self):
        sub = parse_subscription("price <= 400", "s")
        assert sub.predicates == (le("price", 400),)

    def test_conjunction(self):
        sub = parse_subscription("movie = 'gd' and price <= 10 and price >= 5", "s")
        assert set(sub.predicates) == {eq("movie", "gd"), le("price", 10), ge("price", 5)}

    def test_bare_word_is_string(self):
        sub = parse_subscription("city = paris", "s")
        assert sub.predicates == (eq("city", "paris"),)

    def test_double_equals(self):
        assert parse_subscription("x == 1", "s").predicates == (eq("x", 1),)

    def test_string_with_range_op_rejected(self):
        with pytest.raises(ParseError):
            parse_subscription("x <= 'abc'", "s")


class TestBooleanStructure:
    def test_or_expands_to_two_subscriptions(self):
        subs = parse_subscriptions("x = 1 or y = 2", "u")
        assert [s.id for s in subs] == ["u#0", "u#1"]
        assert subs[0].predicates == (eq("x", 1),)
        assert subs[1].predicates == (eq("y", 2),)

    def test_and_binds_tighter_than_or(self):
        subs = parse_subscriptions("a = 1 and b = 2 or c = 3", "u")
        assert len(subs) == 2
        assert set(subs[0].predicates) == {eq("a", 1), eq("b", 2)}

    def test_parens_override(self):
        subs = parse_subscriptions("a = 1 and (b = 2 or c = 3)", "u")
        assert len(subs) == 2
        assert set(subs[0].predicates) == {eq("a", 1), eq("b", 2)}
        assert set(subs[1].predicates) == {eq("a", 1), eq("c", 3)}

    def test_not_pushes_into_complement_operator(self):
        sub = parse_subscription("not price <= 10", "s")
        assert sub.predicates == (gt("price", 10),)

    def test_not_over_conjunction_is_disjunction(self):
        subs = parse_subscriptions("not (a = 1 and b < 2)", "u")
        assert len(subs) == 2
        assert subs[0].predicates == (ne("a", 1),)
        assert subs[1].predicates == (ge("b", 2),)

    def test_double_negation(self):
        sub = parse_subscription("not not x = 1", "s")
        assert sub.predicates == (eq("x", 1),)

    def test_dnf_product(self):
        subs = parse_subscriptions("(a = 1 or a = 2) and (b = 1 or b = 2)", "u")
        assert len(subs) == 4

    def test_single_conjunct_keeps_id(self):
        assert parse_subscription("x = 1 and y = 2", "keep").id == "keep"

    def test_parse_subscription_rejects_disjunction(self):
        with pytest.raises(ParseError):
            parse_subscription("x = 1 or y = 2", "s")

    def test_dnf_semantics_match(self):
        subs = parse_subscriptions("a = 1 and (b = 2 or not c <= 3)", "u")
        for event, expected in [
            (Event({"a": 1, "b": 2, "c": 1}), True),
            (Event({"a": 1, "b": 9, "c": 9}), True),
            (Event({"a": 1, "b": 9, "c": 1}), False),
            (Event({"a": 2, "b": 2, "c": 9}), False),
        ]:
            got = any(s.is_satisfied_by(event) for s in subs)
            assert got is expected, event


class TestEvents:
    def test_parse_event(self):
        e = parse_event("movie='gd', price=8, theater=odeon")
        assert e == Event({"movie": "gd", "price": 8, "theater": "odeon"})

    def test_single_pair(self):
        assert parse_event("x = 1") == Event({"x": 1})

    def test_non_equality_rejected(self):
        with pytest.raises(ParseError):
            parse_event("x <= 1")

    def test_trailing_garbage_rejected(self):
        with pytest.raises(ParseError):
            parse_event("x = 1 y = 2")

    def test_duplicate_attribute_rejected(self):
        from repro.core import InvalidEventError

        with pytest.raises(InvalidEventError):
            parse_event("x = 1, x = 2")


class TestParseErrors:
    @pytest.mark.parametrize(
        "text",
        [
            "",
            "x =",
            "= 5",
            "x = 1 and",
            "(x = 1",
            "x = 1)",
            "x = 1 or or y = 2",
            "and x = 1",
        ],
    )
    def test_malformed_rejected(self, text):
        with pytest.raises(ParseError):
            parse_subscriptions(text, "s")

    def test_error_message_has_caret(self):
        with pytest.raises(ParseError) as err:
            parse_subscription("price <=", "s")
        assert "^" in str(err.value)

    def test_formula_roundtrip_through_ast(self):
        node = parse_formula("a = 1 and b <= 2")
        assert len(node.dnf()) == 1
