"""Tokenizer for the surface language."""

import pytest

from repro.core import ParseError
from repro.lang import Token, TokenKind, tokenize


def kinds(text):
    return [t.kind for t in tokenize(text)]


class TestTokens:
    def test_simple_predicate(self):
        toks = tokenize("price <= 400")
        assert [t.kind for t in toks] == [
            TokenKind.IDENT, TokenKind.OP, TokenKind.NUMBER, TokenKind.END,
        ]
        assert toks[1].text == "<=" and toks[2].value == 400

    def test_all_operators(self):
        for sym in ["<", "<=", "=", "==", "!=", ">=", ">"]:
            toks = tokenize(f"x {sym} 1")
            assert toks[1].kind is TokenKind.OP and toks[1].text == sym

    def test_keywords_case_insensitive(self):
        assert kinds("x = 1 AND y = 2")[3] is TokenKind.AND
        assert kinds("x = 1 or y = 2")[3] is TokenKind.OR
        assert kinds("NOT x = 1")[0] is TokenKind.NOT

    def test_strings_both_quotes(self):
        assert tokenize("x = 'a b'")[2].value == "a b"
        assert tokenize('x = "a b"')[2].value == "a b"

    def test_numbers(self):
        assert tokenize("x = 3.5")[2].value == 3.5
        assert tokenize("x = -7")[2].value == -7
        assert isinstance(tokenize("x = 10")[2].value, int)

    def test_identifier_with_dots_and_underscores(self):
        toks = tokenize("user.age_years >= 21")
        assert toks[0].value == "user.age_years"

    def test_parens_and_comma(self):
        assert kinds("( x = 1 ), y = 2")[:1] == [TokenKind.LPAREN]
        assert TokenKind.COMMA in kinds("a = 1, b = 2")

    def test_positions_recorded(self):
        toks = tokenize("xx >= 10")
        assert toks[0].position == 0
        assert toks[1].position == 3
        assert toks[2].position == 6


class TestLexErrors:
    def test_unterminated_string(self):
        with pytest.raises(ParseError):
            tokenize("x = 'oops")

    def test_bad_character(self):
        with pytest.raises(ParseError):
            tokenize("x = #")

    def test_lone_bang(self):
        with pytest.raises(ParseError):
            tokenize("x ! 3")

    def test_error_carries_position(self):
        with pytest.raises(ParseError) as err:
            tokenize("abc = $")
        assert err.value.position == 6
