"""`in` and `between` syntactic sugar."""

import pytest

from repro.core import Event, ParseError, eq, ge, le
from repro.lang import parse_subscription, parse_subscriptions


class TestIn:
    def test_expands_to_disjunction(self):
        subs = parse_subscriptions("city in ('nyc', 'sf')", "u")
        assert [s.predicates for s in subs] == [
            (eq("city", "nyc"),),
            (eq("city", "sf"),),
        ]

    def test_single_element_is_plain_equality(self):
        sub = parse_subscription("x in (5)", "u")
        assert sub.predicates == (eq("x", 5),)

    def test_combines_with_conjunction(self):
        subs = parse_subscriptions("a = 1 and b in (2, 3)", "u")
        assert len(subs) == 2
        assert all(eq("a", 1) in s.predicates for s in subs)

    def test_not_in(self):
        subs = parse_subscriptions("not (x in (1, 2))", "u")
        # ¬(x=1 ∨ x=2) = x≠1 ∧ x≠2 — a single conjunction.
        assert len(subs) == 1
        sub = subs[0]
        assert not sub.is_satisfied_by(Event({"x": 1}))
        assert not sub.is_satisfied_by(Event({"x": 2}))
        assert sub.is_satisfied_by(Event({"x": 3}))

    @pytest.mark.parametrize("text", ["x in ()", "x in (1,", "x in 1"])
    def test_malformed(self, text):
        with pytest.raises(ParseError):
            parse_subscriptions(text, "u")


class TestBetween:
    def test_expands_to_inclusive_range(self):
        sub = parse_subscription("price between 5 and 10", "u")
        assert set(sub.predicates) == {ge("price", 5), le("price", 10)}

    def test_boundaries_inclusive(self):
        sub = parse_subscription("p between 5 and 10", "u")
        assert sub.is_satisfied_by(Event({"p": 5}))
        assert sub.is_satisfied_by(Event({"p": 10}))
        assert not sub.is_satisfied_by(Event({"p": 11}))

    def test_between_and_further_conjunct(self):
        sub = parse_subscription("p between 5 and 10 and q = 1", "u")
        assert set(sub.predicates) == {ge("p", 5), le("p", 10), eq("q", 1)}

    def test_not_between(self):
        subs = parse_subscriptions("not (p between 5 and 10)", "u")
        assert len(subs) == 2  # p < 5 or p > 10
        hit = lambda v: any(s.is_satisfied_by(Event({"p": v})) for s in subs)
        assert hit(4) and hit(11) and not hit(7)

    def test_string_bounds_rejected(self):
        with pytest.raises(ParseError):
            parse_subscription("p between 'a' and 'b'", "u")

    @pytest.mark.parametrize("text", ["p between 5", "p between 5 10", "p between and"])
    def test_malformed(self, text):
        with pytest.raises(ParseError):
            parse_subscriptions(text, "u")
