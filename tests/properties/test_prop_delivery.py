"""Properties of the at-least-once delivery layer.

Three guarantees, each hypothesis-driven under a ``VirtualClock``:

1. **At-least-once** — whatever schedule of subscriber crashes, stalls
   and lost acks, once time runs long enough every dispatched
   notification is either acked (and was received at least once) or
   dead-lettered; nothing stays in flight and nothing vanishes.
2. **Dead-letter exactness** — the dead-lettered notifications are
   exactly the ones that exhausted the per-channel retry budget, each
   after exactly ``max_attempts`` send attempts.
3. **Crash-offset recovery** — truncating the WAL at *any* byte offset
   and recovering re-queues exactly the unacked in-flight set implied
   by the longest valid record prefix — computed here by an independent
   JSON-lines replay, not by the modules under test.
"""

import json
import os
import random
import tempfile

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.types import Event
from repro.system import (
    DeliveryManager,
    RetryPolicy,
    VirtualClock,
    WriteAheadLog,
)

MAX_ATTEMPTS = 3
ACK_TIMEOUT = 5.0


class ScriptedSubscriber:
    """A sink driven by a per-attempt behavior script.

    Each delivery attempt consumes the next scripted behavior:
    ``crash`` raises (the attempt fails), ``drop`` receives but never
    acks (the ack is lost; the attempt times out), ``ack`` receives and
    acks.  A subscriber whose script ran out *survives*: every further
    attempt acks.
    """

    def __init__(self, manager, script):
        self.manager = manager
        self.script = list(script)
        self.received = []
        self.acked = set()

    def deliver(self, notification):
        behavior = self.script.pop(0) if self.script else "ack"
        if behavior == "crash":
            raise RuntimeError("scripted crash")
        self.received.append(notification)
        if behavior == "ack":
            self.acked.add(notification.seq)
            self.manager.ack(notification.sub_id, notification.seq)


def make_manager(clock):
    return DeliveryManager(
        clock=clock,
        ack_timeout=ACK_TIMEOUT,
        retry=RetryPolicy(
            max_attempts=MAX_ATTEMPTS, base_delay=1.0, max_delay=4.0,
            rng=random.Random(99),
        ),
    )


def settle(manager, clock, rounds=200):
    """Pump until nothing is in flight (bounded; the budget guarantees
    convergence long before the bound)."""
    for _ in range(rounds):
        if manager.inflight == 0:
            return
        clock.advance(1.0)
        manager.pump()
    raise AssertionError(f"delivery never settled: {manager.inflight} in flight")


@settings(max_examples=50, deadline=None)
@given(
    script=st.lists(
        st.sampled_from(["crash", "drop", "ack"]), min_size=0, max_size=30
    ),
    n_events=st.integers(min_value=1, max_value=8),
    gaps=st.lists(st.floats(min_value=0.0, max_value=10.0), min_size=8, max_size=8),
)
def test_every_notification_is_acked_or_dead_lettered(script, n_events, gaps):
    clock = VirtualClock()
    manager = make_manager(clock)
    subscriber = ScriptedSubscriber(manager, script)
    manager.register("s1", sink=subscriber)

    dispatched = []
    for i in range(n_events):
        dispatched.append(manager.dispatch("s1", Event({"n": i})))
        clock.advance(gaps[i])
        manager.pump()
    settle(manager, clock)

    acked = subscriber.acked
    dead = {e.seq for e in manager.dead_letters.entries("s1")}
    # Exhaustive and disjoint: every delivery ends in exactly one bin.
    assert acked | dead == set(dispatched)
    assert acked & dead == set()
    # At-least-once: whatever was acked was genuinely received.
    received = {n.seq for n in subscriber.received}
    assert acked <= received
    # Dead-letter exactness: only a spent budget dead-letters, and a
    # spent budget means exactly MAX_ATTEMPTS send attempts.
    for entry in manager.dead_letters.entries("s1"):
        assert entry.reason == "budget"
        assert entry.attempts == MAX_ATTEMPTS


class PerSeqScriptedSubscriber:
    """Like :class:`ScriptedSubscriber`, but each delivery has its own
    failure script — capping every script below the retry budget makes
    the subscriber a *survivor* by construction: no single notification
    can ever exhaust its attempts."""

    def __init__(self, manager, scripts):
        self.manager = manager
        self.scripts = {seq: list(s) for seq, s in enumerate(scripts)}
        self.received = []
        self.acked = set()

    def deliver(self, notification):
        script = self.scripts.get(notification.seq, [])
        behavior = script.pop(0) if script else "ack"
        if behavior == "crash":
            raise RuntimeError("scripted crash")
        self.received.append(notification)
        if behavior == "ack":
            self.acked.add(notification.seq)
            self.manager.ack(notification.sub_id, notification.seq)


@settings(max_examples=50, deadline=None)
@given(
    scripts=st.lists(
        st.lists(
            st.sampled_from(["crash", "drop"]),
            min_size=0,
            max_size=MAX_ATTEMPTS - 1,
        ),
        min_size=5,
        max_size=5,
    )
)
def test_surviving_subscriber_receives_everything(scripts):
    n_events = 5
    clock = VirtualClock()
    manager = make_manager(clock)
    subscriber = PerSeqScriptedSubscriber(manager, scripts)
    manager.register("s1", sink=subscriber)
    dispatched = [manager.dispatch("s1", Event({"n": i})) for i in range(n_events)]
    settle(manager, clock)
    # The subscriber survived (its failures were transient), so
    # at-least-once delivery of *everything* is mandatory.
    assert {n.seq for n in subscriber.received} == set(dispatched)
    assert subscriber.acked == set(dispatched)
    assert len(manager.dead_letters) == 0


def run_delivery_workload(wal_path, ops):
    """Journal a delivery workload; the WAL file is the only artifact."""
    clock = VirtualClock()
    wal = WriteAheadLog(wal_path, clock=clock, fsync="never")
    manager = make_manager(clock)
    manager.wal = wal
    manager.register("s1", sink=lambda n: None)
    manager.register("s2", sink=lambda n: None)
    outstanding = []  # (sub, seq) we have not acked yet
    for op in ops:
        if op[0] == "dispatch":
            sub = f"s{1 + op[1] % 2}"
            seq = manager.dispatch(sub, Event({"n": op[1]}))
            outstanding.append((sub, seq))
        elif op[0] == "ack":
            if outstanding:
                sub, seq = outstanding.pop(op[1] % len(outstanding))
                manager.ack(sub, seq)
        else:  # advance: ack timeouts, retries and dead-letters fire
            clock.advance(op[1])
            manager.pump()
            outstanding = [
                (sub, seq)
                for sub, seq in outstanding
                if seq in manager.channel(sub)._inflight
                or any(l.seq == seq for l in manager.channel(sub)._pending)
            ]
    wal.close()


def oracle_delivery_state(wal_path):
    """Independent replay: (outstanding, dead) implied by the longest
    valid record prefix of the (possibly damaged) WAL file."""
    with open(wal_path, "rb") as fp:
        raw = fp.read()
    chunks = raw.split(b"\n")[:-1]  # no trailing newline = torn = untrusted
    outstanding = {}
    dead = set()
    for index, chunk in enumerate(chunks):
        try:
            record = json.loads(chunk.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError):
            break
        if not isinstance(record, dict):
            break
        if index == 0:
            if record.get("type") != "repro-broker-wal":
                break
            continue
        kind = record.get("type")
        if kind == "deliver":
            outstanding[(record["sub"], record["seq"])] = record["event"]
        elif kind == "settle":
            outstanding.pop((record["sub"], record["seq"]), None)
            if record["outcome"] == "dead-letter":
                dead.add((record["sub"], record["seq"]))
        elif kind not in ("anchor", "subscribe", "unsubscribe"):
            break
    return outstanding, dead


OPS = st.lists(
    st.one_of(
        st.tuples(st.just("dispatch"), st.integers(min_value=0, max_value=99)),
        st.tuples(st.just("ack"), st.integers(min_value=0, max_value=99)),
        st.tuples(st.just("advance"), st.floats(min_value=0.5, max_value=8.0)),
    ),
    min_size=1,
    max_size=30,
)


@settings(max_examples=50, deadline=None)
@given(ops=OPS, offset_frac=st.floats(min_value=0.0, max_value=1.0))
def test_any_crash_offset_recovers_every_unacked_delivery(ops, offset_frac):
    with tempfile.TemporaryDirectory() as tmp:
        wal_path = os.path.join(tmp, "crash.wal")
        run_delivery_workload(wal_path, ops)
        offset = int(offset_frac * os.path.getsize(wal_path))
        with open(wal_path, "r+b") as raw:
            raw.truncate(offset)

        expected_outstanding, expected_dead = oracle_delivery_state(wal_path)

        from repro.system import PubSubBroker, QueueNotifier, recover_files

        manager = DeliveryManager(clock=VirtualClock())
        broker = PubSubBroker(
            clock=VirtualClock(), notifier=QueueNotifier(), delivery=manager
        )
        recover_files(broker, wal_path=wal_path)

        got_outstanding = {
            (sub, lease.seq): True for sub, lease in manager.outstanding_leases()
        }
        # Never loses an unacked in-flight notification — and never
        # invents one either.
        assert set(got_outstanding) == set(expected_outstanding)
        got_dead = {(e.sub_id, e.seq) for e in manager.dead_letters}
        assert got_dead == expected_dead
        # The re-queued payloads round-trip.
        for sub, lease in manager.outstanding_leases():
            want = expected_outstanding[(sub, lease.seq)]["pairs"]
            assert dict(lease.notification.event.items()) == want
