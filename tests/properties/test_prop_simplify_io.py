"""Property tests: canonicalization equivalence and wire round-trips."""

import io

from hypothesis import given, settings

from repro.core import InvalidSubscriptionError, simplify
from repro.io import (
    dump_events,
    dump_subscriptions,
    load_events,
    load_subscriptions,
)
from tests.properties.strategies import events, subscriptions


@settings(max_examples=120, deadline=None)
@given(s=subscriptions(), e=events())
def test_simplify_preserves_semantics(s, e):
    """A simplified subscription matches exactly the same events —
    and a contradiction verdict implies no event can match."""
    try:
        slim = simplify(s)
    except InvalidSubscriptionError:
        assert not s.is_satisfied_by(e)
        return
    assert slim.is_satisfied_by(e) == s.is_satisfied_by(e)
    assert slim.size <= s.size


@settings(max_examples=80, deadline=None)
@given(s=subscriptions())
def test_simplify_is_idempotent(s):
    try:
        once = simplify(s)
    except InvalidSubscriptionError:
        return
    twice = simplify(once)
    assert set(twice.predicates) == set(once.predicates)


@settings(max_examples=80, deadline=None)
@given(s=subscriptions())
def test_subscription_wire_roundtrip(s):
    buf = io.StringIO()
    dump_subscriptions([s], buf)
    buf.seek(0)
    assert load_subscriptions(buf) == [s]


@settings(max_examples=80, deadline=None)
@given(e=events())
def test_event_wire_roundtrip(e):
    buf = io.StringIO()
    dump_events([e], buf)
    buf.seek(0)
    assert load_events(buf) == [e]
