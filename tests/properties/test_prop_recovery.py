"""Property: recovery from *any* crash offset is prefix-consistent.

The broker journals a random subscribe/unsubscribe/advance workload,
then the WAL is truncated at an arbitrary byte offset (the crash).
Recovery must restore exactly the live set implied by the longest valid
record prefix of the damaged file — computed here by an independent
JSON-lines parser and replay table, not by the WAL module under test —
and the restored matcher must agree with direct predicate evaluation.
"""

import json
import os
import tempfile

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.io import subscription_from_dict
from repro.system import (
    PubSubBroker,
    QueueNotifier,
    VirtualClock,
    WriteAheadLog,
    recover_files,
)
from tests.properties.strategies import events, subscriptions

OPS = st.lists(
    st.one_of(
        st.tuples(
            st.just("subscribe"),
            subscriptions(),
            st.one_of(st.none(), st.floats(min_value=1.0, max_value=50.0)),
        ),
        st.tuples(st.just("unsubscribe"), st.integers(min_value=0, max_value=30)),
        st.tuples(st.just("advance"), st.floats(min_value=0.0, max_value=10.0)),
    ),
    min_size=1,
    max_size=25,
)


def run_workload(ops, wal_path):
    """Drive a journaling broker through *ops*; returns nothing — the
    WAL file is the only artifact the test trusts afterwards."""
    clock = VirtualClock()
    wal = WriteAheadLog(wal_path, clock=clock, fsync="never")
    broker = PubSubBroker(clock=clock, notifier=QueueNotifier(), wal=wal)
    live = {}  # id -> absolute expiry (None = immortal), mirrors the broker
    for op in ops:
        now = clock.now()
        live = {i: e for i, e in live.items() if e is None or e > now}
        if op[0] == "subscribe":
            _, sub, ttl = op
            if sub.id in live:
                continue  # the broker rejects duplicate live ids
            broker.subscribe(sub, ttl=ttl, notify_retained=False)
            live[sub.id] = None if ttl is None else now + ttl
        elif op[0] == "unsubscribe":
            candidates = sorted(live)
            if not candidates:
                continue
            target = candidates[op[1] % len(candidates)]
            broker.unsubscribe(target)
            del live[target]
        else:
            clock.advance(op[1])
    wal.close()


def oracle_live_set(wal_path):
    """Independent replay: the live set at crash time implied by the
    longest valid record prefix of the (possibly damaged) WAL file."""
    with open(wal_path, "rb") as fp:
        raw = fp.read()
    # A chunk without a trailing newline is torn, never trusted.
    chunks = raw.split(b"\n")[:-1]
    table = {}  # id -> (subscription, expires-or-None)
    times = []
    for index, chunk in enumerate(chunks):
        try:
            record = json.loads(chunk.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError):
            break
        if not isinstance(record, dict):
            break
        if index == 0:
            if record.get("type") != "repro-broker-wal":
                break
            continue
        kind = record.get("type")
        if kind == "subscribe":
            sub = subscription_from_dict(record["subscription"])
            ttl = record["ttl"]
            at = record["at"]
            table[sub.id] = (sub, None if ttl is None else at + ttl)
            times.append(at)
        elif kind == "unsubscribe":
            table.pop(record["id"], None)
            times.append(record["at"])
        elif kind == "anchor":
            times.append(record["at"])
        else:
            break
    now = max(times) if times else 0.0
    return {
        sid: sub for sid, (sub, expires) in table.items()
        if expires is None or expires > now
    }


@settings(max_examples=60, deadline=None)
@given(
    ops=OPS,
    offset_frac=st.floats(min_value=0.0, max_value=1.0),
    probes=st.lists(events(), min_size=1, max_size=4),
)
def test_any_crash_offset_recovers_a_consistent_prefix(ops, offset_frac, probes):
    with tempfile.TemporaryDirectory() as tmp:
        wal_path = os.path.join(tmp, "crash.wal")
        run_workload(ops, wal_path)
        # The crash: everything past an arbitrary byte offset is lost.
        offset = int(offset_frac * os.path.getsize(wal_path))
        with open(wal_path, "r+b") as raw:
            raw.truncate(offset)

        restored = PubSubBroker(clock=VirtualClock(), notifier=QueueNotifier())
        recover_files(restored, wal_path=wal_path)
        expected = oracle_live_set(wal_path)

        got = sorted(sub.id for sub in restored.matcher.iter_subscriptions())
        assert got == sorted(expected)
        for event in probes:
            want = sorted(
                sid for sid, sub in expected.items() if sub.is_satisfied_by(event)
            )
            assert sorted(restored.matcher.match(event)) == want
