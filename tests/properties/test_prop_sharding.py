"""Sharding properties: the partition is invisible and exact.

For every router policy and a spread of shard counts, Hypothesis-driven
workloads must make the :class:`ShardedMatcher` behave exactly like the
brute-force oracle — match sets, removal round-trips, population — and
the shards must at all times hold a *disjoint partition* whose union is
the full subscription set.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import OracleMatcher
from repro.system.router import AffinityRouter, ROUTERS
from repro.system.sharding import ShardedMatcher
from tests.properties.strategies import events, subscriptions

COMMON_SETTINGS = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

CONFIGS = [
    (router, shards) for router in sorted(ROUTERS) for shards in (1, 2, 3, 5)
]


def assert_partition(sharded: ShardedMatcher, expected_ids) -> None:
    """Shard populations are disjoint and union to the full set."""
    per_shard = sharded.shard_ids()
    flat = [sid for part in per_shard for sid in part]
    assert len(flat) == len(set(flat)), "a subscription lives on two shards"
    assert set(flat) == set(expected_ids)
    # The per-shard engines agree with the placement bookkeeping.
    assert [len(sharded.shard(i)) for i in range(sharded.shards)] == [
        len(part) for part in per_shard
    ]


@pytest.mark.slow
@pytest.mark.parametrize("router,shards", CONFIGS)
class TestShardedEquivalence:
    @COMMON_SETTINGS
    @given(
        subs=st.lists(subscriptions(), min_size=0, max_size=25),
        evs=st.lists(events(), min_size=1, max_size=8),
        drop=st.lists(st.integers(min_value=0, max_value=24), max_size=8),
    )
    def test_matches_equal_oracle(self, router, shards, subs, evs, drop):
        oracle = OracleMatcher()
        sharded = ShardedMatcher(
            shards=shards, router=router, inner="dynamic", parallel=False
        )
        added = []
        for sub in subs:
            if sub.id in set(added):
                continue
            oracle.add(sub)
            sharded.add(sub)
            added.append(sub.id)
        # Interleave removals drawn from the added population.
        for index in drop:
            if index < len(added) and added[index] is not None:
                sid = added[index]
                added[index] = None
                assert sharded.remove(sid).id == oracle.remove(sid).id
        live = [sid for sid in added if sid is not None]
        assert_partition(sharded, live)
        assert len(sharded) == len(oracle)
        for event in evs:
            expected = sorted(oracle.match(event), key=str)
            assert sorted(sharded.match(event), key=str) == expected
        assert_partition(sharded, live)


@pytest.mark.slow
@COMMON_SETTINGS
@given(
    subs=st.lists(subscriptions(), min_size=1, max_size=25),
    evs=st.lists(events(), min_size=1, max_size=6),
)
def test_affinity_pruning_is_sound(subs, evs):
    """Every match survives pruning: candidate shards cover the matches.

    Implied by equivalence, but stated directly against the router so a
    pruning bug shrinks to the routing key itself rather than to a full
    workload.
    """
    router = AffinityRouter(shards=4)
    placed = {}
    for sub in subs:
        if sub.id in placed:
            continue
        placed[sub.id] = (router.shard_for(sub), sub)
    for event in evs:
        candidates = set(router.candidate_shards(event))
        for shard, sub in placed.values():
            if sub.is_satisfied_by(event):
                assert shard in candidates, (sub, event)


def test_partition_invariant_smoke():
    """Always-on slice: partition invariant across routers without Hypothesis."""
    import random

    from tests.conftest import make_subscription

    rng = random.Random(99)
    for router in sorted(ROUTERS):
        sharded = ShardedMatcher(shards=3, router=router, parallel=False)
        ids = []
        for i in range(60):
            sub = make_subscription(rng, f"p{i}")
            sharded.add(sub)
            ids.append(sub.id)
        for sid in ids[::4]:
            sharded.remove(sid)
        assert_partition(sharded, set(ids) - set(ids[::4]))
        sharded.close()
