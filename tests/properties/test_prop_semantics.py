"""Property tests on matching semantics, parsing, and satisfiability."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import Event, Predicate, Subscription
from repro.lang import parse_event, parse_subscription, parse_subscriptions
from tests.properties.strategies import events, predicates, subscriptions


@settings(max_examples=100, deadline=None)
@given(p=predicates(), e=events())
def test_negated_predicate_complements(p, e):
    """On present attributes, p and ¬p partition the value space."""
    if not e.has(p.attribute):
        return
    negated = Predicate(p.attribute, p.operator.negate(), p.value)
    v = e.get(p.attribute)
    assert p.matches(v) != negated.matches(v)


@settings(max_examples=100, deadline=None)
@given(s=subscriptions(), e=events())
def test_satisfaction_matches_predicate_conjunction(s, e):
    expected = all(e.has(p.attribute) and p.matches(e.get(p.attribute)) for p in s)
    assert s.is_satisfied_by(e) == expected


@settings(max_examples=100, deadline=None)
@given(s=subscriptions(), e=events())
def test_unsatisfiable_subscriptions_never_match(s, e):
    """is_satisfiable is sound: 'unsatisfiable' really means no event."""
    if not s.is_satisfiable():
        assert not s.is_satisfied_by(e)


@settings(max_examples=100, deadline=None)
@given(s=subscriptions(sub_id="rt"))
def test_subscription_text_roundtrip(s):
    """Rendering a subscription and reparsing yields the same predicates."""
    text = " and ".join(
        f"{p.attribute} {p.operator.value} {p.value}" for p in s.predicates
    )
    parsed = parse_subscription(text, "rt")
    assert set(parsed.predicates) == set(s.predicates)


@settings(max_examples=100, deadline=None)
@given(e=events())
def test_event_text_roundtrip(e):
    text = ", ".join(f"{a} = {v}" for a, v in e.items())
    assert parse_event(text) == e


@settings(max_examples=60, deadline=None)
@given(
    left=subscriptions(sub_id="L"),
    right=subscriptions(sub_id="R"),
    e=events(),
)
def test_dnf_or_is_union(left, right, e):
    """'A or B' matches exactly when A matches or B matches."""
    text_a = " and ".join(
        f"{p.attribute} {p.operator.value} {p.value}" for p in left.predicates
    )
    text_b = " and ".join(
        f"{p.attribute} {p.operator.value} {p.value}" for p in right.predicates
    )
    subs = parse_subscriptions(f"({text_a}) or ({text_b})", "u")
    got = any(s.is_satisfied_by(e) for s in subs)
    assert got == (left.is_satisfied_by(e) or right.is_satisfied_by(e))


@settings(max_examples=60, deadline=None)
@given(s=subscriptions(sub_id="N"), e=events())
def test_not_conjunction_is_complement_when_attributes_present(s, e):
    """Over events carrying every referenced attribute, ¬(conj) matches
    exactly the complement of the conjunction."""
    if not all(e.has(p.attribute) for p in s.predicates):
        return
    text = " and ".join(
        f"{p.attribute} {p.operator.value} {p.value}" for p in s.predicates
    )
    negs = parse_subscriptions(f"not ({text})", "n")
    got = any(n.is_satisfied_by(e) for n in negs)
    assert got == (not s.is_satisfied_by(e))
