"""THE property: every engine returns exactly the oracle's match set.

Hypothesis drives randomized populations, events, and interleaved
removal; any divergence between an optimized engine and the brute-force
definition of matching is a bug, shrunk to a minimal counterexample.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.clustering import DynamicParams, UniformStatistics
from repro.core import OracleMatcher
from repro.matchers import (
    CountingMatcher,
    DynamicMatcher,
    PrefetchPropagationMatcher,
    PropagationMatcher,
    StaticMatcher,
    TreeMatcher,
)
from tests.properties.strategies import events, subscriptions

COMMON_SETTINGS = settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def engines():
    return {
        "counting": CountingMatcher(),
        "propagation": PropagationMatcher(),
        "propagation-wp": PrefetchPropagationMatcher(),
        "static": StaticMatcher(UniformStatistics(default_domain=9)),
        # Aggressive params so adaptation machinery actually runs.
        "dynamic": DynamicMatcher(
            params=DynamicParams(bm_max=1.0, b_create=4, maintenance_interval=16)
        ),
        "test-network": TreeMatcher(),
    }


@COMMON_SETTINGS
@given(
    subs=st.lists(subscriptions(), min_size=0, max_size=30),
    evs=st.lists(events(), min_size=1, max_size=10),
)
def test_all_engines_agree_with_oracle(subs, evs):
    oracle = OracleMatcher()
    others = engines()
    seen = set()
    for sub in subs:
        if sub.id in seen:
            continue
        seen.add(sub.id)
        oracle.add(sub)
        for m in others.values():
            m.add(sub)
    others["static"].rebuild()
    for e in evs:
        expected = sorted(oracle.match(e), key=str)
        for name, m in others.items():
            assert sorted(m.match(e), key=str) == expected, name


@COMMON_SETTINGS
@given(
    subs=st.lists(subscriptions(), min_size=2, max_size=25),
    evs=st.lists(events(), min_size=1, max_size=6),
    drop=st.data(),
)
def test_agreement_survives_removals(subs, evs, drop):
    oracle = OracleMatcher()
    others = engines()
    ids = []
    seen = set()
    for sub in subs:
        if sub.id in seen:
            continue
        seen.add(sub.id)
        ids.append(sub.id)
        oracle.add(sub)
        for m in others.values():
            m.add(sub)
    others["static"].rebuild()
    to_drop = drop.draw(
        st.lists(st.sampled_from(ids), max_size=len(ids), unique=True)
    )
    for sid in to_drop:
        oracle.remove(sid)
        for m in others.values():
            m.remove(sid)
    for e in evs:
        expected = sorted(oracle.match(e), key=str)
        for name, m in others.items():
            assert sorted(m.match(e), key=str) == expected, name


@COMMON_SETTINGS
@given(
    subs=st.lists(subscriptions(), min_size=1, max_size=20),
    evs=st.lists(events(), min_size=1, max_size=5),
)
def test_match_is_idempotent(subs, evs):
    """Matching the same event twice returns the same set (state reset)."""
    m = DynamicMatcher()
    seen = set()
    for sub in subs:
        if sub.id not in seen:
            seen.add(sub.id)
            m.add(sub)
    for e in evs:
        first = sorted(m.match(e), key=str)
        second = sorted(m.match(e), key=str)
        assert first == second


@COMMON_SETTINGS
@given(
    subs=st.lists(subscriptions(), min_size=1, max_size=20),
    evs=st.lists(events(), min_size=1, max_size=5),
)
def test_add_remove_add_roundtrip(subs, evs):
    """Removing and re-adding a subscription restores exact behaviour."""
    m = PropagationMatcher()
    seen = {}
    for sub in subs:
        if sub.id not in seen:
            seen[sub.id] = sub
            m.add(sub)
    baseline = [sorted(m.match(e), key=str) for e in evs]
    for sub in seen.values():
        m.remove(sub.id)
        m.add(sub)
    assert [sorted(m.match(e), key=str) for e in evs] == baseline
