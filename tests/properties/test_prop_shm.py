"""Hypothesis properties for the shared-memory ring and slot codecs.

Three invariants, each over adversarial schedules/shapes the unit pins
cannot enumerate:

* **Ring safety** — under any interleaving of acquires and (arbitrarily
  ordered) acks, the ring never double-books a slot, per-slot
  generations only ever increase, and a fully-drained ring returns to
  all-slots-free.
* **Slot codec** — any columnar-eligible batch (shape, value mix,
  attr-name length, row subset) round-trips through a slot bit-exactly.
* **Dtype table** — packing/unpacking any legal section list is the
  identity.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.batch.bitmatrix import unpack_bits
from repro.core import Event
from repro.system.procpool import decode_events, encode_events
from repro.system.shm import (
    DTYPE_CODES,
    ShmArena,
    SlotRing,
    pack_dtype_table,
    unpack_dtype_table,
)

COMMON_SETTINGS = settings(
    max_examples=50,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@pytest.fixture(scope="module")
def arena():
    """One arena shared by every example (slots are fully recycled)."""
    with ShmArena.create(workers=1, slots=2, slot_bytes=1 << 18) as a:
        yield a


class TestRingSafety:
    @COMMON_SETTINGS
    @given(
        slots=st.integers(min_value=1, max_value=4),
        reader_counts=st.lists(
            st.integers(min_value=1, max_value=3), min_size=1, max_size=24
        ),
        data=st.data(),
    )
    def test_any_acquire_ack_interleaving_is_safe(self, slots, reader_counts, data):
        ring = SlotRing(slots)
        outstanding = []  # [ticket, acks_remaining]
        held = set()
        last_generation = {}

        def ack_one():
            pick = data.draw(
                st.integers(min_value=0, max_value=len(outstanding) - 1),
                label="which outstanding ticket acks next",
            )
            entry = outstanding[pick]
            ring.ack(entry[0])
            entry[1] -= 1
            if entry[1] == 0:
                held.discard(entry[0].index)
                outstanding.pop(pick)

        for readers in reader_counts:
            while True:
                ticket = ring.acquire(readers, timeout=0.01)
                if ticket is not None:
                    break
                assert outstanding, "empty ring refused an acquire"
                ack_one()
            # never double-booked, generation strictly monotonic per slot.
            assert ticket.index not in held
            assert ticket.generation > last_generation.get(ticket.index, 0)
            last_generation[ticket.index] = ticket.generation
            held.add(ticket.index)
            outstanding.append([ticket, readers])
            assert ring.in_flight() == len(held)
        while outstanding:
            ack_one()
        assert ring.in_flight() == 0
        assert ring.pending() == [0] * slots


#: Columnar-eligible values: finite floats and float64-exact integers
#: (NaN/inf/strings/huge ints take the pickle odd path by design, which
#: never reaches a slot).
values = st.one_of(
    st.integers(min_value=-(2**53) + 1, max_value=2**53 - 1),
    st.floats(allow_nan=False, allow_infinity=False, width=64),
)

attr_names = st.lists(
    st.text(
        alphabet=st.characters(whitelist_categories=("L", "N")),
        min_size=1,
        max_size=12,
    ),
    min_size=1,
    max_size=8,
    unique=True,
)


@st.composite
def columnar_batches(draw):
    """(events, payload) with per-event random attribute subsets."""
    names = draw(attr_names)
    n_events = draw(st.integers(min_value=1, max_value=12))
    events = []
    for _ in range(n_events):
        subset = draw(
            st.lists(st.sampled_from(names), min_size=1, unique=True)
        )
        events.append(Event({a: draw(values) for a in subset}))
    return events


class TestSlotCodec:
    @COMMON_SETTINGS
    @given(events=columnar_batches(), data=st.data())
    def test_any_columnar_batch_round_trips_exactly(self, arena, events, data):
        payload = encode_events(events, "auto")
        assert payload[0] == "cols"
        _, attrs, vals, presence, ints = payload
        ticket = arena.ring.acquire(1, timeout=1.0)
        try:
            if arena.write_slot(ticket, attrs, vals, presence, ints) is None:
                return  # batch legitimately larger than one slot
            rows = data.draw(
                st.one_of(
                    st.none(),
                    st.lists(
                        st.integers(min_value=0, max_value=len(events) - 1),
                        max_size=len(events),
                    ),
                ),
                label="row subset",
            )
            r_attrs, r_vals, r_pres, r_ints = arena.read_slot(
                ticket.index, ticket.generation
            )
            got = decode_events(
                ("cols", list(r_attrs), r_vals.copy(), r_pres.copy(), r_ints.copy()),
                rows,
            )
            want = events if rows is None else [events[i] for i in rows]
            assert [e.pairs for e in got] == [e.pairs for e in want]
        finally:
            arena.ring.ack(ticket)

    @COMMON_SETTINGS
    @given(
        n_rows=st.integers(min_value=1, max_value=16),
        n_slots=st.integers(min_value=1, max_value=130),
        seed=st.integers(min_value=0, max_value=2**32 - 1),
        generation=st.integers(min_value=1, max_value=2**40),
    )
    def test_any_result_matrix_round_trips_exactly(
        self, arena, n_rows, n_slots, seed, generation
    ):
        truth = np.random.default_rng(seed).random((n_rows, n_slots)) < 0.3
        shape = arena.write_result(0, generation, truth)
        assert shape is not None
        packed = arena.read_result(0, generation, *shape).copy()
        np.testing.assert_array_equal(unpack_bits(packed, n_slots), truth)


class TestDtypeTable:
    @COMMON_SETTINGS
    @given(
        dtypes=st.lists(
            st.sampled_from(sorted(DTYPE_CODES)), min_size=0, max_size=8
        )
    )
    def test_pack_unpack_is_identity(self, dtypes):
        word = pack_dtype_table(dtypes)
        assert unpack_dtype_table(word, len(dtypes)) == tuple(dtypes)
