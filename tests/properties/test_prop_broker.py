"""Stateful property test: the broker against a transparent model."""

from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import RuleBasedStateMachine, invariant, rule

from repro.system import PubSubBroker, QueueNotifier, VirtualClock
from tests.properties.strategies import events, subscriptions


class BrokerMachine(RuleBasedStateMachine):
    """Broker vs a dict-of-subscriptions + list-of-events model.

    Checks, after every operation: publish returns exactly the model's
    satisfied live subscriptions; expiry removes exactly the timed-out
    ones; retro-matching on subscribe notifies exactly the valid stored
    events the subscription satisfies.
    """

    def __init__(self):
        super().__init__()
        self.clock = VirtualClock()
        self.inbox = QueueNotifier()
        self.broker = PubSubBroker(
            clock=self.clock, notifier=self.inbox, event_retention_ttl=50.0
        )
        self.model_subs = {}      # id -> (subscription, expires_at or None)
        self.model_events = []    # (event, expires_at)
        self.counter = 0

    def _live_subs(self):
        now = self.clock.now()
        return {
            sid: sub
            for sid, (sub, exp) in self.model_subs.items()
            if exp is None or exp > now
        }

    @rule(sub=subscriptions(), ttl=st.one_of(st.none(), st.integers(1, 100)))
    def subscribe(self, sub, ttl):
        self.counter += 1
        sid = f"m{self.counter}"
        sub = type(sub)(sid, sub.predicates)
        now = self.clock.now()
        self.inbox.drain()
        self.broker.subscribe(sub, ttl=ttl)
        self.model_subs[sid] = (sub, now + ttl if ttl else None)
        # retro notifications must match the model's valid events
        expected = [
            e for e, exp in self.model_events if exp > now and sub.is_satisfied_by(e)
        ]
        notes = self.inbox.drain()
        assert [n.event for n in notes] == expected

    @rule(event=events())
    def publish(self, event):
        now = self.clock.now()
        matched = set(self.broker.publish(event))
        expected = {
            sid
            for sid, sub in self._live_subs().items()
            if sub.is_satisfied_by(event)
        }
        assert matched == expected
        self.model_events.append((event, now + 50.0))
        self.inbox.drain()

    @rule(delta=st.integers(1, 40))
    def advance_time(self, delta):
        self.clock.advance(delta)

    @rule(data=st.data())
    def unsubscribe(self, data):
        live = sorted(self._live_subs())
        if not live:
            return
        sid = data.draw(st.sampled_from(live))
        self.broker.unsubscribe(sid)
        del self.model_subs[sid]

    @invariant()
    def counts_agree(self):
        self.broker.purge_expired()
        assert self.broker.subscription_count == len(self._live_subs())


TestBroker = BrokerMachine.TestCase
TestBroker.settings = settings(max_examples=20, stateful_step_count=30, deadline=None)
