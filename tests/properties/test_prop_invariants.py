"""Stateful invariants: matcher bookkeeping stays exact under any ops."""

from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import RuleBasedStateMachine, invariant, rule

from repro.clustering import DynamicParams
from repro.matchers import (
    CountingMatcher,
    DynamicMatcher,
    PrefetchPropagationMatcher,
)
from tests.properties.strategies import events, subscriptions


class _MatcherMachine(RuleBasedStateMachine):
    """Random add/remove/match interleavings; invariants checked every step."""

    def make_matcher(self):  # pragma: no cover - overridden
        raise NotImplementedError

    def __init__(self):
        super().__init__()
        self.matcher = self.make_matcher()
        self.live = {}
        self.counter = 0

    @rule(sub=subscriptions())
    def add(self, sub):
        self.counter += 1
        sid = f"p{self.counter}"
        sub = type(sub)(sid, sub.predicates)
        self.matcher.add(sub)
        self.live[sid] = sub

    @rule(data=st.data())
    def remove(self, data):
        if not self.live:
            return
        sid = data.draw(st.sampled_from(sorted(self.live)))
        removed = self.matcher.remove(sid)
        assert removed.id == sid
        del self.live[sid]

    @rule(event=events())
    def match(self, event):
        got = set(self.matcher.match(event))
        expected = {
            sid for sid, sub in self.live.items() if sub.is_satisfied_by(event)
        }
        assert got == expected

    @invariant()
    def bookkeeping_exact(self):
        assert len(self.matcher) == len(self.live)
        self.matcher.check_invariants()


class CountingMachine(_MatcherMachine):
    def make_matcher(self):
        return CountingMatcher()


class PropagationMachine(_MatcherMachine):
    def make_matcher(self):
        return PrefetchPropagationMatcher()


class DynamicMachine(_MatcherMachine):
    def make_matcher(self):
        # Aggressive thresholds: force the maintenance machinery to run
        # (moves, table creation/deletion) inside the state machine.
        return DynamicMatcher(
            params=DynamicParams(bm_max=1.0, b_create=3, b_delete=2,
                                 maintenance_interval=8)
        )


TestCountingInvariants = CountingMachine.TestCase
TestCountingInvariants.settings = settings(
    max_examples=15, stateful_step_count=25, deadline=None
)
TestPropagationInvariants = PropagationMachine.TestCase
TestPropagationInvariants.settings = settings(
    max_examples=15, stateful_step_count=25, deadline=None
)
TestDynamicInvariants = DynamicMachine.TestCase
TestDynamicInvariants.settings = settings(
    max_examples=15, stateful_step_count=25, deadline=None
)
