"""Properties of the batch matching kernel.

Two families:

* **Split invariance** — for every engine, ``match_batch(a + b)`` equals
  ``match_batch(a) + match_batch(b)`` equals the per-event scalar path;
  batching is a pure calling convention, never a semantic boundary.
* **Bit-matrix round trip** — ``pack_bits``/``unpack_bits`` are exact
  inverses for any boolean matrix, including widths that are not a
  multiple of 64 (the padding bits must neither leak nor be lost).
"""

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.batch import pack_bits, packed_words, unpack_bits
from repro.clustering import DynamicParams, UniformStatistics
from repro.core import OracleMatcher
from repro.matchers import (
    CountingMatcher,
    DynamicMatcher,
    PrefetchPropagationMatcher,
    PropagationMatcher,
    StaticMatcher,
    TreeMatcher,
)
from tests.properties.strategies import events, subscriptions

COMMON_SETTINGS = settings(
    max_examples=30,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def engines():
    return {
        "counting": CountingMatcher(),
        "propagation": PropagationMatcher(),
        "propagation-wp": PrefetchPropagationMatcher(),
        "static": StaticMatcher(UniformStatistics(default_domain=9)),
        "dynamic": DynamicMatcher(
            params=DynamicParams(bm_max=1.0, b_create=4, maintenance_interval=16)
        ),
        "test-network": TreeMatcher(),
    }


def norm(ids):
    return sorted(ids, key=repr)


@COMMON_SETTINGS
@given(
    subs=st.lists(subscriptions(), min_size=0, max_size=25),
    evs=st.lists(events(), min_size=0, max_size=12),
    cut=st.integers(min_value=0, max_value=12),
)
def test_batch_splitting_invariance(subs, evs, cut):
    """match_batch(a + b) == match_batch(a) + match_batch(b) == scalar."""
    cut = min(cut, len(evs))
    oracle = OracleMatcher()
    seen = set()
    unique = [s for s in subs if s.id not in seen and not seen.add(s.id)]
    for sub in unique:
        oracle.add(sub)
    expected = [norm(oracle.match(e)) for e in evs]
    for name, engine in engines().items():
        for sub in unique:
            engine.add(sub)
        whole = [norm(r) for r in engine.match_batch(evs)]
        split = [
            norm(r)
            for r in engine.match_batch(evs[:cut]) + engine.match_batch(evs[cut:])
        ]
        assert whole == expected, f"{name}: whole batch diverges from oracle"
        assert split == expected, f"{name}: split batch diverges from oracle"


@COMMON_SETTINGS
@given(
    truth=arrays(
        dtype=bool,
        shape=st.tuples(
            st.integers(min_value=0, max_value=9),
            # Deliberately straddles the 64-bit word boundary.
            st.integers(min_value=0, max_value=130),
        ),
    )
)
def test_pack_unpack_roundtrip(truth):
    packed = pack_bits(truth)
    n_rows, n_slots = truth.shape
    assert packed.dtype == np.uint64
    assert packed.shape == (n_rows, packed_words(n_slots))
    restored = unpack_bits(packed, n_slots)
    assert restored.shape == truth.shape
    assert np.array_equal(restored, truth)


@COMMON_SETTINGS
@given(
    n_slots=st.integers(min_value=0, max_value=200),
    rows=st.integers(min_value=0, max_value=5),
)
def test_padding_bits_stay_zero(n_slots, rows):
    """Set every bit: the packed tail word's padding must stay zero."""
    truth = np.ones((rows, n_slots), dtype=bool)
    packed = pack_bits(truth)
    if rows and n_slots:
        spare = packed_words(n_slots) * 64 - n_slots
        tail = int(packed[0, -1])
        assert tail >> (64 - spare) == 0 if spare else True
    assert np.array_equal(unpack_bits(packed, n_slots), truth)
