"""Covering soundness and aggregation conformance, hypothesis-driven.

Two claims:

* ``covers(broad, narrow)`` is *sound*: whenever it answers True, the
  oracle's match sets nest — every event the narrow subscription
  matches, the broad one matches too (the semantic definition of
  subsumption, checked against generated events).
* The :class:`~repro.aggregation.AggregatingMatcher` is a transparent
  wrapper: over any generated population (small pools force duplicate
  canonical keys and covering chains) its expanded results equal the
  brute-force oracle over the raw subscriptions — before and after
  churn that removes frontier members, forcing covered groups to
  promote.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.aggregation import AggregatingMatcher
from repro.core import OracleMatcher, Subscription
from repro.core.covering import covers
from tests.properties.strategies import events, subscriptions

COMMON_SETTINGS = settings(
    max_examples=60,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def norm(ids):
    return sorted(ids, key=str)


class TestCoveringSoundness:
    @COMMON_SETTINGS
    @given(
        broad=subscriptions(sub_id="broad"),
        narrow=subscriptions(sub_id="narrow"),
        evs=st.lists(events(), min_size=1, max_size=20),
    )
    def test_covers_implies_match_subset(self, broad, narrow, evs):
        if not covers(broad, narrow):
            return
        oracle = OracleMatcher()
        oracle.add(broad)
        oracle.add(narrow)
        for e in evs:
            matched = set(oracle.match(e))
            if "narrow" in matched:
                assert "broad" in matched, (broad, narrow, e)


class TestAggregationConformance:
    @COMMON_SETTINGS
    @given(
        population=st.lists(subscriptions(), min_size=1, max_size=25),
        evs=st.lists(events(), min_size=1, max_size=10),
        churn_seed=st.integers(min_value=2, max_value=5),
    )
    def test_expanded_results_equal_oracle(self, population, evs, churn_seed):
        agg, oracle = AggregatingMatcher(), OracleMatcher()
        added = []
        for i, s in enumerate(population):
            # Re-id to guarantee uniqueness; reuse of predicate pools
            # still produces duplicate canonical keys and coverings.
            s = Subscription(f"u{i}", s.predicates)
            agg.add(s)
            oracle.add(s)
            added.append(s)
        assert len(agg) == len(oracle)
        assert agg.frontier_size <= len(agg)
        for e in evs:
            assert norm(agg.match(e)) == norm(oracle.match(e))
        # Churn: remove a deterministic slice — frontier members among
        # them, exercising promotion of covered groups — then re-check.
        for s in added[::churn_seed]:
            agg.remove(s.id)
            oracle.remove(s.id)
        for e in evs:
            assert norm(agg.match(e)) == norm(oracle.match(e))

    @COMMON_SETTINGS
    @given(
        population=st.lists(subscriptions(), min_size=2, max_size=15),
        evs=st.lists(events(), min_size=1, max_size=8),
    )
    def test_remove_all_then_readd(self, population, evs):
        """Draining the matcher and rebuilding it converges (the WAL
        replay path is exactly this add-stream)."""
        subs = [
            Subscription(f"u{i}", s.predicates) for i, s in enumerate(population)
        ]
        agg, oracle = AggregatingMatcher(), OracleMatcher()
        for s in subs:
            agg.add(s)
            oracle.add(s)
        for s in subs:
            agg.remove(s.id)
        assert len(agg) == 0 and agg.frontier_size == 0
        for s in subs:
            agg.add(s)
        for e in evs:
            assert norm(agg.match(e)) == norm(oracle.match(e))
