"""Observability invariants: what the tracer and registry report is true.

For any seeded workload, the per-event ``match`` span must satisfy the
structural invariants of the two-phase algorithm:

* every matched subscription was checked, so
  ``clusters_visited * avg_cluster_size >= matched`` where the average
  cluster size is taken over the visited clusters
  (``subscriptions_checked / clusters_visited``);
* ``bits_set`` equals the number of distinct live predicates the event
  satisfies, recomputed against the predicate registry by brute force;
* the registry counter mirror agrees with the engine's own counters.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.matchers import DynamicMatcher
from repro.obs import Tracer
from tests.properties.strategies import events, subscriptions

COMMON_SETTINGS = settings(
    max_examples=50,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def _oracle_bits_set(matcher, event) -> int:
    """Distinct registered predicates the event satisfies, by brute force."""
    count = 0
    for bit in range(len(matcher.registry)):
        pred = matcher.registry.predicate(bit)
        if event.has(pred.attribute) and pred.matches(event.get(pred.attribute)):
            count += 1
    return count


@pytest.mark.slow
class TestSpanInvariants:
    @COMMON_SETTINGS
    @given(
        subs=st.lists(subscriptions(), min_size=1, max_size=40, unique_by=lambda s: s.id),
        evts=st.lists(events(), min_size=1, max_size=10),
    )
    def test_match_span_is_truthful(self, subs, evts):
        matcher = DynamicMatcher()
        tracer = matcher.use_tracer(Tracer(capacity=len(evts) + 1))
        registry = matcher.use_metrics()
        for sub in subs:
            matcher.add(sub)
        for event in evts:
            matched = matcher.match(event)
            span = tracer.last()
            assert span is not None and span.name == "match"

            # Phase-1 truth: the reported bit count is the oracle's.
            assert span.fields["bits_set"] == _oracle_bits_set(matcher, event)

            # Phase-2 coverage: every match was checked, i.e. the visited
            # clusters held at least the matched subscriptions.
            checked = span.fields["subscriptions_checked"]
            visited = span.fields["clusters_visited"]
            assert span.fields["matched"] == len(matched)
            assert checked >= len(matched)
            if visited:
                avg_cluster_size = checked / visited
                assert visited * avg_cluster_size >= len(matched)
            else:
                assert not matched

            # Phase timings are present and non-negative.
            assert span.fields["predicate_ns"] >= 0
            assert span.fields["subscription_ns"] >= 0

        # The registry mirror equals the engine's own bookkeeping.
        labels = {"engine": matcher.name, "shard": ""}
        fam = registry.family("repro_events_total")
        assert fam.labels(**labels).value == len(evts)
        assert (
            registry.family("repro_predicates_satisfied_total").labels(**labels).value
            == matcher.counters["predicates_satisfied"]
        )
        assert (
            registry.family("repro_subscription_checks_total").labels(**labels).value
            == matcher.counters["subscription_checks"]
        )

    @COMMON_SETTINGS
    @given(
        subs=st.lists(subscriptions(), min_size=1, max_size=40, unique_by=lambda s: s.id),
        evts=st.lists(events(), min_size=1, max_size=10),
    )
    def test_instrumented_and_plain_matches_agree(self, subs, evts):
        plain = DynamicMatcher()
        traced = DynamicMatcher()
        traced.use_metrics()
        traced.use_tracer(Tracer())
        for sub in subs:
            plain.add(sub)
            traced.add(sub)
        for event in evts:
            assert sorted(plain.match(event), key=str) == sorted(
                traced.match(event), key=str
            )
