"""Hypothesis strategies for the publish/subscribe domain."""

from __future__ import annotations

from hypothesis import strategies as st

from repro.core import Event, Operator, Predicate, Subscription

#: Small shared attribute pool so predicates collide (exercising dedup).
ATTRIBUTES = st.sampled_from(["a", "b", "c", "d", "e"])

#: Small value domain so events actually satisfy predicates.
VALUES = st.integers(min_value=0, max_value=8)

OPERATORS = st.sampled_from(list(Operator))


@st.composite
def predicates(draw) -> Predicate:
    """A random numeric predicate."""
    return Predicate(draw(ATTRIBUTES), draw(OPERATORS), draw(VALUES))


@st.composite
def subscriptions(draw, sub_id=None) -> Subscription:
    """A random subscription of 1–5 predicates."""
    preds = draw(st.lists(predicates(), min_size=1, max_size=5))
    if sub_id is None:
        sub_id = draw(st.integers(min_value=0, max_value=10**9))
    return Subscription(sub_id, preds)


@st.composite
def events(draw) -> Event:
    """A random event over a subset of the attribute pool."""
    attrs = draw(
        st.lists(ATTRIBUTES, min_size=1, max_size=5, unique=True)
    )
    return Event({a: draw(VALUES) for a in attrs})
