"""Property tests on the cache simulator."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache import CacheConfig, CacheSimulator

ADDRESSES = st.integers(min_value=0, max_value=1 << 16)


def small_config():
    return CacheConfig(
        size_bytes=8 * 32,
        line_size=32,
        associativity=2,
        miss_penalty=10,
        max_outstanding_prefetches=2,
    )


@settings(max_examples=60, deadline=None)
@given(addresses=st.lists(ADDRESSES, max_size=200))
def test_counting_invariants(addresses):
    sim = CacheSimulator(small_config())
    for a in addresses:
        sim.access(a)
    m = sim.metrics
    assert m.accesses == len(addresses)
    assert m.hits + m.misses == m.accesses
    assert m.stall_cycles <= m.cycles
    assert m.cycles >= m.accesses  # at least one cycle each


@settings(max_examples=60, deadline=None)
@given(addresses=st.lists(ADDRESSES, max_size=100))
def test_repeat_access_always_hits(addresses):
    sim = CacheSimulator(small_config())
    for a in addresses:
        sim.access(a)
        assert sim.access(a) is True  # immediately after, always resident


@settings(max_examples=60, deadline=None)
@given(
    addresses=st.lists(ADDRESSES, min_size=1, max_size=80),
    ops=st.data(),
)
def test_prefetch_never_hurts_total_misses(addresses, ops):
    """With prefetching of the exact future stream, misses can only
    drop or stay equal versus the cold run."""
    cold = CacheSimulator(small_config())
    for a in addresses:
        cold.access(a)

    warm = CacheSimulator(small_config())
    for a in addresses:
        warm.prefetch(a)
        warm.compute(20)
        warm.access(a)
    assert warm.metrics.stall_cycles <= cold.metrics.stall_cycles


@settings(max_examples=40, deadline=None)
@given(addresses=st.lists(ADDRESSES, max_size=60))
def test_in_flight_bounded_by_limit(addresses):
    cfg = small_config()
    sim = CacheSimulator(cfg)
    for a in addresses:
        sim.prefetch(a)
        assert len(sim._in_flight) <= cfg.max_outstanding_prefetches


@settings(max_examples=40, deadline=None)
@given(addresses=st.lists(ADDRESSES, max_size=120))
def test_flush_resets_residency(addresses):
    sim = CacheSimulator(small_config())
    for a in addresses:
        sim.access(a)
    sim.flush()
    assert all(not sim.resident(a) for a in addresses)
