"""Property tests on the core data structures."""

from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.stateful import RuleBasedStateMachine, invariant, precondition, rule

from repro.core import BitVector, PredicateRegistry
from repro.indexes import BTree
from tests.properties.strategies import predicates


class BTreeMachine(RuleBasedStateMachine):
    """B-tree vs dict model under arbitrary insert/delete interleavings."""

    def __init__(self):
        super().__init__()
        self.tree = BTree(order=2)  # minimal order → maximal rebalancing
        self.model = {}

    keys = st.integers(min_value=0, max_value=50)

    @rule(k=keys, v=st.integers())
    def insert(self, k, v):
        if k in self.model:
            return
        self.tree.insert(k, v)
        self.model[k] = v

    @rule(k=keys)
    def delete(self, k):
        if k not in self.model:
            return
        assert self.tree.delete(k) == self.model.pop(k)

    @rule(k=keys)
    def lookup(self, k):
        assert self.tree.get(k) == self.model.get(k)

    @rule(k=keys)
    def scan_greater(self, k):
        got = [key for key, _ in self.tree.items_greater(k)]
        assert got == sorted(key for key in self.model if key > k)

    @invariant()
    def structure_sound(self):
        self.tree.check_invariants()
        assert len(self.tree) == len(self.model)
        assert list(self.tree.items()) == sorted(self.model.items())


TestBTreeStateful = BTreeMachine.TestCase
TestBTreeStateful.settings = settings(max_examples=25, deadline=None)


class RegistryMachine(RuleBasedStateMachine):
    """Registry refcounts vs a counter model."""

    def __init__(self):
        super().__init__()
        self.registry = PredicateRegistry()
        self.counts = {}

    @rule(p=predicates())
    def intern(self, p):
        slot, added = self.registry.intern(p)
        expected_new = self.counts.get(p, 0) == 0
        assert added == expected_new
        self.counts[p] = self.counts.get(p, 0) + 1

    @rule(p=predicates())
    def release(self, p):
        if self.counts.get(p, 0) == 0:
            return
        _slot, removed = self.registry.release(p)
        self.counts[p] -= 1
        assert removed == (self.counts[p] == 0)

    @invariant()
    def refcounts_match(self):
        live = {p for p, c in self.counts.items() if c > 0}
        assert set(self.registry) == live
        for p in live:
            assert self.registry.refcount(p) == self.counts[p]

    @invariant()
    def slots_unique(self):
        slots = [self.registry.slot(p) for p in self.registry]
        assert len(slots) == len(set(slots))


TestRegistryStateful = RegistryMachine.TestCase
TestRegistryStateful.settings = settings(max_examples=25, deadline=None)


@settings(max_examples=60, deadline=None)
@given(sets=st.lists(st.integers(min_value=0, max_value=500), max_size=60))
def test_bitvector_reset_restores_zero(sets):
    bv = BitVector()
    bv.grow_to(501)
    bv.set_many(sets)
    assert set(bv.set_indexes()) == set(sets)
    for i in sets:
        assert bv.get(i)
    bv.reset()
    assert all(not bv.get(i) for i in sets)
    assert bv.count_set() == 0


@settings(max_examples=60, deadline=None)
@given(
    rounds=st.lists(
        st.lists(st.integers(min_value=0, max_value=200), max_size=20),
        max_size=8,
    )
)
def test_bitvector_rounds_are_independent(rounds):
    bv = BitVector()
    bv.grow_to(201)
    for bits in rounds:
        bv.set_many(bits)
        assert set(bv.set_indexes()) == set(bits)
        bv.reset()
