"""Process-executor properties: determinism under interleaving and splits.

For random interleavings of subscription churn and event batches, the
process executor must produce exactly what a single-process scalar run
of the same engine produces at every step (the ordered-command-pipe
determinism contract), and its batch results must be invariant under
batch splitting (the deterministic ascending-shard merge contract).
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.matchers import make_matcher
from repro.system.sharding import ShardedMatcher
from tests.properties.strategies import events, subscriptions

COMMON_SETTINGS = settings(
    max_examples=10,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def norm(ids):
    return sorted(ids, key=repr)


def process_matcher(shards=2, codec="auto"):
    return ShardedMatcher(
        shards=shards,
        router="hash",
        inner=lambda: make_matcher("counting"),
        executor="process",
        worker_timeout=60.0,
        codec=codec,
    )


#: One interleaving step: subscribe (a fresh sub), unsubscribe (an index
#: into the already-added list), or a batch (a list of events).
steps = st.lists(
    st.one_of(
        st.tuples(st.just("add"), subscriptions()),
        st.tuples(st.just("remove"), st.integers(min_value=0, max_value=60)),
        st.tuples(st.just("batch"), st.lists(events(), min_size=0, max_size=6)),
    ),
    min_size=1,
    max_size=25,
)


class TestInterleavingDeterminism:
    @COMMON_SETTINGS
    @given(plan=steps, codec=st.sampled_from(["auto", "pickle"]))
    def test_process_equals_scalar_at_every_step(self, plan, codec):
        """Apply one random churn/batch interleaving to the process
        executor and to a plain single-process engine; every batch's
        results must agree, and so must the final subscription set."""
        scalar = make_matcher("counting")
        proc = process_matcher(codec=codec)
        try:
            live = []
            seen = set()
            for op, arg in plan:
                if op == "add":
                    if arg.id in seen:
                        continue
                    seen.add(arg.id)
                    live.append(arg)
                    scalar.add(arg)
                    proc.add(arg)
                elif op == "remove":
                    if not live:
                        continue
                    victim = live.pop(arg % len(live))
                    seen.discard(victim.id)
                    assert proc.remove(victim.id) == scalar.remove(victim.id)
                else:
                    expected = [norm(scalar.match(e)) for e in arg]
                    got = [norm(r) for r in proc.match_batch(arg)]
                    assert got == expected
            assert len(proc) == len(scalar)
            assert sorted(s.id for s in proc.iter_subscriptions()) == sorted(
                s.id for s in scalar.iter_subscriptions()
            )
        finally:
            proc.close()


@pytest.mark.slow
class TestBatchSplitInvariance:
    @COMMON_SETTINGS
    @given(
        subs=st.lists(subscriptions(), min_size=0, max_size=30),
        evs=st.lists(events(), min_size=1, max_size=12),
        cut=st.integers(min_value=0, max_value=12),
        shards=st.sampled_from([1, 2, 3]),
    )
    def test_split_batches_merge_identically(self, subs, evs, cut, shards):
        proc = process_matcher(shards=shards)
        try:
            seen = set()
            for s in subs:
                if s.id not in seen:
                    seen.add(s.id)
                    proc.add(s)
            whole = [norm(r) for r in proc.match_batch(evs)]
            cut = min(cut, len(evs))
            halves = proc.match_batch(evs[:cut]) + proc.match_batch(evs[cut:])
            assert [norm(r) for r in halves] == whole
            singles = [norm(proc.match(e)) for e in evs]
            assert singles == whole
            serial = [norm(r) for r in proc.match_serial(evs)]
            assert serial == whole
        finally:
            proc.close()
