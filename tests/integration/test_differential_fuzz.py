"""Differential fuzzing: random lifecycles against four backends at once.

Each seeded run drives the same random interleaving of ``add`` /
``remove`` / ``match`` — including re-adding a previously removed id,
duplicate-id inserts, removals of unknown ids, and events carrying none
of the subscribed attributes — simultaneously through the brute-force
oracle, the static and dynamic clustered engines, and a sharded engine
(cycling through every router and several shard counts across seeds).
At every step all four must produce identical sorted match sets and
raise identical exception *types*.

This is stronger than the pairwise agreement suite
(``test_agreement.py``): the operation mix deliberately includes the
error paths and the sharded composition, and every divergence reports
the seed so a failure replays deterministically.
"""

import random

import pytest

from repro.clustering.statistics import UniformStatistics
from repro.core import (
    Event,
    OracleMatcher,
    Predicate,
    ReproError,
    Subscription,
)
from repro.matchers import DynamicMatcher, StaticMatcher
from repro.system.router import ROUTERS
from repro.system.sharding import ShardedMatcher

ATTRS = [f"a{i}" for i in range(6)]
#: Attributes never used by any subscription — events over these probe
#: the "nothing can match" path (the closest legal thing to an empty
#: event, since the core type requires at least one pair).
FOREIGN_ATTRS = ["zz", "yy"]
VALUES = range(1, 9)
OPS_PER_RUN = 40

N_SEEDS = 200
SMOKE_SEEDS = 12

ROUTER_NAMES = sorted(ROUTERS)
SHARD_COUNTS = (1, 2, 3, 5)


def build_engines(seed: int):
    """Oracle + static + dynamic + sharded, config varying with the seed."""
    router = ROUTER_NAMES[seed % len(ROUTER_NAMES)]
    shards = SHARD_COUNTS[(seed // len(ROUTER_NAMES)) % len(SHARD_COUNTS)]
    return {
        "oracle": OracleMatcher(),
        "static": StaticMatcher(UniformStatistics(default_domain=len(VALUES))),
        "dynamic": DynamicMatcher(),
        f"sharded[{router}x{shards}]": ShardedMatcher(
            shards=shards, router=router, inner="dynamic", parallel=False
        ),
    }


def random_subscription(rng: random.Random, sub_id) -> Subscription:
    attrs = rng.sample(ATTRS, rng.randint(1, 4))
    preds = [
        Predicate(a, rng.choice("< <= = != >= >".split()), rng.choice(VALUES))
        for a in attrs
    ]
    return Subscription(sub_id, preds)


def random_event(rng: random.Random) -> Event:
    roll = rng.random()
    if roll < 0.1:
        # No subscribed attribute at all: every engine must return [].
        return Event({rng.choice(FOREIGN_ATTRS): rng.choice(VALUES)})
    attrs = rng.sample(ATTRS, rng.randint(1, len(ATTRS)))
    if roll < 0.2:
        attrs.append(rng.choice(FOREIGN_ATTRS))
    return Event({a: rng.choice(VALUES) for a in attrs})


def apply_to_all(engines, op):
    """Run *op* against every engine; return {name: (outcome, error_type)}."""
    results = {}
    for name, engine in engines.items():
        try:
            results[name] = (op(engine), None)
        except ReproError as exc:
            results[name] = (None, type(exc))
    return results


def assert_identical(results, seed, step, what):
    baseline_name, (baseline, baseline_err) = next(iter(results.items()))
    for name, (outcome, err) in results.items():
        context = (what, f"seed={seed}", f"step={step}", baseline_name, name)
        assert err == baseline_err, context
        assert outcome == baseline, context


def run_sequence(seed: int) -> None:
    rng = random.Random(seed)
    engines = build_engines(seed)
    live = []
    removed = []
    counter = 0
    try:
        for step in range(OPS_PER_RUN):
            roll = rng.random()
            if roll < 0.30 or not live:
                sub = random_subscription(rng, f"s{counter}")
                counter += 1
                live.append(sub.id)
                results = apply_to_all(engines, lambda m, s=sub: m.add(s))
                assert_identical(results, seed, step, "add")
            elif roll < 0.38:
                # Duplicate id: every engine must refuse identically.
                dup = random_subscription(rng, rng.choice(live))
                results = apply_to_all(engines, lambda m, s=dup: m.add(s))
                assert_identical(results, seed, step, "dup-add")
            elif roll < 0.46 and removed:
                # Re-add an id that was removed earlier: must succeed.
                sub = random_subscription(rng, removed.pop())
                live.append(sub.id)
                results = apply_to_all(engines, lambda m, s=sub: m.add(s))
                assert_identical(results, seed, step, "re-add")
            elif roll < 0.58:
                sid = live.pop(rng.randrange(len(live)))
                removed.append(sid)
                results = apply_to_all(
                    engines, lambda m, i=sid: m.remove(i).id
                )
                assert_identical(results, seed, step, "remove")
            elif roll < 0.64:
                # Unknown id: identical error from every engine.
                results = apply_to_all(
                    engines, lambda m: m.remove(f"ghost{counter}")
                )
                assert_identical(results, seed, step, "remove-unknown")
            else:
                event = random_event(rng)
                results = apply_to_all(
                    engines, lambda m, e=event: sorted(m.match(e), key=str)
                )
                assert_identical(results, seed, step, "match")
            # Population must agree at every step, not just at matches.
            sizes = {name: len(m) for name, m in engines.items()}
            assert len(set(sizes.values())) == 1, (seed, step, sizes)
    finally:
        for engine in engines.values():
            close = getattr(engine, "close", None)
            if callable(close):
                close()


@pytest.mark.parametrize("seed", range(SMOKE_SEEDS))
def test_differential_smoke(seed):
    """A fast always-on slice of the fuzz corpus."""
    run_sequence(seed)


@pytest.mark.slow
@pytest.mark.parametrize("seed", range(SMOKE_SEEDS, N_SEEDS))
def test_differential_fuzz(seed):
    """The full corpus: 200 seeded sequences across all four backends."""
    run_sequence(seed)
