"""Every shipped example must run clean (examples are living docs)."""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parents[2] / "examples"
EXAMPLES = sorted(p.name for p in EXAMPLES_DIR.glob("*.py"))


def test_examples_directory_populated():
    assert len(EXAMPLES) >= 6


@pytest.mark.parametrize("script", EXAMPLES)
def test_example_runs_clean(script):
    proc = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / script)],
        capture_output=True,
        text=True,
        timeout=180,
    )
    assert proc.returncode == 0, proc.stderr[-2000:]
    assert proc.stdout.strip(), f"{script} produced no output"


def test_quickstart_shows_a_match():
    proc = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / "quickstart.py")],
        capture_output=True,
        text=True,
        timeout=60,
    )
    assert "cinema-fan" in proc.stdout
