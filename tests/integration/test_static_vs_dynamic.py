"""§6.2.1: "Static algorithm produced clustering instances that were
very similar to those obtained by the dynamic algorithm (one or two
additional hash tables) and did not significantly beat the dynamic
algorithm."  Checked structurally and by work counts.
"""

import pytest

from repro.bench.experiments.common import materialize
from repro.bench.harness import (
    load_subscriptions,
    matcher_for,
    uniform_statistics_for,
)
from repro.workload.scenarios import w0


@pytest.fixture(scope="module")
def engines():
    spec = w0(seed=4)
    subs, events = materialize(spec, 12_000, 40)
    static = matcher_for("static", spec)
    load_subscriptions(static, subs)  # includes rebuild()
    dynamic = matcher_for("dynamic", spec)
    load_subscriptions(dynamic, subs)
    for e in events:
        static.match(e)
        dynamic.match(e)
    return static, dynamic, events


class TestClusteringSimilarity:
    def test_both_discover_the_fixed_pair(self, engines):
        static, dynamic, _ = engines
        static_multi = {s for s in static.plan.schemas if len(s) > 1}
        dynamic_multi = {s for s in dynamic.config.schemas() if len(s) > 1}
        assert ("attr00", "attr01") in static_multi
        assert ("attr00", "attr01") in dynamic_multi

    def test_table_inventories_overlap(self, engines):
        static, dynamic, _ = engines
        static_multi = {s for s in static.plan.schemas if len(s) > 1}
        dynamic_multi = {s for s in dynamic.config.schemas() if len(s) > 1}
        shared = static_multi & dynamic_multi
        assert shared, "no common multi-attribute tables at all"

    def test_dynamic_within_its_threshold_of_static(self, engines):
        """Dynamic deliberately leaves entries whose benefit margin is
        under ``BMmax`` unredistributed, so its checks/event exceed the
        static optimum by at most ~BMmax per probed table; both sit far
        below the single-attribute propagation baseline (|S|/35)."""
        static, dynamic, _ = engines
        s_checks = static.counters["subscription_checks"] / static.counters["events"]
        d_checks = dynamic.counters["subscription_checks"] / dynamic.counters["events"]
        assert s_checks <= d_checks  # static is the optimum
        tables = max(1, len(dynamic.config))
        bound = s_checks + dynamic.params.bm_max * (tables + 2)
        assert d_checks <= bound
        propagation_baseline = len(dynamic) / 35
        assert d_checks < 0.5 * propagation_baseline

    def test_same_match_sets(self, engines):
        static, dynamic, events = engines
        for e in events[:10]:
            assert sorted(static.match(e), key=str) == sorted(
                dynamic.match(e), key=str
            )
