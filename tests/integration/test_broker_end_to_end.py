"""Broker end-to-end over each engine, plus a mini equilibrium run."""

import pytest

from repro.bench.harness import uniform_statistics_for
from repro.core import Event, Subscription, eq, le
from repro.matchers import MATCHER_FACTORIES, StaticMatcher
from repro.system import PubSubBroker, QueueNotifier, VirtualClock
from repro.workload import SubscriptionChurn, WorkloadGenerator, w0


@pytest.mark.parametrize(
    "engine", ["oracle", "counting", "propagation", "propagation-wp", "dynamic"]
)
class TestBrokerOverEngines:
    def test_subscribe_publish_expire(self, engine):
        clock = VirtualClock()
        inbox = QueueNotifier()
        broker = PubSubBroker(
            matcher=MATCHER_FACTORIES[engine](),
            clock=clock,
            notifier=inbox,
        )
        broker.subscribe(
            Subscription("a", [eq("movie", "gd"), le("price", 10)]), ttl=100.0
        )
        broker.subscribe(Subscription("b", [eq("movie", "gd")]))
        assert sorted(broker.publish(Event({"movie": "gd", "price": 8}))) == ["a", "b"]
        clock.advance(101)
        assert broker.publish(Event({"movie": "gd", "price": 8})) == ["b"]
        assert len(inbox.drain()) == 3


class TestEquilibrium:
    def test_churned_broker_stays_consistent(self):
        spec = w0(n_subscriptions=300, seed=11)
        broker = PubSubBroker()
        churn = SubscriptionChurn(broker.matcher, churn_rate=30)
        gen = WorkloadGenerator(spec, id_prefix="eq-")
        churn.populate(gen)
        for _ in range(10):
            churn.step(gen)
            for event in gen.events(5):
                matched = set(broker.publish(event))
                # verify against direct evaluation of the live population
                live = {
                    sid
                    for sid, sub in broker.matcher._subs.items()
                    if sub.is_satisfied_by(event)
                }
                assert matched == live
        assert broker.subscription_count == 300


class TestStaticBrokerRebuild:
    def test_rebuild_mid_stream(self):
        spec = w0(n_subscriptions=200, seed=3)
        matcher = StaticMatcher(uniform_statistics_for(spec))
        broker = PubSubBroker(matcher=matcher)
        gen = WorkloadGenerator(spec)
        broker.subscribe_batch(gen.subscriptions())
        events = list(gen.events(10))
        before = [sorted(broker.publish(e), key=str) for e in events]
        matcher.rebuild()
        after = [sorted(broker.publish(e), key=str) for e in events]
        assert before == after
