"""Cross-engine agreement: every matcher returns exactly the oracle's set.

This is the single most important correctness property in the package:
five very different phase-2 organizations must produce identical match
sets on identical inputs, including under interleaved insert/remove
churn and across all the paper's workload shapes.
"""

import random

import pytest

from repro.bench.harness import uniform_statistics_for
from repro.core import OracleMatcher
from repro.matchers import (
    CountingMatcher,
    DynamicMatcher,
    PrefetchPropagationMatcher,
    PropagationMatcher,
    StaticMatcher,
    TreeMatcher,
)
from repro.sqltrigger import TriggerMatcher
from repro.workload import WorkloadGenerator, paper_workloads
from tests.conftest import make_event, make_subscription


def all_matchers(spec=None):
    stats = (
        uniform_statistics_for(spec)
        if spec is not None
        else __import__("repro").UniformStatistics(default_domain=10)
    )
    return {
        "counting": CountingMatcher(),
        "propagation": PropagationMatcher(),
        "propagation-wp": PrefetchPropagationMatcher(),
        "static": StaticMatcher(stats),
        "dynamic": DynamicMatcher(),
        "test-network": TreeMatcher(),
        "sql-trigger": TriggerMatcher(),
    }


class TestRandomWorkload:
    def test_agreement_static_population(self, rng, small_population, small_events):
        oracle = OracleMatcher()
        engines = all_matchers()
        for s in small_population:
            oracle.add(s)
            for m in engines.values():
                m.add(s)
        engines["static"].rebuild()
        for e in small_events:
            expected = sorted(oracle.match(e), key=str)
            for name, m in engines.items():
                assert sorted(m.match(e), key=str) == expected, name

    def test_agreement_under_churn(self, rng):
        oracle = OracleMatcher()
        engines = all_matchers()
        live = []
        for step in range(400):
            action = rng.random()
            if action < 0.4 or not live:
                s = make_subscription(rng, f"c{step}")
                live.append(s.id)
                oracle.add(s)
                for m in engines.values():
                    m.add(s)
            elif action < 0.6:
                sid = live.pop(rng.randrange(len(live)))
                oracle.remove(sid)
                for m in engines.values():
                    m.remove(sid)
            else:
                e = make_event(rng)
                expected = sorted(oracle.match(e), key=str)
                for name, m in engines.items():
                    assert sorted(m.match(e), key=str) == expected, (name, step)


@pytest.mark.parametrize("workload", ["W0", "W1", "W2", "W3", "W5", "W6"])
class TestPaperWorkloads:
    def test_agreement_on_workload(self, workload):
        spec = paper_workloads(scale=0.0002)[workload]
        gen = WorkloadGenerator(spec)
        subs = list(gen.subscriptions(min(400, spec.n_subscriptions)))
        events = list(gen.events(25))
        oracle = OracleMatcher()
        engines = all_matchers(spec)
        del engines["sql-trigger"]  # O(n) per event; covered above
        for s in subs:
            oracle.add(s)
            for m in engines.values():
                m.add(s)
        engines["static"].rebuild()
        for e in events:
            expected = sorted(oracle.match(e), key=str)
            for name, m in engines.items():
                assert sorted(m.match(e), key=str) == expected, (workload, name)
