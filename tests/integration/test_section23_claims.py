"""Section 2.3's analytical claims, checked on the implementation.

* Space cost linear in the number of predicates (bit vector = #distinct
  predicates; clusters hold one reference per residual predicate).
* Insertion cost close to event-matching cost (both are: evaluate /
  intern predicates, then locate one cluster).
* Deletions are fast because each subscription records its cluster.
"""

import time

import pytest

from repro.bench.experiments.common import materialize
from repro.bench.harness import load_subscriptions, matcher_for
from repro.matchers import DynamicMatcher, PrefetchPropagationMatcher
from repro.workload.scenarios import w0


class TestSpaceLinearity:
    def test_bitvector_is_exactly_distinct_predicates(self):
        spec = w0(seed=0)
        subs, _ = materialize(spec, 2000, 0)
        m = PrefetchPropagationMatcher()
        load_subscriptions(m, subs)
        distinct = len({p for s in subs for p in s.predicates})
        assert len(m.registry) == distinct
        assert m.bits.size >= distinct

    def test_cluster_storage_linear_in_predicates(self):
        """Doubling the population at saturated predicate dedup doubles
        cluster bytes but leaves the bit vector fixed."""
        spec = w0(seed=0)
        sizes = {}
        bits = {}
        for n in (4000, 8000):
            subs, _ = materialize(spec, n, 0)
            m = PrefetchPropagationMatcher()
            load_subscriptions(m, subs)
            total = sum(
                lst.memory_bytes() for lst in m._lists.values()
            )
            sizes[n] = total
            bits[n] = m.bits.size
        ratio = sizes[8000] / sizes[4000]
        assert 1.6 < ratio < 2.6
        # predicate space saturates: 32 attrs × 35 values
        assert bits[8000] == bits[4000]

    def test_removal_returns_all_space(self):
        spec = w0(seed=1)
        subs, _ = materialize(spec, 1000, 0)
        m = PrefetchPropagationMatcher()
        load_subscriptions(m, subs)
        for s in subs:
            m.remove(s.id)
        assert len(m.registry) == 0
        assert m.cluster_list_sizes() == {}


class TestInsertionCost:
    """'The cost of the insertion algorithm is close to the event
    matching cost' — within an order of magnitude, both O(predicates +
    one cluster operation)."""

    @pytest.mark.parametrize("algorithm", ["propagation-wp", "dynamic"])
    def test_insert_within_10x_of_match(self, algorithm):
        spec = w0(seed=2)
        subs, events = materialize(spec, 8000, 200)
        m = matcher_for(algorithm, spec)
        load_subscriptions(m, subs)

        extra, _ = materialize(spec, 500, 0, id_prefix="x-")
        t0 = time.perf_counter()
        for s in extra:
            m.add(s)
        insert_cost = (time.perf_counter() - t0) / len(extra)

        t0 = time.perf_counter()
        for e in events:
            m.match(e)
        match_cost = (time.perf_counter() - t0) / len(events)

        assert insert_cost < 10 * max(match_cost, 1e-6)

    def test_deletion_not_slower_than_insertion_class(self):
        spec = w0(seed=3)
        subs, _ = materialize(spec, 4000, 0)
        m = DynamicMatcher()
        load_subscriptions(m, subs)
        t0 = time.perf_counter()
        for s in subs[:1000]:
            m.remove(s.id)
        delete_cost = (time.perf_counter() - t0) / 1000
        extra, _ = materialize(spec, 1000, 0, id_prefix="y-")
        t0 = time.perf_counter()
        for s in extra:
            m.add(s)
        insert_cost = (time.perf_counter() - t0) / 1000
        assert delete_cost < 5 * max(insert_cost, 1e-6)
