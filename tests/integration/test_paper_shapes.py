"""Shape assertions for the paper's qualitative claims, at test scale.

These use *counted work* (subscription checks, cache-simulator cycles)
rather than wall-clock, so they are stable on any machine.  Wall-clock
reproductions of the figures live in benchmarks/.
"""

import pytest

from repro.bench.harness import load_subscriptions, matcher_for
from repro.bench.experiments.common import materialize
from repro.cache import compare_layouts
from repro.workload.scenarios import w0


@pytest.fixture(scope="module")
def w0_run():
    """20k W0 subscriptions matched by every Figure 3 algorithm."""
    spec = w0(seed=0)
    subs, events = materialize(spec, 20000, 30)
    engines = {}
    for name in ("counting", "propagation", "propagation-wp", "dynamic"):
        m = matcher_for(name, spec)
        load_subscriptions(m, subs)
        for e in events:
            m.match(e)
        engines[name] = m
    return engines


def checks_per_event(matcher):
    c = matcher.counters
    return c["subscription_checks"] / max(1, c["events"])


class TestFigure3aShape:
    """counting ≫ propagation ≫ dynamic in subscriptions touched."""

    def test_counting_touches_most(self, w0_run):
        assert checks_per_event(w0_run["counting"]) > 2 * checks_per_event(
            w0_run["propagation"]
        )

    def test_dynamic_touches_least(self, w0_run):
        assert checks_per_event(w0_run["dynamic"]) < 0.5 * checks_per_event(
            w0_run["propagation"]
        )

    def test_dynamic_created_multi_attribute_tables(self, w0_run):
        schemas = w0_run["dynamic"].config.schemas()
        assert any(len(s) > 1 for s in schemas)

    def test_propagation_variants_touch_identically(self, w0_run):
        # Identical clustering, different kernel: same subscriptions checked.
        assert checks_per_event(w0_run["propagation-wp"]) == checks_per_event(
            w0_run["propagation"]
        )


class TestFigure3aFlatness:
    def test_dynamic_checks_stay_flat_as_population_grows(self):
        spec = w0(seed=1)
        per_event = []
        for n in (2000, 8000):
            subs, events = materialize(spec, n, 20)
            m = matcher_for("dynamic", spec)
            load_subscriptions(m, subs)
            for e in events:
                m.match(e)
            per_event.append(checks_per_event(m))
        # 4× the subscriptions must NOT mean 4× the checks.
        assert per_event[1] < 2.5 * per_event[0]

    def test_propagation_checks_grow_linearly(self):
        spec = w0(seed=1)
        per_event = []
        for n in (2000, 8000):
            subs, events = materialize(spec, n, 20)
            m = matcher_for("propagation", spec)
            load_subscriptions(m, subs)
            for e in events:
                m.match(e)
            per_event.append(checks_per_event(m))
        assert per_event[1] > 3.0 * per_event[0]


class TestCacheShapes:
    """Section 2's claims on the simulator substrate."""

    @pytest.fixture(scope="class")
    def ablation(self):
        return compare_layouts(size=3, count=2048, selectivity=0.25, seed=7)

    def test_prefetch_buys_about_1_5x(self, ablation):
        speedup = ablation["columnar"].cycles / ablation["columnar+prefetch"].cycles
        assert 1.2 < speedup < 2.5

    def test_columnar_beats_rowwise_with_and_without_prefetch(self, ablation):
        assert ablation["columnar"].cycles < ablation["rowwise"].cycles
        assert (
            ablation["columnar+prefetch"].cycles
            < ablation["rowwise+prefetch"].cycles
        )


class TestMemoryShape:
    """Figure 3(c): propagation ≤ counting < dynamic."""

    def test_ordering(self):
        from repro.bench.memory import matcher_memory_bytes

        spec = w0(seed=2)
        subs, _ = materialize(spec, 3000, 0)
        sizes = {}
        for name in ("counting", "propagation", "dynamic"):
            m = matcher_for(name, spec)
            load_subscriptions(m, subs)
            sizes[name] = matcher_memory_bytes(m)
        assert sizes["propagation"] < sizes["dynamic"]


class TestTriggerShape:
    """Section 1.2: per-event trigger cost grows with |S|."""

    def test_linear_growth(self):
        from repro.sqltrigger import TriggerMatcher

        spec = w0(seed=3)
        per_event = []
        for n in (200, 1600):
            subs, events = materialize(spec, n, 15)
            t = TriggerMatcher(columns=spec.attribute_names)
            load_subscriptions(t, subs)
            import time

            start = time.perf_counter()
            for e in events:
                t.match(e)
            per_event.append((time.perf_counter() - start) / len(events))
        # 8× the triggers should cost several times more per event; the
        # loose factor absorbs scheduler noise under a loaded test run.
        assert per_event[1] > 3.0 * per_event[0]
