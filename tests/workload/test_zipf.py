"""Zipf value distributions (beyond-paper extension)."""

import random
from collections import Counter

import pytest

from repro.core import InvalidWorkloadError
from repro.workload import WorkloadGenerator, WorkloadSpec
from repro.workload.generator import ZipfSampler


class TestSpecValidation:
    def test_uniform_default(self):
        assert WorkloadSpec().zipf_exponent() is None

    def test_zipf_parsed(self):
        assert WorkloadSpec(value_distribution="zipf:1.2").zipf_exponent() == 1.2

    @pytest.mark.parametrize("bad", ["zipf:", "zipf:abc", "zipf:0", "zipf:-1", "poisson"])
    def test_bad_rejected(self, bad):
        with pytest.raises(InvalidWorkloadError):
            WorkloadSpec(value_distribution=bad)


class TestZipfSampler:
    def test_values_in_domain(self):
        rng = random.Random(0)
        s = ZipfSampler(5, 14, 1.0)
        draws = [s.sample(rng) for _ in range(1000)]
        assert min(draws) >= 5 and max(draws) <= 14

    def test_rank_frequency_monotone(self):
        rng = random.Random(1)
        s = ZipfSampler(1, 20, 1.5)
        counts = Counter(s.sample(rng) for _ in range(20000))
        assert counts[1] > counts[5] > counts[20]

    def test_high_exponent_concentrates(self):
        rng = random.Random(2)
        sharp = ZipfSampler(1, 35, 3.0)
        counts = Counter(sharp.sample(rng) for _ in range(5000))
        assert counts[1] / 5000 > 0.75

    def test_degenerate_single_value(self):
        rng = random.Random(3)
        s = ZipfSampler(7, 7, 1.0)
        assert all(s.sample(rng) == 7 for _ in range(20))

    def test_range_pinned_over_10k_draws(self):
        """Regression: no draw may ever leave [lo, hi] (a bisect off the
        end of the CDF used to yield hi+1 near r = 1.0)."""
        rng = random.Random(4)
        for lo, hi, s in [(1, 35, 0.8), (5, 14, 1.0), (1, 2, 2.5)]:
            sampler = ZipfSampler(lo, hi, s)
            draws = [sampler.sample(rng) for _ in range(10_000)]
            assert min(draws) >= lo and max(draws) <= hi, (lo, hi, s)

    def test_boundary_draw_clamps_to_hi(self):
        """Even a draw past every CDF entry must clamp to hi, not hi+1.

        Simulated with a stub rng: interior CDF entries can exceed the
        (clamped) final 1.0 by accumulated float error, making the CDF
        locally non-monotonic, so bisect can land past the end for real
        draws just below 1.0.
        """

        class Boundary:
            def __init__(self, value):
                self.value = value

            def random(self):
                return self.value

        sampler = ZipfSampler(1, 35, 1.2)
        # Force the pathological shape: an interior entry a hair above 1.0.
        sampler._cdf[-2] = 1.0 + 1e-16
        for r in (1.0 - 2 ** -53, 0.999999999999999, 1.0):
            assert sampler.sample(Boundary(r)) <= 35


class TestGeneratorIntegration:
    def _spec(self, dist):
        return WorkloadSpec(
            n_attributes=4,
            attributes_per_event=4,
            predicates_per_subscription=2,
            n_subscriptions=50,
            n_events=300,
            value_low=1,
            value_high=20,
            event_value_low=1,
            event_value_high=20,
            value_distribution=dist,
        )

    def test_zipf_events_are_skewed(self):
        gen = WorkloadGenerator(self._spec("zipf:1.5"))
        counts = Counter(v for e in gen.events() for _a, v in e.items())
        assert counts[1] > 5 * counts.get(20, 1)

    def test_uniform_events_are_flat(self):
        gen = WorkloadGenerator(self._spec("uniform"))
        counts = Counter(v for e in gen.events() for _a, v in e.items())
        assert counts[1] < 3 * counts[20]

    def test_subscription_values_also_skewed(self):
        gen = WorkloadGenerator(self._spec("zipf:1.5"))
        counts = Counter(
            p.value for s in gen.subscriptions() for p in s.predicates
        )
        assert counts.get(1, 0) >= counts.get(20, 0)

    def test_deterministic(self):
        spec = self._spec("zipf:1.2")
        a = [e.pairs for e in WorkloadGenerator(spec).events(20)]
        b = [e.pairs for e in WorkloadGenerator(spec).events(20)]
        assert a == b
