"""Churn streams and transition schedules."""

import pytest

from repro.core import OracleMatcher
from repro.workload import (
    ChurnPhase,
    SubscriptionChurn,
    TransitionSchedule,
    WorkloadGenerator,
    w3,
    w4,
)


def small_spec(spec, n):
    import dataclasses

    return dataclasses.replace(spec, n_subscriptions=n)


class TestSubscriptionChurn:
    def test_populate(self):
        matcher = OracleMatcher()
        churn = SubscriptionChurn(matcher, churn_rate=5)
        gen = WorkloadGenerator(small_spec(w3(), 40), id_prefix="a-")
        assert churn.populate(gen) == 40
        assert churn.live_count == 40 and len(matcher) == 40

    def test_step_is_fifo(self):
        matcher = OracleMatcher()
        churn = SubscriptionChurn(matcher, churn_rate=3)
        gen = WorkloadGenerator(small_spec(w3(), 9), id_prefix="a-")
        churn.populate(gen)
        deleted, inserted = churn.step(gen)
        assert deleted == ["a-0", "a-1", "a-2"]
        assert len(inserted) == 3
        assert churn.live_count == 9

    def test_population_drifts_to_new_generator(self):
        matcher = OracleMatcher()
        churn = SubscriptionChurn(matcher, churn_rate=5)
        old_gen = WorkloadGenerator(small_spec(w3(), 20), id_prefix="old-")
        new_gen = WorkloadGenerator(small_spec(w4(), 20), id_prefix="new-")
        churn.populate(old_gen)
        for _ in range(4):  # 4 × 5 = full turnover
            churn.step(new_gen)
        remaining = {sid for sid in matcher._subs}
        assert all(sid.startswith("new-") for sid in remaining)

    def test_step_on_small_population(self):
        matcher = OracleMatcher()
        churn = SubscriptionChurn(matcher, churn_rate=10)
        gen = WorkloadGenerator(small_spec(w3(), 4), id_prefix="a-")
        churn.populate(gen)
        deleted, inserted = churn.step(gen)
        assert len(deleted) == 4 and len(inserted) == 10

    def test_negative_rate_rejected(self):
        with pytest.raises(ValueError):
            SubscriptionChurn(OracleMatcher(), churn_rate=-1)


class TestSchedules:
    def test_phase_validation(self):
        with pytest.raises(ValueError):
            ChurnPhase("x", w3(), steps=0)

    def test_total_steps(self):
        sched = TransitionSchedule.figure4(w3(), w4(), 100, 10, 2, 10)
        assert sched.total_steps() == 14

    def test_figure4_structure(self):
        sched = TransitionSchedule.figure4(w3(), w4(), 100, 10, 2, 10)
        labels = [p.label for p in sched.phases]
        assert labels == ["stable-old", "transition", "stable-new"]
        assert sched.initial_spec.n_subscriptions == 100
        assert sched.phases[0].spec.name == "W3"
        assert sched.phases[2].spec.name == "W4"
