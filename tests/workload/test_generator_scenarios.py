"""Workload generator behaviour and the paper's W0–W6 presets."""

import pytest

from repro.core import Operator
from repro.workload import (
    FixedPredicateSpec,
    WorkloadGenerator,
    WorkloadSpec,
    attribute_name,
    paper_workloads,
    w0,
    w1,
    w2,
    w3,
    w4,
    w5,
    w6,
)


class TestGenerator:
    def _spec(self, **kw):
        defaults = dict(
            n_attributes=8,
            n_subscriptions=50,
            predicates_per_subscription=3,
            fixed_predicates=(FixedPredicateSpec("attr00", Operator.EQ),),
            attributes_per_event=8,
            n_events=20,
            value_low=1,
            value_high=5,
            event_value_low=1,
            event_value_high=5,
        )
        defaults.update(kw)
        return WorkloadSpec(**defaults)

    def test_counts(self):
        gen = WorkloadGenerator(self._spec())
        assert len(list(gen.subscriptions())) == 50
        assert len(list(gen.events())) == 20

    def test_fixed_predicate_present_with_operator(self):
        gen = WorkloadGenerator(self._spec())
        for sub in gen.subscriptions(20):
            fixed = [p for p in sub.predicates if p.attribute == "attr00"]
            assert len(fixed) == 1 and fixed[0].operator is Operator.EQ

    def test_free_predicates_distinct_attributes(self):
        gen = WorkloadGenerator(self._spec())
        for sub in gen.subscriptions(20):
            attrs = [p.attribute for p in sub.predicates]
            assert len(set(attrs)) == len(attrs)
            assert len(attrs) == 3

    def test_values_within_domain(self):
        gen = WorkloadGenerator(self._spec())
        for sub in gen.subscriptions(30):
            for p in sub.predicates:
                assert 1 <= p.value <= 5
        for e in gen.events(30):
            assert all(1 <= v <= 5 for _a, v in e.items())

    def test_domain_override_respected(self):
        spec = self._spec(
            predicate_domain_overrides={"attr00": (9, 9)},
            value_low=1,
            value_high=5,
        )
        gen = WorkloadGenerator(spec)
        for sub in gen.subscriptions(10):
            fixed = [p for p in sub.predicates if p.attribute == "attr00"][0]
            assert fixed.value == 9

    def test_pool_restriction(self):
        pool = tuple(attribute_name(i) for i in range(4))
        spec = self._spec(subscription_attribute_pool=pool)
        gen = WorkloadGenerator(spec)
        for sub in gen.subscriptions(30):
            assert sub.attributes <= set(pool)

    def test_operator_mix_sampled(self):
        spec = self._spec(free_operator_weights={"<=": 1.0, ">=": 1.0})
        gen = WorkloadGenerator(spec)
        ops = set()
        for sub in gen.subscriptions(50):
            for p in sub.predicates:
                if p.attribute != "attr00":
                    ops.add(p.operator)
        assert ops == {Operator.LE, Operator.GE}

    def test_event_attribute_count(self):
        spec = self._spec(attributes_per_event=5)
        gen = WorkloadGenerator(spec)
        assert all(len(e) == 5 for e in gen.events(10))

    def test_determinism(self):
        spec = self._spec()
        a = [s.predicates for s in WorkloadGenerator(spec).subscriptions(10)]
        b = [s.predicates for s in WorkloadGenerator(spec).subscriptions(10)]
        assert a == b

    def test_seed_changes_stream(self):
        a = [s.predicates for s in WorkloadGenerator(self._spec(seed=1)).subscriptions(10)]
        b = [s.predicates for s in WorkloadGenerator(self._spec(seed=2)).subscriptions(10)]
        assert a != b

    def test_event_stream_independent_of_sub_stream(self):
        spec = self._spec()
        g1 = WorkloadGenerator(spec)
        list(g1.subscriptions(50))
        e_after = list(g1.events(5))
        g2 = WorkloadGenerator(spec)
        e_fresh = list(g2.events(5))
        assert e_after == e_fresh

    def test_unique_ids_with_prefix(self):
        gen = WorkloadGenerator(self._spec(), id_prefix="run1-")
        ids = [s.id for s in gen.subscriptions(10)]
        assert len(set(ids)) == 10 and all(i.startswith("run1-") for i in ids)

    def test_batches(self):
        spec = self._spec(subscription_batch=15, event_batch=7)
        gen = WorkloadGenerator(spec)
        sub_batches = list(gen.subscription_batches())
        assert [len(b) for b in sub_batches] == [15, 15, 15, 5]
        ev_batches = list(gen.event_batches())
        assert [len(b) for b in ev_batches] == [7, 7, 6]


class TestScenarios:
    def test_w0_matches_paper(self):
        spec = w0()
        assert spec.n_attributes == 32
        assert spec.predicates_per_subscription == 5
        assert len(spec.fixed_predicates) == 2
        assert all(f.operator is Operator.EQ for f in spec.fixed_predicates)
        assert spec.attributes_per_event == 32
        assert (spec.value_low, spec.value_high) == (1, 35)
        assert spec.subscription_batch == 10_000
        assert spec.event_batch == 100

    def test_w1_operator_breakdown(self):
        spec = w1()
        ops = [f.operator for f in spec.fixed_predicates]
        assert ops.count(Operator.EQ) == 2 and ops.count(Operator.LE) == 1
        assert spec.predicates_per_subscription == 4

    def test_w2_operator_breakdown(self):
        spec = w2()
        ops = [f.operator for f in spec.fixed_predicates]
        assert ops.count(Operator.EQ) == 2
        assert ops.count(Operator.LE) == 5
        assert ops.count(Operator.GE) == 1
        assert spec.predicates_per_subscription == 9

    def test_w3_w4_disjoint_pools(self):
        assert set(w3().subscription_attribute_pool).isdisjoint(
            w4().subscription_attribute_pool
        )
        assert len(w3().subscription_attribute_pool) == 16

    def test_w6_is_skewed_w5(self):
        hot = attribute_name(0)
        assert w5().predicate_domain(hot) == (1, 35)
        assert w6().predicate_domain(hot) == (1, 2)
        assert w6().event_domain(hot) == (1, 2)

    def test_paper_workloads_scaled(self):
        specs = paper_workloads(scale=0.001)
        assert specs["W0"].n_subscriptions == 6000
        assert set(specs) == {"W0", "W1", "W2", "W3", "W4", "W5", "W6"}

    def test_generators_run_on_all_scenarios(self):
        for name, spec in paper_workloads(scale=0.0001).items():
            gen = WorkloadGenerator(spec)
            subs = list(gen.subscriptions(5))
            events = list(gen.events(3))
            assert len(subs) == 5 and len(events) == 3, name
