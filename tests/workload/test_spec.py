"""WorkloadSpec validation and derived values (Table 1)."""

import pytest

from repro.core import InvalidWorkloadError, Operator
from repro.workload import FixedPredicateSpec, WorkloadSpec, attribute_name


class TestFixedPredicateSpec:
    def test_operator_coerced(self):
        f = FixedPredicateSpec("a", "<=")
        assert f.operator is Operator.LE

    def test_empty_attribute_rejected(self):
        with pytest.raises(InvalidWorkloadError):
            FixedPredicateSpec("")


class TestValidation:
    def test_defaults_valid(self):
        WorkloadSpec()

    @pytest.mark.parametrize(
        "kw",
        [
            {"n_attributes": 0},
            {"n_subscriptions": -1},
            {"subscription_batch": 0},
            {"event_batch": 0},
            {"predicates_per_subscription": 0},
            {"attributes_per_event": 0},
            {"attributes_per_event": 33},
            {"value_low": 10, "value_high": 5},
            {"event_value_low": 10, "event_value_high": 5},
            {"predicate_domain_overrides": {"a": (5, 1)}},
        ],
    )
    def test_invalid_rejected(self, kw):
        with pytest.raises(InvalidWorkloadError):
            WorkloadSpec(**kw)

    def test_too_many_fixed_rejected(self):
        fixed = tuple(FixedPredicateSpec(attribute_name(i)) for i in range(6))
        with pytest.raises(InvalidWorkloadError):
            WorkloadSpec(predicates_per_subscription=5, fixed_predicates=fixed)

    def test_duplicate_fixed_attrs_rejected(self):
        fixed = (FixedPredicateSpec("attr00"), FixedPredicateSpec("attr00"))
        with pytest.raises(InvalidWorkloadError):
            WorkloadSpec(fixed_predicates=fixed)

    def test_unknown_pool_attribute_rejected(self):
        with pytest.raises(InvalidWorkloadError):
            WorkloadSpec(subscription_attribute_pool=("bogus",))

    def test_pool_smaller_than_preds_rejected(self):
        with pytest.raises(InvalidWorkloadError):
            WorkloadSpec(
                predicates_per_subscription=3,
                subscription_attribute_pool=(attribute_name(0), attribute_name(1)),
            )

    def test_preds_exceed_attribute_count_rejected(self):
        with pytest.raises(InvalidWorkloadError):
            WorkloadSpec(n_attributes=3, predicates_per_subscription=4,
                         attributes_per_event=3)

    def test_free_preds_require_operator_weights(self):
        with pytest.raises(InvalidWorkloadError):
            WorkloadSpec(free_operator_weights={})

    def test_bad_operator_symbol_rejected(self):
        with pytest.raises(Exception):
            WorkloadSpec(free_operator_weights={"<>": 1.0})


class TestDerived:
    def test_attribute_names(self):
        spec = WorkloadSpec(
            n_attributes=3, attributes_per_event=3, predicates_per_subscription=2
        )
        assert spec.attribute_names == ("attr00", "attr01", "attr02")

    def test_fixed_attributes_and_free_count(self):
        spec = WorkloadSpec(
            predicates_per_subscription=5,
            fixed_predicates=(FixedPredicateSpec("attr00"), FixedPredicateSpec("attr01")),
        )
        assert spec.fixed_attributes == ("attr00", "attr01")
        assert spec.free_predicates_per_subscription == 3

    def test_domains_with_overrides(self):
        spec = WorkloadSpec(
            value_low=1,
            value_high=35,
            predicate_domain_overrides={"attr00": (1, 2)},
            event_domain_overrides={"attr01": (5, 6)},
        )
        assert spec.predicate_domain("attr00") == (1, 2)
        assert spec.predicate_domain("attr05") == (1, 35)
        assert spec.event_domain("attr01") == (5, 6)
        assert spec.event_domain_sizes()["attr01"] == 2
        assert spec.event_domain_sizes()["attr05"] == 35

    def test_scaled(self):
        spec = WorkloadSpec(n_subscriptions=1_000_000, n_events=1000)
        small = spec.scaled(0.01)
        assert small.n_subscriptions == 10_000
        assert small.n_events == 10
        assert small.predicates_per_subscription == spec.predicates_per_subscription

    def test_scaled_clamps_batch(self):
        spec = WorkloadSpec(n_subscriptions=1_000_000, subscription_batch=10_000)
        small = spec.scaled(0.001)
        assert small.subscription_batch <= small.n_subscriptions

    def test_scaled_invalid(self):
        with pytest.raises(InvalidWorkloadError):
            WorkloadSpec().scaled(0)

    def test_with_seed(self):
        assert WorkloadSpec(seed=1).with_seed(7).seed == 7
