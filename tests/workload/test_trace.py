"""Trace recording and replay."""

import io

import pytest

from repro.core import Event, OracleMatcher, Subscription, eq, le
from repro.matchers import DynamicMatcher
from repro.system import PubSubBroker, QueueNotifier, VirtualClock
from repro.workload.trace import (
    ReplayResult,
    TraceError,
    TraceOp,
    TraceRecorder,
    read_trace,
    replay,
)


def record_session(fp):
    clock = VirtualClock()
    broker = PubSubBroker(clock=clock, notifier=QueueNotifier())
    rec = TraceRecorder(broker, fp)
    rec.subscribe(Subscription("a", [eq("movie", "gd"), le("price", 10)]))
    clock.advance(1)
    rec.publish(Event({"movie": "gd", "price": 8}))
    clock.advance(1)
    rec.subscribe(Subscription("b", [eq("movie", "gd")]))
    rec.publish(Event({"movie": "gd", "price": 20}))
    clock.advance(1)
    rec.unsubscribe("a")
    rec.publish(Event({"movie": "gd", "price": 5}))
    return rec


class TestRecording:
    def test_operations_counted_and_forwarded(self):
        buf = io.StringIO()
        rec = record_session(buf)
        assert rec.operations == 6
        assert rec.broker.subscription_count == 1

    def test_timestamps_relative_and_monotone(self):
        buf = io.StringIO()
        record_session(buf)
        buf.seek(0)
        stamps = [op.at for op in read_trace(buf)]
        assert stamps[0] == 0.0
        assert stamps == sorted(stamps)

    def test_round_trip_op_kinds(self):
        buf = io.StringIO()
        record_session(buf)
        buf.seek(0)
        kinds = [op.kind for op in read_trace(buf)]
        assert kinds == [
            "subscribe", "publish", "subscribe", "publish", "unsubscribe", "publish",
        ]


class TestReplay:
    @pytest.fixture
    def trace_text(self):
        buf = io.StringIO()
        record_session(buf)
        return buf.getvalue()

    def test_replay_into_matcher_reproduces_matches(self, trace_text):
        results = []
        outcome = replay(
            io.StringIO(trace_text),
            DynamicMatcher(),
            on_match=lambda e, m: results.append(sorted(m)),
        )
        assert isinstance(outcome, ReplayResult)
        assert outcome.operations == 6 and outcome.publishes == 3
        assert results == [["a"], ["b"], ["b"]]
        assert outcome.total_matches == 3

    def test_replay_into_broker(self, trace_text):
        broker = PubSubBroker(clock=VirtualClock(), notifier=QueueNotifier())
        outcome = replay(io.StringIO(trace_text), broker)
        assert broker.subscription_count == 1
        assert outcome.ops_per_second > 0

    def test_replay_engine_equivalence(self, trace_text):
        per_engine = []
        for engine in (OracleMatcher(), DynamicMatcher()):
            seen = []
            replay(io.StringIO(trace_text), engine,
                   on_match=lambda e, m: seen.append(sorted(m, key=str)))
            per_engine.append(seen)
        assert per_engine[0] == per_engine[1]


class TestValidation:
    def test_bad_json(self):
        with pytest.raises(TraceError):
            list(read_trace(io.StringIO("nope\n")))

    def test_unknown_op(self):
        with pytest.raises(TraceError):
            TraceOp.from_dict({"op": "explode", "at": 0, "body": {}})

    def test_missing_fields(self):
        with pytest.raises(TraceError):
            TraceOp.from_dict({"op": "publish"})

    def test_blank_lines_skipped(self):
        buf = io.StringIO()
        record_session(buf)
        text = "\n" + buf.getvalue() + "\n\n"
        assert len(list(read_trace(io.StringIO(text)))) == 6
