"""The universal table + trigger strawman."""

import pytest

from repro.core import (
    DuplicateSubscriptionError,
    Event,
    OracleMatcher,
    Subscription,
    UnknownSubscriptionError,
    eq,
    ge,
    le,
)
from repro.sqltrigger import TriggerMatcher, UniversalTable


class TestUniversalTable:
    @pytest.fixture
    def table(self):
        return UniversalTable(["movie", "price", "theater"])

    def test_trigger_fires_on_matching_insert(self, table):
        table.create_trigger("t1", [eq("movie", "gd"), le("price", 10)])
        assert table.insert({"movie": "gd", "price": 8}) == ["t1"]

    def test_trigger_silent_on_mismatch(self, table):
        table.create_trigger("t1", [eq("movie", "gd"), le("price", 10)])
        assert table.insert({"movie": "gd", "price": 20}) == []

    def test_null_column_fails_condition(self, table):
        table.create_trigger("t1", [le("price", 10)])
        assert table.insert({"movie": "gd"}) == []

    def test_action_invoked(self, table):
        fired = []
        table.create_trigger(
            "t1", [eq("movie", "gd")], action=lambda name, row: fired.append(row)
        )
        table.insert({"movie": "gd"})
        assert fired == [{"movie": "gd"}]

    def test_every_trigger_evaluated(self, table):
        for i in range(10):
            table.create_trigger(f"t{i}", [ge("price", i)])
        fired = table.insert({"price": 4})
        assert sorted(fired) == [f"t{i}" for i in range(5)]

    def test_duplicate_trigger_rejected(self, table):
        table.create_trigger("t1", [eq("movie", "gd")])
        with pytest.raises(DuplicateSubscriptionError):
            table.create_trigger("t1", [eq("movie", "x")])

    def test_unknown_column_in_condition_rejected(self, table):
        with pytest.raises(KeyError):
            table.create_trigger("t1", [eq("bogus", 1)])

    def test_unknown_column_in_insert_rejected(self, table):
        with pytest.raises(KeyError):
            table.insert({"bogus": 1})

    def test_drop_trigger(self, table):
        table.create_trigger("t1", [eq("movie", "gd")])
        table.drop_trigger("t1")
        assert table.insert({"movie": "gd"}) == []
        with pytest.raises(UnknownSubscriptionError):
            table.drop_trigger("t1")

    def test_row_storage_optional(self, table):
        table.insert({"movie": "gd"})
        assert table.row_count == 0
        table.insert({"movie": "gd"}, store=True)
        assert table.row_count == 1

    def test_insert_event(self, table):
        table.create_trigger("t1", [eq("movie", "gd")])
        assert table.insert_event(Event({"movie": "gd", "price": 3})) == ["t1"]


class TestTriggerMatcher:
    def test_agrees_with_oracle(self, rng):
        from tests.conftest import make_event, make_subscription

        oracle, trig = OracleMatcher(), TriggerMatcher()
        subs = [make_subscription(rng, f"s{i}") for i in range(100)]
        for s in subs:
            oracle.add(s)
            trig.add(s)
        for _ in range(30):
            e = make_event(rng)
            assert sorted(trig.match(e), key=str) == sorted(oracle.match(e), key=str)

    def test_schema_grows_on_demand(self):
        trig = TriggerMatcher()
        trig.add(Subscription("a", [eq("x", 1)]))
        trig.add(Subscription("b", [eq("brand_new", 2)]))
        assert sorted(trig.match(Event({"x": 1, "brand_new": 2}))) == ["a", "b"]

    def test_remove(self):
        trig = TriggerMatcher()
        trig.add(Subscription("a", [eq("x", 1)]))
        trig.remove("a")
        assert trig.match(Event({"x": 1})) == []
        assert len(trig) == 0

    def test_non_string_ids_preserved(self):
        trig = TriggerMatcher()
        trig.add(Subscription(42, [eq("x", 1)]))
        assert trig.match(Event({"x": 1})) == [42]
