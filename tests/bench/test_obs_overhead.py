"""Disabled instrumentation must cost (almost) nothing.

The no-op default on every matcher is one boolean test per ``match``:
``if self.metrics.enabled or self.tracer.enabled``.  This bench pins
that claim on the Table-1 (W0) workload by racing the instrumented
``match`` entry point — with the no-op registry/tracer attached —
against a local replica of the *whole* uninstrumented match body.

Two details make the assertion deterministic rather than timing-flaky:

* The baseline replica is faithful.  ``DynamicMatcher.match`` is not
  just the two-phase body: it also samples events into the running
  statistics and runs the reorganisation ``_tick()``.  An earlier
  version of this test omitted those from the baseline and so measured
  ~12% of *dynamic maintenance* cost as if it were instrumentation
  overhead — the seed flake.
* Timing uses ``time.process_time()`` (CPU time, immune to co-tenant
  wall-clock steal) over interleaved baseline/instrumented pairs, and
  asserts the *median* of the per-pair ratios.  Calibration on a loaded
  host put the median in 0.99–1.04 across repeated runs; the allowance
  below keeps headroom over that noise floor while still failing fast
  if a real per-call branch regression (>10%) lands.
"""

from __future__ import annotations

import statistics as stats
import time

import pytest

from repro.matchers import DynamicMatcher
from repro.obs import NOOP_REGISTRY, NULL_TRACER
from repro.workload import WorkloadGenerator, w0

PAIRS = 15
ALLOWED_OVERHEAD = 1.10


def _baseline_match(matcher, event):
    """Faithful replica of ``DynamicMatcher.match`` without the
    ``metrics.enabled or tracer.enabled`` branch.

    Must mirror the real entry point exactly — including statistics
    sampling and the maintenance tick — or the comparison measures
    maintenance cost, not instrumentation cost.
    """
    matcher._event_seq += 1
    if matcher._observe and matcher._event_seq % matcher._observe_every == 0:
        matcher.statistics.observe(event)
    matcher.bits.reset()
    satisfied = matcher.indexes.evaluate(event, matcher.bits)
    matcher.counters["events"] += 1
    matcher.counters["predicates_satisfied"] += satisfied
    result = matcher._match_phase2(event)
    matcher._tick()
    return result


def _median_paired_ratio(run_baseline, run_instrumented, pairs=PAIRS):
    """Median instrumented/baseline CPU-time ratio over interleaved pairs.

    Interleaving keeps cache/frequency state comparable between the two
    sides of each pair; the median discards the occasional outlier pair.
    """
    ratios = []
    for _ in range(pairs):
        start = time.process_time()
        run_baseline()
        base = time.process_time() - start
        start = time.process_time()
        run_instrumented()
        inst = time.process_time() - start
        ratios.append(inst / base)
    return stats.median(ratios)


@pytest.mark.slow
class TestNoopOverhead:
    def test_disabled_metrics_within_allowance(self):
        gen = WorkloadGenerator(w0(n_subscriptions=2000, seed=11))
        subs = list(gen.subscriptions())
        events = list(gen.events(400))

        matcher = DynamicMatcher()
        for sub in subs:
            matcher.add(sub)
        # The defaults are the no-op sinks; make that explicit.
        assert matcher.metrics is NOOP_REGISTRY
        assert matcher.tracer is NULL_TRACER

        def run_instrumented():
            for event in events:
                matcher.match(event)

        def run_baseline():
            for event in events:
                _baseline_match(matcher, event)

        # Same matcher state on both sides; warm up once each so dynamic
        # clustering maintenance settles before timing.
        run_baseline()
        run_instrumented()

        ratio = _median_paired_ratio(run_baseline, run_instrumented)
        assert ratio < ALLOWED_OVERHEAD, (
            f"no-op instrumentation overhead {ratio:.3f}x exceeds "
            f"{ALLOWED_OVERHEAD}x (median of {PAIRS} interleaved "
            f"CPU-time pairs)"
        )

    def test_results_identical_to_baseline(self):
        gen = WorkloadGenerator(w0(n_subscriptions=500, seed=13))
        subs = list(gen.subscriptions())
        events = list(gen.events(50))
        a, b = DynamicMatcher(), DynamicMatcher()
        for sub in subs:
            a.add(sub)
            b.add(sub)
        for event in events:
            assert sorted(a.match(event), key=str) == sorted(
                _baseline_match(b, event), key=str
            )
