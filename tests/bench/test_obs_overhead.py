"""Disabled instrumentation must cost (almost) nothing.

The no-op default on every matcher is one boolean test per ``match``:
``if self.metrics.enabled or self.tracer.enabled``.  This bench pins
that claim on the Table-1 (W0) workload by racing the instrumented
``match`` entry point — with the no-op registry/tracer attached —
against a local replica of the *seed* match body (the pre-observability
code, with no enabled check at all).  Best-of-N trials on both sides to
squeeze out scheduler noise; the instrumented side must stay within 5%.
"""

from __future__ import annotations

import time

import pytest

from repro.matchers import DynamicMatcher
from repro.obs import NOOP_REGISTRY, NULL_TRACER
from repro.workload import WorkloadGenerator, w0

TRIALS = 5
ALLOWED_OVERHEAD = 1.05


def _baseline_match(matcher, event):
    """The seed's ``match`` body, with no instrumentation branch at all."""
    matcher.bits.reset()
    satisfied = matcher.indexes.evaluate(event, matcher.bits)
    matcher.counters["events"] += 1
    matcher.counters["predicates_satisfied"] += satisfied
    return matcher._match_phase2(event)


def _best_of(fn, trials=TRIALS):
    best = float("inf")
    for _ in range(trials):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


@pytest.mark.slow
class TestNoopOverhead:
    def test_disabled_metrics_within_5_percent(self):
        gen = WorkloadGenerator(w0(n_subscriptions=2000, seed=11))
        subs = list(gen.subscriptions())
        events = list(gen.events(400))

        matcher = DynamicMatcher()
        for sub in subs:
            matcher.add(sub)
        # The defaults are the no-op sinks; make that explicit.
        assert matcher.metrics is NOOP_REGISTRY
        assert matcher.tracer is NULL_TRACER

        def run_instrumented():
            for event in events:
                matcher.match(event)

        def run_baseline():
            for event in events:
                _baseline_match(matcher, event)

        # Same matcher state on both sides; warm up once each so dynamic
        # clustering maintenance settles before timing.
        run_baseline()
        run_instrumented()

        baseline = _best_of(run_baseline)
        instrumented = _best_of(run_instrumented)
        ratio = instrumented / baseline
        assert ratio < ALLOWED_OVERHEAD, (
            f"no-op instrumentation overhead {ratio:.3f}x exceeds "
            f"{ALLOWED_OVERHEAD}x (baseline {baseline * 1e3:.2f} ms, "
            f"instrumented {instrumented * 1e3:.2f} ms)"
        )

    def test_results_identical_to_baseline(self):
        gen = WorkloadGenerator(w0(n_subscriptions=500, seed=13))
        subs = list(gen.subscriptions())
        events = list(gen.events(50))
        a, b = DynamicMatcher(), DynamicMatcher()
        for sub in subs:
            a.add(sub)
            b.add(sub)
        for event in events:
            assert sorted(a.match(event), key=str) == sorted(
                _baseline_match(b, event), key=str
            )
