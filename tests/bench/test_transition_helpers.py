"""Helpers of the Figure 4 transition runner."""

import pytest

from repro.bench.experiments.transition import bucket_means, report, run_transition
from repro.workload.scenarios import w3, w4
from repro.workload.streams import TransitionSchedule


class TestBucketMeans:
    def test_even_split(self):
        assert bucket_means([1, 1, 2, 2, 3, 3], 3) == [1, 2, 3]

    def test_remainder_folded(self):
        got = bucket_means([1, 2, 3, 4, 5], 2)
        assert got == [1.5, 3.5]

    def test_more_buckets_than_items(self):
        assert bucket_means([5.0], 4) == [5.0]

    def test_empty(self):
        assert bucket_means([], 3) == []
        assert bucket_means([1.0], 0) == []


class TestRunTransition:
    @pytest.fixture(scope="class")
    def tiny_results(self):
        schedule = TransitionSchedule.figure4(
            old_spec=w3(),
            new_spec=w4(seed=99),
            population=300,
            churn_rate=100,
            stable_steps=1,
            transition_steps=3,
        )
        return run_transition(schedule, events_per_step=5)

    def test_both_strategies_present(self, tiny_results):
        assert set(tiny_results) == {"dynamic", "no change"}

    def test_series_length_matches_schedule(self, tiny_results):
        assert all(len(v) == 5 for v in tiny_results.values())

    def test_throughputs_positive(self, tiny_results):
        assert all(x > 0 for v in tiny_results.values() for x in v)

    def test_report_prints_and_buckets(self, tiny_results):
        lines = []
        payload = report("T", tiny_results, buckets=5, out=lines.append)
        assert lines and "T" in lines[0]
        assert set(payload["buckets"]) == {"dynamic", "no change"}
