"""Smoke-tests of each experiment driver at tiny scale.

Each driver must run end-to-end, print a table, and return structured
series with the right keys.  The *shape* assertions (who wins) live in
tests/integration/test_paper_shapes.py; these only prove the drivers
are runnable everywhere.
"""

import pytest

from repro.bench.experiments import (
    EXPERIMENTS,
    cache_ablation,
    example31_driver,
    fig3a,
    fig3b,
    fig3c,
    fig3d,
    phase_split,
    trigger_baseline,
)


def sink():
    lines = []
    return lines, lines.append


class TestRegistry:
    def test_all_experiments_registered(self):
        assert set(EXPERIMENTS) == {
            "example3.1",
            "fig3a",
            "fig3b",
            "fig3c",
            "fig3d",
            "fig4a",
            "fig4b",
            "phase-split",
            "cache-ablation",
            "trigger-baseline",
        }
        assert all(hasattr(mod, "run") for mod in EXPERIMENTS.values())


class TestDriversRunTiny:
    def test_fig3a(self):
        lines, out = sink()
        r = fig3a.run(sub_counts=[150, 300], n_events=5, out=out)
        assert r["sub_counts"] == [150, 300]
        assert set(r["events_per_second"]) == set(r["algorithms"])
        assert all(len(v) == 2 for v in r["events_per_second"].values())
        assert lines and "Figure 3(a)" in lines[0]

    def test_fig3b(self):
        lines, out = sink()
        r = fig3b.run(n_subs=200, n_events=5, out=out)
        assert set(r["events_per_second"]) == {"W1", "W2"}
        for cells in r["events_per_second"].values():
            assert set(cells) == {"propagation-wp", "dynamic"}

    def test_fig3c(self):
        lines, out = sink()
        r = fig3c.run(sub_counts=[100, 200], out=out)
        for series in r["megabytes"].values():
            assert series[1] > series[0]  # memory grows with |S|

    def test_fig3d(self):
        lines, out = sink()
        r = fig3d.run(sub_counts=[100, 200], out=out)
        assert "static" in r["seconds"]
        assert all(s > 0 for series in r["seconds"].values() for s in series)

    def test_phase_split(self):
        lines, out = sink()
        r = phase_split.run(n_subs=200, n_events=5, out=out)
        assert set(r["split"]) == {
            "counting", "propagation", "propagation-wp", "dynamic",
        }
        for cell in r["split"].values():
            assert cell["predicate_ms"] >= 0

    def test_cache_ablation(self):
        lines, out = sink()
        r = cache_ablation.run(size=2, count=256, lookaheads=(0, 8), out=out)
        assert set(r["layouts"]) == {
            "columnar+prefetch", "columnar", "rowwise+prefetch", "rowwise",
        }
        assert set(r["lookahead_cycles"]) == {0, 8}
        assert set(r["wide_prefetch_cycles"]) == {"all rows", "first 2 rows"}

    def test_trigger_baseline(self):
        lines, out = sink()
        r = trigger_baseline.run(sub_counts=(50, 100), n_events=3, out=out)
        assert len(r["trigger_ms_per_event"]) == 2

    def test_example31_driver(self):
        lines, out = sink()
        r = example31_driver.run(out=out)
        assert r["C1"]["event_cost"][0] == 2
        assert r["C2"]["event_cost"][0] == 3
