"""Shared experiment plumbing (common.py) and the matcher registry."""

import pytest

from repro.bench.experiments.common import (
    PAPER_SUB_COUNTS,
    materialize,
    scaled_sub_counts,
    shape_summary,
)
from repro.matchers import MATCHER_FACTORIES, make_matcher
from repro.workload.scenarios import w0


class TestScaledCounts:
    def test_explicit_scale(self):
        got = scaled_sub_counts(scale=0.001)
        assert got == [max(500, int(c * 0.001)) for c in PAPER_SUB_COUNTS]

    def test_minimum_floor(self):
        got = scaled_sub_counts(scale=1e-9, minimum=123)
        assert all(x == 123 for x in got)

    def test_monotone(self):
        got = scaled_sub_counts(scale=0.01)
        assert got == sorted(got)


class TestMaterialize:
    def test_counts_and_prefix(self):
        subs, events = materialize(w0(seed=1), 25, 7, id_prefix="pfx-")
        assert len(subs) == 25 and len(events) == 7
        assert all(s.id.startswith("pfx-") for s in subs)

    def test_deterministic(self):
        a, _ = materialize(w0(seed=1), 10, 0)
        b, _ = materialize(w0(seed=1), 10, 0)
        assert [s.predicates for s in a] == [s.predicates for s in b]


class TestShapeSummary:
    def test_means(self):
        got = shape_summary({"a": [1.0, 3.0], "b": []})
        assert got == {"a": 2.0, "b": 0.0}


class TestMakeMatcher:
    def test_unknown_name(self):
        with pytest.raises(ValueError, match="unknown matcher"):
            make_matcher("quantum")

    @pytest.mark.parametrize(
        "name", [n for n in sorted(MATCHER_FACTORIES) if n != "static"]
    )
    def test_known_names_build(self, name):
        assert make_matcher(name).name == name
