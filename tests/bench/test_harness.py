"""The benchmark harness utilities."""

import pytest

from repro.bench import (
    bench_snapshot_path,
    configured_scale,
    format_table,
    format_value,
    load_subscriptions,
    matcher_for,
    measure_batch_matching,
    measure_matching,
    measure_phases,
    run_series,
    uniform_statistics_for,
)
from repro.bench.memory import bytes_per_subscription, deep_sizeof, matcher_memory_bytes
from repro.core import Event, Subscription, eq
from repro.matchers import CountingMatcher, StaticMatcher
from repro.workload import WorkloadGenerator, w0


class TestScale:
    def test_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_SCALE", raising=False)
        assert configured_scale(0.5) == 0.5

    def test_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "0.125")
        assert configured_scale() == 0.125

    def test_invalid_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "banana")
        with pytest.raises(ValueError):
            configured_scale()
        monkeypatch.setenv("REPRO_SCALE", "-1")
        with pytest.raises(ValueError):
            configured_scale()


class TestMatcherFactory:
    @pytest.mark.parametrize(
        "name", ["counting", "propagation", "propagation-wp", "static", "dynamic"]
    )
    def test_builds_each_algorithm(self, name):
        m = matcher_for(name, w0())
        assert m.name == name

    def test_unknown_rejected(self):
        with pytest.raises(ValueError):
            matcher_for("quantum", w0())

    def test_uniform_statistics_for_spec(self):
        stats = uniform_statistics_for(w0())
        assert stats.pair_prob("attr00", 1) == pytest.approx(1 / 35)


class TestMeasurement:
    def _population(self):
        gen = WorkloadGenerator(w0(n_subscriptions=50))
        return list(gen.subscriptions()), list(gen.events(10))

    def test_load_subscriptions(self):
        subs, _ = self._population()
        res = load_subscriptions(CountingMatcher(), subs)
        assert res.subscriptions == 50 and res.seconds > 0
        assert res.per_second > 0

    def test_load_calls_rebuild_for_static(self):
        subs, _ = self._population()
        m = StaticMatcher(uniform_statistics_for(w0()))
        load_subscriptions(m, subs)
        assert m.plan is not None

    def test_measure_matching(self):
        subs, events = self._population()
        m = CountingMatcher()
        load_subscriptions(m, subs)
        res = measure_matching(m, events)
        assert res.events == 10
        assert res.events_per_second > 0
        assert res.ms_per_event > 0

    def test_measure_phases_sum_reasonable(self):
        subs, events = self._population()
        m = matcher_for("dynamic", w0())
        load_subscriptions(m, subs)
        split = measure_phases(m, events)
        assert split.events == 10
        assert split.predicate_ms >= 0 and split.subscription_ms >= 0

    def test_phase_split_matches_full_result(self):
        subs, events = self._population()
        m1 = matcher_for("propagation", w0())
        load_subscriptions(m1, subs)
        expected = [sorted(m1.match(e), key=str) for e in events]
        # measure_phases must not corrupt state
        measure_phases(m1, events)
        assert [sorted(m1.match(e), key=str) for e in events] == expected

    def test_run_series(self):
        subs, events = self._population()
        out = run_series(CountingMatcher, subs, events)
        assert set(out) >= {"load_seconds", "events_per_second", "total_matches"}

    def test_run_series_metrics_out(self, tmp_path):
        import json

        from repro.matchers import DynamicMatcher
        from repro.obs.check import validate_file

        subs, events = self._population()
        path = bench_snapshot_path("smoke", directory=str(tmp_path))
        assert path.endswith("BENCH_SMOKE.json")
        out = run_series(
            DynamicMatcher, subs, events, metrics_out=path, context={"figure": "t1"}
        )
        assert validate_file(path, "schemas/metrics_snapshot.schema.json") == []
        snap = json.loads(open(path).read())
        assert snap["context"]["figure"] == "t1"
        assert snap["context"]["results"]["total_matches"] == out["total_matches"]
        names = {m["name"] for m in snap["metrics"]}
        assert "repro_events_total" in names

    def test_bench_snapshot_path_sanitizes(self):
        assert bench_snapshot_path("fig3a") == "./BENCH_FIG3A.json"
        assert bench_snapshot_path("phase-split").endswith("BENCH_PHASE_SPLIT.json")
        with pytest.raises(ValueError):
            bench_snapshot_path("***")


class TestBatchLane:
    def _population(self, n_subs=3000, n_events=512):
        gen = WorkloadGenerator(w0(n_subscriptions=n_subs))
        return list(gen.subscriptions()), list(gen.events(n_events))

    def test_measure_batch_matching_same_totals(self):
        subs, events = self._population(n_subs=300, n_events=60)
        m = matcher_for("propagation", w0())
        load_subscriptions(m, subs)
        scalar = measure_matching(m, events)
        for batch_size in (1, 7, 60, 256):
            batched = measure_batch_matching(m, events, batch_size)
            assert batched.events == scalar.events
            assert batched.total_matches == scalar.total_matches

    def test_measure_batch_matching_rejects_bad_size(self):
        with pytest.raises(ValueError):
            measure_batch_matching(CountingMatcher(), [], 0)

    def test_batch256_at_least_batch1_throughput(self):
        """The amortization claim, cheaply: one 256-event kernel call
        must not be slower than 256 one-event kernel calls."""
        subs, events = self._population()
        m = matcher_for("propagation", w0())
        load_subscriptions(m, subs)
        measure_batch_matching(m, events, 256)  # warm the compiled kernel
        single = max(
            measure_batch_matching(m, events, 1).events_per_second for _ in range(3)
        )
        batched = max(
            measure_batch_matching(m, events, 256).events_per_second
            for _ in range(3)
        )
        assert batched >= single, (
            f"batch-256 throughput {batched:.0f} ev/s fell below "
            f"batch-1 throughput {single:.0f} ev/s"
        )

    def test_batch_lane_snapshot_validates(self, tmp_path):
        import json

        from repro.obs import write_json_snapshot
        from repro.obs.check import validate_file

        subs, events = self._population(n_subs=400, n_events=128)
        m = matcher_for("propagation", w0())
        registry = m.use_metrics()
        load_subscriptions(m, subs)
        res = measure_batch_matching(m, events, 64)
        path = bench_snapshot_path("batch-lane-test", directory=str(tmp_path))
        write_json_snapshot(
            registry,
            path,
            context={"batch_size": 64, "results": {"total": res.total_matches}},
        )
        assert validate_file(path, "schemas/metrics_snapshot.schema.json") == []
        snap = json.loads(open(path).read())
        names = {metric["name"] for metric in snap["metrics"]}
        assert "repro_batch_batches_total" in names
        assert "repro_batch_events_total" in names
        assert "repro_batch_kernel_seconds" in names


class TestMemory:
    def test_deep_sizeof_counts_shared_once(self):
        shared = [1, 2, 3]
        assert deep_sizeof([shared, shared]) < 2 * deep_sizeof([shared])

    def test_deep_sizeof_numpy(self):
        import numpy as np

        a = np.zeros(1000, dtype=np.int32)
        assert deep_sizeof(a) >= 4000

    def test_matcher_memory_grows_with_population(self):
        small, big = CountingMatcher(), CountingMatcher()
        gen = WorkloadGenerator(w0(n_subscriptions=200))
        subs = list(gen.subscriptions())
        load_subscriptions(small, subs[:20])
        load_subscriptions(big, subs)
        assert matcher_memory_bytes(big) > matcher_memory_bytes(small)

    def test_bytes_per_subscription(self):
        m = CountingMatcher()
        assert bytes_per_subscription(m) == 0.0
        m.add(Subscription("s", [eq("x", 1)]))
        assert bytes_per_subscription(m) > 0


class TestReporting:
    def test_format_value(self):
        assert format_value(1234567) == "1,234,567"
        assert format_value(0.1234) == "0.123"
        assert format_value(12.34) == "12.3"
        assert format_value(1234.5) == "1,234"
        assert format_value("x") == "x"
        assert format_value(0.0) == "0"

    def test_format_table_alignment(self):
        text = format_table(["name", "v"], [["a", 1], ["bb", 22]], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert all(len(l) == len(lines[2]) for l in lines[2:])

    def test_print_table_uses_out(self):
        captured = []
        from repro.bench import print_table

        print_table(["a"], [[1]], out=captured.append)
        assert len(captured) == 1 and "1" in captured[0]
