"""The Markdown report generator."""

import io

import pytest

from repro.bench.report import REPORT_ORDER, generate_report, main
from repro.bench.experiments import EXPERIMENTS


class TestGenerateReport:
    def test_order_covers_all_experiments(self):
        assert set(REPORT_ORDER) == set(EXPERIMENTS)

    def test_single_cheap_experiment(self):
        buf = io.StringIO()
        n = generate_report(buf, ["example3.1"], timestamp="T")
        text = buf.getvalue()
        assert n == 1
        assert "# Experiment report" in text
        assert "generated: T" in text
        assert "## example3.1" in text
        assert "Example 3.1" in text  # the driver's table made it in

    def test_unknown_experiment_rejected(self):
        with pytest.raises(ValueError):
            generate_report(io.StringIO(), ["figZZ"])

    def test_main_writes_file(self, tmp_path, capsys):
        target = tmp_path / "report.md"
        rc = main(["--output", str(target), "-e", "example3.1"])
        assert rc == 0
        assert "wrote" in capsys.readouterr().out
        assert "## example3.1" in target.read_text()
