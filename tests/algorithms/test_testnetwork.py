"""The test-network (Gryphon-style) baseline."""

import random

import pytest

from repro.algorithms.testnetwork import TreeMatcher
from repro.core import (
    DuplicateSubscriptionError,
    Event,
    OracleMatcher,
    Subscription,
    UnknownSubscriptionError,
    eq,
    ge,
    le,
)
from tests.conftest import make_event, make_subscription


class TestBasics:
    def test_single_subscription(self):
        t = TreeMatcher()
        t.add(Subscription("s", [eq("movie", "gd"), le("price", 10)]))
        assert t.match(Event({"movie": "gd", "price": 8})) == ["s"]
        assert t.match(Event({"movie": "gd", "price": 20})) == []
        assert t.match(Event({"price": 8})) == []

    def test_shared_prefix_shares_nodes(self):
        t = TreeMatcher()
        t.add(Subscription("a", [eq("x", 1), eq("y", 1)]))
        before = t.node_count()
        t.add(Subscription("b", [eq("x", 1), eq("y", 2)]))
        # only the y edge + leaf are new
        assert t.node_count() == before + 1

    def test_dont_care_paths(self):
        t = TreeMatcher()
        t.add(Subscription("broad", [le("price", 10)]))
        t.add(Subscription("narrow", [eq("movie", "gd"), le("price", 10)]))
        got = t.match(Event({"movie": "gd", "price": 5}))
        assert sorted(got) == ["broad", "narrow"]
        assert t.match(Event({"movie": "x", "price": 5})) == ["broad"]

    def test_duplicate_rejected(self):
        t = TreeMatcher()
        t.add(Subscription("s", [eq("x", 1)]))
        with pytest.raises(DuplicateSubscriptionError):
            t.add(Subscription("s", [eq("x", 2)]))

    def test_remove_unknown(self):
        with pytest.raises(UnknownSubscriptionError):
            TreeMatcher().remove("nope")

    def test_same_attribute_interval(self):
        t = TreeMatcher()
        t.add(Subscription("s", [ge("p", 5), le("p", 9)]))
        assert t.match(Event({"p": 7})) == ["s"]
        assert t.match(Event({"p": 4})) == []
        assert t.match(Event({"p": 10})) == []


class TestSplicing:
    """Insertion order that forces node splicing (earlier attribute
    arriving after a later one already owns the node)."""

    def test_splice_preserves_existing_subscription(self):
        t = TreeMatcher()
        t.add(Subscription("later", [eq("a", 1), eq("c", 3)]))  # ranks a, c
        t.add(Subscription("earlier", [eq("a", 1), eq("b", 2)]))  # splices b over c
        e_both = Event({"a": 1, "b": 2, "c": 3})
        assert sorted(t.match(e_both)) == ["earlier", "later"]
        assert t.match(Event({"a": 1, "c": 3})) == ["later"]
        assert t.match(Event({"a": 1, "b": 2})) == ["earlier"]

    def test_removal_of_spliced_terminal(self):
        t = TreeMatcher()
        t.add(Subscription("stub", [eq("a", 1)]))
        t.add(Subscription("deep", [eq("a", 1), eq("c", 3)]))
        # "stub" terminates at a node later specialized for c.
        t.remove("stub")
        assert t.match(Event({"a": 1})) == []
        assert t.match(Event({"a": 1, "c": 3})) == ["deep"]

    def test_empty_after_removing_everything(self):
        t = TreeMatcher()
        rng = random.Random(1)
        subs = [make_subscription(rng, f"s{i}") for i in range(50)]
        for s in subs:
            t.add(s)
        for s in subs:
            t.remove(s.id)
        assert len(t) == 0
        assert t.node_count() <= 50  # pruned (root + chain remnants allowed)
        assert t.match(make_event(rng)) == []


class TestAgreement:
    def test_matches_oracle_random(self, rng):
        oracle, tree = OracleMatcher(), TreeMatcher()
        for i in range(300):
            s = make_subscription(rng, f"s{i}")
            oracle.add(s)
            tree.add(s)
        for _ in range(60):
            e = make_event(rng)
            assert sorted(tree.match(e), key=str) == sorted(oracle.match(e), key=str)

    def test_matches_oracle_under_churn(self, rng):
        oracle, tree = OracleMatcher(), TreeMatcher()
        live = []
        for step in range(300):
            r = rng.random()
            if r < 0.35 and live:
                sid = live.pop(rng.randrange(len(live)))
                oracle.remove(sid)
                tree.remove(sid)
            elif r < 0.65:
                s = make_subscription(rng, f"c{step}")
                live.append(s.id)
                oracle.add(s)
                tree.add(s)
            else:
                e = make_event(rng)
                assert sorted(tree.match(e), key=str) == sorted(
                    oracle.match(e), key=str
                )


class TestPaperCritique:
    """Section 5's qualitative points, measured."""

    def test_space_exceeds_clustered_structures(self, rng):
        from repro.bench.memory import matcher_memory_bytes
        from repro.matchers import PrefetchPropagationMatcher

        tree, prop = TreeMatcher(), PrefetchPropagationMatcher()
        for i in range(500):
            s = make_subscription(rng, f"s{i}")
            tree.add(s)
            prop.add(s)
        # one node per predicate-ish vs shared columnar arrays
        assert tree.node_count() > 500

    def test_stats(self):
        t = TreeMatcher()
        t.add(Subscription("s", [eq("x", 1)]))
        t.match(Event({"x": 1}))
        s = t.stats()
        assert s["name"] == "test-network"
        assert s["nodes"] >= 2 and s["nodes_visited"] >= 1
