"""The counting-algorithm baseline."""

import pytest

from repro.algorithms import CountingMatcher
from repro.core import (
    DuplicateSubscriptionError,
    Event,
    Subscription,
    UnknownSubscriptionError,
    eq,
    ge,
    le,
)


@pytest.fixture
def matcher():
    m = CountingMatcher()
    m.add(Subscription("movie-fan", [eq("movie", "gd"), le("price", 10)]))
    m.add(Subscription("collector", [eq("movie", "gd")]))
    m.add(Subscription("range", [ge("price", 5), le("price", 9)]))
    return m


class TestCounting:
    def test_full_match(self, matcher):
        got = matcher.match(Event({"movie": "gd", "price": 8}))
        assert sorted(got) == ["collector", "movie-fan", "range"]

    def test_partial_hits_do_not_match(self, matcher):
        # price 12 satisfies only ge(5): 1 of 2 hits for "range".
        got = matcher.match(Event({"movie": "gd", "price": 12}))
        assert sorted(got) == ["collector"]

    def test_count_resets_between_events(self, matcher):
        matcher.match(Event({"movie": "gd"}))
        # second event must not inherit hit counts
        got = matcher.match(Event({"price": 8}))
        assert got == ["range"]

    def test_shared_predicate_counts_once_per_sub(self):
        m = CountingMatcher()
        m.add(Subscription("a", [eq("x", 1), eq("y", 2)]))
        m.add(Subscription("b", [eq("x", 1)]))
        assert sorted(m.match(Event({"x": 1, "y": 2}))) == ["a", "b"]
        assert m.match(Event({"x": 1})) == ["b"]

    def test_remove_cleans_association(self, matcher):
        matcher.remove("collector")
        got = matcher.match(Event({"movie": "gd", "price": 8}))
        assert sorted(got) == ["movie-fan", "range"]
        assert len(matcher) == 2

    def test_remove_frees_shared_bits_correctly(self):
        m = CountingMatcher()
        m.add(Subscription("a", [eq("x", 1)]))
        m.add(Subscription("b", [eq("x", 1)]))
        m.remove("a")
        assert m.match(Event({"x": 1})) == ["b"]

    def test_duplicate_and_unknown(self, matcher):
        with pytest.raises(DuplicateSubscriptionError):
            matcher.add(Subscription("range", [eq("z", 1)]))
        with pytest.raises(UnknownSubscriptionError):
            matcher.remove("zzz")

    def test_stats(self, matcher):
        matcher.match(Event({"movie": "gd", "price": 8}))
        s = matcher.stats()
        assert s["name"] == "counting"
        assert s["association_entries"] >= 3
        assert s["counters"]["events"] == 1
        assert s["distinct_predicates"] == 4
