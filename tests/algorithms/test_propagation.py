"""Propagation matchers: access-predicate clustering."""

import pytest

from repro.algorithms import PrefetchPropagationMatcher, PropagationMatcher
from repro.core import Event, Subscription, eq, ge, le


class TestAccessSelection:
    def test_default_uses_first_equality(self):
        m = PropagationMatcher()
        m.add(Subscription("s", [le("p", 10), eq("movie", "gd"), eq("city", "nyc")]))
        sizes = m.cluster_list_sizes()
        assert sizes == {("movie", "gd"): 1}

    def test_custom_selector(self):
        m = PropagationMatcher(access_selector=lambda sub, eqs: eqs[-1])
        m.add(Subscription("s", [eq("movie", "gd"), eq("city", "nyc")]))
        assert m.cluster_list_sizes() == {("city", "nyc"): 1}

    def test_no_equality_goes_universal(self):
        m = PropagationMatcher()
        m.add(Subscription("s", [le("p", 10), ge("p", 5)]))
        assert m.cluster_list_sizes() == {}
        assert m.stats()["universal_members"] == 1


class TestMatching:
    @pytest.fixture(params=[PropagationMatcher, PrefetchPropagationMatcher])
    def matcher(self, request):
        m = request.param()
        m.add(Subscription("cheap", [eq("movie", "gd"), le("price", 10)]))
        m.add(Subscription("any", [eq("movie", "gd")]))
        m.add(Subscription("pricey", [eq("movie", "gd"), ge("price", 50)]))
        m.add(Subscription("rangeonly", [le("price", 10)]))  # universal
        return m

    def test_match(self, matcher):
        got = matcher.match(Event({"movie": "gd", "price": 8}))
        assert sorted(got) == ["any", "cheap", "rangeonly"]

    def test_access_predicate_gates_checking(self, matcher):
        # Event without the access value: clustered subs not even checked.
        got = matcher.match(Event({"movie": "other", "price": 8}))
        assert got == ["rangeonly"]

    def test_universal_list_checked_every_event(self, matcher):
        assert matcher.match(Event({"price": 3})) == ["rangeonly"]
        assert matcher.match(Event({"price": 30})) == []

    def test_removal(self, matcher):
        matcher.remove("any")
        matcher.remove("rangeonly")
        got = matcher.match(Event({"movie": "gd", "price": 8}))
        assert got == ["cheap"]

    def test_cluster_list_pruned_on_removal(self):
        m = PropagationMatcher()
        m.add(Subscription("s", [eq("x", 1)]))
        m.remove("s")
        assert m.cluster_list_sizes() == {}

    def test_access_predicate_bits_not_rechecked(self, matcher):
        # "any" has only its access predicate: residual size 0 cluster.
        matcher.match(Event({"movie": "gd"}))
        sizes = matcher.cluster_list_sizes()
        assert sizes[("movie", "gd")] == 3

    def test_stats_names(self):
        assert PropagationMatcher().stats()["name"] == "propagation"
        wp = PrefetchPropagationMatcher()
        assert wp.stats()["name"] == "propagation-wp"
        assert wp.stats()["vectorized"] is True


class TestSharedPredicates:
    def test_same_predicate_same_bit_across_subs(self):
        m = PropagationMatcher()
        m.add(Subscription("a", [eq("x", 1), le("y", 5)]))
        m.add(Subscription("b", [eq("x", 1), le("y", 5)]))
        assert len(m.registry) == 2  # deduplicated
        got = m.match(Event({"x": 1, "y": 3}))
        assert sorted(got) == ["a", "b"]

    def test_bits_freed_after_last_reference(self):
        m = PropagationMatcher()
        m.add(Subscription("a", [eq("x", 1)]))
        m.add(Subscription("b", [eq("x", 1)]))
        m.remove("a")
        assert len(m.registry) == 1
        m.remove("b")
        assert len(m.registry) == 0
