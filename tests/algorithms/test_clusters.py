"""Cluster storage and the two check kernels."""

import numpy as np
import pytest

from repro.algorithms import Cluster, ClusterList
from repro.core.errors import ClusteringError


def bits_with(set_indexes, size=32):
    arr = np.zeros(size, dtype=np.uint8)
    arr[list(set_indexes)] = 1
    return arr


class TestClusterMaintenance:
    def test_add_and_len(self):
        c = Cluster(size=2)
        c.add("s1", [0, 1])
        c.add("s2", [2, 3])
        assert len(c) == 2
        assert "s1" in c and "s3" not in c

    def test_wrong_ref_count_rejected(self):
        c = Cluster(size=2)
        with pytest.raises(ClusteringError):
            c.add("s1", [0])

    def test_duplicate_member_rejected(self):
        c = Cluster(size=1)
        c.add("s1", [0])
        with pytest.raises(ClusteringError):
            c.add("s1", [1])

    def test_negative_size_rejected(self):
        with pytest.raises(ClusteringError):
            Cluster(size=-1)

    def test_remove_swaps_with_last(self):
        c = Cluster(size=1)
        for i in range(4):
            c.add(f"s{i}", [i])
        refs = c.remove("s1")
        assert refs.tolist() == [1]
        assert len(c) == 3
        # the last member took s1's column; refs must still be correct
        assert c.refs_of("s3").tolist() == [3]

    def test_remove_unknown_raises(self):
        c = Cluster(size=1)
        with pytest.raises(ClusteringError):
            c.remove("nope")

    def test_growth_beyond_initial_capacity(self):
        c = Cluster(size=3)
        for i in range(100):
            c.add(f"s{i}", [i % 5, (i + 1) % 5, (i + 2) % 5])
        assert len(c) == 100
        assert c.refs_of("s73").tolist() == [73 % 5, 74 % 5, 75 % 5]

    def test_ids_snapshot(self):
        c = Cluster(size=0)
        c.add("a", [])
        c.add("b", [])
        assert c.ids() == ("a", "b")

    def test_memory_bytes_positive(self):
        c = Cluster(size=2)
        c.add("s", [0, 1])
        assert c.memory_bytes() > 0


class TestKernels:
    @pytest.fixture
    def cluster(self):
        c = Cluster(size=2)
        c.add("both", [0, 1])     # needs bits 0 and 1
        c.add("first", [0, 5])    # needs bits 0 and 5
        c.add("none", [6, 7])     # needs bits 6 and 7
        return c

    def test_scalar_matches(self, cluster):
        bits = bits_with({0, 1, 5})
        out = []
        cluster.match_scalar(bits, out)
        assert sorted(out) == ["both", "first"]

    def test_vector_matches(self, cluster):
        bits = bits_with({0, 1, 5})
        out = []
        cluster.match_vector(bits, out)
        assert sorted(out) == ["both", "first"]

    @pytest.mark.parametrize("size", [1, 2, 3, 4, 7])
    def test_kernels_agree_on_random_data(self, size):
        """Sizes 1–3 exercise the specialized unrolled kernels, larger
        sizes the generic nested loop; all must agree with the vector
        kernel."""
        rng = np.random.default_rng(size)
        c = Cluster(size=size)
        for i in range(200):
            c.add(i, rng.integers(0, 64, size=size).tolist())
        bits = (rng.random(64) < 0.5).astype(np.uint8)
        a, b = [], []
        assert c.match_scalar(bits, a) == c.match_vector(bits, b)
        assert sorted(a) == sorted(b)

    @pytest.mark.parametrize("size", [1, 2, 3])
    def test_specialized_kernels_match_brute_force(self, size):
        rng = np.random.default_rng(10 + size)
        c = Cluster(size=size)
        refs = {}
        for i in range(50):
            r = rng.integers(0, 32, size=size).tolist()
            refs[i] = r
            c.add(i, r)
        bits = (rng.random(32) < 0.4).astype(np.uint8)
        out = []
        c.match_scalar(bits, out)
        expected = [i for i, r in refs.items() if all(bits[b] for b in r)]
        assert sorted(out) == sorted(expected)

    def test_scalar_counts_checks(self, cluster):
        bits = bits_with(set())
        out = []
        checks = cluster.match_scalar(bits, out)
        assert out == [] and checks == 3  # every member is one check

    def test_vector_counts_checks(self, cluster):
        bits = bits_with(set())
        out = []
        checks = cluster.match_vector(bits, out)
        assert out == [] and checks == 3

    def test_size_zero_cluster_always_matches(self):
        c = Cluster(size=0)
        c.add("s1", [])
        out = []
        c.match_scalar(bits_with(set()), out)
        assert out == ["s1"]
        out2 = []
        c.match_vector(bits_with(set()), out2)
        assert out2 == ["s1"]

    def test_empty_cluster(self):
        c = Cluster(size=2)
        out = []
        assert c.match_scalar(bits_with({0}), out) == 0
        assert c.match_vector(bits_with({0}), out) == 0
        assert out == []


class TestClusterList:
    def test_groups_by_size(self):
        lst = ClusterList("key")
        lst.add("a", [0])
        lst.add("b", [0, 1])
        lst.add("c", [2])
        sizes = [c.size for c in lst.clusters()]
        assert sizes == [1, 2]
        assert len(lst) == 3

    def test_remove_prunes_empty_cluster(self):
        lst = ClusterList()
        lst.add("a", [0])
        lst.remove("a", 1)
        assert len(lst) == 0 and not lst
        assert list(lst.clusters()) == []

    def test_remove_wrong_size_raises(self):
        lst = ClusterList()
        lst.add("a", [0])
        with pytest.raises(ClusteringError):
            lst.remove("a", 2)

    def test_match_across_size_groups(self):
        lst = ClusterList()
        lst.add("one", [0])
        lst.add("two", [0, 1])
        lst.add("zero", [])
        bits = bits_with({0})
        out = []
        lst.match(bits, out, vectorized=False)
        assert sorted(out) == ["one", "zero"]
        out2 = []
        lst.match(bits, out2, vectorized=True)
        assert sorted(out2) == ["one", "zero"]

    def test_memory_bytes(self):
        lst = ClusterList()
        lst.add("a", [0, 1, 2])
        assert lst.memory_bytes() > 0
