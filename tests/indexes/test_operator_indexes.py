"""Per-operator predicate indexes: hash, not-equal, and both ordered kinds."""

import pytest

from repro.core import Operator
from repro.indexes import (
    BTreeOrderedIndex,
    EqualityHashIndex,
    IndexKind,
    NotEqualIndex,
    SortedArrayOrderedIndex,
    make_ordered_index,
)


class TestEqualityHashIndex:
    def test_single_probe(self):
        idx = EqualityHashIndex()
        idx.insert(5, 100)
        assert list(idx.satisfied(5)) == [100]
        assert list(idx.satisfied(6)) == []

    def test_lookup_fast_path(self):
        idx = EqualityHashIndex()
        idx.insert("gd", 7)
        assert idx.lookup("gd") == 7
        assert idx.lookup("other") == -1

    def test_duplicate_constant_rejected(self):
        idx = EqualityHashIndex()
        idx.insert(5, 1)
        with pytest.raises(KeyError):
            idx.insert(5, 2)

    def test_remove(self):
        idx = EqualityHashIndex()
        idx.insert(5, 1)
        assert idx.remove(5) == 1
        assert len(idx) == 0 and not idx

    def test_entries(self):
        idx = EqualityHashIndex()
        idx.insert(1, 10)
        idx.insert(2, 20)
        assert dict(idx.entries()) == {1: 10, 2: 20}


class TestNotEqualIndex:
    def test_all_but_matching(self):
        idx = NotEqualIndex()
        idx.insert(1, 10)
        idx.insert(2, 20)
        idx.insert(3, 30)
        assert sorted(idx.satisfied(2)) == [10, 30]

    def test_no_exclusion(self):
        idx = NotEqualIndex()
        idx.insert(1, 10)
        assert list(idx.satisfied(99)) == [10]

    def test_remove_and_len(self):
        idx = NotEqualIndex()
        idx.insert(1, 10)
        assert idx.remove(1) == 10 and len(idx) == 0

    def test_duplicate_rejected(self):
        idx = NotEqualIndex()
        idx.insert(1, 10)
        with pytest.raises(KeyError):
            idx.insert(1, 11)


#: Both ordered-index implementations must behave identically.
KINDS = [IndexKind.SORTED_ARRAY, IndexKind.BTREE]


@pytest.mark.parametrize("kind", KINDS)
class TestOrderedIndexes:
    def _loaded(self, op, kind):
        idx = make_ordered_index(op, kind)
        # constants 10, 20, 30 with bits 1, 2, 3
        for c, b in [(20, 2), (10, 1), (30, 3)]:
            idx.insert(c, b)
        return idx

    def test_lt_reports_strictly_greater_constants(self, kind):
        idx = self._loaded(Operator.LT, kind)
        # event 15 satisfies x < 20 and x < 30
        assert sorted(idx.satisfied(15)) == [2, 3]
        # boundary: event 20 does NOT satisfy x < 20
        assert sorted(idx.satisfied(20)) == [3]

    def test_le_boundary_inclusive(self, kind):
        idx = self._loaded(Operator.LE, kind)
        assert sorted(idx.satisfied(20)) == [2, 3]
        assert sorted(idx.satisfied(21)) == [3]

    def test_ge_boundary_inclusive(self, kind):
        idx = self._loaded(Operator.GE, kind)
        assert sorted(idx.satisfied(20)) == [1, 2]
        assert sorted(idx.satisfied(19)) == [1]

    def test_gt_strict(self, kind):
        idx = self._loaded(Operator.GT, kind)
        assert sorted(idx.satisfied(20)) == [1]
        assert sorted(idx.satisfied(31)) == [1, 2, 3]

    def test_extremes(self, kind):
        idx = self._loaded(Operator.LT, kind)
        assert sorted(idx.satisfied(0)) == [1, 2, 3]
        assert sorted(idx.satisfied(100)) == []

    def test_remove(self, kind):
        idx = self._loaded(Operator.LE, kind)
        assert idx.remove(20) == 2
        assert sorted(idx.satisfied(5)) == [1, 3]
        assert len(idx) == 2

    def test_remove_missing(self, kind):
        idx = self._loaded(Operator.LE, kind)
        with pytest.raises(KeyError):
            idx.remove(99)

    def test_duplicate_rejected(self, kind):
        idx = self._loaded(Operator.LE, kind)
        with pytest.raises(KeyError):
            idx.insert(20, 9)

    def test_entries_complete(self, kind):
        idx = self._loaded(Operator.GE, kind)
        assert sorted(idx.entries()) == [(10, 1), (20, 2), (30, 3)]

    def test_float_constants(self, kind):
        idx = make_ordered_index(Operator.LE, kind)
        idx.insert(1.5, 7)
        assert list(idx.satisfied(1.2)) == [7]
        assert list(idx.satisfied(1.6)) == []


class TestOrderedValidation:
    def test_eq_rejected(self):
        from repro.core.errors import InvalidPredicateError

        with pytest.raises(InvalidPredicateError):
            SortedArrayOrderedIndex(Operator.EQ)
        with pytest.raises(InvalidPredicateError):
            BTreeOrderedIndex(Operator.NE)

    def test_factory_kinds(self):
        assert isinstance(
            make_ordered_index(Operator.LT, IndexKind.BTREE), BTreeOrderedIndex
        )
        assert isinstance(
            make_ordered_index(Operator.LT), SortedArrayOrderedIndex
        )
