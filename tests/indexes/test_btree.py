"""B-tree structure, scans and invariants."""

import random

import pytest

from repro.indexes import BTree


class TestBasics:
    def test_insert_get(self):
        t = BTree(order=3)
        t.insert(5, "a")
        assert t.get(5) == "a"
        assert t.get(6) is None
        assert t.get(6, "dflt") == "dflt"

    def test_contains_and_len(self):
        t = BTree(order=3)
        for k in range(20):
            t.insert(k, k)
        assert len(t) == 20
        assert 7 in t and 99 not in t

    def test_duplicate_rejected(self):
        t = BTree(order=3)
        t.insert(1, "a")
        with pytest.raises(KeyError):
            t.insert(1, "b")

    def test_duplicate_rejected_even_at_split_boundary(self):
        t = BTree(order=2)
        for k in range(20):
            t.insert(k, k)
        for k in range(20):
            with pytest.raises(KeyError):
                t.insert(k, k)

    def test_order_below_two_rejected(self):
        with pytest.raises(ValueError):
            BTree(order=1)


class TestScans:
    @pytest.fixture
    def tree(self):
        t = BTree(order=3)
        for k in [5, 1, 9, 3, 7, 2, 8, 4, 6, 0]:
            t.insert(k, k * 10)
        return t

    def test_items_sorted(self, tree):
        assert [k for k, _v in tree.items()] == list(range(10))

    def test_items_greater_exclusive(self, tree):
        assert [k for k, _ in tree.items_greater(4)] == [5, 6, 7, 8, 9]

    def test_items_greater_inclusive(self, tree):
        assert [k for k, _ in tree.items_greater(4, inclusive=True)] == [4, 5, 6, 7, 8, 9]

    def test_items_greater_between_keys(self, tree):
        tree2 = BTree()
        for k in (10, 20, 30):
            tree2.insert(k, k)
        assert [k for k, _ in tree2.items_greater(15)] == [20, 30]

    def test_items_less(self, tree):
        assert [k for k, _ in tree.items_less(3)] == [0, 1, 2]
        assert [k for k, _ in tree.items_less(3, inclusive=True)] == [0, 1, 2, 3]

    def test_scan_payloads(self, tree):
        assert dict(tree.items())[7] == 70


class TestDeletion:
    def test_delete_returns_payload(self):
        t = BTree(order=3)
        t.insert(1, "a")
        assert t.delete(1) == "a"
        assert len(t) == 0 and 1 not in t

    def test_delete_missing_raises(self):
        t = BTree(order=3)
        t.insert(1, "a")
        with pytest.raises(KeyError):
            t.delete(2)

    @pytest.mark.parametrize("order", [2, 3, 8])
    def test_random_insert_delete_matches_dict(self, order):
        rng = random.Random(order)
        t = BTree(order=order)
        model = {}
        for step in range(2000):
            k = rng.randint(0, 200)
            if k in model and rng.random() < 0.5:
                assert t.delete(k) == model.pop(k)
            elif k not in model:
                v = rng.random()
                t.insert(k, v)
                model[k] = v
        assert len(t) == len(model)
        assert list(t.items()) == sorted(model.items())
        t.check_invariants()

    def test_delete_everything(self):
        t = BTree(order=2)
        keys = list(range(100))
        random.Random(9).shuffle(keys)
        for k in keys:
            t.insert(k, k)
        random.Random(10).shuffle(keys)
        for k in keys:
            t.delete(k)
        assert len(t) == 0
        assert list(t.items()) == []

    def test_invariants_under_growth(self):
        t = BTree(order=2)
        for k in range(500):
            t.insert(k, k)
            if k % 97 == 0:
                t.check_invariants()
        t.check_invariants()
