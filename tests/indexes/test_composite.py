"""PredicateIndexSet: phase-1 evaluation against a brute-force reference."""

import random

import pytest

from repro.core import BitVector, Event, Operator, Predicate
from repro.indexes import IndexKind, PredicateIndexSet


def brute_force_satisfied(preds_with_bits, event):
    """Reference: which bits should be set after evaluating *event*."""
    out = set()
    for pred, bit in preds_with_bits:
        v = event.get(pred.attribute)
        if (v is not None or event.has(pred.attribute)) and pred.matches(v):
            out.add(bit)
    return out


@pytest.mark.parametrize("kind", [IndexKind.SORTED_ARRAY, IndexKind.BTREE])
class TestEvaluate:
    def test_matches_brute_force_on_random_predicates(self, kind):
        rng = random.Random(3)
        idx = PredicateIndexSet(kind)
        bits = BitVector()
        preds = []
        for i in range(300):
            p = Predicate(
                f"a{rng.randint(0, 5)}",
                rng.choice(list(Operator)),
                rng.randint(1, 12),
            )
            if any(p == q for q, _ in preds):
                continue
            bit = bits.allocate()
            idx.insert(p, bit)
            preds.append((p, bit))
        for _ in range(60):
            event = Event(
                {f"a{j}": rng.randint(1, 12) for j in rng.sample(range(6), 4)}
            )
            bits.reset()
            n = idx.evaluate(event, bits)
            expected = brute_force_satisfied(preds, event)
            assert set(bits.set_indexes()) == expected
            assert n == len(expected)

    def test_string_values_skip_range_indexes(self, kind):
        idx = PredicateIndexSet(kind)
        bits = BitVector()
        b_le = bits.allocate()
        b_eq = bits.allocate()
        idx.insert(Predicate("x", Operator.LE, 10), b_le)
        idx.insert(Predicate("x", Operator.EQ, "hello"), b_eq)
        bits.reset()
        idx.evaluate(Event({"x": "hello"}), bits)
        assert set(bits.set_indexes()) == {b_eq}


class TestMaintenance:
    def test_insert_remove_roundtrip(self):
        idx = PredicateIndexSet()
        p = Predicate("x", Operator.GE, 5)
        idx.insert(p, 42)
        assert idx.predicate_count == 1
        assert idx.remove(p) == 42
        assert idx.predicate_count == 0
        assert idx.attributes == ()

    def test_remove_unknown_raises(self):
        idx = PredicateIndexSet()
        with pytest.raises(KeyError):
            idx.remove(Predicate("x", Operator.EQ, 1))

    def test_empty_structures_pruned(self):
        idx = PredicateIndexSet()
        p1 = Predicate("x", Operator.EQ, 1)
        p2 = Predicate("x", Operator.LE, 2)
        idx.insert(p1, 0)
        idx.insert(p2, 1)
        idx.remove(p1)
        assert idx.operators_on("x") == (Operator.LE,)
        idx.remove(p2)
        assert "x" not in idx.attributes

    def test_entries_iteration(self):
        idx = PredicateIndexSet()
        idx.insert(Predicate("x", Operator.EQ, 1), 0)
        idx.insert(Predicate("y", Operator.GT, 2), 1)
        got = {(a, op, v, b) for a, op, v, b in idx.entries()}
        assert got == {
            ("x", Operator.EQ, 1, 0),
            ("y", Operator.GT, 2, 1),
        }

    def test_evaluate_unknown_attribute_is_noop(self):
        idx = PredicateIndexSet()
        bits = BitVector()
        idx.insert(Predicate("x", Operator.EQ, 1), bits.allocate())
        bits.reset()
        assert idx.evaluate(Event({"zzz": 1}), bits) == 0

    def test_len(self):
        idx = PredicateIndexSet()
        idx.insert(Predicate("x", Operator.EQ, 1), 0)
        assert len(idx) == 1
