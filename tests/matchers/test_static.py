"""The static matcher: greedy plan, rebuild, frozen-plan inserts."""

import pytest

from repro.clustering import UniformStatistics
from repro.core import Event, Subscription, eq, le
from repro.matchers import StaticMatcher


def build(n=80):
    m = StaticMatcher(UniformStatistics(default_domain=10))
    subs = []
    for i in range(n):
        s = Subscription(
            f"s{i}",
            [eq("f1", i % 10), eq("f2", i % 7), eq(f"x{i % 4}", i % 10), le("p", i)],
        )
        subs.append(s)
        m.add(s)
    return m, subs


class TestPrePlan:
    def test_natural_clustering_before_rebuild(self):
        m, _subs = build(10)
        assert m.plan is None
        # everything clustered under singleton schemas
        assert all(len(s) == 1 for s in m.table_sizes())

    def test_matching_correct_before_rebuild(self):
        m, subs = build(20)
        event = Event({"f1": 3, "f2": 3, "x3": 3, "p": 100})
        expected = sorted(s.id for s in subs if s.is_satisfied_by(event))
        assert sorted(m.match(event)) == expected


class TestRebuild:
    def test_rebuild_creates_pair_table(self):
        m, _ = build()
        plan = m.rebuild()
        assert ("f1", "f2") in plan.schemas
        assert m.table_sizes().get(("f1", "f2"), 0) > 0

    def test_rebuild_preserves_matching(self):
        m, subs = build()
        events = [
            Event({"f1": i % 10, "f2": i % 7, "x1": 5, "x2": 3, "p": 50})
            for i in range(12)
        ]
        before = [sorted(m.match(e)) for e in events]
        m.rebuild()
        after = [sorted(m.match(e)) for e in events]
        assert before == after

    def test_add_after_rebuild_uses_plan(self):
        m, _ = build()
        m.rebuild()
        m.add(Subscription("new", [eq("f1", 1), eq("f2", 2), le("p", 5)]))
        schema, _key, _size = m.placement_of("new")
        assert schema == ("f1", "f2")

    def test_rebuild_twice_stable(self):
        m, _ = build()
        p1 = m.rebuild()
        p2 = m.rebuild()
        assert set(p1.schemas) == set(p2.schemas)

    def test_remove_after_rebuild(self):
        m, subs = build(30)
        m.rebuild()
        for s in subs[:10]:
            m.remove(s.id)
        assert len(m) == 20
        event = Event({"f1": 3, "f2": 3, "x3": 3, "p": 100})
        expected = sorted(s.id for s in subs[10:] if s.is_satisfied_by(event))
        assert sorted(m.match(event)) == expected

    def test_stats_report_plan(self):
        m, _ = build()
        m.rebuild()
        stats = m.stats()
        assert "plan_schemas" in stats and "plan_matching_cost" in stats

    def test_no_equality_subscription_universal(self):
        m = StaticMatcher(UniformStatistics())
        m.add(Subscription("r", [le("p", 10)]))
        m.rebuild()
        assert m.match(Event({"p": 5})) == ["r"]
        assert m.stats()["universal_members"] == 1
