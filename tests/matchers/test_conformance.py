"""Engine conformance battery: the Matcher contract, per engine.

One parametrized suite over every registered engine, so a new engine
automatically inherits the full behavioural contract.
"""

import pytest

from repro.bench.harness import uniform_statistics_for
from repro.core import (
    DuplicateSubscriptionError,
    Event,
    Subscription,
    UnknownSubscriptionError,
    eq,
    ge,
    gt,
    le,
    lt,
    ne,
)
from repro.matchers import MATCHER_FACTORIES
from repro.workload import w0

ENGINES = sorted(MATCHER_FACTORIES)


def build(engine):
    if engine == "static":
        return MATCHER_FACTORIES[engine](uniform_statistics_for(w0()))
    return MATCHER_FACTORIES[engine]()


@pytest.fixture(params=ENGINES)
def engine(request):
    return request.param


@pytest.fixture
def matcher(engine):
    return build(engine)


class TestContract:
    def test_empty_matcher_matches_nothing(self, matcher):
        assert matcher.match(Event({"x": 1})) == []
        assert len(matcher) == 0

    def test_single_predicate_each_operator(self, matcher):
        matcher.add(Subscription("lt", [lt("v", 10)]))
        matcher.add(Subscription("le", [le("v", 10)]))
        matcher.add(Subscription("eq", [eq("v", 10)]))
        matcher.add(Subscription("ne", [ne("v", 10)]))
        matcher.add(Subscription("ge", [ge("v", 10)]))
        matcher.add(Subscription("gt", [gt("v", 10)]))
        assert sorted(matcher.match(Event({"v": 10}))) == ["eq", "ge", "le"]
        assert sorted(matcher.match(Event({"v": 9}))) == ["le", "lt", "ne"]
        assert sorted(matcher.match(Event({"v": 11}))) == ["ge", "gt", "ne"]

    def test_conjunction_requires_all(self, matcher):
        matcher.add(Subscription("s", [eq("a", 1), eq("b", 2), le("c", 3)]))
        assert matcher.match(Event({"a": 1, "b": 2, "c": 3})) == ["s"]
        assert matcher.match(Event({"a": 1, "b": 2, "c": 4})) == []
        assert matcher.match(Event({"a": 1, "b": 2})) == []

    def test_missing_attribute_never_matches(self, matcher):
        matcher.add(Subscription("s", [eq("needed", 1)]))
        assert matcher.match(Event({"other": 1})) == []

    def test_string_values(self, matcher):
        matcher.add(Subscription("s", [eq("movie", "groundhog day")]))
        assert matcher.match(Event({"movie": "groundhog day"})) == ["s"]
        assert matcher.match(Event({"movie": "other"})) == []

    def test_duplicate_id_rejected(self, matcher):
        matcher.add(Subscription("s", [eq("x", 1)]))
        with pytest.raises(DuplicateSubscriptionError):
            matcher.add(Subscription("s", [eq("x", 2)]))
        # and the original stays intact
        assert matcher.match(Event({"x": 1})) == ["s"]

    def test_remove_unknown_raises(self, matcher):
        with pytest.raises(UnknownSubscriptionError):
            matcher.remove("ghost")

    def test_remove_returns_subscription_and_stops_matching(self, matcher):
        sub = Subscription("s", [eq("x", 1)])
        matcher.add(sub)
        removed = matcher.remove("s")
        assert removed.id == "s"
        assert matcher.match(Event({"x": 1})) == []
        assert len(matcher) == 0

    def test_readd_after_remove(self, matcher):
        sub = Subscription("s", [eq("x", 1), le("y", 5)])
        matcher.add(sub)
        matcher.remove("s")
        matcher.add(sub)
        assert matcher.match(Event({"x": 1, "y": 3})) == ["s"]

    def test_identical_predicates_distinct_ids(self, matcher):
        matcher.add(Subscription("a", [eq("x", 1)]))
        matcher.add(Subscription("b", [eq("x", 1)]))
        assert sorted(matcher.match(Event({"x": 1}))) == ["a", "b"]
        matcher.remove("a")
        assert matcher.match(Event({"x": 1})) == ["b"]

    def test_no_duplicates_in_result(self, matcher):
        matcher.add(Subscription("s", [eq("a", 1), le("a", 5)]))
        got = matcher.match(Event({"a": 1}))
        assert got == ["s"]

    def test_int_ids_supported(self, matcher):
        matcher.add(Subscription(7, [eq("x", 1)]))
        assert matcher.match(Event({"x": 1})) == [7]
        assert matcher.remove(7).id == 7

    def test_stats_has_name_and_count(self, matcher, engine):
        matcher.add(Subscription("s", [eq("x", 1)]))
        stats = matcher.stats()
        assert stats["name"] == engine
        assert stats["subscriptions"] == 1

    def test_match_all_batch(self, matcher):
        matcher.add(Subscription("s", [eq("x", 1)]))
        assert matcher.match_all([Event({"x": 1}), Event({"x": 2})]) == [["s"], []]

    def test_float_and_int_values_interchangeable(self, matcher):
        matcher.add(Subscription("s", [le("p", 10)]))
        assert matcher.match(Event({"p": 9.5})) == ["s"]
        assert matcher.match(Event({"p": 10.5})) == []
