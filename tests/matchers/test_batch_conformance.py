"""Batch conformance battery: ``match_batch`` == per-event ``match``.

One parametrized suite over every registered engine, pinning the batch
API's contract: for any event sequence, ``match_batch(events)`` returns
exactly ``[match(e) for e in events]`` up to within-event ordering, and
equals the oracle.  Engines with a real vectorized kernel and engines on
the default per-event fallback face the same battery, so a new engine
(or a new kernel) inherits the contract automatically.
"""

import random

import pytest

from repro.bench.harness import uniform_statistics_for
from repro.core import Event, Operator, Predicate, Subscription, eq, ge, le, ne
from repro.core.errors import InvalidPredicateError
from repro.matchers import MATCHER_FACTORIES
from repro.workload import w0

ENGINES = sorted(MATCHER_FACTORIES)


def build(engine):
    if engine == "static":
        return MATCHER_FACTORIES[engine](uniform_statistics_for(w0()))
    return MATCHER_FACTORIES[engine]()


def norm(ids):
    """Order-insensitive view of one event's match list."""
    return sorted(ids, key=repr)


@pytest.fixture(params=ENGINES)
def engine(request):
    return request.param


@pytest.fixture
def matcher(engine):
    return build(engine)


def _random_workload(seed, n_subs=120, n_events=150):
    """Mixed-type subscriptions and events over a small value domain."""
    rng = random.Random(seed)
    attrs = list("abcde")
    ops = list(Operator)

    def value():
        r = rng.random()
        if r < 0.5:
            return rng.randint(0, 8)
        if r < 0.75:
            return round(rng.uniform(0, 8), 1)
        if r < 0.9:
            return rng.choice(["x", "y", "z"])
        return rng.choice([2**60 + 1, float("inf"), float("nan"), 5.0])

    subs = []
    while len(subs) < n_subs:
        preds = []
        for a in rng.sample(attrs, rng.randint(1, 3)):
            try:
                preds.append(Predicate(a, rng.choice(ops), value()))
            except InvalidPredicateError:
                pass
        if preds:
            subs.append(Subscription(f"s{len(subs)}", preds))
    events = []
    while len(events) < n_events:
        pairs = {}
        for a in rng.sample(attrs, rng.randint(1, 4)):
            pairs[a] = value()
        events.append(Event(pairs))
    return subs, events


class TestBatchEqualsScalar:
    def test_differential_vs_scalar_and_oracle(self, matcher, engine):
        """The core claim, on a mixed-type random workload."""
        subs, events = _random_workload(seed=3)
        oracle = build("oracle")
        for s in subs:
            matcher.add(s)
            oracle.add(s)
        scalar_twin = build(engine)
        for s in subs:
            scalar_twin.add(s)
        expected = [norm(oracle.match(e)) for e in events]
        scalar = [norm(scalar_twin.match(e)) for e in events]
        batch = [norm(ids) for ids in matcher.match_batch(events)]
        assert scalar == expected
        assert batch == expected

    def test_empty_batch(self, matcher):
        matcher.add(Subscription("s", [eq("x", 1)]))
        assert matcher.match_batch([]) == []

    def test_batch_of_one(self, matcher):
        matcher.add(Subscription("s", [eq("x", 1), le("y", 5)]))
        assert matcher.match_batch([Event({"x": 1, "y": 3})]) == [["s"]]
        assert matcher.match_batch([Event({"x": 1, "y": 9})]) == [[]]

    def test_duplicate_events_get_identical_results(self, matcher):
        matcher.add(Subscription("a", [ge("v", 3)]))
        matcher.add(Subscription("b", [ne("v", 4)]))
        event = Event({"v": 5})
        results = matcher.match_batch([event, event, event])
        assert len(results) == 3
        assert [norm(r) for r in results] == [["a", "b"]] * 3

    def test_events_missing_every_attribute(self, matcher):
        matcher.add(Subscription("s", [eq("x", 1)]))
        batch = [Event({"other": 7}), Event({"another": 0})]
        assert matcher.match_batch(batch) == [[], []]

    def test_mid_batch_subscribe_visible_to_next_batch(self, matcher):
        """Churn between batches recompiles the kernel (registry epoch)."""
        matcher.add(Subscription("a", [eq("x", 1)]))
        events = [Event({"x": 1}), Event({"x": 2})]
        assert [norm(r) for r in matcher.match_batch(events)] == [["a"], []]
        matcher.add(Subscription("b", [eq("x", 2)]))
        assert [norm(r) for r in matcher.match_batch(events)] == [["a"], ["b"]]
        matcher.remove("a")
        assert [norm(r) for r in matcher.match_batch(events)] == [[], ["b"]]

    def test_unsubscribe_of_shared_predicate_between_batches(self, matcher):
        """Refcount-only churn (no structural epoch bump) must still
        change the association: the removed sub stops matching."""
        matcher.add(Subscription("a", [eq("x", 1)]))
        matcher.add(Subscription("b", [eq("x", 1)]))
        events = [Event({"x": 1})]
        assert norm(matcher.match_batch(events)[0]) == ["a", "b"]
        matcher.remove("a")
        assert norm(matcher.match_batch(events)[0]) == ["b"]

    def test_split_invariance_smoke(self, matcher):
        """match_batch(a + b) == match_batch(a) + match_batch(b)."""
        subs, events = _random_workload(seed=9, n_subs=60, n_events=64)
        for s in subs:
            matcher.add(s)
        whole = [norm(r) for r in matcher.match_batch(events)]
        for cut in (0, 1, 17, 63, 64):
            halves = matcher.match_batch(events[:cut]) + matcher.match_batch(
                events[cut:]
            )
            assert [norm(r) for r in halves] == whole

    def test_match_all_routes_through_batch(self, matcher):
        matcher.add(Subscription("s", [eq("x", 1)]))
        events = [Event({"x": 1}), Event({"x": 2}), Event({"x": 1})]
        assert matcher.match_all(events) == matcher.match_batch(events)
