"""Placement plumbing shared by the clustered matchers."""

import pytest

from repro.clustering import UniformStatistics
from repro.core import Event, Subscription, eq, le
from repro.core.errors import ClusteringError
from repro.matchers import StaticMatcher
from repro.matchers.clustered import ClusteredMatcher


def matcher():
    return ClusteredMatcher(UniformStatistics(default_domain=10))


class TestPlacement:
    def test_no_tables_means_universal(self):
        m = matcher()
        m.add(Subscription("s", [eq("a", 1)]))
        # base class never creates tables on its own
        assert m.stats()["universal_members"] == 1

    def test_placement_of(self):
        m = matcher()
        m.config.ensure_table(("a",))
        m.add(Subscription("s", [eq("a", 1), le("p", 5)]))
        schema, key, size = m.placement_of("s")
        assert schema == ("a",) and key == (1,) and size == 1

    def test_move_subscription(self):
        m = matcher()
        m.config.ensure_table(("a",))
        m.config.ensure_table(("a", "b"))
        m.add(Subscription("s", [eq("a", 1), eq("b", 2), le("p", 5)]))
        before_schema, _k, _s = m.placement_of("s")
        target = ("a",) if before_schema != ("a",) else ("a", "b")
        m.move_subscription("s", target)
        schema, _key, size = m.placement_of("s")
        assert schema == target
        # moving must not change match results
        assert m.match(Event({"a": 1, "b": 2, "p": 3})) == ["s"]

    def test_move_to_universal(self):
        m = matcher()
        m.config.ensure_table(("a",))
        m.add(Subscription("s", [eq("a", 1)]))
        m.move_subscription("s", None)
        assert m.stats()["universal_members"] == 1
        assert m.match(Event({"a": 1})) == ["s"]

    def test_residual_excludes_access_bits(self):
        m = matcher()
        m.config.ensure_table(("a", "b"))
        m.add(Subscription("s", [eq("a", 1), eq("b", 2), le("p", 5)]))
        _schema, _key, size = m.placement_of("s")
        assert size == 1  # only the range predicate remains

    def test_equality_residuals_before_inequalities(self):
        m = matcher()
        m.config.ensure_table(("a",))
        m.add(Subscription("s", [le("p", 5), eq("a", 1), eq("b", 2)]))
        # residual is [eq(b), le(p)] — the eq bit must come first
        table = m.config.table(("a",))
        lst = table.entry((1,))
        cluster = next(iter(lst.clusters()))
        refs = cluster.refs_of("s")
        from repro.core import Predicate, Operator

        eq_bit = m.registry.slot(eq("b", 2))
        le_bit = m.registry.slot(le("p", 5))
        assert refs.tolist() == [eq_bit, le_bit]

    def test_table_sizes(self):
        m = matcher()
        m.config.ensure_table(("a",))
        m.add(Subscription("s1", [eq("a", 1)]))
        m.add(Subscription("s2", [eq("a", 2)]))
        assert m.table_sizes() == {("a",): 2}

    def test_displaced_table_missing_raises(self):
        m = matcher()
        m.config.ensure_table(("a",))
        m.add(Subscription("s", [eq("a", 1)]))
        m.config.drop_table(("a",))
        with pytest.raises(ClusteringError):
            m.remove("s")

    def test_failed_place_rolls_back_predicates(self):
        class Exploding(StaticMatcher):
            def _place(self, sub, slots):
                raise RuntimeError("boom")

        m = Exploding(UniformStatistics())
        with pytest.raises(RuntimeError):
            m.add(Subscription("s", [eq("a", 1)]))
        assert len(m.registry) == 0 and len(m) == 0
