"""Edge cases across engines: wide subscriptions, odd values, big batches."""

import random

import pytest

from repro.bench.harness import uniform_statistics_for
from repro.core import Event, OracleMatcher, Predicate, Operator, Subscription, eq, le
from repro.matchers import MATCHER_FACTORIES
from repro.workload import w0

ENGINES = [n for n in sorted(MATCHER_FACTORIES) if n != "oracle"]


def build(engine):
    if engine == "static":
        return MATCHER_FACTORIES[engine](uniform_statistics_for(w0()))
    return MATCHER_FACTORIES[engine]()


@pytest.mark.parametrize("engine", ENGINES)
class TestWideSubscriptions:
    def test_twenty_predicate_subscription(self, engine):
        """Beyond the paper's ten-or-fewer specialized methods: the
        generic path must handle arbitrarily wide conjunctions."""
        m = build(engine)
        preds = [eq(f"w{i:02d}", i) for i in range(10)]
        preds += [le(f"r{i:02d}", 100 + i) for i in range(10)]
        m.add(Subscription("wide", preds))
        full = {f"w{i:02d}": i for i in range(10)}
        full.update({f"r{i:02d}": 50 for i in range(10)})
        assert m.match(Event(full)) == ["wide"]
        # one miss anywhere kills it
        broken = dict(full)
        broken["w05"] = 99
        assert m.match(Event(broken)) == []

    def test_mixed_sizes_same_access_attribute(self, engine):
        m = build(engine)
        for size in range(1, 8):
            preds = [eq("shared", 1)] + [le(f"x{i}", 10) for i in range(size - 1)]
            m.add(Subscription(f"s{size}", preds))
        payload = {"shared": 1}
        payload.update({f"x{i}": 5 for i in range(7)})
        got = m.match(Event(payload))
        assert sorted(got) == [f"s{n}" for n in range(1, 8)]


@pytest.mark.parametrize("engine", ENGINES)
class TestValueEdgeCases:
    def test_negative_and_zero_values(self, engine):
        m = build(engine)
        m.add(Subscription("neg", [le("t", -10)]))
        m.add(Subscription("zero", [eq("t", 0)]))
        assert m.match(Event({"t": -20})) == ["neg"]
        assert m.match(Event({"t": 0})) == ["zero"]

    def test_float_boundaries(self, engine):
        m = build(engine)
        m.add(Subscription("s", [le("p", 0.1)]))
        assert m.match(Event({"p": 0.1})) == ["s"]
        assert m.match(Event({"p": 0.10000001})) == []

    def test_unicode_attributes_and_values(self, engine):
        m = build(engine)
        m.add(Subscription("s", [eq("ville", "Zürich"), le("prix", 100)]))
        assert m.match(Event({"ville": "Zürich", "prix": 50})) == ["s"]
        assert m.match(Event({"ville": "Genève", "prix": 50})) == []

    def test_large_integer_values(self, engine):
        m = build(engine)
        big = 10**15
        m.add(Subscription("s", [le("n", big)]))
        assert m.match(Event({"n": big - 1})) == ["s"]
        assert m.match(Event({"n": big + 1})) == []


class TestCrossEngineFuzzWideEvents:
    def test_agreement_on_wide_events(self, rng):
        """64-attribute events over many-predicate subscriptions."""
        attrs = [f"q{i:02d}" for i in range(64)]
        oracle = OracleMatcher()
        engines = {name: build(name) for name in ("counting", "propagation-wp", "dynamic")}
        for i in range(150):
            chosen = rng.sample(attrs, rng.randint(1, 12))
            preds = [
                Predicate(a, rng.choice(list(Operator)), rng.randint(1, 6))
                for a in chosen
            ]
            sub = Subscription(f"s{i}", preds)
            oracle.add(sub)
            for m in engines.values():
                m.add(sub)
        for _ in range(25):
            e = Event({a: rng.randint(1, 6) for a in attrs})
            expected = sorted(oracle.match(e), key=str)
            for name, m in engines.items():
                assert sorted(m.match(e), key=str) == expected, name
