"""The dynamic matcher: adaptation machinery."""

import random

import pytest

from repro.clustering import DynamicParams, EventStatistics
from repro.core import Event, Subscription, eq, le
from repro.matchers import DynamicMatcher


def fixed_pair_subs(n, seed=0):
    rng = random.Random(seed)
    out = []
    for i in range(n):
        out.append(
            Subscription(
                f"s{i}",
                [
                    eq("f1", rng.randint(1, 5)),
                    eq("f2", rng.randint(1, 5)),
                    eq(f"x{rng.randint(0, 3)}", rng.randint(1, 5)),
                ],
            )
        )
    return out


class TestLazySingletons:
    def test_singleton_tables_created_on_demand(self):
        m = DynamicMatcher()
        m.add(Subscription("s", [eq("a", 1), eq("b", 2)]))
        assert ("a",) in m.config and ("b",) in m.config

    def test_no_equality_goes_universal(self):
        m = DynamicMatcher()
        m.add(Subscription("s", [le("p", 10)]))
        assert m.stats()["universal_members"] == 1
        assert m.match(Event({"p": 3})) == ["s"]


class TestAdaptation:
    def test_creates_pair_table_under_load(self):
        params = DynamicParams(bm_max=2.0, b_create=16, maintenance_interval=64)
        m = DynamicMatcher(params=params)
        for s in fixed_pair_subs(600):
            m.add(s)
        assert ("f1", "f2") in m.config
        assert len(m.config.table(("f1", "f2"))) > 0
        assert m.maintenance["tables_created"] >= 1

    def test_matching_correct_after_adaptation(self):
        params = DynamicParams(bm_max=2.0, b_create=16, maintenance_interval=64)
        m = DynamicMatcher(params=params)
        subs = fixed_pair_subs(600)
        for s in subs:
            m.add(s)
        rng = random.Random(1)
        for _ in range(30):
            e = Event(
                {
                    "f1": rng.randint(1, 5),
                    "f2": rng.randint(1, 5),
                    **{f"x{j}": rng.randint(1, 5) for j in range(4)},
                }
            )
            expected = sorted(s.id for s in subs if s.is_satisfied_by(e))
            assert sorted(m.match(e)) == expected

    def test_benefit_margin_reported(self):
        m = DynamicMatcher()
        m.add(Subscription("s", [eq("a", 1)]))
        assert m.benefit_margin(("a",), (1,)) > 0
        assert m.benefit_margin(("a",), (99,)) == 0.0
        assert m.benefit_margin(("zz",), (1,)) == 0.0

    def test_sweep_drops_starved_multi_tables(self):
        params = DynamicParams(bm_max=2.0, b_create=8, b_delete=100,
                               maintenance_interval=32)
        m = DynamicMatcher(params=params)
        subs = fixed_pair_subs(600)
        for s in subs:
            m.add(s)
        assert any(len(schema) > 1 for schema in m.config.schemas())
        # remove almost everything; multi-attr tables starve below b_delete
        for s in subs[:-3]:
            m.remove(s.id)
        m.sweep()
        assert all(len(schema) == 1 for schema in m.config.schemas())
        # survivors still match
        e = Event({"f1": 1, "f2": 1, "x0": 1, "x1": 1, "x2": 1, "x3": 1})
        expected = sorted(s.id for s in subs[-3:] if s.is_satisfied_by(e))
        assert sorted(m.match(e)) == expected

    def test_singleton_tables_never_dropped(self):
        m = DynamicMatcher()
        s = Subscription("s", [eq("a", 1)])
        m.add(s)
        m.remove("s")
        m.sweep()
        assert ("a",) in m.config


class TestFreeze:
    def test_freeze_stops_table_creation(self):
        params = DynamicParams(bm_max=2.0, b_create=16, maintenance_interval=64)
        m = DynamicMatcher(params=params)
        m.freeze()
        assert m.frozen
        for s in fixed_pair_subs(600):
            m.add(s)
        assert all(len(schema) == 1 for schema in m.config.schemas())
        assert m.maintenance["tables_created"] == 0

    def test_frozen_still_matches_correctly(self):
        m = DynamicMatcher()
        m.freeze()
        subs = fixed_pair_subs(100)
        for s in subs:
            m.add(s)
        e = Event({"f1": 2, "f2": 3, "x0": 1, "x1": 2, "x2": 3, "x3": 4})
        expected = sorted(s.id for s in subs if s.is_satisfied_by(e))
        assert sorted(m.match(e)) == expected

    def test_unfreeze_resumes(self):
        params = DynamicParams(bm_max=2.0, b_create=16, maintenance_interval=64)
        m = DynamicMatcher(params=params)
        m.freeze()
        for s in fixed_pair_subs(600):
            m.add(s)
        m.unfreeze()
        m.sweep()
        assert m.maintenance["distributions"] >= 1


class TestObservation:
    def test_event_statistics_observed_with_sampling(self):
        stats = EventStatistics()
        m = DynamicMatcher(statistics=stats, observe_every=2)
        m.add(Subscription("s", [eq("a", 1)]))
        for _ in range(10):
            m.match(Event({"a": 1}))
        assert stats.events_observed == 5

    def test_observation_disabled(self):
        stats = EventStatistics()
        m = DynamicMatcher(statistics=stats, observe_events=False)
        m.add(Subscription("s", [eq("a", 1)]))
        m.match(Event({"a": 1}))
        assert stats.events_observed == 0

    def test_stats_surface(self):
        m = DynamicMatcher()
        m.add(Subscription("s", [eq("a", 1)]))
        s = m.stats()
        assert s["name"] == "dynamic"
        assert "maintenance" in s and "potential_tables" in s
