"""Replay of the cluster-matching kernel against the cache simulator.

These kernels generate the *exact address stream* of the paper's inner
loop (Section 2.2's code listing: UNFOLD-blocked scan with per-row
prefetches LOOKAHEAD ahead) over a synthetic cluster, and run it through
:class:`CacheSimulator`.  Comparing columnar vs row-wise layouts and
prefetch on/off reproduces the paper's cache-behaviour claims without the
original hardware.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Optional

import numpy as np

from repro.cache.layout import Arena, ClusterLayout
from repro.cache.metrics import CacheMetrics
from repro.cache.model import CacheConfig, CacheSimulator


@dataclasses.dataclass(frozen=True)
class KernelParams:
    """Tuning knobs of the scan kernel (paper's UNFOLD / LOOKAHEAD)."""

    #: Columns per inner block; the paper sizes this to one cache line of
    #: int32 refs (line_size / 4).
    unfold: int = 8
    #: How many columns ahead the prefetches aim.
    lookahead: int = 16
    #: Issue prefetches at all?
    prefetch: bool = True
    #: How many predicate rows to prefetch (None = all).  The paper found
    #: that for wide clusters prefetching every array is counterproductive
    #: because requests compete for the 2 outstanding slots.
    prefetch_rows: Optional[int] = None

    def __post_init__(self) -> None:
        if self.unfold < 1 or self.lookahead < 0:
            raise ValueError("unfold must be >= 1 and lookahead >= 0")
        if self.prefetch_rows is not None and self.prefetch_rows < 0:
            raise ValueError("prefetch_rows must be None or >= 0")


def scan_cluster(
    sim: CacheSimulator,
    layout: ClusterLayout,
    refs: np.ndarray,
    bit_values: np.ndarray,
    params: KernelParams = KernelParams(),
) -> CacheMetrics:
    """Run one cluster scan; returns the metrics delta of this run.

    *refs* is the (size, count) matrix of bit-vector slots; *bit_values*
    the current bit vector.  The scan reads each column's refs and bit
    cells with short-circuit, exactly like ``Cluster.match_scalar``, and
    (optionally) prefetches upcoming ref lines like the paper's listing.
    """
    size, count = refs.shape
    if (size, count) != (layout.size, layout.count):
        raise ValueError("refs shape disagrees with layout")
    before = dataclasses.replace(sim.metrics)
    rows_to_prefetch = size if params.prefetch_rows is None else min(
        size, params.prefetch_rows
    )
    for j0 in range(0, count, params.unfold):
        block_end = min(j0 + params.unfold, count)
        for j in range(j0, block_end):
            matched = True
            for i in range(size):
                sim.access(layout.ref_address(i, j))
                sim.access(layout.bit_address(int(refs[i, j])))
                sim.compute(1)
                if not bit_values[refs[i, j]]:
                    matched = False
                    break
            if matched:
                sim.access(layout.id_address(j))
                sim.compute(1)
        if params.prefetch and rows_to_prefetch:
            target = j0 + params.lookahead
            if target < count:
                for i in range(rows_to_prefetch):
                    sim.prefetch(layout.ref_address(i, target))
    after = sim.metrics
    return CacheMetrics(
        accesses=after.accesses - before.accesses,
        hits=after.hits - before.hits,
        misses=after.misses - before.misses,
        prefetches_issued=after.prefetches_issued - before.prefetches_issued,
        prefetches_dropped=after.prefetches_dropped - before.prefetches_dropped,
        prefetches_useful=after.prefetches_useful - before.prefetches_useful,
        cycles=after.cycles - before.cycles,
        stall_cycles=after.stall_cycles - before.stall_cycles,
    )


def synthesize_cluster(
    size: int,
    count: int,
    bit_slots: int,
    selectivity: float,
    seed: int = 0,
) -> "tuple[np.ndarray, np.ndarray]":
    """Random (refs, bit_values) with a given fraction of set bits.

    ``selectivity`` is the probability that any referenced bit is set —
    low selectivity means early short-circuiting, the regime where the
    columnar layout skips whole lines of later rows.
    """
    if not 0.0 <= selectivity <= 1.0:
        raise ValueError("selectivity must be in [0, 1]")
    rng = np.random.default_rng(seed)
    refs = rng.integers(0, bit_slots, size=(size, count), dtype=np.int32)
    bit_values = (rng.random(bit_slots) < selectivity).astype(np.uint8)
    return refs, bit_values


def bitvector_residency_sweep(
    bit_slot_counts: "list[int]",
    size: int = 3,
    count: int = 2048,
    selectivity: float = 0.3,
    config: CacheConfig = CacheConfig(),
    seed: int = 0,
) -> Dict[int, float]:
    """§2.3's temporal-locality claim: a small bit vector stays resident.

    Runs the same scan with growing distinct-predicate counts (bit
    vector sizes) and reports the miss rate per size — small vectors fit
    in the cache and are re-hit across columns; vectors larger than the
    cache thrash.  Returns {bit_slots: miss_rate}.
    """
    out: Dict[int, float] = {}
    for slots in bit_slot_counts:
        refs, bit_values = synthesize_cluster(size, count, slots, selectivity, seed)
        arena = Arena(alignment=config.line_size)
        layout = ClusterLayout.build(size, count, slots, arena, columnar=True)
        sim = CacheSimulator(config)
        metrics = scan_cluster(
            sim, layout, refs, bit_values, KernelParams(prefetch=False)
        )
        out[slots] = metrics.miss_rate
    return out


def compare_layouts(
    size: int = 3,
    count: int = 4096,
    bit_slots: int = 4096,
    selectivity: float = 0.3,
    config: CacheConfig = CacheConfig(),
    params: KernelParams = KernelParams(),
    seed: int = 0,
) -> Dict[str, CacheMetrics]:
    """The cache ablation: 4 configurations over the same cluster.

    Returns metrics for ``columnar+prefetch``, ``columnar``,
    ``rowwise+prefetch`` and ``rowwise``; each runs on a cold cache.
    """
    refs, bit_values = synthesize_cluster(size, count, bit_slots, selectivity, seed)
    results: Dict[str, CacheMetrics] = {}
    for columnar in (True, False):
        for prefetch in (True, False):
            arena = Arena(alignment=config.line_size)
            layout = ClusterLayout.build(
                size, count, bit_slots, arena, columnar=columnar
            )
            sim = CacheSimulator(config)
            run = dataclasses.replace(params, prefetch=prefetch)
            name = ("columnar" if columnar else "rowwise") + (
                "+prefetch" if prefetch else ""
            )
            results[name] = scan_cluster(sim, layout, refs, bit_values, run)
    return results
