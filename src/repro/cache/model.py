"""A set-associative cache with an asynchronous prefetch unit.

This is the substitution for the paper's Pentium III memory system: a
configurable LRU set-associative cache, a fixed miss penalty, and a
prefetch unit with a bounded number of outstanding requests —
over-limit prefetches are *dropped*, exactly the behaviour the paper
works around ("Processors reserve the right to drop prefetch
instructions when the limit has been reached").

Prefetched lines arrive ``miss_penalty`` cycles after issue; touching a
line that is still in flight stalls only for the *remaining* cycles, so
a well-placed LOOKAHEAD hides the whole latency — the mechanism behind
the 1.5× propagation-wp speedup.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional

from repro.cache.metrics import CacheMetrics


@dataclasses.dataclass(frozen=True)
class CacheConfig:
    """Geometry and timing of the simulated cache.

    Defaults approximate the paper's Pentium III L1 data cache: 16 KiB,
    4-way, 32-byte lines, tens-of-cycles miss penalty, at most two
    outstanding prefetches.
    """

    size_bytes: int = 16 * 1024
    line_size: int = 32
    associativity: int = 4
    hit_cycles: int = 1
    miss_penalty: int = 40
    max_outstanding_prefetches: int = 2

    def __post_init__(self) -> None:
        if self.line_size <= 0 or self.size_bytes <= 0 or self.associativity <= 0:
            raise ValueError("cache geometry must be positive")
        if self.size_bytes % (self.line_size * self.associativity):
            raise ValueError("size must be a multiple of line_size * associativity")
        if self.hit_cycles < 0 or self.miss_penalty < 0:
            raise ValueError("timings must be non-negative")
        if self.max_outstanding_prefetches < 0:
            raise ValueError("prefetch limit must be non-negative")

    @property
    def n_sets(self) -> int:
        """Number of cache sets."""
        return self.size_bytes // (self.line_size * self.associativity)


class CacheSimulator:
    """Cycle-counting LRU set-associative cache with prefetch."""

    def __init__(self, config: CacheConfig = CacheConfig()) -> None:
        self.config = config
        # set index -> list of line tags, most-recently-used last.
        self._sets: List[List[int]] = [[] for _ in range(config.n_sets)]
        # line tag (global line number) -> arrival cycle if in flight.
        self._in_flight: Dict[int, int] = {}
        self.metrics = CacheMetrics()
        self.cycle = 0

    # ------------------------------------------------------------------
    # address helpers
    # ------------------------------------------------------------------
    def _line_of(self, address: int) -> int:
        return address // self.config.line_size

    def _set_of(self, line: int) -> int:
        return line % self.config.n_sets

    # ------------------------------------------------------------------
    # line management
    # ------------------------------------------------------------------
    def _touch(self, line: int) -> bool:
        """Move *line* to MRU if resident; returns residency."""
        ways = self._sets[self._set_of(line)]
        try:
            ways.remove(line)
        except ValueError:
            return False
        ways.append(line)
        return True

    def _install(self, line: int) -> None:
        ways = self._sets[self._set_of(line)]
        if line in ways:
            ways.remove(line)
        ways.append(line)
        if len(ways) > self.config.associativity:
            ways.pop(0)

    def _retire_arrivals(self) -> None:
        """Install every in-flight line whose arrival time has passed."""
        if not self._in_flight:
            return
        arrived = [l for l, t in self._in_flight.items() if t <= self.cycle]
        for line in arrived:
            del self._in_flight[line]
            self._install(line)

    # ------------------------------------------------------------------
    # the three operations kernels use
    # ------------------------------------------------------------------
    def compute(self, cycles: int = 1) -> None:
        """Pure ALU work: time passes, no memory traffic."""
        self.cycle += cycles
        self.metrics.cycles += cycles
        self._retire_arrivals()

    def access(self, address: int) -> bool:
        """One demand load; returns True on hit.

        A hit costs ``hit_cycles``.  A miss on an in-flight (prefetched)
        line stalls only for the remaining latency; a cold miss stalls
        for the full penalty.
        """
        cfg = self.config
        line = self._line_of(address)
        self.cycle += cfg.hit_cycles
        self.metrics.cycles += cfg.hit_cycles
        self.metrics.accesses += 1
        self._retire_arrivals()
        if self._touch(line):
            self.metrics.hits += 1
            return True
        self.metrics.misses += 1
        arrival = self._in_flight.pop(line, None)
        if arrival is not None:
            stall = max(0, arrival - self.cycle)
            if stall < cfg.miss_penalty:
                self.metrics.prefetches_useful += 1
        else:
            stall = cfg.miss_penalty
        self.cycle += stall
        self.metrics.cycles += stall
        self.metrics.stall_cycles += stall
        self._install(line)
        self._retire_arrivals()
        return False

    def prefetch(self, address: int) -> bool:
        """Issue an asynchronous prefetch; returns False when dropped.

        Costs one cycle to issue.  Dropped when the line is already
        resident/in flight is a no-op (returns True: nothing lost); when
        the outstanding limit is full, the request is silently discarded
        (returns False), as real hardware does.
        """
        cfg = self.config
        self.cycle += 1
        self.metrics.cycles += 1
        self._retire_arrivals()
        line = self._line_of(address)
        ways = self._sets[self._set_of(line)]
        if line in ways or line in self._in_flight:
            return True
        if len(self._in_flight) >= cfg.max_outstanding_prefetches:
            self.metrics.prefetches_dropped += 1
            return False
        self._in_flight[line] = self.cycle + cfg.miss_penalty
        self.metrics.prefetches_issued += 1
        return True

    # ------------------------------------------------------------------
    # inspection
    # ------------------------------------------------------------------
    def resident(self, address: int) -> bool:
        """Is the line of *address* currently in the cache?"""
        line = self._line_of(address)
        return line in self._sets[self._set_of(line)]

    def flush(self) -> None:
        """Empty the cache and in-flight queue (metrics survive)."""
        self._sets = [[] for _ in range(self.config.n_sets)]
        self._in_flight.clear()
