"""Memory layouts of a subscription cluster for the cache study.

Models the address placement of the ``(size × count)`` predicates array
and the bit vector so kernels can replay realistic address streams.  Two
placements of the predicates array:

* **columnar** (the paper's choice): ``sub_array[i]`` is a contiguous
  row of the matrix — consecutive subscriptions' i-th refs are adjacent,
  so a selective first predicate touches only ``sub_array[0]``'s lines;
* **row-wise** (the rejected alternative): each subscription's refs are
  contiguous — every subscription touches a fresh line regardless of
  selectivity.
"""

from __future__ import annotations

import dataclasses
from typing import Tuple

from repro.batch.bitmatrix import WORD_BITS, packed_words


class Arena:
    """Bump allocator handing out disjoint, aligned address ranges."""

    def __init__(self, base: int = 0x10000, alignment: int = 64) -> None:
        if alignment <= 0:
            raise ValueError("alignment must be positive")
        self._next = base
        self._alignment = alignment

    def allocate(self, size_bytes: int) -> int:
        """Reserve *size_bytes*; returns the aligned base address."""
        if size_bytes < 0:
            raise ValueError("size must be non-negative")
        a = self._alignment
        base = (self._next + a - 1) // a * a
        self._next = base + size_bytes
        return base


@dataclasses.dataclass(frozen=True)
class ClusterLayout:
    """Addresses of one cluster's arrays.

    ``element_size`` is the width of a bit-vector reference (int32 in the
    implementation); ``bits_element_size`` the width of one bit-vector
    cell (1 byte).
    """

    size: int
    count: int
    refs_base: int
    ids_base: int
    bits_base: int
    columnar: bool = True
    element_size: int = 4
    bits_element_size: int = 1

    @staticmethod
    def build(
        size: int,
        count: int,
        bits_slots: int,
        arena: Arena,
        columnar: bool = True,
    ) -> "ClusterLayout":
        """Allocate a cluster's arrays in *arena*."""
        refs = arena.allocate(size * count * 4)
        ids = arena.allocate(count * 8)
        bits = arena.allocate(bits_slots * 1)
        return ClusterLayout(
            size=size,
            count=count,
            refs_base=refs,
            ids_base=ids,
            bits_base=bits,
            columnar=columnar,
        )

    # ------------------------------------------------------------------
    # address computation
    # ------------------------------------------------------------------
    def ref_address(self, row: int, col: int) -> int:
        """Address of predicates-array entry [row][col].

        Columnar: row-major over (size, count) — each predicate row is
        contiguous.  Row-wise: column-major — each subscription's refs
        are contiguous.
        """
        if not 0 <= row < self.size or not 0 <= col < self.count:
            raise IndexError(f"({row}, {col}) outside ({self.size}, {self.count})")
        if self.columnar:
            offset = row * self.count + col
        else:
            offset = col * self.size + row
        return self.refs_base + offset * self.element_size

    def id_address(self, col: int) -> int:
        """Address of the subscription-line entry for column *col*."""
        return self.ids_base + col * 8

    def bit_address(self, bit: int) -> int:
        """Address of one bit-vector cell."""
        return self.bits_base + bit * self.bits_element_size

    def row_line_span(self, line_size: int) -> int:
        """Cache lines covered by one predicate row (columnar layout)."""
        return (self.count * self.element_size + line_size - 1) // line_size


@dataclasses.dataclass(frozen=True)
class BitMatrixLayout:
    """Addresses of the batch kernel's packed ``(events × words)`` matrix.

    The batch predicate phase produces one 64-bit word row per event,
    ``packed_words(n_slots)`` words wide (see ``repro.batch.bitmatrix``);
    this models its placement so the cache study can replay batch-kernel
    address streams next to the per-event cluster layouts.  Rows are
    contiguous (row-major): one event's predicate bits occupy
    ``words × 8`` consecutive bytes, which is exactly why the batched
    subscription phase streams — every residual-bit gather for one event
    lands in the same handful of lines.
    """

    events: int
    n_slots: int
    base: int
    #: 64-bit words per row.
    words: int
    word_size: int = WORD_BITS // 8

    @staticmethod
    def build(events: int, n_slots: int, arena: Arena) -> "BitMatrixLayout":
        """Allocate the packed truth matrix in *arena*."""
        words = packed_words(n_slots)
        base = arena.allocate(events * words * (WORD_BITS // 8))
        return BitMatrixLayout(events=events, n_slots=n_slots, base=base, words=words)

    def word_address(self, row: int, word: int) -> int:
        """Address of packed word [row][word]."""
        if not 0 <= row < self.events or not 0 <= word < self.words:
            raise IndexError(f"({row}, {word}) outside ({self.events}, {self.words})")
        return self.base + (row * self.words + word) * self.word_size

    def bit_address(self, row: int, bit: int) -> int:
        """Address of the word holding predicate *bit* of event *row*."""
        if not 0 <= bit < self.n_slots:
            raise IndexError(f"bit {bit} outside {self.n_slots} slots")
        return self.word_address(row, bit // WORD_BITS)

    def row_line_span(self, line_size: int) -> int:
        """Cache lines covered by one event's packed row."""
        return (self.words * self.word_size + line_size - 1) // line_size
