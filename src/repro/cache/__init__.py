"""Cache-simulator substrate for the paper's cache-consciousness study."""

from repro.cache.kernels import (
    KernelParams,
    bitvector_residency_sweep,
    compare_layouts,
    scan_cluster,
    synthesize_cluster,
)
from repro.cache.layout import Arena, BitMatrixLayout, ClusterLayout
from repro.cache.metrics import CacheMetrics
from repro.cache.model import CacheConfig, CacheSimulator

__all__ = [
    "Arena",
    "BitMatrixLayout",
    "CacheConfig",
    "CacheMetrics",
    "CacheSimulator",
    "ClusterLayout",
    "KernelParams",
    "bitvector_residency_sweep",
    "compare_layouts",
    "scan_cluster",
    "synthesize_cluster",
]
