"""Counters produced by the cache simulator."""

from __future__ import annotations

import dataclasses
from typing import Any, Dict

from repro.obs.registry import MetricsRegistry


@dataclasses.dataclass
class CacheMetrics:
    """What one simulated kernel run cost.

    ``cycles`` is total simulated time; ``stall_cycles`` is the portion
    spent waiting on memory (misses not hidden by prefetch).  Prefetches
    can be *dropped* when the outstanding-request limit (2 on the paper's
    Pentium III) is hit — dropped prefetches are the reason the paper
    avoids prefetching rarely-consulted arrays.
    """

    accesses: int = 0
    hits: int = 0
    misses: int = 0
    prefetches_issued: int = 0
    prefetches_dropped: int = 0
    prefetches_useful: int = 0
    cycles: int = 0
    stall_cycles: int = 0

    @property
    def miss_rate(self) -> float:
        """Fraction of demand accesses that missed."""
        return self.misses / self.accesses if self.accesses else 0.0

    @property
    def stall_fraction(self) -> float:
        """Fraction of cycles spent stalled on memory."""
        return self.stall_cycles / self.cycles if self.cycles else 0.0

    def stats(self) -> Dict[str, Any]:
        """Unified JSON-serializable shape (same contract as matcher stats)."""
        return {
            "name": "cache",
            "counters": dataclasses.asdict(self),
            "miss_rate": self.miss_rate,
            "stall_fraction": self.stall_fraction,
        }

    def publish(self, registry: MetricsRegistry, cache: str = "sim") -> None:
        """One-shot export of these counters into a metrics registry.

        The simulator produces a finished tally per run, so this adds
        the current values to ``repro_cache_events_total{cache,kind}``
        children (call once per finished run).
        """
        family = registry.counter(
            "repro_cache_events_total",
            "Cache-simulator event tallies, by kind.",
            ("cache", "kind"),
        )
        for kind, value in dataclasses.asdict(self).items():
            family.labels(cache=cache, kind=kind).inc(value)

    def merged(self, other: "CacheMetrics") -> "CacheMetrics":
        """Sum of two metric sets."""
        return CacheMetrics(
            accesses=self.accesses + other.accesses,
            hits=self.hits + other.hits,
            misses=self.misses + other.misses,
            prefetches_issued=self.prefetches_issued + other.prefetches_issued,
            prefetches_dropped=self.prefetches_dropped + other.prefetches_dropped,
            prefetches_useful=self.prefetches_useful + other.prefetches_useful,
            cycles=self.cycles + other.cycles,
            stall_cycles=self.stall_cycles + other.stall_cycles,
        )
