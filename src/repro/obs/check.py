"""Minimal JSON-schema-subset validator for metrics snapshots.

The container has no ``jsonschema`` dependency, so this module
implements exactly the keyword subset the checked-in schema
(``schemas/metrics_snapshot.schema.json``) uses: ``type`` (string or
list of strings), ``enum``, ``properties``, ``required``, ``items``,
``additionalProperties`` (bool or schema), ``minItems``, ``minimum``
and ``maximum``.  Unknown keywords are ignored, like a permissive
validator.

Usable as a library (:func:`validate`) and as a command::

    python -m repro.obs.check SNAPSHOT.json schemas/metrics_snapshot.schema.json

Exit status 0 means the document conforms; 1 lists the violations.
"""

from __future__ import annotations

import json
import sys
from typing import Any, Dict, List, Optional

_TYPE_CHECKS = {
    "object": lambda v: isinstance(v, dict),
    "array": lambda v: isinstance(v, list),
    "string": lambda v: isinstance(v, str),
    "integer": lambda v: isinstance(v, int) and not isinstance(v, bool),
    "number": lambda v: isinstance(v, (int, float)) and not isinstance(v, bool),
    "boolean": lambda v: isinstance(v, bool),
    "null": lambda v: v is None,
}


def validate(instance: Any, schema: Dict[str, Any], path: str = "$") -> List[str]:
    """Return a list of violations of *schema* by *instance* (empty = valid)."""
    errors: List[str] = []
    expected = schema.get("type")
    if expected is not None:
        types = expected if isinstance(expected, list) else [expected]
        if not any(_TYPE_CHECKS[t](instance) for t in types):
            errors.append(
                f"{path}: expected type {'/'.join(types)}, "
                f"got {type(instance).__name__}"
            )
            return errors  # structural keywords below assume the type held
    if "enum" in schema and instance not in schema["enum"]:
        errors.append(f"{path}: {instance!r} not in enum {schema['enum']!r}")
    if isinstance(instance, (int, float)) and not isinstance(instance, bool):
        minimum = schema.get("minimum")
        if minimum is not None and instance < minimum:
            errors.append(f"{path}: {instance!r} below minimum {minimum!r}")
        maximum = schema.get("maximum")
        if maximum is not None and instance > maximum:
            errors.append(f"{path}: {instance!r} above maximum {maximum!r}")
    if isinstance(instance, dict):
        properties = schema.get("properties", {})
        for key in schema.get("required", ()):
            if key not in instance:
                errors.append(f"{path}: missing required property {key!r}")
        for key, value in instance.items():
            if key in properties:
                errors.extend(validate(value, properties[key], f"{path}.{key}"))
            else:
                extra = schema.get("additionalProperties", True)
                if extra is False:
                    errors.append(f"{path}: unexpected property {key!r}")
                elif isinstance(extra, dict):
                    errors.extend(validate(value, extra, f"{path}.{key}"))
    if isinstance(instance, list):
        min_items = schema.get("minItems")
        if min_items is not None and len(instance) < min_items:
            errors.append(f"{path}: fewer than {min_items} items")
        items = schema.get("items")
        if isinstance(items, dict):
            for i, value in enumerate(instance):
                errors.extend(validate(value, items, f"{path}[{i}]"))
    return errors


def validate_file(snapshot_path: str, schema_path: str) -> List[str]:
    """Validate a snapshot file against a schema file."""
    with open(snapshot_path) as fp:
        instance = json.load(fp)
    with open(schema_path) as fp:
        schema = json.load(fp)
    return validate(instance, schema)


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point: ``check.py SNAPSHOT SCHEMA``."""
    args = sys.argv[1:] if argv is None else argv
    if len(args) != 2:
        print("usage: python -m repro.obs.check SNAPSHOT.json SCHEMA.json", file=sys.stderr)
        return 2
    errors = validate_file(args[0], args[1])
    if errors:
        for error in errors:
            print(error, file=sys.stderr)
        return 1
    print(f"{args[0]}: ok")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
