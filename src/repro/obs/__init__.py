"""Observability: metrics registry, per-event tracing, exporters.

One measurement substrate for every layer of the system — the two-phase
matchers, the dynamic maintainer, the sharded fan-out, the batch server
and the benchmark harness all record into the same families:

* :class:`MetricsRegistry` — counters, gauges and log-bucket
  histograms, grouped into labeled families (Prometheus data model);
* :class:`Tracer` / :class:`Span` — per-event trace trees (predicate
  phase ns, bits set, clusters visited, residual checks, subscription
  phase ns, shard fan-out/merge);
* :func:`prometheus_text` / :func:`json_snapshot` — exporters, plus a
  schema checker in :mod:`repro.obs.check`.

Everything defaults to the no-op :data:`NOOP_REGISTRY` and
:data:`NULL_TRACER`, so an uninstrumented match pays one boolean check;
see ``docs/observability.md``.
"""

from repro.obs.export import (
    json_snapshot,
    prometheus_text,
    write_json_snapshot,
)
from repro.obs.registry import (
    DEFAULT_BUCKETS,
    Counter,
    Family,
    Gauge,
    Histogram,
    MetricsRegistry,
    NOOP_REGISTRY,
    NoopRegistry,
    exponential_buckets,
)
from repro.obs.tracer import NULL_TRACER, NullTracer, Span, Tracer

__all__ = [
    "Counter",
    "DEFAULT_BUCKETS",
    "Family",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NOOP_REGISTRY",
    "NULL_TRACER",
    "NoopRegistry",
    "NullTracer",
    "Span",
    "Tracer",
    "exponential_buckets",
    "json_snapshot",
    "prometheus_text",
    "write_json_snapshot",
]
