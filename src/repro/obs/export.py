"""Metric exporters: Prometheus text format and JSON snapshots.

Both exporters read a :class:`~repro.obs.registry.MetricsRegistry` and
are pure functions of its state; the JSON shape is the registry's own
:meth:`~repro.obs.registry.MetricsRegistry.snapshot`, validated against
``schemas/metrics_snapshot.schema.json`` by :mod:`repro.obs.check`.

Prometheus text follows the exposition format: ``# HELP`` / ``# TYPE``
headers, label values escaped (backslash, double quote, newline),
histograms expanded into cumulative ``_bucket{le=...}`` series plus
``_sum`` and ``_count``.
"""

from __future__ import annotations

import json
import math
from typing import Any, Dict, Mapping, Optional

from repro.obs.registry import MetricsRegistry


def escape_label_value(value: str) -> str:
    """Escape a label value for the Prometheus text format."""
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def escape_help(text: str) -> str:
    """Escape a HELP line (backslash and newline only, per the spec)."""
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def _format_number(value: float) -> str:
    if isinstance(value, float):
        if math.isnan(value):
            return "NaN"
        if math.isinf(value):
            return "+Inf" if value > 0 else "-Inf"
        if value.is_integer():
            return str(int(value))
        return repr(value)
    return str(value)


def _label_block(labels: Mapping[str, str]) -> str:
    if not labels:
        return ""
    inner = ",".join(
        f'{name}="{escape_label_value(str(value))}"' for name, value in labels.items()
    )
    return "{" + inner + "}"


def prometheus_text(registry: MetricsRegistry) -> str:
    """Render every family as Prometheus exposition text."""
    lines = []
    for family in registry.families():
        if family.help:
            lines.append(f"# HELP {family.name} {escape_help(family.help)}")
        lines.append(f"# TYPE {family.name} {family.kind}")
        for values, child in family.children():
            labels = dict(zip(family.labelnames, values))
            if family.kind == "histogram":
                for bound, cum in child.cumulative():
                    with_le = dict(labels)
                    with_le["le"] = _format_number(float(bound))
                    lines.append(
                        f"{family.name}_bucket{_label_block(with_le)} {cum}"
                    )
                lines.append(
                    f"{family.name}_sum{_label_block(labels)} {_format_number(child.sum)}"
                )
                lines.append(f"{family.name}_count{_label_block(labels)} {child.count}")
            else:
                lines.append(
                    f"{family.name}{_label_block(labels)} {_format_number(child.value)}"
                )
    return "\n".join(lines) + ("\n" if lines else "")


def json_snapshot(
    registry: MetricsRegistry, context: Optional[Dict[str, Any]] = None
) -> Dict[str, Any]:
    """The registry's JSON snapshot, optionally stamped with context.

    *context* (workload name, scale, result numbers…) lands under a
    top-level ``"context"`` key so benchmark emissions and CLI
    emissions share one schema.
    """
    snap = registry.snapshot()
    if context:
        snap["context"] = dict(context)
    return snap


def write_json_snapshot(
    registry: MetricsRegistry,
    path: str,
    context: Optional[Dict[str, Any]] = None,
) -> Dict[str, Any]:
    """Write the JSON snapshot to *path*; returns the written dict."""
    snap = json_snapshot(registry, context)
    with open(path, "w") as fp:
        json.dump(snap, fp, indent=2, sort_keys=False, allow_nan=False)
        fp.write("\n")
    return snap
