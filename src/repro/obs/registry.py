"""Dependency-free metrics primitives: counters, gauges, histograms.

The registry is the single source of truth for operational metrics
across every engine layer (matchers, sharding, server, benchmarks).
Three instrument kinds are provided, deliberately mirroring the
Prometheus data model so the text exporter in :mod:`repro.obs.export`
is a straight serialization:

* :class:`Counter` — monotonically increasing value;
* :class:`Gauge` — value that can go up and down (queue depths);
* :class:`Histogram` — observations bucketed under fixed log-scale
  upper bounds (cumulative ``le`` semantics: a value exactly on a
  boundary counts into that boundary's bucket).

Instruments are grouped into labeled :class:`Family` objects
(``registry.counter(name, help, labelnames)``); hot paths hold the
*child* returned by :meth:`Family.labels` so recording is one attribute
update.  The default registry on every matcher is :data:`NOOP_REGISTRY`
— a singleton whose instruments do nothing — so instrumentation costs
one ``enabled`` check until a real registry is attached with
``matcher.use_metrics()``.
"""

from __future__ import annotations

import bisect
import math
from typing import Any, Dict, Iterator, List, Optional, Sequence, Tuple


def exponential_buckets(start: float, factor: float, count: int) -> Tuple[float, ...]:
    """``count`` log-scale bucket bounds: start, start·factor, …

    The standard way to build histogram bounds spanning several orders
    of magnitude with a fixed number of buckets.
    """
    if start <= 0:
        raise ValueError(f"bucket start must be positive, got {start}")
    if factor <= 1.0:
        raise ValueError(f"bucket factor must be > 1, got {factor}")
    if count < 1:
        raise ValueError(f"bucket count must be >= 1, got {count}")
    return tuple(start * factor**i for i in range(count))


#: Default latency bounds: 1 µs … ~4.3 s in factor-4 steps (log scale).
DEFAULT_BUCKETS = exponential_buckets(1e-6, 4.0, 12)


class Counter:
    """A monotonically increasing value (one labeled child)."""

    __slots__ = ("value",)
    kind = "counter"

    def __init__(self) -> None:
        self.value: float = 0

    def inc(self, n: float = 1) -> None:
        """Add *n* (must be >= 0) to the counter."""
        if n < 0:
            raise ValueError(f"counters only go up, got inc({n})")
        self.value += n


class Gauge:
    """A value that can move both ways (one labeled child)."""

    __slots__ = ("value",)
    kind = "gauge"

    def __init__(self) -> None:
        self.value: float = 0

    def set(self, value: float) -> None:
        """Set the gauge to an absolute value."""
        self.value = value

    def inc(self, n: float = 1) -> None:
        """Add *n* to the gauge."""
        self.value += n

    def dec(self, n: float = 1) -> None:
        """Subtract *n* from the gauge."""
        self.value -= n


class Histogram:
    """Observations under fixed cumulative-``le`` bucket bounds.

    ``bounds`` are the finite upper bounds in ascending order; an
    implicit ``+Inf`` bucket catches everything above the last bound.
    A value exactly equal to a bound is counted in that bound's bucket
    (Prometheus ``le`` semantics).
    """

    __slots__ = ("bounds", "counts", "sum", "count")
    kind = "histogram"

    def __init__(self, buckets: Sequence[float] = DEFAULT_BUCKETS) -> None:
        bounds = tuple(float(b) for b in buckets)
        if not bounds:
            raise ValueError("histogram needs at least one bucket bound")
        if list(bounds) != sorted(set(bounds)):
            raise ValueError(f"bucket bounds must be strictly ascending: {bounds}")
        if math.isinf(bounds[-1]):
            bounds = bounds[:-1]  # +Inf is implicit
            if not bounds:
                raise ValueError("histogram needs at least one finite bound")
        self.bounds = bounds
        #: Per-bucket (non-cumulative) counts; last slot is the +Inf bucket.
        self.counts: List[int] = [0] * (len(bounds) + 1)
        self.sum: float = 0.0
        self.count: int = 0

    def observe(self, value: float) -> None:
        """Record one observation."""
        self.counts[bisect.bisect_left(self.bounds, value)] += 1
        self.sum += value
        self.count += 1

    def cumulative(self) -> List[Tuple[float, int]]:
        """``(upper_bound, cumulative_count)`` pairs, ending at ``+Inf``."""
        out: List[Tuple[float, int]] = []
        running = 0
        for bound, n in zip(self.bounds, self.counts):
            running += n
            out.append((bound, running))
        out.append((math.inf, self.count))
        return out


class Family:
    """One named metric with a fixed label schema and many children."""

    __slots__ = ("kind", "name", "help", "labelnames", "_children", "_buckets")

    def __init__(
        self,
        kind: str,
        name: str,
        help: str = "",
        labelnames: Sequence[str] = (),
        buckets: Optional[Sequence[float]] = None,
    ) -> None:
        self.kind = kind
        self.name = name
        self.help = help
        self.labelnames: Tuple[str, ...] = tuple(labelnames)
        self._children: Dict[Tuple[str, ...], Any] = {}
        self._buckets = buckets

    def labels(self, **labels: Any) -> Any:
        """The child instrument for one label-value combination.

        Label values are coerced to ``str``.  Children are created on
        first use and live for the registry's lifetime.  Call with no
        arguments for an unlabeled family.
        """
        if set(labels) != set(self.labelnames):
            raise ValueError(
                f"{self.name} expects labels {self.labelnames}, got {tuple(labels)}"
            )
        key = tuple(str(labels[n]) for n in self.labelnames)
        child = self._children.get(key)
        if child is None:
            if self.kind == "counter":
                child = Counter()
            elif self.kind == "gauge":
                child = Gauge()
            else:
                child = Histogram(self._buckets or DEFAULT_BUCKETS)
            self._children[key] = child
        return child

    def children(self) -> Iterator[Tuple[Tuple[str, ...], Any]]:
        """Iterate ``(label_values, child)`` pairs in insertion order."""
        return iter(self._children.items())

    def __len__(self) -> int:
        return len(self._children)


def _json_number(value: float) -> Any:
    """A strictly-JSON-safe rendering of a possibly non-finite number."""
    if isinstance(value, float):
        if math.isnan(value):
            return "NaN"
        if math.isinf(value):
            return "+Inf" if value > 0 else "-Inf"
        if value.is_integer():
            return int(value)
    return value


class MetricsRegistry:
    """A set of metric families, addressable by name.

    Creation methods are idempotent: asking twice for the same name
    returns the existing family, so independent components can share
    one family as long as kind and label schema agree.
    """

    #: Hot paths test this before doing any measurement work.
    enabled = True

    def __init__(self) -> None:
        self._families: Dict[str, Family] = {}

    # ------------------------------------------------------------------
    # family creation
    # ------------------------------------------------------------------
    def _register(
        self,
        kind: str,
        name: str,
        help: str,
        labelnames: Sequence[str],
        buckets: Optional[Sequence[float]] = None,
    ) -> Family:
        existing = self._families.get(name)
        if existing is not None:
            if existing.kind != kind or existing.labelnames != tuple(labelnames):
                raise ValueError(
                    f"metric {name!r} already registered as {existing.kind} "
                    f"with labels {existing.labelnames}"
                )
            return existing
        family = Family(kind, name, help, labelnames, buckets)
        self._families[name] = family
        return family

    def counter(
        self, name: str, help: str = "", labelnames: Sequence[str] = ()
    ) -> Family:
        """Get or create a counter family."""
        return self._register("counter", name, help, labelnames)

    def gauge(
        self, name: str, help: str = "", labelnames: Sequence[str] = ()
    ) -> Family:
        """Get or create a gauge family."""
        return self._register("gauge", name, help, labelnames)

    def histogram(
        self,
        name: str,
        help: str = "",
        labelnames: Sequence[str] = (),
        buckets: Optional[Sequence[float]] = None,
    ) -> Family:
        """Get or create a histogram family (default log-scale buckets)."""
        return self._register("histogram", name, help, labelnames, buckets)

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def family(self, name: str) -> Optional[Family]:
        """Look up a family by metric name."""
        return self._families.get(name)

    def families(self) -> List[Family]:
        """All families in registration order."""
        return list(self._families.values())

    def __len__(self) -> int:
        return len(self._families)

    def __iter__(self) -> Iterator[Family]:
        return iter(self._families.values())

    def snapshot(self) -> Dict[str, Any]:
        """Strictly-JSON-serializable dump of every family.

        This is the schema checked in at ``schemas/metrics_snapshot.schema.json``
        and consumed by ``repro stats --metrics-out`` and the bench
        harness.  Histogram buckets are cumulative (``le`` semantics);
        non-finite numbers are rendered as the strings ``"+Inf"`` /
        ``"-Inf"`` / ``"NaN"`` because strict JSON has no spelling for
        them.
        """
        metrics: List[Dict[str, Any]] = []
        for family in self._families.values():
            samples: List[Dict[str, Any]] = []
            for values, child in family.children():
                labels = dict(zip(family.labelnames, values))
                if family.kind == "histogram":
                    samples.append(
                        {
                            "labels": labels,
                            "count": child.count,
                            "sum": _json_number(child.sum),
                            "buckets": [
                                {"le": _json_number(bound), "count": n}
                                for bound, n in child.cumulative()
                            ],
                        }
                    )
                else:
                    samples.append(
                        {"labels": labels, "value": _json_number(child.value)}
                    )
            metrics.append(
                {
                    "name": family.name,
                    "type": family.kind,
                    "help": family.help,
                    "labelnames": list(family.labelnames),
                    "samples": samples,
                }
            )
        return {"version": 1, "metrics": metrics}


class _NoopInstrument:
    """Accepts the full instrument surface and does nothing."""

    __slots__ = ()
    value = 0
    sum = 0.0
    count = 0

    def labels(self, **labels: Any) -> "_NoopInstrument":
        """Return self: every label combination is the same no-op."""
        return self

    def inc(self, n: float = 1) -> None:
        """Discard the increment."""

    def dec(self, n: float = 1) -> None:
        """Discard the decrement."""

    def set(self, value: float) -> None:
        """Discard the value."""

    def observe(self, value: float) -> None:
        """Discard the observation."""


#: Shared do-nothing instrument (family and child in one object).
NOOP_INSTRUMENT = _NoopInstrument()


class NoopRegistry(MetricsRegistry):
    """The zero-cost default: every family is the shared no-op."""

    enabled = False

    def _register(self, kind, name, help, labelnames, buckets=None):  # type: ignore[override]
        return NOOP_INSTRUMENT

    def snapshot(self) -> Dict[str, Any]:
        """An empty—but schema-valid—snapshot."""
        return {"version": 1, "metrics": []}


#: Singleton default for every matcher; attach a real registry with
#: ``matcher.use_metrics()`` to start recording.
NOOP_REGISTRY = NoopRegistry()
