"""Per-event trace spans: where one ``match`` call spent its time.

The registry (:mod:`repro.obs.registry`) aggregates; the tracer keeps
*individual* events.  A :class:`Span` is a named bag of numeric/string
fields plus child spans — the two-phase engines record predicate-phase
nanoseconds, bit-vector set counts, clusters visited and residual
checks, and the sharded engine nests per-shard fan-out under its own
span.  ``repro explain --trace`` renders the tree.

Like the metrics registry, the default on every matcher is the disabled
:data:`NULL_TRACER`; hot paths check ``tracer.enabled`` (a class
attribute read) before doing any timing work.  Attach a live tracer
with ``matcher.use_tracer()``.
"""

from __future__ import annotations

import collections
from typing import Any, Deque, Dict, List, Optional


def _format_field(value: Any) -> str:
    if isinstance(value, float):
        return f"{value:.6g}"
    return str(value)


class Span:
    """One named node in a trace tree."""

    __slots__ = ("name", "fields", "children")

    def __init__(self, name: str, **fields: Any) -> None:
        self.name = name
        self.fields: Dict[str, Any] = dict(fields)
        self.children: List["Span"] = []

    def child(self, name: str, **fields: Any) -> "Span":
        """Create, attach and return a child span."""
        span = Span(name, **fields)
        self.children.append(span)
        return span

    def add(self, **fields: Any) -> "Span":
        """Merge more fields into this span; returns self."""
        self.fields.update(fields)
        return self

    def to_dict(self) -> Dict[str, Any]:
        """JSON-serializable form (fields plus nested children)."""
        return {
            "name": self.name,
            "fields": dict(self.fields),
            "children": [c.to_dict() for c in self.children],
        }

    def format(self, indent: int = 0) -> str:
        """Indented multi-line rendering of the span tree."""
        pad = "  " * indent
        fields = " ".join(
            f"{k}={_format_field(v)}" for k, v in self.fields.items()
        )
        lines = [f"{pad}{self.name}" + (f" {fields}" if fields else "")]
        lines.extend(c.format(indent + 1) for c in self.children)
        return "\n".join(lines)

    def __repr__(self) -> str:
        return f"Span({self.name!r}, fields={self.fields}, children={len(self.children)})"


class Tracer:
    """Collects finished spans in a bounded ring buffer."""

    #: Hot paths test this before building spans.
    enabled = True

    def __init__(self, capacity: int = 64) -> None:
        if capacity < 1:
            raise ValueError(f"tracer capacity must be >= 1, got {capacity}")
        self._spans: Deque[Span] = collections.deque(maxlen=capacity)

    def start(self, name: str, **fields: Any) -> Span:
        """Create a root span (record it later with :meth:`finish`)."""
        return Span(name, **fields)

    def finish(self, span: Span) -> Span:
        """Record a completed root span; returns it."""
        self._spans.append(span)
        return span

    def last(self) -> Optional[Span]:
        """The most recently finished root span, if any."""
        return self._spans[-1] if self._spans else None

    def spans(self) -> List[Span]:
        """Snapshot of retained root spans, oldest first."""
        return list(self._spans)

    def clear(self) -> None:
        """Drop all retained spans."""
        self._spans.clear()

    def __len__(self) -> int:
        return len(self._spans)


class NullTracer(Tracer):
    """The zero-cost default: never consulted by instrumented paths.

    Defensive ``start``/``finish`` still work (spans are simply not
    retained) so misguided callers cannot crash an engine.
    """

    enabled = False

    def __init__(self) -> None:
        super().__init__(capacity=1)

    def finish(self, span: Span) -> Span:
        """Discard the span."""
        return span


#: Singleton default for every matcher; attach a live tracer with
#: ``matcher.use_tracer()`` to start recording spans.
NULL_TRACER = NullTracer()
