"""repro — very fast content-based publish/subscribe matching.

A full reproduction of "Filtering Algorithms and Implementation for Very
Fast Publish/Subscribe Systems" (SIGMOD 2001): the two-phase cache-
conscious matching algorithm, schema-based cost-optimized clustering,
dynamic cluster maintenance, the counting baseline, the paper's workload
generator, and a pub/sub broker with validity intervals on top.

Quickstart::

    from repro import DynamicMatcher, Event, Subscription, eq, le

    matcher = DynamicMatcher()
    matcher.add(Subscription("s1", [eq("movie", "groundhog day"), le("price", 10)]))
    matcher.match(Event({"movie": "groundhog day", "price": 8, "theater": "odeon"}))
    # -> ["s1"]
"""

from repro.core import (
    BitVector,
    DuplicateSubscriptionError,
    Event,
    InvalidEventError,
    InvalidPredicateError,
    InvalidSubscriptionError,
    InvalidWorkloadError,
    Matcher,
    Operator,
    OracleMatcher,
    ParseError,
    Predicate,
    PredicateRegistry,
    ReproError,
    Subscription,
    UnknownSubscriptionError,
    eq,
    ge,
    gt,
    le,
    lt,
    ne,
)
from repro.clustering import (
    ClusteringPlan,
    CostConstants,
    CostModel,
    DynamicParams,
    EventStatistics,
    GreedyClusteringOptimizer,
    UniformStatistics,
)
from repro.core.explain import MatchExplanation, explain, why_not
from repro.core.simplify import simplify, simplify_predicates
from repro.core.threadsafe import ThreadSafeMatcher
from repro.matchers import (
    MATCHER_FACTORIES,
    CountingMatcher,
    DynamicMatcher,
    PrefetchPropagationMatcher,
    PropagationMatcher,
    StaticMatcher,
    TreeMatcher,
    make_matcher,
)
from repro.obs import MetricsRegistry, Tracer
from repro.system.resilience import (
    CircuitBreaker,
    DeadlineExceededError,
    PartialResults,
    RetryBudgetExceededError,
    RetryPolicy,
    RetryingClient,
    ServerOverloadedError,
)
from repro.system.router import ShardRouter, make_router
from repro.system.sharding import ShardedMatcher

__version__ = "1.0.0"

__all__ = [
    "BitVector",
    "ClusteringPlan",
    "CostConstants",
    "CostModel",
    "CountingMatcher",
    "DuplicateSubscriptionError",
    "DynamicMatcher",
    "DynamicParams",
    "Event",
    "EventStatistics",
    "GreedyClusteringOptimizer",
    "InvalidEventError",
    "InvalidPredicateError",
    "InvalidSubscriptionError",
    "InvalidWorkloadError",
    "CircuitBreaker",
    "DeadlineExceededError",
    "MATCHER_FACTORIES",
    "MatchExplanation",
    "Matcher",
    "MetricsRegistry",
    "Operator",
    "OracleMatcher",
    "ParseError",
    "PartialResults",
    "Predicate",
    "PredicateRegistry",
    "PrefetchPropagationMatcher",
    "PropagationMatcher",
    "ReproError",
    "RetryBudgetExceededError",
    "RetryPolicy",
    "RetryingClient",
    "ServerOverloadedError",
    "ShardRouter",
    "ShardedMatcher",
    "StaticMatcher",
    "Subscription",
    "ThreadSafeMatcher",
    "Tracer",
    "TreeMatcher",
    "UniformStatistics",
    "UnknownSubscriptionError",
    "eq",
    "explain",
    "ge",
    "gt",
    "le",
    "lt",
    "make_matcher",
    "make_router",
    "ne",
    "simplify",
    "simplify_predicates",
    "why_not",
    "__version__",
]
