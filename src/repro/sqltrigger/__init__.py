"""The database-trigger strawman of Section 1.2."""

from repro.sqltrigger.matcher import TriggerMatcher
from repro.sqltrigger.minidb import Trigger, UniversalTable

__all__ = ["Trigger", "TriggerMatcher", "UniversalTable"]
