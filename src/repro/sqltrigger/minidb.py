"""The Section 1.2 strawman: a universal table with per-row triggers.

A tiny in-memory "database": one universal table ``D(A_1 … A_n)`` and a
trigger per subscription, fired FOR EACH ROW on insert.  Inserting a data
item evaluates *every* trigger's condition against the new row — the
behaviour whose non-scalability motivates the whole paper.  Implemented
honestly (no index over trigger conditions) so the trigger-baseline
benchmark shows the gap.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.core.errors import DuplicateSubscriptionError, UnknownSubscriptionError
from repro.core.types import Event, Predicate, Value

#: A trigger action receives (trigger name, inserted row).
TriggerAction = Callable[[str, Dict[str, Value]], None]


@dataclasses.dataclass(frozen=True)
class Trigger:
    """AFTER INSERT … FOR EACH ROW trigger with a conjunctive WHEN clause."""

    name: str
    condition: Tuple[Predicate, ...]
    action: Optional[TriggerAction] = None

    def fires_on(self, row: Dict[str, Value]) -> bool:
        """Evaluate the WHEN clause against one row (NULL fails)."""
        for p in self.condition:
            value = row.get(p.attribute)
            if value is None:
                return False
            if not p.matches(value):
                return False
        return True


class UniversalTable:
    """``D(A_1, …, A_n)`` with trigger evaluation on insert."""

    def __init__(self, columns: Sequence[str]) -> None:
        self.columns = tuple(columns)
        self._column_set = frozenset(columns)
        self._rows: List[Dict[str, Value]] = []
        self._triggers: Dict[str, Trigger] = {}

    # ------------------------------------------------------------------
    # triggers
    # ------------------------------------------------------------------
    def create_trigger(
        self,
        name: str,
        condition: Sequence[Predicate],
        action: Optional[TriggerAction] = None,
    ) -> Trigger:
        """CREATE TRIGGER *name* … WHEN *condition* DO *action*."""
        if name in self._triggers:
            raise DuplicateSubscriptionError(name)
        for p in condition:
            if p.attribute not in self._column_set:
                raise KeyError(f"unknown column {p.attribute!r}")
        trigger = Trigger(name, tuple(condition), action)
        self._triggers[name] = trigger
        return trigger

    def drop_trigger(self, name: str) -> Trigger:
        """DROP TRIGGER *name*."""
        try:
            return self._triggers.pop(name)
        except KeyError:
            raise UnknownSubscriptionError(name) from None

    @property
    def trigger_count(self) -> int:
        """Number of live triggers."""
        return len(self._triggers)

    # ------------------------------------------------------------------
    # inserts
    # ------------------------------------------------------------------
    def insert(self, row: Dict[str, Value], store: bool = False) -> List[str]:
        """Insert one row; returns the names of the triggers that fired.

        Every trigger is evaluated — this linear scan is the point.
        """
        unknown = set(row) - self._column_set
        if unknown:
            raise KeyError(f"unknown columns {sorted(unknown)}")
        if store:
            self._rows.append(dict(row))
        fired = []
        for trigger in self._triggers.values():
            if trigger.fires_on(row):
                fired.append(trigger.name)
                if trigger.action is not None:
                    trigger.action(trigger.name, row)
        return fired

    def insert_event(self, event: Event, store: bool = False) -> List[str]:
        """Insert an Event's pairs as a row."""
        return self.insert(dict(event.items()), store=store)

    @property
    def row_count(self) -> int:
        """Stored rows (only when inserts asked to store)."""
        return len(self._rows)
