"""Adapter exposing the trigger strawman through the Matcher interface.

Lets the benchmark harness drive the Section 1.2 baseline exactly like
the real algorithms: ``add`` creates a trigger, ``match`` inserts the
event and reports which triggers fired.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence

from repro.core.matcher import Matcher
from repro.core.types import Event, Subscription
from repro.sqltrigger.minidb import UniversalTable


class TriggerMatcher(Matcher):
    """One SQL-style trigger per subscription over a universal table."""

    name = "sql-trigger"

    def __init__(self, columns: Optional[Sequence[str]] = None) -> None:
        self._columns = list(columns) if columns else []
        self._table = UniversalTable(self._columns)
        self._subs: Dict[Any, Subscription] = {}
        self._id_of_trigger: Dict[str, Any] = {}

    def _ensure_columns(self, attributes) -> None:
        """Grow the universal table schema as new attributes appear."""
        new = [a for a in attributes if a not in self._table.columns]
        if not new:
            return
        merged = list(self._table.columns) + sorted(new)
        rebuilt = UniversalTable(merged)
        for sub in self._subs.values():
            rebuilt.create_trigger(f"T_{sub.id}", sub.predicates)
        self._table = rebuilt

    def add(self, subscription: Subscription) -> None:
        self._ensure_columns(subscription.attributes)
        name = f"T_{subscription.id}"
        self._table.create_trigger(name, subscription.predicates)
        self._subs[subscription.id] = subscription
        self._id_of_trigger[name] = subscription.id

    def remove(self, sub_id: Any) -> Subscription:
        self._table.drop_trigger(f"T_{sub_id}")
        self._id_of_trigger.pop(f"T_{sub_id}", None)
        return self._subs.pop(sub_id)

    def match(self, event: Event) -> List[Any]:
        self._ensure_columns(event.schema)
        fired = self._table.insert_event(event)
        return [self._id_of_trigger[name] for name in fired]

    def iter_subscriptions(self) -> List[Subscription]:
        return list(self._subs.values())

    def __len__(self) -> int:
        return len(self._subs)
