"""Multi-attribute hash tables and the hashing configuration (Section 3.1).

A :class:`MultiAttrHashTable` indexes, for one schema (attribute set), the
cluster lists of all access predicates over that schema; probing with an
event is one dict lookup on the tuple of the event's values for the
schema.  A :class:`HashingConfiguration` is the set of tables; matching
an event probes every table whose schema the event covers (the paper's
"a lookup per hash table of the configuration whose schema is included in
the schema of e").
"""

from __future__ import annotations

from typing import Any, Dict, Iterator, List, Optional, Sequence, Tuple

from repro.algorithms.clusters import ClusterList
from repro.clustering.access import Key, Schema
from repro.core.types import Event


class MultiAttrHashTable:
    """schema → {value-tuple → ClusterList} with membership counting."""

    __slots__ = ("schema", "_entries", "_count")

    def __init__(self, schema: Schema) -> None:
        if not schema or list(schema) != sorted(set(schema)):
            raise ValueError(f"schema must be sorted and duplicate-free: {schema!r}")
        self.schema = schema
        self._entries: Dict[Key, ClusterList] = {}
        self._count = 0

    # ------------------------------------------------------------------
    # maintenance
    # ------------------------------------------------------------------
    def add(self, sub_id: Any, key: Key, bit_refs: Sequence[int]) -> ClusterList:
        """Insert a subscription under its probe key."""
        lst = self._entries.get(key)
        if lst is None:
            lst = self._entries[key] = ClusterList(key=(self.schema, key))
        lst.add(sub_id, bit_refs)
        self._count += 1
        return lst

    def remove(self, sub_id: Any, key: Key, size: int) -> None:
        """Remove a subscription from its entry's size-cluster."""
        lst = self._entries[key]
        lst.remove(sub_id, size)
        self._count -= 1
        if not lst:
            del self._entries[key]

    # ------------------------------------------------------------------
    # probing
    # ------------------------------------------------------------------
    def probe(self, event: Event) -> Optional[ClusterList]:
        """Cluster list of the event's value combination, if any.

        Returns None when the event lacks a schema attribute (μ filter)
        or no subscription carries this value combination.
        """
        pairs = event.pairs
        key: List[Any] = []
        for attribute in self.schema:
            value = pairs.get(attribute)
            if value is None and attribute not in pairs:
                return None
            key.append(value)
        return self._entries.get(tuple(key))

    def entry(self, key: Key) -> Optional[ClusterList]:
        """Direct entry lookup (for maintenance walks)."""
        return self._entries.get(key)

    def entries(self) -> Iterator[Tuple[Key, ClusterList]]:
        """All (key, cluster list) pairs."""
        return iter(self._entries.items())

    @property
    def entry_count(self) -> int:
        """Number of distinct access predicates (hash entries)."""
        return len(self._entries)

    def __len__(self) -> int:
        """Total subscriptions stored (the paper's |H|)."""
        return self._count

    def memory_bytes(self) -> int:
        """Approximate resident bytes: dict overhead + clusters."""
        n = 64 + 48 * len(self._entries)
        for lst in self._entries.values():
            n += lst.memory_bytes()
        return n

    def __repr__(self) -> str:
        return (
            f"MultiAttrHashTable(schema={'/'.join(self.schema)}, "
            f"entries={len(self._entries)}, subs={self._count})"
        )


class HashingConfiguration:
    """The set of multi-attribute hash tables currently in force."""

    __slots__ = ("_tables",)

    def __init__(self) -> None:
        self._tables: Dict[Schema, MultiAttrHashTable] = {}

    def table(self, schema: Schema) -> Optional[MultiAttrHashTable]:
        """The table for *schema*, or None."""
        return self._tables.get(schema)

    def ensure_table(self, schema: Schema) -> MultiAttrHashTable:
        """Get-or-create the table for *schema*."""
        tbl = self._tables.get(schema)
        if tbl is None:
            tbl = self._tables[schema] = MultiAttrHashTable(schema)
        return tbl

    def drop_table(self, schema: Schema) -> MultiAttrHashTable:
        """Remove and return a table (KeyError if absent)."""
        return self._tables.pop(schema)

    def schemas(self) -> Tuple[Schema, ...]:
        """All table schemas (insertion order)."""
        return tuple(self._tables)

    def tables(self) -> Iterator[MultiAttrHashTable]:
        """All tables."""
        return iter(self._tables.values())

    def __contains__(self, schema: Schema) -> bool:
        return schema in self._tables

    def __len__(self) -> int:
        return len(self._tables)

    def eligible_schemas(self, eq_attributes: frozenset) -> List[Schema]:
        """Schemas usable by a subscription with equality attrs *eq_attributes*."""
        return [s for s in self._tables if eq_attributes.issuperset(s)]

    def memory_bytes(self) -> int:
        """Approximate resident bytes across tables."""
        return sum(t.memory_bytes() for t in self._tables.values())

    def __repr__(self) -> str:
        schemas = ["/".join(s) for s in self._tables]
        return f"HashingConfiguration({schemas})"
