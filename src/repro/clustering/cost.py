"""The cost model of Section 3: matching cost and space cost.

Implements the simplified matching-cost formula (3.2)::

    matching(S, C, H) =  K_r · |H|
                       + Σ_{H}  μ(H) · (C_h + K_h · |H.A|)
                       + Σ_{s}  ν(C(s).p) · checking(C(s).p, s)

with ``checking(p, s)`` linear in the number of residual predicates, and
the space formula::

    space(S, C, H) = Σ_H (i_space + h_space · entries(H))
                   + K_space · Σ_s |residual refs of s|

The constants are dimensionless "work units"; the paper calibrates them
implicitly through its implementation, we expose them as a dataclass so
ablation benchmarks can sweep them.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Iterable, Mapping, Tuple

from repro.clustering.access import Schema
from repro.clustering.statistics import Statistics


@dataclasses.dataclass(frozen=True)
class CostConstants:
    """Calibration constants of the cost formulas.

    Attributes
    ----------
    k_retrieve:
        ``K_r`` — per-table cost of finding the relevant indexes.
    c_hash:
        ``C_h`` — fixed cost of one hash-function evaluation.
    k_hash:
        ``K_h`` — per-schema-attribute cost of the hash function.
    c_check:
        fixed cost of touching one subscription column.
    k_check:
        per-residual-predicate cost of checking one subscription.
    i_space:
        bytes to create one empty hash table.
    h_space:
        bytes per hash-table entry (access predicate).
    k_space:
        bytes per stored residual bit reference.
    id_space:
        bytes per stored subscription id (the subscription line).
    """

    k_retrieve: float = 1.0
    c_hash: float = 2.0
    k_hash: float = 1.0
    c_check: float = 1.0
    k_check: float = 1.0
    i_space: float = 512.0
    h_space: float = 48.0
    k_space: float = 4.0
    id_space: float = 8.0


#: Aggregate description of one *signature group*: all subscriptions that
#: share (equality-attribute set, residual predicate profile).  The greedy
#: optimizer works on these groups rather than on individual
#: subscriptions, which is what gives it the paper's |S|·|GA|² bound.
@dataclasses.dataclass(frozen=True)
class SignatureGroup:
    """Subscriptions sharing equality attributes and total size."""

    eq_attributes: frozenset
    total_predicates: int
    count: int

    def residual(self, schema_len: int) -> int:
        """Residual predicates left after a schema of that length."""
        return self.total_predicates - schema_len


class CostModel:
    """Evaluates formulas 3.1/3.2 and the space formula."""

    def __init__(
        self,
        stats: Statistics,
        constants: CostConstants = CostConstants(),
    ) -> None:
        self.stats = stats
        self.constants = constants

    # ------------------------------------------------------------------
    # per-component costs
    # ------------------------------------------------------------------
    def table_overhead(self, schema: Schema) -> float:
        """Per-event cost contributed by one table's existence:
        retrieval plus μ-weighted hashing."""
        c = self.constants
        mu = self.stats.mu_of_schema(schema)
        return c.k_retrieve + mu * (c.c_hash + c.k_hash * len(schema))

    def check_cost(self, residual_predicates: int) -> float:
        """Cost of checking one subscription with that many residual bits."""
        c = self.constants
        return c.c_check + c.k_check * residual_predicates

    def expected_group_check_cost(self, group: SignatureGroup, schema: Schema) -> float:
        """Per-event expected checking cost of placing *group* under *schema*.

        ν(p)·checking(p, s) summed over the group, with ν averaged over
        the value distribution (the optimizer plans before knowing each
        subscription's constants).
        """
        nu = self.stats.expected_nu_schema(schema)
        return group.count * nu * self.check_cost(group.residual(len(schema)))

    # ------------------------------------------------------------------
    # whole-clustering costs
    # ------------------------------------------------------------------
    def matching_cost(
        self,
        schemas: Iterable[Schema],
        assignment: Mapping[SignatureGroup, Schema],
    ) -> float:
        """Formula 3.2 for a set of tables plus a group→schema assignment."""
        total = sum(self.table_overhead(s) for s in schemas)
        for group, schema in assignment.items():
            total += self.expected_group_check_cost(group, schema)
        return total

    def space_cost(
        self,
        assignment: Mapping[SignatureGroup, Schema],
        entries_per_schema: Mapping[Schema, float],
    ) -> float:
        """Space formula: table + entry overhead + cluster storage."""
        c = self.constants
        schemas = set(assignment.values()) | set(entries_per_schema)
        total = c.i_space * len(schemas)
        for schema, entries in entries_per_schema.items():
            total += c.h_space * entries
        for group, schema in assignment.items():
            residual = group.residual(len(schema))
            total += group.count * (c.k_space * residual + c.id_space)
        return total

    # ------------------------------------------------------------------
    # entry estimation
    # ------------------------------------------------------------------
    def estimate_entries(
        self,
        schema: Schema,
        subscriptions: int,
        domains: Mapping[str, int],
        default_domain: int = 35,
    ) -> float:
        """Expected number of distinct hash entries for *schema*.

        Bounded above by both the subscription count and the product of
        the attribute domains (balls-into-bins expectation).
        """
        combos = 1.0
        for attribute in schema:
            combos *= max(1, domains.get(attribute, default_domain))
            if combos > 1e12:
                break
        if combos >= 1e12 or subscriptions <= 0:
            return float(subscriptions)
        # Expected occupied bins with n balls into m bins.
        m = combos
        n = float(subscriptions)
        return m * (1.0 - (1.0 - 1.0 / m) ** n)


def group_signatures(
    eq_sets_and_sizes: Iterable[Tuple[frozenset, int]],
) -> Dict[Tuple[frozenset, int], SignatureGroup]:
    """Aggregate (A(s), size) observations into SignatureGroups."""
    counts: Dict[Tuple[frozenset, int], int] = {}
    for eq_attrs, size in eq_sets_and_sizes:
        key = (eq_attrs, size)
        counts[key] = counts.get(key, 0) + 1
    return {
        key: SignatureGroup(eq_attributes=key[0], total_predicates=key[1], count=n)
        for key, n in counts.items()
    }
