"""Access predicates: conjunctions of equality predicates (Section 3.1).

An access predicate is the key under which a subscription is clustered: a
set of equality predicates, pairwise distinct over their attributes.  Its
*schema* is the attribute set; its *key* is the value tuple in schema
order — the probe key of the multi-attribute hash table for that schema.
"""

from __future__ import annotations

from typing import Dict, Iterable, Tuple

from repro.core.errors import ClusteringError
from repro.core.types import Predicate, Subscription, Value

#: A hash-table schema: attributes in sorted order.
Schema = Tuple[str, ...]
#: A hash-table probe key: the values of a schema's attributes, in order.
Key = Tuple[Value, ...]


def normalize_schema(attributes: Iterable[str]) -> Schema:
    """Sorted, duplicate-free attribute tuple."""
    return tuple(sorted(set(attributes)))


class AccessPredicate:
    """Immutable conjunction of equality predicates keyed for hashing."""

    __slots__ = ("predicates", "schema", "key")

    def __init__(self, predicates: Iterable[Predicate]) -> None:
        preds = tuple(sorted(predicates, key=lambda p: p.attribute))
        by_attr: Dict[str, Predicate] = {}
        for p in preds:
            if not p.operator.is_equality:
                raise ClusteringError(
                    f"access predicates are equality-only, got {p!r}"
                )
            if p.attribute in by_attr:
                raise ClusteringError(
                    f"access predicate has two predicates on {p.attribute!r}"
                )
            by_attr[p.attribute] = p
        if not preds:
            raise ClusteringError("access predicate must be non-empty")
        object.__setattr__(self, "predicates", preds)
        object.__setattr__(self, "schema", tuple(p.attribute for p in preds))
        object.__setattr__(self, "key", tuple(p.value for p in preds))

    def __setattr__(self, name: str, value: object) -> None:  # pragma: no cover
        raise AttributeError("AccessPredicate is immutable")

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, AccessPredicate):
            return NotImplemented
        return self.predicates == other.predicates

    def __hash__(self) -> int:
        return hash(self.predicates)

    def __len__(self) -> int:
        return len(self.predicates)

    def __repr__(self) -> str:
        body = " and ".join(f"{a}={v!r}" for a, v in zip(self.schema, self.key))
        return f"AccessPredicate({body})"


def access_for_schema(sub: Subscription, schema: Schema) -> AccessPredicate:
    """The access predicate of *sub* over *schema*.

    Requires every schema attribute to carry an equality predicate in the
    subscription (that is what ``schema ⊆ A(s)`` means).
    """
    wanted = set(schema)
    chosen = []
    for p in sub.predicates:
        if p.operator.is_equality and p.attribute in wanted:
            chosen.append(p)
            wanted.discard(p.attribute)
    if wanted:
        raise ClusteringError(
            f"subscription {sub.id!r} lacks equality predicates on {sorted(wanted)}"
        )
    return AccessPredicate(chosen)


def key_for_schema(sub: Subscription, schema: Schema) -> Key:
    """Probe-key values of *sub* for *schema* (same order as the schema)."""
    values: Dict[str, Value] = {}
    for p in sub.predicates:
        if p.operator.is_equality and p.attribute in schema and p.attribute not in values:
            values[p.attribute] = p.value
    try:
        return tuple(values[a] for a in schema)
    except KeyError as missing:
        raise ClusteringError(
            f"subscription {sub.id!r} lacks an equality predicate on {missing}"
        ) from None
