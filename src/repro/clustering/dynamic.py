"""Support types for the dynamic clustering algorithm (paper Section 4).

The maintenance algorithm is parameterized by three thresholds — *BMmax*
(cluster benefit margin triggering redistribution), *Bcreate* (potential
hash-table benefit triggering creation) and *Bdelete* (existing table
benefit below which it is dropped) — plus housekeeping knobs this module
bundles in :class:`DynamicParams`.

:class:`PotentialTableTracker` is the paper's ``PH`` bookkeeping: for
each *potential* (not yet created) hash-table schema it accumulates the
benefit ``B(H)`` (≈ number of subscriptions that would move there) and
the set of candidate cluster entries holding those subscriptions, with
per-subscription marks so a subscription is counted at most once.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Callable, Dict, Iterable, List, Optional, Set, Tuple

from repro.clustering.access import Key, Schema

#: Identity of one cluster-list entry: (table schema, probe key).
EntryId = Tuple[Schema, Key]


@dataclasses.dataclass(frozen=True)
class DynamicParams:
    """Thresholds and housekeeping knobs of the maintenance algorithm.

    Attributes
    ----------
    bm_max:
        *BMmax* — redistribute a cluster entry when its benefit margin
        ``ν(p)·|entry|`` (expected subscription checks per event caused
        by the entry) exceeds this.
    b_create:
        *Bcreate* — create a potential hash table once its accumulated
        benefit (subscriptions that would move) reaches this.
    b_delete:
        *Bdelete* — drop a (non-singleton) table whose benefit ``≈ |H|``
        falls below this, redistributing its members.
    maintenance_interval:
        run the periodic sweep every this many operations (inserts,
        deletes and events all count — "updated periodically after a
        certain number of subscription changes and/or incoming events").
    max_schema_size:
        largest access-predicate schema ever considered.
    min_improvement:
        a move or potential table must cut the subscription's ν by at
        least this factor (new ν ≤ min_improvement · current ν) to count;
        guards against thrashing between near-equal tables.  Applied as a
        log-bucket gap (``round(-ln(min_improvement))``), so the default
        0.15 demands ≈ two factor-e steps — above per-value estimator
        noise, far below the singleton→pair improvement (≈ e^3.5).
    growth_factor:
        an entry already processed is reconsidered only after its benefit
        margin grows by this factor (amortizes repeated handling of an
        entry whose residents cannot improve yet).
    """

    bm_max: float = 4.0
    b_create: int = 64
    b_delete: int = 4
    maintenance_interval: int = 2048
    max_schema_size: int = 3
    min_improvement: float = 0.15
    growth_factor: float = 1.5

    def __post_init__(self) -> None:
        if self.bm_max <= 0:
            raise ValueError("bm_max must be positive")
        if self.b_create < 1 or self.b_delete < 0:
            raise ValueError("creation/deletion thresholds must be non-negative")
        if not 0.0 < self.min_improvement <= 1.0:
            raise ValueError("min_improvement must be in (0, 1]")
        if self.growth_factor < 1.0:
            raise ValueError("growth_factor must be >= 1")


class PotentialTableTracker:
    """Benefit accounting for not-yet-created hash tables."""

    __slots__ = ("_benefit", "_candidates", "_marked", "on_ready")

    def __init__(self) -> None:
        self._benefit: Dict[Schema, int] = {}
        self._candidates: Dict[Schema, Set[EntryId]] = {}
        self._marked: Set[Any] = set()
        #: Observability hook: called once per schema each time
        #: :meth:`ready` reports it past the creation threshold (the
        #: dynamic matcher wires this to a *Bcreate*-crossing counter).
        self.on_ready: Optional[Callable[[Schema], None]] = None

    # ------------------------------------------------------------------
    # accumulation
    # ------------------------------------------------------------------
    def is_marked(self, sub_id: Any) -> bool:
        """Has this subscription already contributed benefit?"""
        return sub_id in self._marked

    def note(self, sub_id: Any, schemas: Iterable[Schema], entry: EntryId) -> None:
        """Count one unmarked subscription toward each potential schema."""
        if sub_id in self._marked:
            return
        noted = False
        for schema in schemas:
            self._benefit[schema] = self._benefit.get(schema, 0) + 1
            self._candidates.setdefault(schema, set()).add(entry)
            noted = True
        if noted:
            self._marked.add(sub_id)

    def unmark(self, sub_id: Any) -> None:
        """Forget a subscription's mark (after it moved or was removed)."""
        self._marked.discard(sub_id)

    def reset_votes(self, eq_attributes: frozenset) -> None:
        """Paper's ``B(H) = 1`` on moving a marked subscription.

        A marked subscription that found a home in an *existing* table
        no longer justifies the potential tables it voted for; its votes
        cannot be subtracted individually (we don't record per-sub
        ballots), so — following the paper's pseudocode — every potential
        schema it could have voted for is knocked back to 1.
        """
        for schema in self._benefit:
            if eq_attributes.issuperset(schema):
                self._benefit[schema] = 1

    # ------------------------------------------------------------------
    # harvesting
    # ------------------------------------------------------------------
    def ready(self, b_create: int) -> List[Schema]:
        """Potential schemas whose benefit reached *b_create* (best first)."""
        ready = [s for s, b in self._benefit.items() if b >= b_create]
        ready.sort(key=lambda s: (-self._benefit[s], s))
        if self.on_ready is not None:
            for schema in ready:
                self.on_ready(schema)
        return ready

    def candidates_of(self, schema: Schema) -> Tuple[EntryId, ...]:
        """Candidate cluster entries recorded for *schema*."""
        return tuple(sorted(self._candidates.get(schema, ())))

    def benefit_of(self, schema: Schema) -> int:
        """Accumulated benefit of a potential schema."""
        return self._benefit.get(schema, 0)

    def clear_schema(self, schema: Schema) -> None:
        """Drop a potential schema's accounting (after creation)."""
        self._benefit.pop(schema, None)
        self._candidates.pop(schema, None)

    def reset(self) -> None:
        """Forget everything (used when the whole config is rebuilt)."""
        self._benefit.clear()
        self._candidates.clear()
        self._marked.clear()

    @property
    def potential_count(self) -> int:
        """Number of tracked potential schemas."""
        return len(self._benefit)

    def __repr__(self) -> str:
        top = sorted(self._benefit.items(), key=lambda kv: -kv[1])[:3]
        return f"PotentialTableTracker(potentials={len(self._benefit)}, top={top})"
