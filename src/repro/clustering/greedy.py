"""The static greedy clustering optimizer (paper Section 3.2).

Starts from the "natural" clustering — one singleton schema per attribute
that carries equality predicates (those hash structures exist anyway for
the predicate phase) — then repeatedly adds the candidate multi-attribute
schema with the highest positive *benefit per unit space*, until the
space bound is hit or no candidate helps.

The search works on :class:`SignatureGroup` aggregates (subscriptions
sharing equality-attribute set and size), so each benefit evaluation is
O(#groups), giving the paper's ``|S| · |GA(S)|²`` worst case instead of
per-subscription enumeration.
"""

from __future__ import annotations

import dataclasses
import itertools
import math
from typing import Dict, Iterable, List, Mapping, Optional, Tuple

from repro.clustering.access import Schema, normalize_schema
from repro.clustering.cost import CostModel, SignatureGroup, group_signatures
from repro.clustering.statistics import Statistics, UniformStatistics
from repro.core.types import Subscription


def candidate_schemas(
    eq_attribute_sets: Iterable[frozenset],
    max_schema_size: int = 3,
) -> List[Schema]:
    """``GA(S)``: attribute groups derivable from the subscriptions.

    All non-empty subsets (up to *max_schema_size*) of every occurring
    equality-attribute set.  Bounded by ``2^|A|`` as in the paper; the
    size cap keeps hash keys small, matching the paper's observation that
    maximal conjunctions are not automatically best.
    """
    seen = set()
    out: List[Schema] = []
    for attrs in eq_attribute_sets:
        names = sorted(attrs)
        for k in range(1, min(len(names), max_schema_size) + 1):
            for combo in itertools.combinations(names, k):
                if combo not in seen:
                    seen.add(combo)
                    out.append(combo)
    out.sort()
    return out


@dataclasses.dataclass
class ClusteringPlan:
    """Output of the optimizer: chosen schemas plus assignment metadata."""

    schemas: Tuple[Schema, ...]
    #: group -> chosen schema (the best(S, A) witness).
    assignment: Dict[Tuple[frozenset, int], Schema]
    #: estimated per-event matching cost under the plan.
    matching_cost: float
    #: estimated space cost (bytes-equivalent units).
    space_cost: float
    #: statistics provider used when the plan was computed.
    stats: Statistics

    def choose_schema(self, sub: Subscription) -> Optional[Schema]:
        """Best plan schema for one subscription (None if no equality preds).

        Prefers the group assignment computed during optimization; falls
        back to the cheapest eligible schema for signatures unseen at
        planning time.
        """
        eq_attrs = sub.equality_attributes
        if not eq_attrs:
            return None
        key = (eq_attrs, sub.size)
        schema = self.assignment.get(key)
        if schema is not None:
            return schema
        eligible = [s for s in self.schemas if eq_attrs.issuperset(s)]
        if not eligible:
            return None
        return min(
            eligible,
            key=lambda s: (self.stats.expected_nu_schema(s) * (sub.size - len(s) + 1), s),
        )


class GreedyClusteringOptimizer:
    """Computes a locally-optimal hashing-configuration schema set."""

    def __init__(
        self,
        stats: Statistics,
        cost_model: Optional[CostModel] = None,
        max_space: float = math.inf,
        max_schema_size: int = 3,
        domains: Optional[Mapping[str, int]] = None,
        default_domain: int = 35,
    ) -> None:
        self.stats = stats
        self.cost = cost_model if cost_model is not None else CostModel(stats)
        self.max_space = max_space
        self.max_schema_size = max_schema_size
        if domains is None and isinstance(stats, UniformStatistics):
            domains = {}
            default_domain = stats.domain("__default__")
        self.domains = dict(domains or {})
        self.default_domain = default_domain

    # ------------------------------------------------------------------
    # main entry point
    # ------------------------------------------------------------------
    def optimize(self, subscriptions: Iterable[Subscription]) -> ClusteringPlan:
        """Run the greedy loop of Section 3.2 over *subscriptions*."""
        signatures = group_signatures(
            (s.equality_attributes, s.size) for s in subscriptions if s.equality_attributes
        )
        groups = list(signatures.values())
        if not groups:
            return ClusteringPlan((), {}, 0.0, 0.0, self.stats)

        singletons: List[Schema] = sorted(
            {(a,) for g in groups for a in g.eq_attributes}
        )
        candidates = candidate_schemas(
            (g.eq_attributes for g in groups), self.max_schema_size
        )
        chosen: List[Schema] = list(singletons)
        chosen_set = set(chosen)

        # Current best assignment: group -> (schema, per-event check cost).
        best: Dict[SignatureGroup, Tuple[Schema, float]] = {}
        for g in groups:
            schema, cost = self._best_for_group(g, chosen)
            best[g] = (schema, cost)

        space = self._space(best)
        while space < self.max_space:
            pick = self._pick_candidate(groups, best, candidates, chosen_set, space)
            if pick is None:
                break
            schema, improved = pick
            chosen.append(schema)
            chosen_set.add(schema)
            for g, new_cost in improved.items():
                best[g] = (schema, new_cost)
            space = self._space(best)

        assignment = {
            (g.eq_attributes, g.total_predicates): best[g][0] for g in groups
        }
        matching = sum(self.cost.table_overhead(s) for s in chosen) + sum(
            c for (_s, c) in best.values()
        )
        return ClusteringPlan(
            schemas=tuple(sorted(chosen)),
            assignment=assignment,
            matching_cost=matching,
            space_cost=space,
            stats=self.stats,
        )

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _best_for_group(
        self, group: SignatureGroup, schemas: Iterable[Schema]
    ) -> Tuple[Schema, float]:
        """Cheapest eligible schema for one group (ties break lexically)."""
        best_schema: Optional[Schema] = None
        best_cost = math.inf
        for schema in schemas:
            if not group.eq_attributes.issuperset(schema):
                continue
            c = self.cost.expected_group_check_cost(group, schema)
            if c < best_cost or (c == best_cost and (best_schema is None or schema < best_schema)):
                best_schema, best_cost = schema, c
        if best_schema is None:
            raise AssertionError("group has no eligible singleton schema")
        return best_schema, best_cost

    def _space(self, best: Mapping[SignatureGroup, Tuple[Schema, float]]) -> float:
        assignment = {g: s for g, (s, _c) in best.items()}
        subs_per_schema: Dict[Schema, int] = {}
        for g, schema in assignment.items():
            subs_per_schema[schema] = subs_per_schema.get(schema, 0) + g.count
        entries = {
            schema: self.cost.estimate_entries(
                schema, n, self.domains, self.default_domain
            )
            for schema, n in subs_per_schema.items()
        }
        return self.cost.space_cost(assignment, entries)

    def _pick_candidate(
        self,
        groups: List[SignatureGroup],
        best: Dict[SignatureGroup, Tuple[Schema, float]],
        candidates: List[Schema],
        chosen_set: set,
        current_space: float,
    ) -> Optional[Tuple[Schema, Dict[SignatureGroup, float]]]:
        """Candidate with max positive benefit per unit space, if any."""
        best_pick: Optional[Tuple[Schema, Dict[SignatureGroup, float]]] = None
        best_ratio = 0.0
        for schema in candidates:
            if schema in chosen_set:
                continue
            improved: Dict[SignatureGroup, float] = {}
            check_benefit = 0.0
            for g in groups:
                if not g.eq_attributes.issuperset(schema):
                    continue
                new_cost = self.cost.expected_group_check_cost(g, schema)
                cur_cost = best[g][1]
                if new_cost < cur_cost:
                    improved[g] = new_cost
                    check_benefit += cur_cost - new_cost
            if not improved:
                continue
            benefit = check_benefit - self.cost.table_overhead(schema)
            if benefit <= 0:
                continue
            trial = dict(best)
            for g, c in improved.items():
                trial[g] = (schema, c)
            delta_space = max(0.0, self._space(trial) - current_space)
            ratio = math.inf if delta_space == 0 else benefit / delta_space
            if ratio > best_ratio:
                best_ratio = ratio
                best_pick = (schema, improved)
        if best_pick is None:
            return None
        # Respect the bound: refuse a pick that would blow the budget.
        schema, improved = best_pick
        trial = dict(best)
        for g, c in improved.items():
            trial[g] = (schema, c)
        if self._space(trial) > self.max_space:
            return None
        return best_pick
