"""Exhaustive clustering optimization — the §3.2 baseline the greedy
algorithm replaces.

The paper rejects exhaustive search because it examines
``2^(|S|·P̄)`` clustering instances; over *signature groups* (which is
how both our greedy and this module reason) the space collapses to
``2^|GA(S)|`` hashing-configuration schemas × one best assignment each,
which is tractable for small attribute universes.  That makes a ground
truth against which the greedy's local optimum can be measured — the
validation the paper leaves implicit.
"""

from __future__ import annotations

import itertools
import math
from typing import Dict, Iterable, List, Mapping, Optional, Tuple

from repro.clustering.access import Schema
from repro.clustering.cost import CostModel, SignatureGroup, group_signatures
from repro.clustering.greedy import ClusteringPlan, candidate_schemas
from repro.clustering.statistics import Statistics, UniformStatistics
from repro.core.types import Subscription


class ExhaustiveClusteringOptimizer:
    """True-optimum search over hashing-configuration schemas.

    Complexity is ``2^(|GA| - |singletons|) · |groups| · |GA|``: every
    subset of the non-singleton candidates is tried on top of the
    mandatory singletons (which exist anyway for the predicate phase).
    Guard rails refuse absurd instances.
    """

    def __init__(
        self,
        stats: Statistics,
        cost_model: Optional[CostModel] = None,
        max_space: float = math.inf,
        max_schema_size: int = 3,
        max_candidates: int = 16,
        domains: Optional[Mapping[str, int]] = None,
        default_domain: int = 35,
    ) -> None:
        self.stats = stats
        self.cost = cost_model if cost_model is not None else CostModel(stats)
        self.max_space = max_space
        self.max_schema_size = max_schema_size
        self.max_candidates = max_candidates
        if domains is None and isinstance(stats, UniformStatistics):
            domains = {}
        self.domains = dict(domains or {})
        self.default_domain = default_domain

    def optimize(self, subscriptions: Iterable[Subscription]) -> ClusteringPlan:
        """Enumerate every configuration; return the cheapest feasible one."""
        signatures = group_signatures(
            (s.equality_attributes, s.size)
            for s in subscriptions
            if s.equality_attributes
        )
        groups = list(signatures.values())
        if not groups:
            return ClusteringPlan((), {}, 0.0, 0.0, self.stats)
        singletons: List[Schema] = sorted({(a,) for g in groups for a in g.eq_attributes})
        multis = [
            s
            for s in candidate_schemas(
                (g.eq_attributes for g in groups), self.max_schema_size
            )
            if len(s) > 1
        ]
        if len(multis) > self.max_candidates:
            raise ValueError(
                f"{len(multis)} candidate schemas exceed the exhaustive "
                f"bound of {self.max_candidates}; use the greedy optimizer"
            )
        best_plan: Optional[Tuple[float, List[Schema], Dict[SignatureGroup, Schema]]] = None
        for k in range(len(multis) + 1):
            for extra in itertools.combinations(multis, k):
                schemas = singletons + list(extra)
                assignment = {
                    g: self._best_for_group(g, schemas) for g in groups
                }
                matching = self.cost.matching_cost(
                    schemas, {g: s for g, (s, _c) in assignment.items()}
                )
                # The singleton-only configuration (k == 0) is always
                # admissible — those structures exist for the predicate
                # phase regardless (same convention as the greedy's A0);
                # the space bound constrains only *additional* tables.
                if k > 0 and self._space(assignment) > self.max_space:
                    continue
                if best_plan is None or matching < best_plan[0]:
                    best_plan = (
                        matching,
                        schemas,
                        {g: s for g, (s, _c) in assignment.items()},
                    )
        assert best_plan is not None
        matching, schemas, assignment = best_plan
        return ClusteringPlan(
            schemas=tuple(sorted(schemas)),
            assignment={
                (g.eq_attributes, g.total_predicates): s
                for g, s in assignment.items()
            },
            matching_cost=matching,
            space_cost=self._space(
                {g: (s, 0.0) for g, s in assignment.items()}
            ),
            stats=self.stats,
        )

    # ------------------------------------------------------------------
    # internals (mirror the greedy's evaluation exactly)
    # ------------------------------------------------------------------
    def _best_for_group(
        self, group: SignatureGroup, schemas: List[Schema]
    ) -> Tuple[Schema, float]:
        best: Optional[Tuple[Schema, float]] = None
        for schema in schemas:
            if not group.eq_attributes.issuperset(schema):
                continue
            c = self.cost.expected_group_check_cost(group, schema)
            if best is None or c < best[1] or (c == best[1] and schema < best[0]):
                best = (schema, c)
        assert best is not None
        return best

    def _space(self, assignment: Dict[SignatureGroup, Tuple[Schema, float]]) -> float:
        plain = {g: s for g, (s, _c) in assignment.items()}
        subs_per_schema: Dict[Schema, int] = {}
        for g, schema in plain.items():
            subs_per_schema[schema] = subs_per_schema.get(schema, 0) + g.count
        entries = {
            schema: self.cost.estimate_entries(
                schema, n, self.domains, self.default_domain
            )
            for schema, n in subs_per_schema.items()
        }
        return self.cost.space_cost(plain, entries)
