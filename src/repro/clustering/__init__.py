"""Cost-based clustering: statistics, cost model, greedy and dynamic."""

from repro.clustering.access import (
    AccessPredicate,
    Key,
    Schema,
    access_for_schema,
    key_for_schema,
    normalize_schema,
)
from repro.clustering.cost import (
    CostConstants,
    CostModel,
    SignatureGroup,
    group_signatures,
)
from repro.clustering.dynamic import DynamicParams, PotentialTableTracker
from repro.clustering.exhaustive import ExhaustiveClusteringOptimizer
from repro.clustering.greedy import (
    ClusteringPlan,
    GreedyClusteringOptimizer,
    candidate_schemas,
)
from repro.clustering.hashconfig import HashingConfiguration, MultiAttrHashTable
from repro.clustering.statistics import (
    EventStatistics,
    Statistics,
    UniformStatistics,
    nu_of_predicates,
)

__all__ = [
    "AccessPredicate",
    "ClusteringPlan",
    "CostConstants",
    "CostModel",
    "DynamicParams",
    "EventStatistics",
    "ExhaustiveClusteringOptimizer",
    "GreedyClusteringOptimizer",
    "HashingConfiguration",
    "Key",
    "MultiAttrHashTable",
    "PotentialTableTracker",
    "Schema",
    "SignatureGroup",
    "Statistics",
    "UniformStatistics",
    "access_for_schema",
    "candidate_schemas",
    "group_signatures",
    "key_for_schema",
    "normalize_schema",
    "nu_of_predicates",
]
