"""Event-stream statistics: the ν and μ estimators of the cost model.

The cost formulas of Section 3 need two probabilities:

* ``ν(p)`` — probability that an incoming event satisfies access
  predicate ``p`` (a conjunction of equality predicates);
* ``μ(H)`` — probability that an incoming event's schema includes the
  schema of hash table ``H``.

Two providers are implemented behind one protocol:

* :class:`UniformStatistics` — the closed form under the paper's
  workload-generator assumptions (attributes present with known
  probability, values uniform over a known domain).  Used by the analytic
  tests (Example 3.1) and as the prior before any event is observed.
* :class:`EventStatistics` — online estimates from the observed event
  stream, with periodic exponential decay so the estimator tracks drift
  (this is what lets the dynamic algorithm adapt in Figure 4(b)).

Both assume attribute independence, exactly as the paper's Example 3.1
("three independently distributed attributes") does.
"""

from __future__ import annotations

from typing import Dict, Iterable, Mapping, Optional, Protocol, Tuple

from repro.core.types import Event, Predicate, Value

#: (attribute, value) pair — the unit ν composes over.
Pair = Tuple[str, Value]


class Statistics(Protocol):
    """Probability estimates consumed by the cost model."""

    def attr_prob(self, attribute: str) -> float:
        """P(attribute present in an event)."""
        ...

    def pair_prob(self, attribute: str, value: Value) -> float:
        """P(attribute present and carrying exactly *value*)."""
        ...

    def nu_of_pairs(self, pairs: Iterable[Pair]) -> float:
        """ν of a concrete conjunction of equality predicates."""
        ...

    def mu_of_schema(self, schema: Iterable[str]) -> float:
        """μ: P(event schema includes *schema*)."""
        ...

    def expected_nu_schema(self, schema: Iterable[str]) -> float:
        """ν of a *random* access predicate over *schema* (value-averaged)."""
        ...


def nu_of_predicates(stats: "Statistics", predicates: Iterable[Predicate]) -> float:
    """ν of a set of equality predicates via their (attr, value) pairs."""
    return stats.nu_of_pairs((p.attribute, p.value) for p in predicates)


class UniformStatistics:
    """Closed-form statistics for uniform workloads.

    Parameters
    ----------
    domains:
        attribute → number of distinct values the attribute takes in
        events (the paper's ``u_A - l_A + 1``).
    attr_probs:
        attribute → probability of appearing in an event schema; defaults
        to 1.0 (the paper's events carry all ``n_A = 32`` attributes).
    default_domain:
        fallback cardinality for unlisted attributes.
    """

    def __init__(
        self,
        domains: Optional[Mapping[str, int]] = None,
        attr_probs: Optional[Mapping[str, float]] = None,
        default_domain: int = 35,
        default_attr_prob: float = 1.0,
    ) -> None:
        self._domains = dict(domains or {})
        self._attr_probs = dict(attr_probs or {})
        self._default_domain = max(1, default_domain)
        self._default_attr_prob = min(1.0, max(0.0, default_attr_prob))

    def domain(self, attribute: str) -> int:
        """Cardinality assumed for *attribute*."""
        return self._domains.get(attribute, self._default_domain)

    def attr_prob(self, attribute: str) -> float:
        return self._attr_probs.get(attribute, self._default_attr_prob)

    def pair_prob(self, attribute: str, value: Value) -> float:
        return self.attr_prob(attribute) / self.domain(attribute)

    def nu_of_pairs(self, pairs: Iterable[Pair]) -> float:
        p = 1.0
        for attribute, value in pairs:
            p *= self.pair_prob(attribute, value)
        return p

    def mu_of_schema(self, schema: Iterable[str]) -> float:
        p = 1.0
        for attribute in schema:
            p *= self.attr_prob(attribute)
        return p

    def expected_nu_schema(self, schema: Iterable[str]) -> float:
        p = 1.0
        for attribute in schema:
            p *= self.attr_prob(attribute) / self.domain(attribute)
        return p


class EventStatistics:
    """Online ν/μ estimation over the observed event stream.

    Keeps, per attribute, a presence count and a value histogram.  Every
    ``decay_every`` observed events all counts are scaled by ``decay`` so
    old traffic fades — the estimator then tracks the value-skew drift the
    paper injects in Figure 4(b).  Falls back to a uniform prior (of
    ``prior_domain`` values) while an attribute has few observations.
    """

    def __init__(
        self,
        prior_domain: int = 35,
        prior_weight: float = 8.0,
        decay: float = 0.5,
        decay_every: int = 1000,
    ) -> None:
        if not 0.0 < decay <= 1.0:
            raise ValueError("decay must be in (0, 1]")
        self._prior_domain = max(1, prior_domain)
        self._prior_weight = max(0.0, prior_weight)
        self._decay = decay
        self._decay_every = max(1, decay_every)
        self._events = 0.0
        self._observed = 0
        self._presence: Dict[str, float] = {}
        self._values: Dict[str, Dict[Value, float]] = {}

    # ------------------------------------------------------------------
    # observation
    # ------------------------------------------------------------------
    def observe(self, event: Event) -> None:
        """Fold one event into the estimates."""
        self._events += 1.0
        self._observed += 1
        presence = self._presence
        values = self._values
        for attribute, value in event.items():
            presence[attribute] = presence.get(attribute, 0.0) + 1.0
            hist = values.get(attribute)
            if hist is None:
                hist = values[attribute] = {}
            hist[value] = hist.get(value, 0.0) + 1.0
        if self._observed % self._decay_every == 0 and self._decay < 1.0:
            self._apply_decay()

    def _apply_decay(self) -> None:
        d = self._decay
        self._events *= d
        for attribute in list(self._presence):
            self._presence[attribute] *= d
        for hist in self._values.values():
            for value in list(hist):
                hist[value] *= d
                if hist[value] < 1e-6:
                    del hist[value]

    @property
    def event_weight(self) -> float:
        """Decayed number of observed events."""
        return self._events

    @property
    def events_observed(self) -> int:
        """Raw (undecayed) number of observed events."""
        return self._observed

    # ------------------------------------------------------------------
    # estimates
    # ------------------------------------------------------------------
    def attr_prob(self, attribute: str) -> float:
        # Prior: attribute present (the paper's events carry every name).
        num = self._presence.get(attribute, 0.0) + self._prior_weight
        den = self._events + self._prior_weight
        return min(1.0, num / den) if den > 0 else 1.0

    def pair_prob(self, attribute: str, value: Value) -> float:
        hist = self._values.get(attribute)
        seen = hist.get(value, 0.0) if hist else 0.0
        present = self._presence.get(attribute, 0.0)
        # Smoothed conditional P(value | present).  The prior mass grows
        # with the observation count (adaptive shrinkage): per-value
        # counts stay small even after many events (35+ values share
        # them), and un-shrunk estimates are noisy enough to flip
        # clustering decisions between statistically identical values.
        # Halving the weight of the observed counts bounds the relative
        # noise while leaving genuine skew (hot values holding a large
        # fraction of the mass) clearly visible.
        prior = max(self._prior_weight, present)
        num = seen + prior / self._prior_domain
        den = present + prior
        cond = num / den if den > 0 else 1.0 / self._prior_domain
        return self.attr_prob(attribute) * min(1.0, cond)

    def nu_of_pairs(self, pairs: Iterable[Pair]) -> float:
        p = 1.0
        for attribute, value in pairs:
            p *= self.pair_prob(attribute, value)
        return p

    def mu_of_schema(self, schema: Iterable[str]) -> float:
        p = 1.0
        for attribute in schema:
            p *= self.attr_prob(attribute)
        return p

    def expected_nu_schema(self, schema: Iterable[str]) -> float:
        """Value-averaged ν: Σ_v P(v)² per attribute (collision probability).

        For a random subscription value drawn from the same distribution
        as event values, P(match) = Σ_v P(v)²; this is what makes skew
        *raise* ν (two hot values collide often), reproducing the
        Figure 4(b) degradation for the no-change strategy.
        """
        p = 1.0
        for attribute in schema:
            hist = self._values.get(attribute)
            present = self._presence.get(attribute, 0.0)
            prior_mass = self._prior_weight
            den = present + prior_mass
            if den <= 0:
                p *= self.attr_prob(attribute) / self._prior_domain
                continue
            # Collision probability with smoothing: treat prior mass as
            # uniformly spread over the prior domain.
            coll = 0.0
            if hist:
                for count in hist.values():
                    coll += (count / den) ** 2
            coll += (prior_mass / den) ** 2 / self._prior_domain
            p *= self.attr_prob(attribute) * min(1.0, coll)
        return p

    def value_distribution(self, attribute: str) -> Dict[Value, float]:
        """Normalized observed value distribution (no smoothing)."""
        hist = self._values.get(attribute, {})
        total = sum(hist.values())
        if total <= 0:
            return {}
        return {v: c / total for v, c in hist.items()}
