"""Phase 1 of the matching algorithm: the predicate index set.

Owns one :class:`OperatorIndex` per (attribute, operator class) actually
used by live predicates, routes inserted/removed predicates to the right
index, and evaluates an incoming event by probing, for each event pair,
the indexes of that attribute — setting the bit of every satisfied
predicate in the shared bit vector (paper Figure 2, step 1).
"""

from __future__ import annotations

from typing import Dict, Iterator, Optional, Tuple

from repro.core.bitvector import BitVector
from repro.core.types import Event, Operator, Predicate
from repro.indexes.base import OperatorIndex
from repro.indexes.hash_index import EqualityHashIndex
from repro.indexes.notequal import NotEqualIndex
from repro.indexes.ordered import IndexKind, make_ordered_index


class PredicateIndexSet:
    """All per-attribute predicate indexes plus the evaluation loop."""

    __slots__ = ("_kind", "_by_attr", "_count")

    def __init__(self, kind: IndexKind = IndexKind.SORTED_ARRAY) -> None:
        self._kind = kind
        # attribute -> {operator -> index}; range ops get one index each.
        self._by_attr: Dict[str, Dict[Operator, OperatorIndex]] = {}
        self._count = 0

    # ------------------------------------------------------------------
    # maintenance
    # ------------------------------------------------------------------
    def _index_for(self, attribute: str, op: Operator, create: bool) -> Optional[OperatorIndex]:
        ops = self._by_attr.get(attribute)
        if ops is None:
            if not create:
                return None
            ops = self._by_attr[attribute] = {}
        index = ops.get(op)
        if index is None and create:
            if op is Operator.EQ:
                index = EqualityHashIndex()
            elif op is Operator.NE:
                index = NotEqualIndex()
            else:
                index = make_ordered_index(op, self._kind)
            ops[op] = index
        return index

    def insert(self, predicate: Predicate, bit: int) -> None:
        """Index a newly-interned predicate under its bit slot."""
        index = self._index_for(predicate.attribute, predicate.operator, create=True)
        index.insert(predicate.value, bit)
        self._count += 1

    def remove(self, predicate: Predicate) -> int:
        """Un-index a predicate whose last reference was released."""
        index = self._index_for(predicate.attribute, predicate.operator, create=False)
        if index is None:
            raise KeyError(f"no index holds {predicate!r}")
        bit = index.remove(predicate.value)
        self._count -= 1
        if not index:
            ops = self._by_attr[predicate.attribute]
            del ops[predicate.operator]
            if not ops:
                del self._by_attr[predicate.attribute]
        return bit

    # ------------------------------------------------------------------
    # evaluation (phase 1)
    # ------------------------------------------------------------------
    def evaluate(self, event: Event, bits: BitVector) -> int:
        """Set the bit of every predicate satisfied by *event*.

        Returns the number of satisfied predicates (for instrumentation).
        String event values are only routed to the = and != indexes; the
        ordered indexes hold numeric constants exclusively, matching
        :meth:`Predicate.matches` semantics (ordered comparisons across
        types are false).  NaN event values skip the ordered indexes the
        same way — every ordered compare with NaN is false, and a bisect
        probe with NaN would report garbage prefixes instead.
        """
        n = 0
        by_attr = self._by_attr
        for attribute, value in event.items():
            ops = by_attr.get(attribute)
            if ops is None:
                continue
            is_str = isinstance(value, str)
            no_range = is_str or value != value
            for op, index in ops.items():
                if no_range and op.is_range:
                    continue
                for bit in index.satisfied(value):
                    bits.set(bit)
                    n += 1
        return n

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    @property
    def predicate_count(self) -> int:
        """Total predicates currently indexed."""
        return self._count

    @property
    def attributes(self) -> Tuple[str, ...]:
        """Attributes with at least one live predicate."""
        return tuple(self._by_attr)

    def operators_on(self, attribute: str) -> Tuple[Operator, ...]:
        """Operator classes indexed for one attribute."""
        return tuple(self._by_attr.get(attribute, ()))

    def entries(self) -> Iterator[Tuple[str, Operator, object, int]]:
        """Iterate all (attribute, operator, constant, bit) tuples."""
        for attribute, ops in self._by_attr.items():
            for op, index in ops.items():
                for value, bit in index.entries():
                    yield attribute, op, value, bit

    def __len__(self) -> int:
        return self._count
