"""Index for ``!=`` predicates.

A ``!=`` predicate is satisfied by *every* event value except its own
constant, so :meth:`satisfied` yields all stored bits minus (at most) one.
The cost is O(#distinct ``!=`` constants on the attribute) per event pair
— unavoidable, since that many predicates genuinely become true.  The
evaluation loop exploits the single-exclusion structure instead of
testing each constant.
"""

from __future__ import annotations

from typing import Dict, Iterator, Tuple

from repro.core.types import Value
from repro.indexes.base import OperatorIndex


class NotEqualIndex(OperatorIndex):
    """constant → bit dict for ``!=`` predicates on one attribute."""

    __slots__ = ("_bits",)

    def __init__(self) -> None:
        self._bits: Dict[Value, int] = {}

    def insert(self, value: Value, bit: int) -> None:
        if value in self._bits:
            raise KeyError(f"!= constant {value!r} already indexed")
        self._bits[value] = bit

    def remove(self, value: Value) -> int:
        return self._bits.pop(value)

    def satisfied(self, event_value: Value) -> Iterator[int]:
        excluded = self._bits.get(event_value)
        if excluded is None:
            yield from self._bits.values()
        else:
            for value, bit in self._bits.items():
                if bit != excluded:
                    yield bit

    def __len__(self) -> int:
        return len(self._bits)

    def entries(self) -> Iterator[Tuple[Value, int]]:
        return iter(self._bits.items())
