"""Predicate indexes: phase 1 of the two-phase matching algorithm."""

from repro.indexes.base import OperatorIndex
from repro.indexes.btree import BTree
from repro.indexes.composite import PredicateIndexSet
from repro.indexes.hash_index import EqualityHashIndex
from repro.indexes.notequal import NotEqualIndex
from repro.indexes.ordered import (
    BTreeOrderedIndex,
    IndexKind,
    SortedArrayOrderedIndex,
    make_ordered_index,
)

__all__ = [
    "BTree",
    "BTreeOrderedIndex",
    "EqualityHashIndex",
    "IndexKind",
    "NotEqualIndex",
    "OperatorIndex",
    "PredicateIndexSet",
    "SortedArrayOrderedIndex",
    "make_ordered_index",
]
