"""An in-memory B-tree keyed by numeric predicate values.

The paper (Section 2.3) guarantees linear index space "by using hash
indexes for equality predicates and simple B-Trees for inequalities".
This module provides that B-tree: keys are predicate constants, values are
bit-vector slots, and the operations the matcher needs are point
insert/delete plus *one-sided range scans* ("all keys strictly greater
than x", etc.), which is exactly how an inequality predicate set is
evaluated against an event value.

Classic algorithm: order-``t`` nodes hold between ``t-1`` and ``2t-1``
keys (root exempt below), split on the way down for inserts, merge/borrow
on the way up for deletes.  Duplicate keys are rejected — the predicate
registry guarantees one bit per distinct ``(attr, op, value)`` triple, and
each ``(op ,value)`` pair gets its own tree, so keys here are unique.
"""

from __future__ import annotations

from typing import Any, Iterator, List, Optional, Tuple


class _Node:
    """One B-tree node: sorted keys, parallel payloads, children."""

    __slots__ = ("keys", "vals", "children")

    def __init__(self, leaf: bool) -> None:
        self.keys: List[Any] = []
        self.vals: List[Any] = []
        self.children: List["_Node"] = [] if leaf else []
        if not leaf:
            self.children = []

    @property
    def leaf(self) -> bool:
        return not self.children


def _find(keys: List[Any], key: Any) -> int:
    """Index of the first element >= key (linear within a node is fine:
    nodes are small and Python-level bisect on tiny lists is a wash)."""
    lo, hi = 0, len(keys)
    while lo < hi:
        mid = (lo + hi) // 2
        if keys[mid] < key:
            lo = mid + 1
        else:
            hi = mid
    return lo


class BTree:
    """Unique-key B-tree with one-sided range scans."""

    def __init__(self, order: int = 16) -> None:
        if order < 2:
            raise ValueError("B-tree order must be >= 2")
        self._t = order
        self._root = _Node(leaf=True)
        self._len = 0

    def __len__(self) -> int:
        return self._len

    # ------------------------------------------------------------------
    # search
    # ------------------------------------------------------------------
    def get(self, key: Any, default: Any = None) -> Any:
        """Payload stored under *key*, or *default*."""
        node = self._root
        while True:
            i = _find(node.keys, key)
            if i < len(node.keys) and node.keys[i] == key:
                return node.vals[i]
            if node.leaf:
                return default
            node = node.children[i]

    def __contains__(self, key: Any) -> bool:
        _missing = object()
        return self.get(key, _missing) is not _missing

    # ------------------------------------------------------------------
    # insert
    # ------------------------------------------------------------------
    def insert(self, key: Any, value: Any) -> None:
        """Insert a unique key (KeyError on duplicates)."""
        root = self._root
        if len(root.keys) == 2 * self._t - 1:
            new_root = _Node(leaf=False)
            new_root.children.append(root)
            self._split_child(new_root, 0)
            self._root = new_root
            root = new_root
        self._insert_nonfull(root, key, value)
        self._len += 1

    def _split_child(self, parent: _Node, i: int) -> None:
        t = self._t
        child = parent.children[i]
        sibling = _Node(leaf=child.leaf)
        mid_key = child.keys[t - 1]
        mid_val = child.vals[t - 1]
        sibling.keys = child.keys[t:]
        sibling.vals = child.vals[t:]
        child.keys = child.keys[: t - 1]
        child.vals = child.vals[: t - 1]
        if not child.leaf:
            sibling.children = child.children[t:]
            child.children = child.children[:t]
        parent.keys.insert(i, mid_key)
        parent.vals.insert(i, mid_val)
        parent.children.insert(i + 1, sibling)

    def _insert_nonfull(self, node: _Node, key: Any, value: Any) -> None:
        while True:
            i = _find(node.keys, key)
            if i < len(node.keys) and node.keys[i] == key:
                raise KeyError(f"duplicate key {key!r}")
            if node.leaf:
                node.keys.insert(i, key)
                node.vals.insert(i, value)
                return
            child = node.children[i]
            if len(child.keys) == 2 * self._t - 1:
                self._split_child(node, i)
                if key == node.keys[i]:
                    raise KeyError(f"duplicate key {key!r}")
                if key > node.keys[i]:
                    i += 1
            node = node.children[i]

    # ------------------------------------------------------------------
    # delete
    # ------------------------------------------------------------------
    def delete(self, key: Any) -> Any:
        """Remove *key* and return its payload (KeyError if absent)."""
        val = self._delete(self._root, key)
        if not self._root.leaf and not self._root.keys:
            self._root = self._root.children[0]
        self._len -= 1
        return val

    def _delete(self, node: _Node, key: Any) -> Any:
        t = self._t
        i = _find(node.keys, key)
        if i < len(node.keys) and node.keys[i] == key:
            if node.leaf:
                node.keys.pop(i)
                return node.vals.pop(i)
            return self._delete_internal(node, i)
        if node.leaf:
            raise KeyError(key)
        child = node.children[i]
        if len(child.keys) == t - 1:
            i = self._fill(node, i)
            return self._delete(node, key)  # structure changed; redo from node
        return self._delete(child, key)

    def _delete_internal(self, node: _Node, i: int) -> Any:
        t = self._t
        key, val = node.keys[i], node.vals[i]
        left, right = node.children[i], node.children[i + 1]
        if len(left.keys) >= t:
            pk, pv = self._max_entry(left)
            node.keys[i], node.vals[i] = pk, pv
            self._delete_with_fill(node, i, pk)
            return val
        if len(right.keys) >= t:
            sk, sv = self._min_entry(right)
            node.keys[i], node.vals[i] = sk, sv
            self._delete_with_fill(node, i + 1, sk)
            return val
        self._merge(node, i)
        self._delete(node.children[i], key)
        return val

    def _delete_with_fill(self, node: _Node, child_idx: int, key: Any) -> None:
        child = node.children[child_idx]
        if len(child.keys) == self._t - 1:
            child_idx = self._fill(node, child_idx)
            self._delete(node, key)
        else:
            self._delete(child, key)

    def _max_entry(self, node: _Node) -> Tuple[Any, Any]:
        while not node.leaf:
            node = node.children[-1]
        return node.keys[-1], node.vals[-1]

    def _min_entry(self, node: _Node) -> Tuple[Any, Any]:
        while not node.leaf:
            node = node.children[0]
        return node.keys[0], node.vals[0]

    def _fill(self, node: _Node, i: int) -> int:
        """Ensure child i has >= t keys by borrowing or merging.

        Returns the (possibly shifted) child index that now covers the
        key range of the original child.
        """
        t = self._t
        if i > 0 and len(node.children[i - 1].keys) >= t:
            self._borrow_prev(node, i)
            return i
        if i < len(node.children) - 1 and len(node.children[i + 1].keys) >= t:
            self._borrow_next(node, i)
            return i
        if i < len(node.children) - 1:
            self._merge(node, i)
            return i
        self._merge(node, i - 1)
        return i - 1

    def _borrow_prev(self, node: _Node, i: int) -> None:
        child, left = node.children[i], node.children[i - 1]
        child.keys.insert(0, node.keys[i - 1])
        child.vals.insert(0, node.vals[i - 1])
        node.keys[i - 1] = left.keys.pop()
        node.vals[i - 1] = left.vals.pop()
        if not left.leaf:
            child.children.insert(0, left.children.pop())

    def _borrow_next(self, node: _Node, i: int) -> None:
        child, right = node.children[i], node.children[i + 1]
        child.keys.append(node.keys[i])
        child.vals.append(node.vals[i])
        node.keys[i] = right.keys.pop(0)
        node.vals[i] = right.vals.pop(0)
        if not right.leaf:
            child.children.append(right.children.pop(0))

    def _merge(self, node: _Node, i: int) -> None:
        child, right = node.children[i], node.children[i + 1]
        child.keys.append(node.keys.pop(i))
        child.vals.append(node.vals.pop(i))
        child.keys.extend(right.keys)
        child.vals.extend(right.vals)
        if not child.leaf:
            child.children.extend(right.children)
        node.children.pop(i + 1)

    # ------------------------------------------------------------------
    # scans
    # ------------------------------------------------------------------
    def items(self) -> Iterator[Tuple[Any, Any]]:
        """All entries in key order."""
        yield from self._iter(self._root, None, False)

    def items_greater(self, key: Any, inclusive: bool = False) -> Iterator[Tuple[Any, Any]]:
        """Entries with k > key (or k >= key when inclusive)."""
        yield from self._iter(self._root, key, inclusive)

    def items_less(self, key: Any, inclusive: bool = False) -> Iterator[Tuple[Any, Any]]:
        """Entries with k < key (or k <= key when inclusive)."""
        for k, v in self._iter(self._root, None, False):
            if k < key or (inclusive and k == key):
                yield k, v
            else:
                return

    def _iter(
        self, node: _Node, lower: Optional[Any], inclusive: bool
    ) -> Iterator[Tuple[Any, Any]]:
        if lower is None:
            start = 0
        else:
            start = _find(node.keys, lower)
        if node.leaf:
            for j in range(start, len(node.keys)):
                k = node.keys[j]
                if lower is None or k > lower or (inclusive and k == lower):
                    yield k, node.vals[j]
            return
        for j in range(start, len(node.keys)):
            yield from self._iter(node.children[j], lower, inclusive)
            k = node.keys[j]
            if lower is None or k > lower or (inclusive and k == lower):
                yield k, node.vals[j]
            # Past the bound, deeper children need no filtering.
            lower = None
            inclusive = False
        yield from self._iter(node.children[len(node.keys)], lower, inclusive)

    # ------------------------------------------------------------------
    # diagnostics
    # ------------------------------------------------------------------
    def check_invariants(self) -> None:
        """Raise AssertionError if any B-tree invariant is violated."""
        if self._root.keys:
            self._check(self._root, None, None, is_root=True)
        depths = {d for d in self._leaf_depths(self._root, 0)}
        assert len(depths) <= 1, f"leaves at different depths: {depths}"

    def _check(self, node: _Node, lo: Any, hi: Any, is_root: bool = False) -> None:
        t = self._t
        assert node.keys == sorted(node.keys), "unsorted node"
        assert len(node.keys) == len(node.vals)
        if not is_root:
            assert t - 1 <= len(node.keys) <= 2 * t - 1, "key-count bounds"
        for k in node.keys:
            if lo is not None:
                assert k > lo
            if hi is not None:
                assert k < hi
        if not node.leaf:
            assert len(node.children) == len(node.keys) + 1
            bounds = [lo] + node.keys + [hi]
            for idx, child in enumerate(node.children):
                self._check(child, bounds[idx], bounds[idx + 1])

    def _leaf_depths(self, node: _Node, depth: int) -> Iterator[int]:
        if node.leaf:
            yield depth
        else:
            for child in node.children:
                yield from self._leaf_depths(child, depth + 1)
