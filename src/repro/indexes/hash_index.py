"""Hash index for equality predicates (paper Section 2.3).

For one attribute, maps each distinct equality constant to its bit slot.
An event pair satisfies at most one stored equality predicate, so
:meth:`satisfied` is a single dict probe — this is what makes the
predicate phase cheap even with millions of subscriptions sharing a few
thousand distinct predicates.
"""

from __future__ import annotations

from typing import Dict, Iterator, Tuple

from repro.core.types import Value
from repro.indexes.base import OperatorIndex


class EqualityHashIndex(OperatorIndex):
    """constant → bit dict for ``=`` predicates on one attribute."""

    __slots__ = ("_bits",)

    def __init__(self) -> None:
        self._bits: Dict[Value, int] = {}

    def insert(self, value: Value, bit: int) -> None:
        if value in self._bits:
            raise KeyError(f"equality constant {value!r} already indexed")
        self._bits[value] = bit

    def remove(self, value: Value) -> int:
        return self._bits.pop(value)

    def satisfied(self, event_value: Value) -> Iterator[int]:
        bit = self._bits.get(event_value)
        if bit is not None:
            yield bit

    def lookup(self, event_value: Value) -> int:
        """Bit for an exact constant, or -1 (non-iterator fast path)."""
        return self._bits.get(event_value, -1)

    def __len__(self) -> int:
        return len(self._bits)

    def entries(self) -> Iterator[Tuple[Value, int]]:
        return iter(self._bits.items())
