"""Ordered indexes for the four range operators ``< <= >= >``.

For one attribute and one operator, the index stores the predicate
constants in order; evaluating an event value reduces to reporting a
prefix or suffix of that order:

=========  ============================  =================
operator   predicate is satisfied when   reported range
=========  ============================  =================
``<``      event_value <  c              constants > event
``<=``     event_value <= c              constants >= event
``>=``     event_value >= c              constants <= event
``>``      event_value >  c              constants < event
=========  ============================  =================

Two interchangeable implementations are provided: a sorted pair of
parallel arrays (bisect; O(n) updates, fastest scans) and the paper's
"simple B-Tree" (logarithmic updates).  Both are exercised by the same
test suite; the matcher picks via ``IndexKind``.
"""

from __future__ import annotations

import enum
from bisect import bisect_left, bisect_right, insort
from typing import Iterator, List, Tuple

from repro.core.errors import InvalidPredicateError
from repro.core.types import Operator, Value
from repro.indexes.base import OperatorIndex
from repro.indexes.btree import BTree


class IndexKind(enum.Enum):
    """Which backing structure range-operator indexes use."""

    SORTED_ARRAY = "sorted-array"
    BTREE = "btree"


def _require_range(op: Operator) -> None:
    if not op.is_range:
        raise InvalidPredicateError(f"ordered index cannot store operator {op.value!r}")


class SortedArrayOrderedIndex(OperatorIndex):
    """Parallel sorted arrays of (constant, bit) for one range operator."""

    __slots__ = ("_op", "_values", "_bits")

    def __init__(self, op: Operator) -> None:
        _require_range(op)
        self._op = op
        self._values: List[Value] = []
        self._bits: List[int] = []

    def insert(self, value: Value, bit: int) -> None:
        i = bisect_left(self._values, value)
        if i < len(self._values) and self._values[i] == value:
            raise KeyError(f"constant {value!r} already indexed")
        self._values.insert(i, value)
        self._bits.insert(i, bit)

    def remove(self, value: Value) -> int:
        i = bisect_left(self._values, value)
        if i >= len(self._values) or self._values[i] != value:
            raise KeyError(value)
        self._values.pop(i)
        return self._bits.pop(i)

    def satisfied(self, event_value: Value) -> Iterator[int]:
        op = self._op
        values, bits = self._values, self._bits
        if op is Operator.LT:  # constants strictly greater
            start = bisect_right(values, event_value)
            yield from bits[start:]
        elif op is Operator.LE:  # constants >= event value
            start = bisect_left(values, event_value)
            yield from bits[start:]
        elif op is Operator.GE:  # constants <= event value
            end = bisect_right(values, event_value)
            yield from bits[:end]
        else:  # GT: constants strictly less
            end = bisect_left(values, event_value)
            yield from bits[:end]

    def __len__(self) -> int:
        return len(self._values)

    def entries(self) -> Iterator[Tuple[Value, int]]:
        return iter(zip(self._values, self._bits))


class BTreeOrderedIndex(OperatorIndex):
    """B-tree-backed range-operator index (paper's stated structure)."""

    __slots__ = ("_op", "_tree")

    def __init__(self, op: Operator, order: int = 16) -> None:
        _require_range(op)
        self._op = op
        self._tree = BTree(order=order)

    def insert(self, value: Value, bit: int) -> None:
        self._tree.insert(value, bit)

    def remove(self, value: Value) -> int:
        return self._tree.delete(value)

    def satisfied(self, event_value: Value) -> Iterator[int]:
        op = self._op
        if op is Operator.LT:
            items = self._tree.items_greater(event_value, inclusive=False)
        elif op is Operator.LE:
            items = self._tree.items_greater(event_value, inclusive=True)
        elif op is Operator.GE:
            items = self._tree.items_less(event_value, inclusive=True)
        else:
            items = self._tree.items_less(event_value, inclusive=False)
        for _value, bit in items:
            yield bit

    def __len__(self) -> int:
        return len(self._tree)

    def entries(self) -> Iterator[Tuple[Value, int]]:
        return self._tree.items()


def make_ordered_index(op: Operator, kind: IndexKind = IndexKind.SORTED_ARRAY) -> OperatorIndex:
    """Factory selecting the backing structure for a range operator."""
    if kind is IndexKind.BTREE:
        return BTreeOrderedIndex(op)
    return SortedArrayOrderedIndex(op)
