"""Interface shared by the per-operator predicate indexes.

An :class:`OperatorIndex` stores, for one attribute and one operator
class, the mapping *predicate constant → bit-vector slot*, and can
enumerate the slots of every stored predicate an event value satisfies.
Phase 1 of the matching algorithm is a loop over these indexes.
"""

from __future__ import annotations

import abc
from typing import Iterator, Tuple

from repro.core.types import Value


class OperatorIndex(abc.ABC):
    """value→bit index for one (attribute, operator-class) pair."""

    @abc.abstractmethod
    def insert(self, value: Value, bit: int) -> None:
        """Store a predicate constant under its bit slot."""

    @abc.abstractmethod
    def remove(self, value: Value) -> int:
        """Remove a constant; returns its bit (KeyError if absent)."""

    @abc.abstractmethod
    def satisfied(self, event_value: Value) -> Iterator[int]:
        """Yield the bit of every stored predicate *event_value* satisfies."""

    @abc.abstractmethod
    def __len__(self) -> int:
        """Number of stored predicate constants."""

    @abc.abstractmethod
    def entries(self) -> Iterator[Tuple[Value, int]]:
        """All (constant, bit) pairs, order unspecified."""

    def __bool__(self) -> bool:
        return len(self) > 0
