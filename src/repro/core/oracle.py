"""Brute-force matcher: the correctness oracle.

Checks every subscription against every event with the direct
:meth:`Subscription.is_satisfied_by` test.  O(|S| · predicates) per event
— hopeless at scale, indispensable in tests: every optimized matcher in
this package is property-tested for exact agreement with this one.
"""

from __future__ import annotations

from typing import Any, Dict, List

from repro.core.errors import DuplicateSubscriptionError, UnknownSubscriptionError
from repro.core.matcher import Matcher
from repro.core.types import Event, Subscription


class OracleMatcher(Matcher):
    """Exhaustive scan over all subscriptions."""

    name = "oracle"

    def __init__(self) -> None:
        self._subs: Dict[Any, Subscription] = {}

    def add(self, subscription: Subscription) -> None:
        if subscription.id in self._subs:
            raise DuplicateSubscriptionError(subscription.id)
        self._subs[subscription.id] = subscription

    def remove(self, sub_id: Any) -> Subscription:
        try:
            return self._subs.pop(sub_id)
        except KeyError:
            raise UnknownSubscriptionError(sub_id) from None

    def match(self, event: Event) -> List[Any]:
        return [sid for sid, sub in self._subs.items() if sub.is_satisfied_by(event)]

    def get(self, sub_id: Any) -> Subscription:
        """Look up a stored subscription by id."""
        try:
            return self._subs[sub_id]
        except KeyError:
            raise UnknownSubscriptionError(sub_id) from None

    def iter_subscriptions(self) -> List[Subscription]:
        return list(self._subs.values())

    def __len__(self) -> int:
        return len(self._subs)
