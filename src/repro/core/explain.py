"""Match explanation: what the two-phase engine did for one event.

``explain(matcher, event)`` replays the match with instrumentation and
returns a structured :class:`MatchExplanation` — which predicates were
satisfied, how many subscriptions each phase-2 structure checked, and
the final match set.  Intended for debugging subscriptions ("why didn't
mine fire?") and for teaching the algorithm.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Dict, List, Tuple

from repro.algorithms.base import TwoPhaseMatcher
from repro.core.types import Event, Predicate, Subscription


@dataclasses.dataclass
class MatchExplanation:
    """Structured trace of one event's matching."""

    event: Event
    #: Every satisfied distinct predicate, with its bit slot.
    satisfied_predicates: List[Tuple[Predicate, int]]
    #: Total distinct predicates live in the engine.
    total_predicates: int
    #: Subscriptions the phase-2 walk actually checked.
    subscriptions_checked: int
    #: The final match set.
    matched: List[Any]

    @property
    def selectivity(self) -> float:
        """Fraction of distinct predicates the event satisfied."""
        if not self.total_predicates:
            return 0.0
        return len(self.satisfied_predicates) / self.total_predicates

    def describe(self) -> str:
        """Human-readable multi-line summary."""
        lines = [
            f"event: {self.event}",
            f"phase 1: {len(self.satisfied_predicates)} of "
            f"{self.total_predicates} distinct predicates satisfied "
            f"({self.selectivity:.1%})",
        ]
        for pred, bit in sorted(
            self.satisfied_predicates, key=lambda pb: (pb[0].attribute, str(pb[0].value))
        ):
            lines.append(f"  bit {bit}: {pred.attribute} {pred.operator.value} {pred.value!r}")
        lines.append(f"phase 2: {self.subscriptions_checked} subscriptions checked")
        lines.append(f"matched: {sorted(self.matched, key=str)}")
        return "\n".join(lines)


def explain(matcher: TwoPhaseMatcher, event: Event) -> MatchExplanation:
    """Replay *event* through a two-phase matcher with instrumentation.

    The matcher's state is left exactly as a normal :meth:`match` call
    would leave it (counters advance by one event).
    """
    if not isinstance(matcher, TwoPhaseMatcher):
        raise TypeError(
            "explain() requires a two-phase matcher "
            f"(got {type(matcher).__name__})"
        )
    before_checks = matcher.counters["subscription_checks"]
    matched = matcher.match(event)
    checks = matcher.counters["subscription_checks"] - before_checks
    satisfied = [
        (matcher.registry.predicate(bit), bit) for bit in matcher.bits.set_indexes()
    ]
    return MatchExplanation(
        event=event,
        satisfied_predicates=satisfied,
        total_predicates=len(matcher.registry),
        subscriptions_checked=checks,
        matched=matched,
    )


def why_not(matcher: TwoPhaseMatcher, sub_id: Any, event: Event) -> List[Predicate]:
    """The predicates of *sub_id* that *event* fails (empty = it matches).

    The standard answer to "why didn't my subscription fire?".
    """
    sub: Subscription = matcher.get(sub_id)
    failing = []
    for pred in sub.predicates:
        value = event.get(pred.attribute)
        if (value is None and not event.has(pred.attribute)) or not pred.matches(value):
            failing.append(pred)
    return failing
