"""Subscription canonicalization: drop redundant predicates, detect
contradictions, and put conjunctions into a minimal normal form.

A subscription with fewer (but equivalent) predicates is strictly
cheaper to match: fewer interned bits, smaller residual columns, and a
higher chance of landing in a small-size cluster.  The paper assumes
well-formed inputs; a production front door should canonicalize:

* several range predicates per attribute collapse into the tightest
  lower/upper bound pair;
* an equality predicate absorbs every other predicate it satisfies on
  the same attribute (``x = 5 and x <= 9`` → ``x = 5``);
* ``!=`` predicates implied by the surviving range are dropped
  (``x != 3 and x > 7`` → ``x > 7``);
* contradictions (``x = 1 and x = 2``, empty ranges, ``=``/``!=``
  clashes) are reported rather than silently stored.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Tuple

from repro.core.errors import InvalidSubscriptionError
from repro.core.types import Operator, Predicate, Subscription, Value


@dataclasses.dataclass
class _Range:
    """Open/closed interval accumulated from range predicates."""

    lo: Optional[float] = None
    lo_strict: bool = False
    hi: Optional[float] = None
    hi_strict: bool = False

    def add(self, op: Operator, value: Value) -> None:
        if op is Operator.GT:
            if self.lo is None or value >= self.lo:
                self.lo, self.lo_strict = value, True
        elif op is Operator.GE:
            if self.lo is None or value > self.lo:
                self.lo, self.lo_strict = value, False
        elif op is Operator.LT:
            if self.hi is None or value <= self.hi:
                self.hi, self.hi_strict = value, True
        elif op is Operator.LE:
            if self.hi is None or value < self.hi:
                self.hi, self.hi_strict = value, False

    def is_empty(self) -> bool:
        if self.lo is None or self.hi is None:
            return False
        if self.lo > self.hi:
            return True
        return self.lo == self.hi and (self.lo_strict or self.hi_strict)

    def contains(self, value: Value) -> bool:
        if self.lo is not None:
            if value < self.lo or (self.lo_strict and value == self.lo):
                return False
        if self.hi is not None:
            if value > self.hi or (self.hi_strict and value == self.hi):
                return False
        return True

    def excludes(self, value: Value) -> bool:
        """Is *value* provably outside the interval?"""
        return not self.contains(value)

    def predicates(self, attribute: str) -> List[Predicate]:
        out = []
        if self.lo is not None:
            op = Operator.GT if self.lo_strict else Operator.GE
            out.append(Predicate(attribute, op, self.lo))
        if self.hi is not None:
            op = Operator.LT if self.hi_strict else Operator.LE
            out.append(Predicate(attribute, op, self.hi))
        return out


def simplify_predicates(predicates: Tuple[Predicate, ...]) -> List[Predicate]:
    """Minimal equivalent predicate list (raises on contradiction).

    Raises :class:`InvalidSubscriptionError` when the conjunction is
    provably unsatisfiable.
    """
    by_attr: Dict[str, List[Predicate]] = {}
    order: List[str] = []
    for p in predicates:
        if p.attribute not in by_attr:
            order.append(p.attribute)
        by_attr.setdefault(p.attribute, []).append(p)

    out: List[Predicate] = []
    for attribute in order:
        out.extend(_simplify_attribute(attribute, by_attr[attribute]))
    return out


def _simplify_attribute(attribute: str, preds: List[Predicate]) -> List[Predicate]:
    equalities = [p for p in preds if p.operator is Operator.EQ]
    inequalities = [p for p in preds if p.operator is Operator.NE]
    ranges = [p for p in preds if p.operator.is_range]

    if equalities:
        values = {p.value for p in equalities}
        if len(values) > 1:
            raise InvalidSubscriptionError(
                f"contradiction: {attribute} equals both "
                f"{sorted(map(str, values))[0]} and {sorted(map(str, values))[1]}"
            )
        eq = equalities[0]
        for other in inequalities + ranges:
            if not other.matches(eq.value):
                raise InvalidSubscriptionError(
                    f"contradiction on {attribute!r}: "
                    f"{eq.value!r} fails {other.operator.value} {other.value!r}"
                )
        return [eq]

    # Strings only reach here through != (ranges reject strings).
    string_nes = [p for p in inequalities if isinstance(p.value, str)]
    numeric_nes = [p for p in inequalities if not isinstance(p.value, str)]

    interval = _Range()
    for p in ranges:
        interval.add(p.operator, p.value)
    if interval.is_empty():
        raise InvalidSubscriptionError(
            f"contradiction: empty range on {attribute!r}"
        )
    survivors = interval.predicates(attribute)
    # != predicates already excluded by the interval are redundant.
    kept_nes = [
        p
        for p in numeric_nes
        if interval.contains(p.value)
    ]
    # Dedup while preserving order.
    seen = set()
    out: List[Predicate] = []
    for p in survivors + kept_nes + string_nes:
        if p not in seen:
            seen.add(p)
            out.append(p)
    return out


def simplify(subscription: Subscription) -> Subscription:
    """Return an equivalent subscription with redundant predicates removed.

    The id is preserved; raises :class:`InvalidSubscriptionError` if the
    subscription can never match any event.
    """
    slim = simplify_predicates(subscription.predicates)
    return Subscription(subscription.id, slim)
