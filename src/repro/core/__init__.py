"""Core data model: predicates, subscriptions, events, bit vector, registry."""

from repro.core.bitvector import BitVector
from repro.core.errors import (
    ClusteringError,
    DuplicateSubscriptionError,
    ExpiredError,
    InvalidEventError,
    InvalidPredicateError,
    InvalidSubscriptionError,
    InvalidWorkloadError,
    ParseError,
    ReproError,
    UnknownSubscriptionError,
)
from repro.core.matcher import Matcher
from repro.core.oracle import OracleMatcher
from repro.core.registry import PredicateRegistry
from repro.core.simplify import simplify, simplify_predicates
from repro.core.types import (
    Event,
    Operator,
    Predicate,
    Subscription,
    Value,
    eq,
    ge,
    gt,
    le,
    lt,
    ne,
)

__all__ = [
    "BitVector",
    "ClusteringError",
    "DuplicateSubscriptionError",
    "Event",
    "ExpiredError",
    "InvalidEventError",
    "InvalidPredicateError",
    "InvalidSubscriptionError",
    "InvalidWorkloadError",
    "Matcher",
    "Operator",
    "OracleMatcher",
    "ParseError",
    "Predicate",
    "PredicateRegistry",
    "ReproError",
    "Subscription",
    "UnknownSubscriptionError",
    "Value",
    "eq",
    "ge",
    "gt",
    "le",
    "lt",
    "ne",
    "simplify",
    "simplify_predicates",
]
