"""Core value types: operators, predicates, subscriptions and events.

These follow the paper's data model (Section 1.1):

* a **predicate** is a triple ``(attribute, relop, value)`` with
  ``relop`` one of ``<, <=, =, !=, >=, >``;
* a **subscription** is a conjunction of predicates;
* an **event** is a set of ``(attribute, value)`` pairs with no duplicate
  attribute.

An event pair ``(a', v')`` matches a predicate ``(a, relop, v)`` iff
``a == a'`` and ``v' relop v`` (note the operand order: the *event* value
is on the left).  An event satisfies a subscription iff every predicate is
matched by some pair of the event.

All three types are immutable and hashable so they can key dictionaries
(the predicate registry relies on this for global de-duplication).
"""

from __future__ import annotations

import enum
import operator as _op
from typing import Any, Callable, Dict, Iterable, Iterator, Mapping, Optional, Tuple, Union

from repro.core.errors import (
    InvalidEventError,
    InvalidPredicateError,
    InvalidSubscriptionError,
)

#: Values an attribute may take.  The paper uses positive-integer domains;
#: we additionally allow floats and strings (strings only with = / !=).
Value = Union[int, float, str]


class Operator(enum.Enum):
    """Relational comparison operator of a predicate.

    The enum value is the surface syntax used by :mod:`repro.lang`.
    """

    LT = "<"
    LE = "<="
    EQ = "="
    NE = "!="
    GE = ">="
    GT = ">"

    @property
    def is_equality(self) -> bool:
        """True only for ``=`` (the operator class used by access predicates)."""
        return self is Operator.EQ

    @property
    def is_range(self) -> bool:
        """True for the four ordered comparisons ``<, <=, >=, >``."""
        return self in _RANGE_OPS

    @property
    def python(self) -> Callable[[Any, Any], bool]:
        """The Python callable computing ``event_value op predicate_value``."""
        return _PY_OPS[self]

    def negate(self) -> "Operator":
        """Return the complement operator (``<`` ↔ ``>=``, ``=`` ↔ ``!=``)."""
        return _NEGATIONS[self]

    @classmethod
    def from_symbol(cls, symbol: str) -> "Operator":
        """Parse a surface symbol; accepts ``==`` as an alias for ``=``."""
        if symbol == "==":
            symbol = "="
        try:
            return cls(symbol)
        except ValueError:
            raise InvalidPredicateError(f"unknown operator {symbol!r}") from None


_RANGE_OPS = frozenset({Operator.LT, Operator.LE, Operator.GE, Operator.GT})

_PY_OPS: Dict[Operator, Callable[[Any, Any], bool]] = {
    Operator.LT: _op.lt,
    Operator.LE: _op.le,
    Operator.EQ: _op.eq,
    Operator.NE: _op.ne,
    Operator.GE: _op.ge,
    Operator.GT: _op.gt,
}

_NEGATIONS: Dict[Operator, Operator] = {
    Operator.LT: Operator.GE,
    Operator.LE: Operator.GT,
    Operator.EQ: Operator.NE,
    Operator.NE: Operator.EQ,
    Operator.GE: Operator.LT,
    Operator.GT: Operator.LE,
}


def _check_value(value: Value, op: Operator, context: str) -> Value:
    """Validate a predicate or event value; normalize bools to ints."""
    if isinstance(value, bool):
        # bool is an int subclass; normalize so True == 1 dedups cleanly.
        return int(value)
    if isinstance(value, (int, float)):
        if op.is_range and value != value:
            # An ordered compare against NaN is always false, and a NaN
            # key would corrupt the sorted ordered-index structures.
            raise InvalidPredicateError(
                f"{context}: NaN cannot be a range-operator constant"
            )
        return value
    if isinstance(value, str):
        if op.is_range:
            raise InvalidPredicateError(
                f"{context}: string values only support = and !=, got {op.value!r}"
            )
        return value
    raise InvalidPredicateError(
        f"{context}: unsupported value type {type(value).__name__}"
    )


class Predicate:
    """An immutable ``(attribute, operator, value)`` triple.

    Predicates compare and hash by value, so structurally identical
    predicates coming from different subscriptions collapse to one entry
    in the predicate registry — the basis of the paper's shared
    predicate bit vector.
    """

    __slots__ = ("attribute", "operator", "value", "_hash")

    def __init__(self, attribute: str, operator: Operator, value: Value) -> None:
        if not isinstance(attribute, str) or not attribute:
            raise InvalidPredicateError("predicate attribute must be a non-empty string")
        if not isinstance(operator, Operator):
            operator = Operator.from_symbol(str(operator))
        object.__setattr__(self, "attribute", attribute)
        object.__setattr__(self, "operator", operator)
        object.__setattr__(
            self, "value", _check_value(value, operator, f"predicate on {attribute!r}")
        )
        object.__setattr__(self, "_hash", hash((attribute, operator, self.value)))

    def __setattr__(self, name: str, value: Any) -> None:  # pragma: no cover
        raise AttributeError("Predicate is immutable")

    def __reduce__(self):
        # The immutability guard breaks pickle's default slot restore, so
        # rebuild through the constructor (revalidating on the way in —
        # the process-pool workers deserialize untrusted-ish pipe data).
        return (Predicate, (self.attribute, self.operator, self.value))

    def matches(self, event_value: Value) -> bool:
        """Does ``event_value relop self.value`` hold?

        Mixed string/number comparisons are defined to be false for
        ordered operators and behave as plain (in)equality otherwise,
        mirroring how a typed attribute schema would reject them.
        """
        sv = self.value
        if isinstance(event_value, str) != isinstance(sv, str):
            if self.operator is Operator.EQ:
                return False
            if self.operator is Operator.NE:
                return True
            return False
        try:
            return self.operator.python(event_value, sv)
        except TypeError:
            return False

    def covers(self, other: "Predicate") -> bool:
        """True if every value satisfying *other* also satisfies *self*.

        Only defined for same-attribute numeric predicates; used by the
        subscription simplifier.  Conservative: returns False when unsure.
        """
        if self.attribute != other.attribute:
            return False
        if self == other:
            return True
        if isinstance(self.value, str) or isinstance(other.value, str):
            if other.operator is Operator.EQ:
                return self.matches(other.value)
            return False
        so, oo = self.operator, other.operator
        sv, ov = self.value, other.value
        if oo is Operator.EQ:
            return self.matches(ov)
        if so is Operator.NE and oo in (Operator.LT, Operator.GT, Operator.LE, Operator.GE):
            # x != sv is implied by a range excluding sv.
            if oo is Operator.LT:
                return ov <= sv
            if oo is Operator.LE:
                return ov < sv
            if oo is Operator.GT:
                return ov >= sv
            return ov > sv
        upper = {Operator.LT, Operator.LE}
        lower = {Operator.GT, Operator.GE}
        if so in upper and oo in upper:
            if sv > ov:
                return True
            if sv == ov:
                return not (so is Operator.LT and oo is Operator.LE)
            return False
        if so in lower and oo in lower:
            if sv < ov:
                return True
            if sv == ov:
                return not (so is Operator.GT and oo is Operator.GE)
            return False
        return False

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Predicate):
            return NotImplemented
        return (
            self._hash == other._hash
            and self.attribute == other.attribute
            and self.operator is other.operator
            and self.value == other.value
        )

    def __hash__(self) -> int:
        return self._hash

    def __repr__(self) -> str:
        return f"Predicate({self.attribute!r} {self.operator.value} {self.value!r})"

    def as_tuple(self) -> Tuple[str, str, Value]:
        """A plain ``(attribute, symbol, value)`` tuple (for serialization)."""
        return (self.attribute, self.operator.value, self.value)


def eq(attribute: str, value: Value) -> Predicate:
    """Shorthand for an equality predicate."""
    return Predicate(attribute, Operator.EQ, value)


def ne(attribute: str, value: Value) -> Predicate:
    """Shorthand for a not-equal predicate."""
    return Predicate(attribute, Operator.NE, value)


def lt(attribute: str, value: Value) -> Predicate:
    """Shorthand for a less-than predicate."""
    return Predicate(attribute, Operator.LT, value)


def le(attribute: str, value: Value) -> Predicate:
    """Shorthand for a less-or-equal predicate."""
    return Predicate(attribute, Operator.LE, value)


def ge(attribute: str, value: Value) -> Predicate:
    """Shorthand for a greater-or-equal predicate."""
    return Predicate(attribute, Operator.GE, value)


def gt(attribute: str, value: Value) -> Predicate:
    """Shorthand for a greater-than predicate."""
    return Predicate(attribute, Operator.GT, value)


class Subscription:
    """An immutable conjunction of predicates with an application id.

    Duplicate predicates are collapsed.  Following the paper's notation,
    :meth:`equality_predicates` is ``P(s)`` and
    :attr:`equality_attributes` is ``A(s)``.
    """

    __slots__ = ("id", "predicates", "_hash")

    def __init__(self, sub_id: Any, predicates: Iterable[Predicate]) -> None:
        preds = []
        seen = set()
        for p in predicates:
            if not isinstance(p, Predicate):
                raise InvalidSubscriptionError(
                    f"subscription {sub_id!r}: expected Predicate, got {type(p).__name__}"
                )
            if p not in seen:
                seen.add(p)
                preds.append(p)
        if not preds:
            raise InvalidSubscriptionError(
                f"subscription {sub_id!r} must contain at least one predicate"
            )
        object.__setattr__(self, "id", sub_id)
        object.__setattr__(self, "predicates", tuple(preds))
        object.__setattr__(self, "_hash", hash((sub_id, self.predicates)))

    def __setattr__(self, name: str, value: Any) -> None:  # pragma: no cover
        raise AttributeError("Subscription is immutable")

    def __reduce__(self):
        # See Predicate.__reduce__: constructor-based pickling keeps the
        # slots-plus-immutability combination transportable across
        # process boundaries (the shard-per-process executor relies on it).
        return (Subscription, (self.id, self.predicates))

    @property
    def size(self) -> int:
        """Number of (distinct) predicates — the paper's cluster size key."""
        return len(self.predicates)

    def equality_predicates(self) -> Tuple[Predicate, ...]:
        """``P(s)``: the equality predicates of this subscription."""
        return tuple(p for p in self.predicates if p.operator.is_equality)

    @property
    def equality_attributes(self) -> frozenset:
        """``A(s)``: attributes carrying an equality predicate."""
        return frozenset(p.attribute for p in self.predicates if p.operator.is_equality)

    @property
    def attributes(self) -> frozenset:
        """All attributes referenced by any predicate."""
        return frozenset(p.attribute for p in self.predicates)

    def predicates_on(self, attribute: str) -> Tuple[Predicate, ...]:
        """All predicates over one attribute."""
        return tuple(p for p in self.predicates if p.attribute == attribute)

    def is_satisfied_by(self, event: "Event") -> bool:
        """Direct (index-free) satisfaction test; the correctness oracle."""
        for p in self.predicates:
            v = event.get(p.attribute)
            if v is None and not event.has(p.attribute):
                return False
            if not p.matches(v):
                return False
        return True

    def is_satisfiable(self) -> bool:
        """Cheap contradiction check over same-attribute numeric predicates.

        Detects e.g. ``x = 3 and x = 4`` or ``x < 2 and x > 5``.  Sound but
        not complete for ``!=`` against finite domains (unknowable here).
        """
        by_attr: Dict[str, list] = {}
        for p in self.predicates:
            by_attr.setdefault(p.attribute, []).append(p)
        for preds in by_attr.values():
            eqs = [p for p in preds if p.operator is Operator.EQ]
            if len({p.value for p in eqs}) > 1:
                return False
            if eqs:
                v = eqs[0].value
                if not all(q.matches(v) for q in preds):
                    return False
                continue
            lo, lo_strict = None, False
            hi, hi_strict = None, False
            nes = set()
            for p in preds:
                if isinstance(p.value, str):
                    continue
                if p.operator is Operator.GT:
                    if lo is None or p.value >= lo:
                        lo, lo_strict = p.value, True
                elif p.operator is Operator.GE:
                    if lo is None or p.value > lo:
                        lo, lo_strict = p.value, False
                elif p.operator is Operator.LT:
                    if hi is None or p.value <= hi:
                        hi, hi_strict = p.value, True
                elif p.operator is Operator.LE:
                    if hi is None or p.value < hi:
                        hi, hi_strict = p.value, False
                elif p.operator is Operator.NE:
                    nes.add(p.value)
            if lo is not None and hi is not None:
                if lo > hi:
                    return False
                if lo == hi:
                    if lo_strict or hi_strict:
                        return False
                    if lo in nes:
                        return False
        return True

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Subscription):
            return NotImplemented
        return self.id == other.id and set(self.predicates) == set(other.predicates)

    def __hash__(self) -> int:
        return self._hash

    def __iter__(self) -> Iterator[Predicate]:
        return iter(self.predicates)

    def __len__(self) -> int:
        return len(self.predicates)

    def __repr__(self) -> str:
        body = " and ".join(
            f"{p.attribute} {p.operator.value} {p.value!r}" for p in self.predicates
        )
        return f"Subscription({self.id!r}: {body})"


class Event:
    """An immutable set of attribute/value pairs (no duplicate attribute)."""

    __slots__ = ("pairs", "_hash")

    def __init__(self, pairs: Union[Mapping[str, Value], Iterable[Tuple[str, Value]]]) -> None:
        if isinstance(pairs, Mapping):
            items = list(pairs.items())
        else:
            items = list(pairs)
        mapping: Dict[str, Value] = {}
        for attr, value in items:
            if not isinstance(attr, str) or not attr:
                raise InvalidEventError("event attribute must be a non-empty string")
            if attr in mapping:
                raise InvalidEventError(f"duplicate attribute {attr!r} in event")
            if isinstance(value, bool):
                value = int(value)
            if not isinstance(value, (int, float, str)):
                raise InvalidEventError(
                    f"event value for {attr!r} has unsupported type {type(value).__name__}"
                )
            mapping[attr] = value
        if not mapping:
            raise InvalidEventError("event must contain at least one pair")
        object.__setattr__(self, "pairs", dict(mapping))
        object.__setattr__(self, "_hash", hash(frozenset(mapping.items())))

    def __setattr__(self, name: str, value: Any) -> None:  # pragma: no cover
        raise AttributeError("Event is immutable")

    def __reduce__(self):
        # See Predicate.__reduce__.
        return (Event, (self.pairs,))

    @property
    def schema(self) -> frozenset:
        """The set of attributes present in the event."""
        return frozenset(self.pairs)

    def get(self, attribute: str, default: Optional[Value] = None) -> Optional[Value]:
        """Value of *attribute*, or *default* when absent."""
        return self.pairs.get(attribute, default)

    def has(self, attribute: str) -> bool:
        """Is *attribute* present?"""
        return attribute in self.pairs

    def items(self) -> Iterable[Tuple[str, Value]]:
        """Iterate over ``(attribute, value)`` pairs."""
        return self.pairs.items()

    def __contains__(self, attribute: str) -> bool:
        return attribute in self.pairs

    def __getitem__(self, attribute: str) -> Value:
        return self.pairs[attribute]

    def __len__(self) -> int:
        return len(self.pairs)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Event):
            return NotImplemented
        return self.pairs == other.pairs

    def __hash__(self) -> int:
        return self._hash

    def __repr__(self) -> str:
        body = ", ".join(f"{a}={v!r}" for a, v in sorted(self.pairs.items()))
        return f"Event({body})"
