"""Exception hierarchy for the repro publish/subscribe library.

Every error raised deliberately by this package derives from
:class:`ReproError`, so callers can catch one base class.  The hierarchy is
shallow by design: one class per *kind* of misuse, each carrying enough
context in its message to act on.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class InvalidPredicateError(ReproError, ValueError):
    """A predicate is malformed (bad operator, empty attribute, bad value)."""


class InvalidSubscriptionError(ReproError, ValueError):
    """A subscription is malformed (no predicates, contradictory input)."""


class InvalidEventError(ReproError, ValueError):
    """An event is malformed (duplicate attribute, empty, bad value type)."""


class DuplicateSubscriptionError(ReproError, KeyError):
    """A subscription id was inserted twice into the same matcher/broker."""


class UnknownSubscriptionError(ReproError, KeyError):
    """A subscription id was removed/queried but never inserted."""


class InvalidWorkloadError(ReproError, ValueError):
    """A workload specification violates the parameter constraints (Table 1)."""


class ClusteringError(ReproError, RuntimeError):
    """Internal clustering invariant violated (a bug if ever raised)."""


class ExpiredError(ReproError, ValueError):
    """An operation referenced an already-expired event or subscription."""


class ParseError(ReproError, ValueError):
    """The subscription/event language parser rejected its input.

    Carries the offending position to support caret diagnostics.
    """

    def __init__(self, message: str, text: str = "", position: int = -1) -> None:
        self.text = text
        self.position = position
        if text and position >= 0:
            caret = " " * position + "^"
            message = f"{message}\n  {text}\n  {caret}"
        super().__init__(message)
