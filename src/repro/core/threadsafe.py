"""A locking wrapper that makes any matcher safe for concurrent use.

The matching engines are single-threaded by design (as in the paper);
deployments that feed one matcher from several threads can wrap it::

    matcher = ThreadSafeMatcher(DynamicMatcher())

Every operation holds one reentrant lock — coarse-grained but correct;
matching is short, so contention is the queueing you would otherwise
build yourself.
"""

from __future__ import annotations

import threading
from typing import Any, Dict, List, Sequence

from repro.core.matcher import Matcher
from repro.core.types import Event, Subscription


class ThreadSafeMatcher(Matcher):
    """Serializes all access to a wrapped matcher with an RLock."""

    #: Checked by the multi-worker server before deciding to wrap.
    thread_safe = True

    def __init__(self, inner: Matcher) -> None:
        self.inner = inner
        self._lock = threading.RLock()

    @property
    def name(self) -> str:  # type: ignore[override]
        return self.inner.name

    def add(self, subscription: Subscription) -> None:
        with self._lock:
            self.inner.add(subscription)

    def remove(self, sub_id: Any) -> Subscription:
        with self._lock:
            return self.inner.remove(sub_id)

    def match(self, event: Event) -> List[Any]:
        with self._lock:
            return self.inner.match(event)

    def match_batch(self, events: Sequence[Event]) -> List[List[Any]]:
        with self._lock:
            return self.inner.match_batch(events)

    def iter_subscriptions(self) -> List[Subscription]:
        with self._lock:
            return self.inner.iter_subscriptions()

    def __len__(self) -> int:
        with self._lock:
            return len(self.inner)

    def stats(self) -> Dict[str, Any]:
        with self._lock:
            stats = self.inner.stats()
        stats["thread_safe"] = True
        return stats
