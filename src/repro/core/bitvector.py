"""The predicate bit vector (paper Section 2.2).

One entry per *distinct* predicate in the system.  Phase 1 of the matching
algorithm sets the bit of every predicate satisfied by the incoming event;
phase 2 reads the bits through the clusters' bit-vector references.

The vector is backed by a growable ``numpy.uint8`` array (one byte per
predicate rather than one bit: the vectorized cluster kernel gathers
entries with fancy indexing, which needs addressable cells).  A *dirty
list* records which entries were set so that :meth:`reset` clears in
O(#set bits) instead of O(#predicates) — with millions of predicates and
sparse events this is the difference the paper's per-event 0-init hides
inside its C memset.
"""

from __future__ import annotations

from typing import Iterable, Iterator, List

import numpy as np


class BitVector:
    """Growable byte-per-predicate truth vector with O(dirty) reset."""

    __slots__ = ("_bits", "_dirty", "_size")

    #: Initial capacity; doubles on demand.
    _INITIAL_CAPACITY = 1024

    def __init__(self, capacity: int = _INITIAL_CAPACITY) -> None:
        if capacity < 1:
            capacity = 1
        self._bits = np.zeros(capacity, dtype=np.uint8)
        self._dirty: List[int] = []
        self._size = 0

    # ------------------------------------------------------------------
    # sizing
    # ------------------------------------------------------------------
    @property
    def size(self) -> int:
        """Number of allocated predicate slots (high-water mark)."""
        return self._size

    @property
    def capacity(self) -> int:
        """Backing array length."""
        return int(self._bits.shape[0])

    def grow_to(self, size: int) -> None:
        """Ensure at least *size* slots exist (new slots are 0)."""
        if size <= self._size:
            return
        if size > self._bits.shape[0]:
            new_cap = int(self._bits.shape[0])
            while new_cap < size:
                new_cap *= 2
            fresh = np.zeros(new_cap, dtype=np.uint8)
            fresh[: self._bits.shape[0]] = self._bits
            self._bits = fresh
        self._size = size

    def allocate(self) -> int:
        """Allocate one new slot and return its index."""
        idx = self._size
        self.grow_to(idx + 1)
        return idx

    # ------------------------------------------------------------------
    # bit operations
    # ------------------------------------------------------------------
    def set(self, index: int) -> None:
        """Set one bit (records it for the next :meth:`reset`)."""
        if self._bits[index] == 0:
            self._bits[index] = 1
            self._dirty.append(index)

    def set_many(self, indexes: Iterable[int]) -> None:
        """Set several bits."""
        bits = self._bits
        dirty = self._dirty
        for index in indexes:
            if bits[index] == 0:
                bits[index] = 1
                dirty.append(index)

    def get(self, index: int) -> bool:
        """Read one bit."""
        return bool(self._bits[index])

    def reset(self) -> None:
        """Clear every bit set since the previous reset."""
        if not self._dirty:
            return
        if len(self._dirty) > max(64, self._size // 8):
            # Dense: a full clear is cheaper than item-wise assignment.
            self._bits[: self._size] = 0
        else:
            self._bits[self._dirty] = 0
        self._dirty.clear()

    # ------------------------------------------------------------------
    # bulk access for the vectorized cluster kernel
    # ------------------------------------------------------------------
    @property
    def array(self) -> np.ndarray:
        """The raw backing array (read-only use expected)."""
        return self._bits

    def gather(self, refs: np.ndarray) -> np.ndarray:
        """Fancy-indexed read of many entries at once."""
        return self._bits[refs]

    def count_set(self) -> int:
        """Number of currently-set bits."""
        return len(self._dirty)

    def set_indexes(self) -> Iterator[int]:
        """Iterate over currently-set bit indexes (insertion order)."""
        return iter(self._dirty)

    def __len__(self) -> int:
        return self._size

    def __getitem__(self, index: int) -> bool:
        return bool(self._bits[index])

    def __repr__(self) -> str:
        return f"BitVector(size={self._size}, set={len(self._dirty)})"
