"""Global predicate registry: de-duplication, bit allocation, refcounts.

The paper keeps one bit-vector entry per *distinct* predicate occurring in
any subscription ("Indexes are updated only if s contains a new predicate
that is not already in the system", Section 2.3).  The registry owns that
mapping:

* :meth:`intern` returns the bit index of a predicate, allocating a new
  bit (and index entry) only on first sight, and bumps a reference count;
* :meth:`release` drops a reference and frees the bit when it reaches 0,
  pushing the slot onto a free list so long-running brokers with heavy
  subscription churn don't leak bit-vector slots.

The registry is deliberately unaware of indexes; callers observe the
``added``/``removed`` return flags and maintain their index structures.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Tuple

from repro.core.bitvector import BitVector
from repro.core.types import Predicate


class PredicateRegistry:
    """Maps distinct predicates to bit-vector slots with refcounting."""

    __slots__ = ("bits", "_slot_of", "_pred_of", "_refcount", "_free", "_epoch")

    def __init__(self, bitvector: Optional[BitVector] = None) -> None:
        self.bits = bitvector if bitvector is not None else BitVector()
        self._slot_of: Dict[Predicate, int] = {}
        self._pred_of: Dict[int, Predicate] = {}
        self._refcount: Dict[int, int] = {}
        self._free: List[int] = []
        self._epoch = 0

    # ------------------------------------------------------------------
    # interning
    # ------------------------------------------------------------------
    def intern(self, predicate: Predicate) -> Tuple[int, bool]:
        """Return ``(bit, added)`` for *predicate*, creating a bit if new.

        ``added`` is True exactly when the predicate was not present, in
        which case the caller must insert it into the attribute indexes.
        """
        slot = self._slot_of.get(predicate)
        if slot is not None:
            self._refcount[slot] += 1
            return slot, False
        if self._free:
            slot = self._free.pop()
        else:
            slot = self.bits.allocate()
        self._slot_of[predicate] = slot
        self._pred_of[slot] = predicate
        self._refcount[slot] = 1
        self._epoch += 1
        return slot, True

    def release(self, predicate: Predicate) -> Tuple[int, bool]:
        """Drop one reference; return ``(bit, removed)``.

        ``removed`` is True when the last reference went away, in which
        case the caller must delete the predicate from its indexes.
        """
        slot = self._slot_of.get(predicate)
        if slot is None:
            raise KeyError(f"predicate not interned: {predicate!r}")
        self._refcount[slot] -= 1
        if self._refcount[slot] > 0:
            return slot, False
        del self._slot_of[predicate]
        del self._pred_of[slot]
        del self._refcount[slot]
        self._free.append(slot)
        self._epoch += 1
        return slot, True

    # ------------------------------------------------------------------
    # lookups
    # ------------------------------------------------------------------
    @property
    def epoch(self) -> int:
        """Structural version: bumps whenever the predicate ↔ slot mapping
        changes (a distinct predicate appears or vanishes).  Refcount-only
        churn does not move it, so compiled artifacts keyed on the epoch —
        the batch kernel's :class:`~repro.batch.evaluator.BatchPredicateEvaluator`
        — stay valid across duplicate-predicate subscribe/unsubscribe."""
        return self._epoch

    def slot(self, predicate: Predicate) -> Optional[int]:
        """Bit index of *predicate*, or None if not interned."""
        return self._slot_of.get(predicate)

    def predicate(self, slot: int) -> Predicate:
        """Inverse lookup (raises KeyError for free slots)."""
        return self._pred_of[slot]

    def refcount(self, predicate: Predicate) -> int:
        """Number of live references (0 when absent)."""
        slot = self._slot_of.get(predicate)
        return 0 if slot is None else self._refcount[slot]

    def __contains__(self, predicate: Predicate) -> bool:
        return predicate in self._slot_of

    def __len__(self) -> int:
        """Number of distinct live predicates."""
        return len(self._slot_of)

    def __iter__(self) -> Iterator[Predicate]:
        return iter(self._slot_of)

    def items(self) -> Iterator[Tuple[Predicate, int]]:
        """Iterate ``(predicate, bit)`` pairs."""
        return iter(self._slot_of.items())

    def __repr__(self) -> str:
        return f"PredicateRegistry(live={len(self._slot_of)}, free={len(self._free)})"
