"""Subscription covering (subsumption): ``s1 covers s2`` iff every event
satisfying ``s2`` also satisfies ``s1``.

Covering is the workhorse of content-based *routing* (a broker need not
forward a subscription upstream if a covering one is already
registered) and of portfolio dedup.  The paper doesn't need it for a
single matcher, but any deployment of one grows it immediately; it is a
natural closure of :meth:`Predicate.covers`.

Soundness over completeness: :func:`covers` only answers True when the
implication is provable per attribute (conjunctions decompose
attribute-wise because distinct attributes are independent); incomplete
cases (e.g. ``!=`` nets over finite domains) answer False.

Two building blocks here serve the aggregation layer
(:mod:`repro.aggregation`), which runs covering checks on every
subscribe/unsubscribe and therefore cannot afford the O(n) pairwise
scan :class:`CoverageIndex` started with:

* :class:`AttributeIndex` — per-attribute postings over attribute
  *signatures*.  A coverer's attribute set must be a subset of the
  covered subscription's (missing attributes admit arbitrary values),
  so candidate coverers/coverees are found by postings intersection
  instead of scanning the whole set.
* :func:`covers_simplified` — the per-attribute implication check over
  predicates that are *already* simplified, so indexes that store
  canonical forms don't re-simplify on every pairwise probe.
"""

from __future__ import annotations

from typing import Any, Dict, FrozenSet, Iterable, List, Set, Tuple

from repro.core.errors import InvalidSubscriptionError
from repro.core.simplify import simplify_predicates
from repro.core.types import Predicate, Subscription


def _by_attribute(preds: Iterable[Predicate]) -> Dict[str, List[Predicate]]:
    out: Dict[str, List[Predicate]] = {}
    for p in preds:
        out.setdefault(p.attribute, []).append(p)
    return out


def _attribute_covers(broad: List[Predicate], narrow: List[Predicate]) -> bool:
    """Does the conjunction *broad* (one attribute) cover *narrow*?

    Every broad predicate must be implied by the narrow conjunction.
    We prove `narrow ⊨ b` when some single narrow predicate implies b
    (`b.covers(n)`), which after per-attribute simplification (bounds
    merged) is complete for bound-vs-bound and equality cases.
    """
    for b in broad:
        if not any(b.covers(n) for n in narrow):
            return False
    return True


def covers_simplified(
    broad_attrs: Dict[str, List[Predicate]],
    narrow_attrs: Dict[str, List[Predicate]],
) -> bool:
    """:func:`covers` over *already simplified* attribute maps.

    Both arguments are ``_by_attribute``-shaped maps of satisfiable,
    simplified predicate conjunctions (see
    :func:`repro.core.simplify.simplify_predicates`).  Callers that
    cache canonical forms (the aggregation forest) use this to skip
    re-simplification on every candidate probe.
    """
    for attribute, b_preds in broad_attrs.items():
        n_preds = narrow_attrs.get(attribute)
        if n_preds is None:
            return False  # narrow admits events without this attribute
        if not _attribute_covers(b_preds, n_preds):
            return False
    return True


def covers(broad: Subscription, narrow: Subscription) -> bool:
    """True when *broad* provably matches every event *narrow* matches.

    A subscription can only be covered by one whose attribute set is a
    subset of its own (missing attributes admit arbitrary values).
    Unsatisfiable *narrow* subscriptions are covered by everything
    (vacuous truth).
    """
    try:
        narrow_preds = simplify_predicates(narrow.predicates)
    except InvalidSubscriptionError:
        return True  # narrow can never match anything
    try:
        broad_preds = simplify_predicates(broad.predicates)
    except InvalidSubscriptionError:
        return False  # broad never matches, narrow (satisfiable) does
    return covers_simplified(_by_attribute(broad_preds), _by_attribute(narrow_preds))


class AttributeIndex:
    """Per-attribute postings over keyed attribute signatures.

    Supports the two candidate queries covering maintenance needs:

    * :meth:`subset_candidates` — keys whose attribute set is a subset
      of the probe's (the only possible *coverers* of a subscription
      with those attributes);
    * :meth:`superset_candidates` — keys whose attribute set is a
      superset of the probe's (the only possible *coverees*).

    Both are postings intersections, so cost scales with the postings
    touched rather than the population.
    """

    def __init__(self) -> None:
        self._attrs_of: Dict[Any, FrozenSet[str]] = {}
        self._postings: Dict[str, Set[Any]] = {}

    def add(self, key: Any, attributes: Iterable[str]) -> None:
        if key in self._attrs_of:
            raise KeyError(f"duplicate key {key!r}")
        attrs = frozenset(attributes)
        if not attrs:
            raise ValueError("empty attribute signature")
        self._attrs_of[key] = attrs
        for a in attrs:
            self._postings.setdefault(a, set()).add(key)

    def remove(self, key: Any) -> None:
        attrs = self._attrs_of.pop(key)
        for a in attrs:
            bucket = self._postings[a]
            bucket.discard(key)
            if not bucket:
                del self._postings[a]

    def subset_candidates(self, attributes: Iterable[str]) -> List[Any]:
        """Keys whose attribute set ⊆ *attributes* (candidate coverers)."""
        attrs = frozenset(attributes)
        counts: Dict[Any, int] = {}
        for a in attrs:
            for key in self._postings.get(a, ()):
                counts[key] = counts.get(key, 0) + 1
        return [
            key
            for key, n in counts.items()
            if n == len(self._attrs_of[key])
        ]

    def superset_candidates(self, attributes: Iterable[str]) -> List[Any]:
        """Keys whose attribute set ⊇ *attributes* (candidate coverees)."""
        attrs = list(attributes)
        if not attrs:
            return list(self._attrs_of)
        out = set(self._postings.get(attrs[0], ()))
        for a in attrs[1:]:
            if not out:
                break
            out &= self._postings.get(a, set())
        return list(out)

    def __contains__(self, key: Any) -> bool:
        return key in self._attrs_of

    def __len__(self) -> int:
        return len(self._attrs_of)


class CoverageIndex:
    """Tracks a set of subscriptions with covering relations.

    ``add`` reports whether the newcomer is *redundant* (covered by a
    live subscription) and which live subscriptions it covers; ``remove``
    reports which live subscriptions the departure left *uncovered* —
    everything a routing layer needs to decide what to forward upstream
    and what to cancel or re-announce.  Candidate pairs are pruned
    through an :class:`AttributeIndex` (a coverer's attributes must be a
    subset of the coveree's), so cost tracks the candidate set rather
    than the population.

    Unsatisfiable subscriptions are vacuously covered by everything and
    can never become uncovered; they are tracked but never reported by
    ``remove``.
    """

    def __init__(self) -> None:
        self._subs: Dict[Any, Subscription] = {}
        self._simplified: Dict[Any, Dict[str, List[Predicate]]] = {}
        self._unsat: Set[Any] = set()
        self._attr_index = AttributeIndex()

    def _covers_ids(self, broad_id: Any, narrow_id: Any) -> bool:
        """Covering between two *live* entries, from cached forms."""
        if narrow_id in self._unsat:
            return True
        if broad_id in self._unsat:
            return False
        return covers_simplified(
            self._simplified[broad_id], self._simplified[narrow_id]
        )

    def add(self, sub: Subscription) -> Tuple[bool, List[Any]]:
        """Insert; returns ``(is_redundant, ids_now_covered_by_sub)``."""
        if sub.id in self._subs:
            raise InvalidSubscriptionError(f"duplicate id {sub.id!r}")
        try:
            simplified = _by_attribute(simplify_predicates(sub.predicates))
        except InvalidSubscriptionError:
            simplified = None
        if simplified is None:
            # Unsatisfiable: covered by anything live, covers only the
            # other unsatisfiable entries (vacuously).
            redundant = bool(self._subs)
            newly_covered = sorted(self._unsat, key=str)
            self._subs[sub.id] = sub
            self._unsat.add(sub.id)
            return redundant, newly_covered
        redundant = any(
            self._covers_ids_simplified(cand, simplified)
            for cand in self._attr_index.subset_candidates(simplified)
        )
        newly_covered = [
            sid
            for sid in self._attr_index.superset_candidates(simplified)
            if covers_simplified(simplified, self._simplified[sid])
        ]
        newly_covered.extend(self._unsat)  # vacuously covered by anything
        self._subs[sub.id] = sub
        self._simplified[sub.id] = simplified
        self._attr_index.add(sub.id, simplified)
        return redundant, newly_covered

    def _covers_ids_simplified(
        self, broad_id: Any, narrow_attrs: Dict[str, List[Predicate]]
    ) -> bool:
        return covers_simplified(self._simplified[broad_id], narrow_attrs)

    def remove(self, sub_id: Any) -> Tuple[Subscription, List[Any]]:
        """Remove by id (KeyError when absent).

        Returns ``(subscription, newly_uncovered_ids)``: the live
        subscriptions that were covered by the departing one and are
        covered by no remaining one — the mirror of ``add``'s
        ``newly_covered``, closing the lifecycle so routing layers can
        re-announce what the departure exposed.
        """
        sub = self._subs.pop(sub_id)
        if sub_id in self._unsat:
            # Covered only other unsatisfiable entries, which remain
            # vacuously covered (they can never match anything).
            self._unsat.discard(sub_id)
            return sub, []
        simplified = self._simplified.pop(sub_id)
        self._attr_index.remove(sub_id)
        newly_uncovered = []
        for sid in self._attr_index.superset_candidates(simplified):
            if sid in self._unsat:
                continue
            if not covers_simplified(simplified, self._simplified[sid]):
                continue  # was never covered by the departing sub
            still_covered = any(
                self._covers_ids_simplified(cand, self._simplified[sid])
                for cand in self._attr_index.subset_candidates(self._simplified[sid])
                if cand != sid
            )
            if not still_covered:
                newly_uncovered.append(sid)
        return sub, newly_uncovered

    def covering_set(self) -> List[Subscription]:
        """A minimal forwarding set: subscriptions not covered by others.

        Mutually-covering (equivalent) subscriptions keep their first
        member (insertion order).
        """
        kept: List[Subscription] = []
        for sub in self._subs.values():
            if not any(covers(k, sub) for k in kept):
                kept = [k for k in kept if not covers(sub, k)]
                kept.append(sub)
        return kept

    def __len__(self) -> int:
        return len(self._subs)

    def __contains__(self, sub_id: Any) -> bool:
        return sub_id in self._subs
