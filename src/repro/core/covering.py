"""Subscription covering (subsumption): ``s1 covers s2`` iff every event
satisfying ``s2`` also satisfies ``s1``.

Covering is the workhorse of content-based *routing* (a broker need not
forward a subscription upstream if a covering one is already
registered) and of portfolio dedup.  The paper doesn't need it for a
single matcher, but any deployment of one grows it immediately; it is a
natural closure of :meth:`Predicate.covers`.

Soundness over completeness: :func:`covers` only answers True when the
implication is provable per attribute (conjunctions decompose
attribute-wise because distinct attributes are independent); incomplete
cases (e.g. ``!=`` nets over finite domains) answer False.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Optional, Tuple

from repro.core.errors import InvalidSubscriptionError
from repro.core.simplify import simplify_predicates
from repro.core.types import Predicate, Subscription


def _by_attribute(preds: Iterable[Predicate]) -> Dict[str, List[Predicate]]:
    out: Dict[str, List[Predicate]] = {}
    for p in preds:
        out.setdefault(p.attribute, []).append(p)
    return out


def _attribute_covers(broad: List[Predicate], narrow: List[Predicate]) -> bool:
    """Does the conjunction *broad* (one attribute) cover *narrow*?

    Every broad predicate must be implied by the narrow conjunction.
    We prove `narrow ⊨ b` when some single narrow predicate implies b
    (`b.covers(n)`), which after per-attribute simplification (bounds
    merged) is complete for bound-vs-bound and equality cases.
    """
    for b in broad:
        if not any(b.covers(n) for n in narrow):
            return False
    return True


def covers(broad: Subscription, narrow: Subscription) -> bool:
    """True when *broad* provably matches every event *narrow* matches.

    A subscription can only be covered by one whose attribute set is a
    subset of its own (missing attributes admit arbitrary values).
    Unsatisfiable *narrow* subscriptions are covered by everything
    (vacuous truth).
    """
    try:
        narrow_preds = simplify_predicates(narrow.predicates)
    except InvalidSubscriptionError:
        return True  # narrow can never match anything
    try:
        broad_preds = simplify_predicates(broad.predicates)
    except InvalidSubscriptionError:
        return False  # broad never matches, narrow (satisfiable) does
    broad_attrs = _by_attribute(broad_preds)
    narrow_attrs = _by_attribute(narrow_preds)
    for attribute, b_preds in broad_attrs.items():
        n_preds = narrow_attrs.get(attribute)
        if n_preds is None:
            return False  # narrow admits events without this attribute
        if not _attribute_covers(b_preds, n_preds):
            return False
    return True


class CoverageIndex:
    """Tracks a set of subscriptions with covering relations.

    ``add`` reports whether the newcomer is *redundant* (covered by a
    live subscription) and which live subscriptions it covers —
    everything a routing layer needs to decide what to forward and what
    to cancel upstream.  O(n) pairwise checks per operation: suitable
    for portfolio-sized sets (routing tables), not for millions.
    """

    def __init__(self) -> None:
        self._subs: Dict[Any, Subscription] = {}

    def add(self, sub: Subscription) -> Tuple[bool, List[Any]]:
        """Insert; returns ``(is_redundant, ids_now_covered_by_sub)``."""
        if sub.id in self._subs:
            raise InvalidSubscriptionError(f"duplicate id {sub.id!r}")
        redundant = any(covers(live, sub) for live in self._subs.values())
        newly_covered = [
            sid for sid, live in self._subs.items() if covers(sub, live)
        ]
        self._subs[sub.id] = sub
        return redundant, newly_covered

    def remove(self, sub_id: Any) -> Subscription:
        """Remove by id (KeyError when absent)."""
        return self._subs.pop(sub_id)

    def covering_set(self) -> List[Subscription]:
        """A minimal forwarding set: subscriptions not covered by others.

        Mutually-covering (equivalent) subscriptions keep their first
        member (insertion order).
        """
        kept: List[Subscription] = []
        for sub in self._subs.values():
            if not any(covers(k, sub) for k in kept):
                kept = [k for k in kept if not covers(sub, k)]
                kept.append(sub)
        return kept

    def __len__(self) -> int:
        return len(self._subs)

    def __contains__(self, sub_id: Any) -> bool:
        return sub_id in self._subs
