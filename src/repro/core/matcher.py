"""The matcher interface shared by every matching algorithm.

All five algorithms from the paper's evaluation (counting, propagation,
propagation-with-prefetch, static, dynamic) plus the brute-force oracle
and the SQL-trigger strawman implement this small surface, so the
benchmark harness, the broker and the tests can treat them uniformly.
"""

from __future__ import annotations

import abc
from typing import Any, Dict, Iterable, List, Optional, Sequence

from repro.core.types import Event, Subscription
from repro.obs.registry import MetricsRegistry, NOOP_REGISTRY
from repro.obs.tracer import NULL_TRACER, Tracer


class Matcher(abc.ABC):
    """Abstract subscription matcher.

    Implementations must tolerate interleaved ``add`` / ``remove`` /
    ``match`` calls: the paper's target deployment is a broker at
    *equilibrium* where 50 insertions and 50 deletions happen per second
    while events stream through.
    """

    #: Short machine-readable name used by benchmarks and reports.
    name: str = "abstract"

    #: Whether concurrent callers may share this instance without locking.
    #: The paper's engines are single-threaded; only wrappers that add
    #: their own locking (ThreadSafeMatcher, ShardedMatcher) flip this.
    thread_safe: bool = False

    #: Metrics sink; the no-op default costs one ``enabled`` check on the
    #: hot path until :meth:`use_metrics` attaches a real registry.
    metrics: MetricsRegistry = NOOP_REGISTRY

    #: Trace sink; disabled by default (see :meth:`use_tracer`).
    tracer: Tracer = NULL_TRACER

    #: Value of the ``shard`` label on this engine's metric families;
    #: the sharded fan-out stamps each inner engine with its index so
    #: per-shard series stay distinct (and race-free) in one registry.
    metrics_shard: str = ""

    @abc.abstractmethod
    def add(self, subscription: Subscription) -> None:
        """Insert a subscription.

        Raises :class:`~repro.core.errors.DuplicateSubscriptionError` if
        the id is already present.
        """

    @abc.abstractmethod
    def remove(self, sub_id: Any) -> Subscription:
        """Remove and return the subscription with *sub_id*.

        Raises :class:`~repro.core.errors.UnknownSubscriptionError` if
        absent.
        """

    @abc.abstractmethod
    def match(self, event: Event) -> List[Any]:
        """Return the ids of all subscriptions satisfied by *event*."""

    @abc.abstractmethod
    def __len__(self) -> int:
        """Number of live subscriptions."""

    def iter_subscriptions(self) -> List[Subscription]:
        """Snapshot of the stored subscriptions (a stable list, not a view).

        The durability layer (``repro.system.snapshot``, ``repro.system.wal``)
        persists broker state through this surface, so every engine and
        wrapper must implement it; returning a fresh list keeps callers safe
        from concurrent mutation in locking wrappers.
        """
        raise NotImplementedError(
            f"{type(self).__name__} does not expose its subscriptions"
        )

    # ------------------------------------------------------------------
    # conveniences shared by all matchers
    # ------------------------------------------------------------------
    def add_all(self, subscriptions: Iterable[Subscription]) -> int:
        """Insert many subscriptions; returns how many were inserted."""
        n = 0
        for sub in subscriptions:
            self.add(sub)
            n += 1
        return n

    def match_all(self, events: Iterable[Event]) -> List[List[Any]]:
        """Match a batch of events; returns one id-list per event."""
        return self.match_batch(list(events))

    def match_batch(self, events: Sequence[Event]) -> List[List[Any]]:
        """Match *events* as one batch; returns one id-list per event.

        Contract (pinned by ``tests/matchers/test_batch_conformance.py``
        and ``tests/properties/test_prop_batch.py``): the result is
        per-event equivalent to calling :meth:`match` on each event in
        order — same matched ids per event, though the *within-event*
        ordering of ids may differ — and is invariant under batch
        splitting.  The default implementation is the per-event loop;
        two-phase engines override it with the vectorized kernel
        (``repro.batch``), and wrappers forward it so batches reach the
        kernel through locks, shards and fault injectors.
        """
        return [self.match(e) for e in events]

    def match_batch_columnar(self, batch: Any) -> List[List[Any]]:
        """Match a columnar batch (``repro.batch.columns.ColumnarBatch``).

        Same per-event contract as :meth:`match_batch`.  The default
        materializes event objects and delegates — so every wrapper and
        fault injector that forwards :meth:`match_batch` stays on the
        observed path — while two-phase engines override it to feed the
        columns straight into the vectorized predicate phase.  Callers
        (the process-executor workers) hold batches that already exist
        in columnar form; anything else should call :meth:`match_batch`.
        """
        return self.match_batch(batch.to_events())

    # ------------------------------------------------------------------
    # observability
    # ------------------------------------------------------------------
    def use_metrics(self, registry: Optional[MetricsRegistry] = None) -> MetricsRegistry:
        """Attach a metrics registry (a fresh one if None); returns it.

        Subclasses bind their instrument children in :meth:`_bind_metrics`;
        until this is called the class-level no-op registry keeps the
        instrumentation cost at a single boolean check per event.
        """
        registry = MetricsRegistry() if registry is None else registry
        self.metrics = registry
        self._bind_metrics()
        return registry

    def use_tracer(self, tracer: Optional[Tracer] = None) -> Tracer:
        """Attach a span tracer (a fresh one if None); returns it."""
        tracer = Tracer() if tracer is None else tracer
        self.tracer = tracer
        return tracer

    def _bind_metrics(self) -> None:
        """Hook: (re)create instrument children on :attr:`metrics`."""

    def stats(self) -> Dict[str, Any]:
        """Implementation-specific statistics (sizes, counters).

        Contract (pinned by ``tests/obs/test_stats_contract.py``): the
        returned dict is JSON-serializable with stable keys and always
        carries ``name`` (str), ``subscriptions`` (int) and ``counters``
        (flat str → number dict); subclasses extend it.
        """
        return {"name": self.name, "subscriptions": len(self), "counters": {}}
