"""The matcher interface shared by every matching algorithm.

All five algorithms from the paper's evaluation (counting, propagation,
propagation-with-prefetch, static, dynamic) plus the brute-force oracle
and the SQL-trigger strawman implement this small surface, so the
benchmark harness, the broker and the tests can treat them uniformly.
"""

from __future__ import annotations

import abc
from typing import Any, Dict, Iterable, List

from repro.core.types import Event, Subscription


class Matcher(abc.ABC):
    """Abstract subscription matcher.

    Implementations must tolerate interleaved ``add`` / ``remove`` /
    ``match`` calls: the paper's target deployment is a broker at
    *equilibrium* where 50 insertions and 50 deletions happen per second
    while events stream through.
    """

    #: Short machine-readable name used by benchmarks and reports.
    name: str = "abstract"

    #: Whether concurrent callers may share this instance without locking.
    #: The paper's engines are single-threaded; only wrappers that add
    #: their own locking (ThreadSafeMatcher, ShardedMatcher) flip this.
    thread_safe: bool = False

    @abc.abstractmethod
    def add(self, subscription: Subscription) -> None:
        """Insert a subscription.

        Raises :class:`~repro.core.errors.DuplicateSubscriptionError` if
        the id is already present.
        """

    @abc.abstractmethod
    def remove(self, sub_id: Any) -> Subscription:
        """Remove and return the subscription with *sub_id*.

        Raises :class:`~repro.core.errors.UnknownSubscriptionError` if
        absent.
        """

    @abc.abstractmethod
    def match(self, event: Event) -> List[Any]:
        """Return the ids of all subscriptions satisfied by *event*."""

    @abc.abstractmethod
    def __len__(self) -> int:
        """Number of live subscriptions."""

    # ------------------------------------------------------------------
    # conveniences shared by all matchers
    # ------------------------------------------------------------------
    def add_all(self, subscriptions: Iterable[Subscription]) -> int:
        """Insert many subscriptions; returns how many were inserted."""
        n = 0
        for sub in subscriptions:
            self.add(sub)
            n += 1
        return n

    def match_all(self, events: Iterable[Event]) -> List[List[Any]]:
        """Match a batch of events; returns one id-list per event."""
        return [self.match(e) for e in events]

    def stats(self) -> Dict[str, Any]:
        """Implementation-specific statistics (sizes, counters).

        The base implementation reports only the subscription count;
        subclasses extend the dict.
        """
        return {"name": self.name, "subscriptions": len(self)}
