"""Base matcher for multi-attribute schema-based clustering (Section 3).

Subscriptions are placed in cluster lists reached through the tables of a
:class:`HashingConfiguration`; matching an event probes every table whose
schema the event covers, then checks only the members of the probed
cluster lists.  The static and dynamic matchers differ solely in *how the
set of tables evolves*; placement, probing and removal live here.

Both use the vectorized (prefetch-analogue) check kernel — in the paper
"Both algorithms are implemented with prefetching."
"""

from __future__ import annotations

import math
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.algorithms.base import TwoPhaseMatcher
from repro.algorithms.clusters import ClusterList
from repro.clustering.access import Key, Schema, access_for_schema
from repro.clustering.hashconfig import HashingConfiguration
from repro.clustering.statistics import Statistics
from repro.core.errors import ClusteringError
from repro.core.types import Event, Predicate, Subscription
from repro.indexes.ordered import IndexKind


class ClusteredMatcher(TwoPhaseMatcher):
    """Phase-2 storage behind multi-attribute hash tables."""

    name = "clustered"
    vectorized = True

    def __init__(
        self,
        statistics: Statistics,
        index_kind: IndexKind = IndexKind.SORTED_ARRAY,
        vectorized: bool = True,
    ) -> None:
        super().__init__(index_kind)
        # Check kernel: vectorized (prefetch-analogue, default) or scalar.
        # The scalar kernel is the regime where per-subscription work
        # dominates fixed per-table overhead — useful for studying
        # clustering effects at laptop-scale populations.
        self.vectorized = vectorized
        self.statistics = statistics
        self.config = HashingConfiguration()
        self._universal = ClusterList(key=None)
        # sub id -> (schema or None, probe key, residual size).
        self._placement: Dict[Any, Tuple[Optional[Schema], Key, int]] = {}

    # ------------------------------------------------------------------
    # schema choice (subclass hook)
    # ------------------------------------------------------------------
    def _choose_schema(self, sub: Subscription) -> Optional[Schema]:
        """Schema to cluster *sub* under; None → universal list.

        Default policy: cheapest *existing* eligible table by the
        subscription's concrete ν (its own access-key probability).
        """
        eq_attrs = sub.equality_attributes
        if not eq_attrs:
            return None
        eligible = self.config.eligible_schemas(eq_attrs)
        if not eligible:
            return None
        # Schema-level expected ν, quantized to log-scale buckets: tables
        # whose estimated cost differs only by sampling noise must compare
        # equal, so the lexical tie-break concentrates same-schema
        # subscriptions into one table — without concentration no cluster
        # ever crosses the maintenance thresholds and the engine cannot
        # learn which multi-attribute tables to build.
        return min(eligible, key=lambda s: (self._nu_bucket(s), s))

    def _nu_bucket(self, schema: Schema) -> int:
        """Expected ν of *schema*, bucketed by factor-e steps."""
        nu = max(1e-300, self.statistics.expected_nu_schema(schema))
        return math.floor(math.log(nu))

    def _sub_nu(self, sub: Subscription, schema: Schema) -> float:
        """ν of the subscription's concrete access predicate over *schema*."""
        ap = access_for_schema(sub, schema)
        return self.statistics.nu_of_pairs(zip(ap.schema, ap.key))

    # ------------------------------------------------------------------
    # placement plumbing
    # ------------------------------------------------------------------
    def _slots_of(self, sub: Subscription) -> Dict[Predicate, int]:
        """Current registry slots for an already-interned subscription."""
        slots = {}
        for pred in sub.predicates:
            bit = self.registry.slot(pred)
            if bit is None:
                raise ClusteringError(f"predicate not interned: {pred!r}")
            slots[pred] = bit
        return slots

    def _place(self, sub: Subscription, slots: Dict[Predicate, int]) -> None:
        self._place_under(sub, slots, self._choose_schema(sub))

    def _place_under(
        self,
        sub: Subscription,
        slots: Dict[Predicate, int],
        schema: Optional[Schema],
    ) -> None:
        """Insert *sub* into the given schema's table (or the universal list)."""
        if schema is None:
            refs = self.ordered_residual_bits(sub, slots, ())
            self._universal.add(sub.id, refs)
            self._placement[sub.id] = (None, (), len(refs))
            return
        ap = access_for_schema(sub, schema)
        refs = self.ordered_residual_bits(sub, slots, ap.predicates)
        table = self.config.ensure_table(schema)
        table.add(sub.id, ap.key, refs)
        self._placement[sub.id] = (schema, ap.key, len(refs))

    def _displace(self, sub: Subscription) -> None:
        schema, key, size = self._placement.pop(sub.id)
        if schema is None:
            self._universal.remove(sub.id, size)
            return
        table = self.config.table(schema)
        if table is None:
            raise ClusteringError(f"placement references dropped table {schema!r}")
        table.remove(sub.id, key, size)

    def move_subscription(self, sub_id: Any, new_schema: Optional[Schema]) -> None:
        """Re-cluster one live subscription under another schema.

        Predicates stay interned (the subscription itself is unchanged);
        only phase-2 placement moves.
        """
        sub = self.get(sub_id)
        self._displace(sub)
        self._place_under(sub, self._slots_of(sub), new_schema)

    def placement_of(self, sub_id: Any) -> Tuple[Optional[Schema], Key, int]:
        """(schema, key, residual size) of a live subscription."""
        return self._placement[sub_id]

    # ------------------------------------------------------------------
    # phase 2
    # ------------------------------------------------------------------
    def _match_phase2(self, event: Event) -> List[Any]:
        out: List[Any] = []
        bits = self.bits.array
        reads = 0
        span = self._active_span
        clusters_visited = 0
        tables_probed = 0
        if len(self._universal):
            checked = self._universal.match(bits, out, self.vectorized)
            reads += checked
            if span is not None:
                clusters_visited += self._universal.cluster_count
                span.child(
                    "universal",
                    clusters=self._universal.cluster_count,
                    checked=checked,
                )
        for table in self.config.tables():
            if not len(table):
                continue  # drained singletons keep their slot but hold nobody
            lst = table.probe(event)
            if lst is not None:
                checked = lst.match(bits, out, self.vectorized)
                reads += checked
                if span is not None:
                    tables_probed += 1
                    clusters_visited += lst.cluster_count
                    span.child(
                        "table",
                        schema="/".join(table.schema),
                        clusters=lst.cluster_count,
                        checked=checked,
                    )
        self.counters["subscription_checks"] += reads
        if span is not None:
            span.add(tables_probed=tables_probed, clusters_visited=clusters_visited)
        return out

    def _match_phase2_batch(
        self, events: Sequence[Event], truth: np.ndarray
    ) -> List[List[Any]]:
        """Row-grouped table probing: one gather per probed entry.

        For each table, batch events are bucketed by their probe key so
        a cluster list reached by many events runs a single columnar
        kernel over all their truth rows.
        """
        out: List[List[Any]] = [[] for _ in events]
        reads = 0
        if len(self._universal):
            all_rows = np.arange(len(events), dtype=np.intp)
            reads += self._universal.match_rows(truth, all_rows, out)
        for table in self.config.tables():
            if not len(table):
                continue
            schema = table.schema
            rows_of: Dict[Tuple, List[int]] = {}
            for row, event in enumerate(events):
                pairs = event.pairs
                key: List[Any] = []
                for attribute in schema:
                    value = pairs.get(attribute)
                    if value is None and attribute not in pairs:
                        key = None
                        break
                    key.append(value)
                if key is not None:
                    rows_of.setdefault(tuple(key), []).append(row)
            for key, rows in rows_of.items():
                lst = table.entry(key)
                if lst is not None:
                    reads += lst.match_rows(
                        truth, np.asarray(rows, dtype=np.intp), out
                    )
        self.counters["subscription_checks"] += reads
        return out

    # ------------------------------------------------------------------
    # debugging
    # ------------------------------------------------------------------
    def check_invariants(self) -> None:
        super().check_invariants()
        assert set(self._placement) == set(self._subs), "placement key drift"
        stored = set()
        for table in self.config.tables():
            for _key, lst in table.entries():
                assert lst, "empty entry retained"
                for cluster in lst.clusters():
                    for sid in cluster.ids():
                        assert sid not in stored, f"{sid!r} stored twice"
                        stored.add(sid)
        for cluster in self._universal.clusters():
            for sid in cluster.ids():
                assert sid not in stored, f"{sid!r} stored twice"
                stored.add(sid)
        assert stored == set(self._subs), "table membership drift"
        for sid, (schema, key, size) in self._placement.items():
            sub = self._subs[sid]
            if schema is None:
                assert key == ()
                assert size == sub.size
                continue
            table = self.config.table(schema)
            assert table is not None, f"placement points at missing table {schema!r}"
            lst = table.entry(key)
            assert lst is not None, f"placement points at missing entry {key!r}"
            assert sub.equality_attributes.issuperset(schema)
            assert size == sub.size - len(schema), f"residual drift for {sid!r}"

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def table_sizes(self) -> Dict[Schema, int]:
        """Subscription count per table (the paper's |H| values)."""
        return {t.schema: len(t) for t in self.config.tables()}

    def stats(self) -> Dict[str, Any]:
        base = super().stats()
        base.update(
            tables={"/".join(t.schema): len(t) for t in self.config.tables()},
            universal_members=len(self._universal),
        )
        return base
