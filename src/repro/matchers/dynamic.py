"""The dynamic algorithm: incrementally self-optimizing clustering (§4).

Starts from the natural clustering (singleton tables, created lazily as
equality attributes appear) and adapts online:

* every insert lands in the cheapest *existing* eligible table;
* when a cluster entry's benefit margin ``BM = ν(p)·|entry|`` exceeds
  ``BMmax``, its subscriptions are redistributed to better existing
  tables, and subscriptions that cannot improve vote for *potential*
  multi-attribute tables;
* a potential table is created once its accumulated benefit reaches
  ``Bcreate``; its candidate entries are redistributed into it;
* a (non-singleton) table whose population falls below ``Bdelete`` is
  dropped and its members redistributed;
* all ν estimates come from an online :class:`EventStatistics`, so the
  same machinery adapts to value skew (Figure 4(b)) and to schema drift
  (Figure 4(a)).
"""

from __future__ import annotations

import itertools
import math
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.clustering.access import Key, Schema
from repro.clustering.dynamic import DynamicParams, EntryId, PotentialTableTracker
from repro.clustering.statistics import EventStatistics, Statistics
from repro.core.types import Event, Subscription
from repro.indexes.ordered import IndexKind
from repro.matchers.clustered import ClusteredMatcher


class DynamicMatcher(ClusteredMatcher):
    """Self-adapting multi-attribute clustering."""

    name = "dynamic"

    def __init__(
        self,
        statistics: Optional[Statistics] = None,
        params: DynamicParams = DynamicParams(),
        index_kind: IndexKind = IndexKind.SORTED_ARRAY,
        observe_events: bool = True,
        observe_every: int = 4,
        vectorized: bool = True,
    ) -> None:
        if statistics is None:
            statistics = EventStatistics()
        super().__init__(statistics, index_kind, vectorized)
        self.params = params
        self._tracker = PotentialTableTracker()
        self._ops = 0
        self._last_handled: Dict[EntryId, float] = {}
        self._observe = observe_events and isinstance(statistics, EventStatistics)
        # Statistics are estimates; sampling every k-th event keeps the
        # estimator current at a fraction of the census cost.
        self._observe_every = max(1, observe_every)
        self._event_seq = 0
        self._frozen = False
        # min_improvement as a log-bucket gap: a move/potential-table vote
        # requires the subscription's ν to drop by at least this many
        # factor-e steps.  Online ν estimates for individual values are
        # noisy (few observations per value); comparing quantized buckets
        # keeps noise from causing move thrash while real structural
        # improvements (singleton → pair ≈ e^3.5) pass easily.
        self._gap = max(1, round(-math.log(params.min_improvement)))
        #: Maintenance counters exposed through stats().
        self.maintenance: Dict[str, int] = {
            "moves": 0,
            "tables_created": 0,
            "tables_dropped": 0,
            "distributions": 0,
            "sweeps": 0,
        }

    # ------------------------------------------------------------------
    # observability
    # ------------------------------------------------------------------
    def _bind_metrics(self) -> None:
        super()._bind_metrics()
        labels = {"engine": self.name, "shard": self.metrics_shard}
        maint = self.metrics.counter(
            "repro_dynamic_maintenance_total",
            "Maintenance actions of the dynamic clustering algorithm, by kind.",
            ("engine", "shard", "kind"),
        )
        self._m_maintenance = {
            kind: maint.labels(kind=kind, **labels) for kind in self.maintenance
        }
        thresholds = self.metrics.counter(
            "repro_dynamic_threshold_crossings_total",
            "Times a Section-4 maintenance threshold (BMmax, Bcreate, Bdelete) fired.",
            ("engine", "shard", "threshold"),
        )
        self._m_thresholds = {
            name: thresholds.labels(threshold=name, **labels)
            for name in ("bm_max", "b_create", "b_delete")
        }
        self._tracker.on_ready = lambda schema: self._note_threshold("b_create")

    def _note_maintenance(self, kind: str, n: int = 1) -> None:
        """Bump one maintenance counter (dict always, registry if enabled)."""
        self.maintenance[kind] += n
        if self.metrics.enabled:
            self._m_maintenance[kind].inc(n)

    def _note_threshold(self, which: str) -> None:
        """Record one threshold crossing in the registry."""
        if self.metrics.enabled:
            self._m_thresholds[which].inc()

    # ------------------------------------------------------------------
    # schema choice: cheapest existing table; singletons created lazily
    # ------------------------------------------------------------------
    def _choose_schema(self, sub: Subscription) -> Optional[Schema]:
        eq_attrs = sub.equality_attributes
        if not eq_attrs:
            return None
        for attribute in eq_attrs:
            self.config.ensure_table((attribute,))
        eligible = self.config.eligible_schemas(eq_attrs)
        # Same quantized schema-level choice as the base class (see
        # ClusteredMatcher._choose_schema for why value-specific estimates
        # must not drive insertion).
        return min(eligible, key=lambda s: (self._nu_bucket(s), s))

    # ------------------------------------------------------------------
    # operation hooks
    # ------------------------------------------------------------------
    def add(self, subscription: Subscription) -> None:
        super().add(subscription)
        schema, key, _size = self._placement[subscription.id]
        if schema is not None:
            self._maybe_handle_entry(schema, key)
        self._tick()

    def remove(self, sub_id: Any) -> Subscription:
        sub = super().remove(sub_id)
        self._tracker.unmark(sub_id)
        self._tick()
        return sub

    def match(self, event: Event) -> List[Any]:
        self._event_seq += 1
        if self._observe and self._event_seq % self._observe_every == 0:
            self.statistics.observe(event)
        result = super().match(event)
        self._tick()
        return result

    def match_batch(self, events: Sequence[Event]) -> List[List[Any]]:
        events = list(events)
        if self.tracer.enabled:
            # The scalar path keeps per-event spans *and* does its own
            # observation/maintenance bookkeeping per event.
            return [self.match(e) for e in events]
        # Observation and maintenance never change match results (they
        # only re-cluster), so sampling every k-th event up front and
        # ticking after the kernel is result-equivalent to the scalar
        # interleaving while keeping the estimator cadence identical.
        if self._observe:
            for event in events:
                self._event_seq += 1
                if self._event_seq % self._observe_every == 0:
                    self.statistics.observe(event)
        else:
            self._event_seq += len(events)
        result = super().match_batch(events)
        for _ in events:
            self._tick()
        return result

    def _tick(self) -> None:
        self._ops += 1
        if not self._frozen and self._ops % self.params.maintenance_interval == 0:
            self.sweep()

    # ------------------------------------------------------------------
    # the "no change" strategy of Figure 4
    # ------------------------------------------------------------------
    def freeze(self) -> None:
        """Stop adapting: keep the current table configuration forever.

        Inserts still use the cheapest existing table (and still create
        missing *singleton* tables — those are the free natural
        clustering the paper's predicate indexes imply), but no
        redistribution, creation of multi-attribute tables, or deletion
        happens.  This is the Figure 4 "no change" strategy.
        """
        self._frozen = True

    def unfreeze(self) -> None:
        """Resume adaptive maintenance."""
        self._frozen = False

    @property
    def frozen(self) -> bool:
        """Is maintenance disabled?"""
        return self._frozen

    # ------------------------------------------------------------------
    # benefit-margin handling
    # ------------------------------------------------------------------
    def _entry_nu(self, schema: Schema, key: Key) -> float:
        return self.statistics.nu_of_pairs(zip(schema, key))

    def benefit_margin(self, schema: Schema, key: Key) -> float:
        """``BM`` of one entry: expected checks per event it causes.

        This is the paper's *first approximation* ``BM(c) ≈ ν(p_c)·|c|``,
        used by the maintenance loop; :meth:`exact_benefit_margin` has
        the exact form.
        """
        table = self.config.table(schema)
        if table is None:
            return 0.0
        lst = table.entry(key)
        if lst is None:
            return 0.0
        return self._entry_nu(schema, key) * len(lst)

    def exact_benefit_margin(self, schema: Schema, key: Key) -> float:
        """The paper's exact ``BM(c) = Σ_{s∈c} (ν(p_c) − ν(P(s)))``.

        The checks that could still be saved if every member were
        clustered under its *maximal* equality conjunction.  More
        expensive than the approximation (touches every member), so the
        maintenance loop uses :meth:`benefit_margin`; this exists for
        inspection and for validating the approximation in tests.
        """
        table = self.config.table(schema)
        if table is None:
            return 0.0
        lst = table.entry(key)
        if lst is None:
            return 0.0
        entry_nu = self._entry_nu(schema, key)
        total = 0.0
        for cluster in lst.clusters():
            for sid in cluster.ids():
                sub = self.get(sid)
                full = self.statistics.nu_of_pairs(
                    (p.attribute, p.value) for p in sub.equality_predicates()
                )
                total += max(0.0, entry_nu - full)
        return total

    def _maybe_handle_entry(self, schema: Schema, key: Key) -> None:
        """Distribute an entry when its BM is excessive and still growing.

        An entry whose residents cannot improve yet keeps an excessive
        BM after distribution; re-handling it on every touch would be
        quadratic, so the BM at the last handling is recorded and the
        entry is reconsidered only after growing past it by
        ``growth_factor`` (covers both population growth and ν growth
        under event skew).
        """
        if self._frozen:
            return
        table = self.config.table(schema)
        if table is None:
            return
        lst = table.entry(key)
        if lst is None:
            return
        bm = self._entry_nu(schema, key) * len(lst)
        if bm <= self.params.bm_max:
            return
        entry: EntryId = (schema, key)
        last = self._last_handled.get(entry, 0.0)
        if last and bm < last * self.params.growth_factor:
            return
        self._note_threshold("bm_max")
        self._distribute_entry(schema, key)
        self._last_handled[entry] = self.benefit_margin(schema, key)

    def _distribute_entry(self, schema: Schema, key: Key) -> None:
        """The paper's ``Cluster_distribute`` for one oversized entry."""
        params = self.params
        table = self.config.table(schema)
        if table is None:
            return
        lst = table.entry(key)
        if lst is None:
            return
        self._note_maintenance("distributions")
        entry: EntryId = (schema, key)
        entry_nu = self._entry_nu(schema, key)
        members = [sid for cluster in lst.clusters() for sid in cluster.ids()]
        stayers: List[Any] = []
        for sid in members:
            sub = self.get(sid)
            eligible = self.config.eligible_schemas(sub.equality_attributes)
            best_schema = None
            best_bucket = self._sub_nu_bucket(sub, schema)
            for cand in eligible:
                if cand == schema:
                    continue
                bucket = self._sub_nu_bucket(sub, cand)
                if bucket <= best_bucket - self._gap:
                    best_schema, best_bucket = cand, bucket
            if best_schema is not None:
                self.move_subscription(sid, best_schema)
                if self._tracker.is_marked(sid):
                    self._tracker.reset_votes(sub.equality_attributes)
                    self._tracker.unmark(sid)
                self._note_maintenance("moves")
            else:
                stayers.append(sid)
        # Redistribution not enough: vote for potential tables.
        if entry_nu * len(stayers) > params.bm_max:
            for sid in stayers:
                if self._tracker.is_marked(sid):
                    continue
                sub = self.get(sid)
                potentials = self._potential_schemas(sub, entry_nu)
                self._tracker.note(sid, potentials, entry)
            for new_schema in self._tracker.ready(params.b_create):
                self._create_table(new_schema)

    def _sub_nu_bucket(self, sub: Subscription, schema: Schema) -> int:
        """Value-specific ν of *sub* over *schema*, log-bucketed."""
        return math.floor(math.log(max(1e-300, self._sub_nu(sub, schema))))

    def _potential_schemas(self, sub: Subscription, entry_nu: float) -> List[Schema]:
        """Uncreated schemas over A(s) that would clearly beat the entry."""
        params = self.params
        attrs = sorted(sub.equality_attributes)
        entry_bucket = math.floor(math.log(max(1e-300, entry_nu)))
        out: List[Schema] = []
        for k in range(2, min(len(attrs), params.max_schema_size) + 1):
            for combo in itertools.combinations(attrs, k):
                if combo in self.config:
                    continue
                if self._sub_nu_bucket(sub, combo) <= entry_bucket - self._gap:
                    out.append(combo)
        return out

    # ------------------------------------------------------------------
    # table creation / deletion
    # ------------------------------------------------------------------
    def _create_table(self, schema: Schema) -> None:
        """Create a potential table and pull in its candidates' members."""
        params = self.params
        candidates = self._tracker.candidates_of(schema)
        self._tracker.clear_schema(schema)
        if schema in self.config:
            return
        self.config.ensure_table(schema)
        self._note_maintenance("tables_created")
        for src_schema, src_key in candidates:
            table = self.config.table(src_schema)
            if table is None:
                continue
            lst = table.entry(src_key)
            if lst is None:
                continue
            movers = [sid for cluster in lst.clusters() for sid in cluster.ids()]
            for sid in movers:
                sub = self.get(sid)
                if not sub.equality_attributes.issuperset(schema):
                    continue
                cur_bucket = self._sub_nu_bucket(sub, src_schema)
                new_bucket = self._sub_nu_bucket(sub, schema)
                if new_bucket <= cur_bucket - self._gap:
                    self.move_subscription(sid, schema)
                    self._tracker.unmark(sid)
                    self._note_maintenance("moves")

    def _drop_table(self, schema: Schema) -> None:
        """Delete a table, redistributing its members to the best rest."""
        table = self.config.table(schema)
        if table is None:
            return
        members = [
            sid
            for _key, lst in list(table.entries())
            for cluster in lst.clusters()
            for sid in cluster.ids()
        ]
        for sid in members:
            sub = self.get(sid)
            eligible = [
                s
                for s in self.config.eligible_schemas(sub.equality_attributes)
                if s != schema
            ]
            target = (
                min(eligible, key=lambda s: (self._nu_bucket(s), s))
                if eligible
                else None
            )
            self.move_subscription(sid, target)
            self._note_maintenance("moves")
        self.config.drop_table(schema)
        self._note_maintenance("tables_dropped")

    # ------------------------------------------------------------------
    # periodic sweep
    # ------------------------------------------------------------------
    def sweep(self) -> None:
        """Periodic maintenance: oversized entries, underused tables."""
        params = self.params
        self._note_maintenance("sweeps")
        for table in list(self.config.tables()):
            for key, lst in list(table.entries()):
                # ν ≤ 1, so BM = ν·|entry| can only exceed the threshold
                # when the entry itself does — skipping small entries keeps
                # sweeps O(large entries), not O(all entries).
                if len(lst) > params.bm_max:
                    self._maybe_handle_entry(table.schema, key)
        # Drop starved multi-attribute tables (singletons are the free
        # natural clustering and stay).
        for table in list(self.config.tables()):
            if len(table.schema) > 1 and len(table) < params.b_delete:
                self._note_threshold("b_delete")
                self._drop_table(table.schema)

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def stats(self) -> Dict[str, Any]:
        base = super().stats()
        base["maintenance"] = dict(self.maintenance)
        base["potential_tables"] = self._tracker.potential_count
        return base
