"""User-facing matching engines, one per algorithm in the paper's §6."""

from typing import Optional

from repro.algorithms.counting import CountingMatcher
from repro.algorithms.propagation import (
    PrefetchPropagationMatcher,
    PropagationMatcher,
)
from repro.algorithms.testnetwork import TreeMatcher
from repro.core.matcher import Matcher
from repro.core.oracle import OracleMatcher
from repro.matchers.clustered import ClusteredMatcher
from repro.matchers.dynamic import DynamicMatcher
from repro.matchers.static import StaticMatcher

def _sharded(**kwargs) -> Matcher:
    """Factory for the sharded fan-out engine (imported lazily: the
    sharding module resolves its inner backends through this registry)."""
    from repro.system.sharding import ShardedMatcher

    return ShardedMatcher(**kwargs)


def _aggregating(**kwargs) -> Matcher:
    """Factory for the aggregation wrapper (imported lazily: the
    aggregation module resolves its inner backend through this registry)."""
    from repro.aggregation import AggregatingMatcher

    return AggregatingMatcher(**kwargs)


#: Algorithm name → factory, as used by benchmarks and examples.
MATCHER_FACTORIES = {
    "oracle": OracleMatcher,
    "counting": CountingMatcher,
    "propagation": PropagationMatcher,
    "propagation-wp": PrefetchPropagationMatcher,
    "static": StaticMatcher,
    "dynamic": DynamicMatcher,
    "test-network": TreeMatcher,
    "sharded": _sharded,
    "aggregating": _aggregating,
}


def make_matcher(name: str, **kwargs) -> Matcher:
    """Build a matcher by algorithm name (see :data:`MATCHER_FACTORIES`).

    ``static`` requires a ``statistics`` argument; ``dynamic`` creates an
    online :class:`~repro.clustering.statistics.EventStatistics` when none
    is given; ``sharded`` partitions over inner backends (``shards=``,
    ``router=``, ``inner=`` keyword arguments); ``aggregating`` wraps an
    inner backend with dedup + covering aggregation (``inner=``).
    """
    try:
        factory = MATCHER_FACTORIES[name]
    except KeyError:
        known = ", ".join(sorted(MATCHER_FACTORIES))
        raise ValueError(f"unknown matcher {name!r}; known: {known}") from None
    return factory(**kwargs)


__all__ = [
    "ClusteredMatcher",
    "CountingMatcher",
    "DynamicMatcher",
    "MATCHER_FACTORIES",
    "Matcher",
    "OracleMatcher",
    "PrefetchPropagationMatcher",
    "PropagationMatcher",
    "StaticMatcher",
    "TreeMatcher",
    "make_matcher",
]
