"""The static algorithm: greedy cost-based clustering (paper Section 3).

Usage pattern matching the paper's evaluation:

1. construct with a statistics provider;
2. ``add_all(subscriptions)`` — before a plan exists, subscriptions land
   under singleton schemas (the "natural" clustering);
3. ``rebuild()`` — run the greedy optimizer over the current
   subscriptions and repack everything under the chosen schemas.

``rebuild()`` is the expensive from-scratch reorganization that gives the
static algorithm its high loading time in Figure 3(d); subsequent
``add``/``remove`` calls keep using the frozen plan.
"""

from __future__ import annotations

import math
from typing import Dict, Mapping, Optional

from repro.clustering.access import Schema
from repro.clustering.cost import CostModel
from repro.clustering.greedy import ClusteringPlan, GreedyClusteringOptimizer
from repro.clustering.statistics import Statistics
from repro.core.types import Subscription
from repro.indexes.ordered import IndexKind
from repro.matchers.clustered import ClusteredMatcher


class StaticMatcher(ClusteredMatcher):
    """Greedy-optimized clustering, frozen between ``rebuild()`` calls."""

    name = "static"

    def __init__(
        self,
        statistics: Statistics,
        cost_model: Optional[CostModel] = None,
        max_space: float = math.inf,
        max_schema_size: int = 3,
        domains: Optional[Mapping[str, int]] = None,
        index_kind: IndexKind = IndexKind.SORTED_ARRAY,
        vectorized: bool = True,
    ) -> None:
        super().__init__(statistics, index_kind, vectorized)
        self._optimizer = GreedyClusteringOptimizer(
            statistics,
            cost_model=cost_model,
            max_space=max_space,
            max_schema_size=max_schema_size,
            domains=domains,
        )
        self.plan: Optional[ClusteringPlan] = None

    # ------------------------------------------------------------------
    # observability
    # ------------------------------------------------------------------
    def _bind_metrics(self) -> None:
        super()._bind_metrics()
        labels = {"engine": self.name, "shard": self.metrics_shard}
        names = ("engine", "shard")
        self._m_rebuilds = self.metrics.counter(
            "repro_static_rebuilds_total",
            "From-scratch greedy reorganizations (the Figure 3(d) loading cost).",
            names,
        ).labels(**labels)
        self._m_plan_schemas = self.metrics.gauge(
            "repro_static_plan_schemas",
            "Hash-table schemas chosen by the current greedy plan.",
            names,
        ).labels(**labels)

    # ------------------------------------------------------------------
    # schema choice
    # ------------------------------------------------------------------
    def _choose_schema(self, sub: Subscription) -> Optional[Schema]:
        eq_attrs = sub.equality_attributes
        if not eq_attrs:
            return None
        if self.plan is not None:
            schema = self.plan.choose_schema(sub)
            if schema is not None:
                return schema
        # Pre-plan (or plan-ineligible): natural clustering — the cheapest
        # singleton schema by expected ν, creating its table on demand.
        best_attr = min(
            eq_attrs,
            key=lambda a: (self.statistics.expected_nu_schema((a,)), a),
        )
        schema = (best_attr,)
        self.config.ensure_table(schema)
        return schema

    # ------------------------------------------------------------------
    # optimization
    # ------------------------------------------------------------------
    def rebuild(self) -> ClusteringPlan:
        """Run the greedy optimizer and repack every subscription.

        Returns the resulting plan (also stored on :attr:`plan`).
        """
        subs = [self.get(sid) for sid in list(self._placement)]
        plan = self._optimizer.optimize(subs)
        self.plan = plan
        # Pre-create the plan's tables, then repack.
        for schema in plan.schemas:
            self.config.ensure_table(schema)
        for sub in subs:
            current_schema, _key, _size = self._placement[sub.id]
            target = self._choose_schema(sub)
            if target != current_schema:
                self.move_subscription(sub.id, target)
        self._drop_empty_tables()
        if self.metrics.enabled:
            self._m_rebuilds.inc()
            self._m_plan_schemas.set(len(plan.schemas))
        return plan

    def _drop_empty_tables(self) -> None:
        for schema in list(self.config.schemas()):
            table = self.config.table(schema)
            if table is not None and len(table) == 0:
                keep = self.plan is not None and schema in self.plan.schemas
                if not keep:
                    self.config.drop_table(schema)

    def stats(self) -> Dict[str, object]:
        base = super().stats()
        if self.plan is not None:
            base["plan_schemas"] = ["/".join(s) for s in self.plan.schemas]
            base["plan_matching_cost"] = self.plan.matching_cost
        return base
