"""A loopback batch server: the paper's measurement boundary.

Section 6.1: "The workload generation task ran as a separate process …
timings therefore include the interprocess communication times and
individual timings account for the processing of an entire batch."
This module provides the in-process equivalent: the matcher runs on a
dedicated worker thread, clients submit fixed-size batches through
queues, and the reply carries both the results and the server-side
processing time — so harnesses can measure *with* the submission hop
(like the paper) or subtract it.

Multi-worker mode (``workers > 1``) serves the queue from several
threads at once.  Matchers that declare ``thread_safe = True`` (the
:class:`~repro.system.sharding.ShardedMatcher`, whose per-shard locks
let concurrent batches pipeline across shards) are used as-is; any
other matcher is wrapped in a
:class:`~repro.core.threadsafe.ThreadSafeMatcher`, which keeps the
results correct but serializes the actual matching.

Overload safety (see ``docs/resilience.md``): by default the request
queue is unbounded (a harness measuring the paper's figures must never
shed).  Deployments serving untrusted producers pass ``queue_limit`` to
bound it and an admission policy for the full-queue case — ``block``
the producer, ``reject`` with :class:`ServerOverloadedError`, or
``shed-oldest`` (evict the stalest queued batch, answering *its* caller
with the overload error, in favour of the new one).  Requests may carry
a ``deadline`` (seconds from submission); a batch whose deadline passed
while queued is shed with :class:`DeadlineExceededError` instead of
being matched.  Every shed increments ``repro_server_shed_total`` with
a ``reason`` label, and :meth:`BatchServer.health` reports queue depth,
shed counts, breaker states and WAL lag in one place (the ``repro
health`` CLI prints it).
"""

from __future__ import annotations

import contextlib
import dataclasses
import queue
import threading
import time
from typing import Any, Dict, List, Optional, Sequence

from repro.core.errors import ReproError
from repro.core.matcher import Matcher
from repro.core.threadsafe import ThreadSafeMatcher
from repro.core.types import Event, Subscription
from repro.matchers.dynamic import DynamicMatcher
from repro.obs.registry import MetricsRegistry
from repro.system.resilience import (
    ADMISSION_POLICIES,
    BREAKER_CLOSED,
    DeadlineExceededError,
    ServerOverloadedError,
)
from repro.system.wal import WriteAheadLog

#: Request kinds a batch can carry (the label set of the server families).
_KINDS = ("subscribe", "unsubscribe", "publish")

#: Reasons a request can be shed (the ``repro_server_shed_total`` labels).
_SHED_REASONS = ("overload", "deadline", "closed")


class ServerClosedError(ReproError, RuntimeError):
    """A batch was submitted to a server that has shut down."""


@dataclasses.dataclass
class BatchReply:
    """Outcome of one submitted batch."""

    #: Per-event match lists (events) or accepted count (subscriptions).
    results: Any
    #: Seconds the worker spent processing the batch (excl. queueing).
    processing_seconds: float
    #: Seconds from submit to reply as seen by the client (incl. hop).
    round_trip_seconds: float


@dataclasses.dataclass
class _Request:
    kind: str
    payload: Any
    reply_queue: "queue.Queue[Any]"
    submitted_at: float
    #: Absolute monotonic instant after which the work is worthless.
    deadline_at: Optional[float] = None


class BatchServer:
    """Matcher on one or more worker threads, fed through a request queue."""

    def __init__(
        self,
        matcher: Optional[Matcher] = None,
        workers: int = 1,
        metrics: Optional[MetricsRegistry] = None,
        wal: Optional["WriteAheadLog"] = None,
        queue_limit: Optional[int] = None,
        admission: str = "block",
        delivery: Optional[Any] = None,
    ) -> None:
        if workers < 1:
            raise ValueError(f"worker count must be >= 1, got {workers}")
        if queue_limit is not None and queue_limit < 1:
            raise ValueError(f"queue limit must be >= 1, got {queue_limit}")
        if admission not in ADMISSION_POLICIES:
            raise ValueError(
                f"unknown admission policy {admission!r}; "
                f"known: {', '.join(ADMISSION_POLICIES)}"
            )
        matcher = matcher if matcher is not None else DynamicMatcher()
        if workers > 1 and not getattr(matcher, "thread_safe", False):
            matcher = ThreadSafeMatcher(matcher)
        self.matcher = matcher
        self.workers = workers
        self.queue_limit = queue_limit
        self.admission = admission
        # Durability: mutations are journaled per item but fsynced once
        # per *batch* — the batch boundary is the natural amortization
        # point (the paper submits in n_S_b / n_E_b units), so even
        # wal("always") pays one disk sync per batch, not per item.
        self.wal = wal
        #: Optional :class:`~repro.system.delivery.DeliveryManager`:
        #: :meth:`health` then reports the at-least-once channel state
        #: (a disconnected channel degrades the stack).
        self.delivery = delivery
        self._requests: "queue.Queue[Optional[_Request]]" = queue.Queue(
            maxsize=queue_limit or 0
        )
        self._closed = False
        self._close_lock = threading.Lock()
        #: Unexpected worker-loop failures (not per-request errors, which
        #: are delivered to their caller); ``__exit__`` re-raises these.
        self._worker_errors: List[BaseException] = []
        # Server-side observability: one sample per *batch*, so a live
        # registry is the default.  Workers share children — updates are
        # serialized by this lock, not by the GIL.
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self._metrics_lock = threading.Lock()
        self._bind_metrics()
        self._threads = [
            threading.Thread(target=self._serve, daemon=True, name=f"repro-server-{i}")
            for i in range(workers)
        ]
        for thread in self._threads:
            thread.start()

    def _bind_metrics(self) -> None:
        m = self.metrics
        self._m_queue_depth = m.gauge(
            "repro_server_queue_depth", "Batches waiting in the request queue."
        ).labels()
        self._m_queue_limit = m.gauge(
            "repro_server_queue_limit",
            "Configured request-queue bound (0 = unbounded).",
        ).labels()
        self._m_queue_limit.set(self.queue_limit or 0)
        shed = m.counter(
            "repro_server_shed_total",
            "Requests shed without being processed, by reason.",
            ("reason",),
        )
        self._m_shed = {r: shed.labels(reason=r) for r in _SHED_REASONS}
        batches = m.counter(
            "repro_server_batches_total", "Batches processed, by request kind.", ("kind",)
        )
        items = m.counter(
            "repro_server_items_total",
            "Items (subscriptions/ids/events) processed, by request kind.",
            ("kind",),
        )
        seconds = m.histogram(
            "repro_server_batch_seconds",
            "Server-side processing latency per batch, by request kind.",
            ("kind",),
        )
        self._m_batches = {k: batches.labels(kind=k) for k in _KINDS}
        self._m_items = {k: items.labels(kind=k) for k in _KINDS}
        self._m_batch_seconds = {k: seconds.labels(kind=k) for k in _KINDS}

    def _count_shed(self, reason: str) -> None:
        with self._metrics_lock:
            self._m_shed[reason].inc()

    # ------------------------------------------------------------------
    # worker
    # ------------------------------------------------------------------
    def _serve(self) -> None:
        while True:
            request = self._requests.get()
            if request is None:
                return
            try:
                self._handle(request)
            except BaseException as exc:  # a bug in the serve loop itself
                # Per-request failures are delivered by _handle; anything
                # landing here killed the worker.  Answer the in-flight
                # caller (nobody else will) before dying.
                self._worker_errors.append(exc)
                request.reply_queue.put((None, 0.0, exc))
                raise

    def _handle(self, request: _Request) -> None:
        if (
            request.deadline_at is not None
            and time.monotonic() >= request.deadline_at
        ):
            # Expired while queued: shed, don't match.  Matching work
            # nobody is waiting for anymore only deepens an overload.
            self._count_shed("deadline")
            request.reply_queue.put(
                (
                    None,
                    0.0,
                    DeadlineExceededError(
                        f"{request.kind} batch expired before processing"
                    ),
                )
            )
            return
        start = time.perf_counter()
        try:
            wal = self.wal
            # One durability boundary per mutation batch: appends inside
            # the block skip the per-record policy fsync, so even under
            # fsync="always" the batch costs one fsync (the explicit
            # sync below), not one per item.
            journal_scope = (
                wal.batched()
                if wal is not None and request.kind != "publish"
                else contextlib.nullcontext()
            )
            with journal_scope:
                if request.kind == "subscribe":
                    n = 0
                    for sub in request.payload:
                        self.matcher.add(sub)
                        if wal is not None:
                            wal.append_subscribe(sub, at=wal.now())
                        n += 1
                    results: Any = n
                elif request.kind == "unsubscribe":
                    results = []
                    for sid in request.payload:
                        results.append(self.matcher.remove(sid).id)
                        if wal is not None:
                            wal.append_unsubscribe(sid, at=wal.now())
                elif request.kind == "publish":
                    # One kernel invocation per batch: engines with a
                    # real batch kernel amortize the predicate phase
                    # across the whole payload instead of being fed
                    # event by event.
                    results = self.matcher.match_batch(request.payload)
                else:  # pragma: no cover - guarded by the submit methods
                    raise AssertionError(request.kind)
            if wal is not None and request.kind != "publish":
                wal.sync()  # flush-on-batch boundary
            elapsed = time.perf_counter() - start
            with self._metrics_lock:
                self._m_batches[request.kind].inc()
                self._m_items[request.kind].inc(len(request.payload))
                self._m_batch_seconds[request.kind].observe(elapsed)
                self._m_queue_depth.set(self._requests.qsize())
            request.reply_queue.put((results, elapsed, None))
        except Exception as exc:  # deliver failures to the caller
            request.reply_queue.put((None, 0.0, exc))

    # ------------------------------------------------------------------
    # admission
    # ------------------------------------------------------------------
    def _admit(self, request: _Request) -> None:
        """Enqueue *request* under the configured admission policy."""
        requests = self._requests
        if self.queue_limit is None:
            requests.put(request)
            return
        if self.admission == "block":
            if request.deadline_at is None:
                requests.put(request)
                return
            remaining = request.deadline_at - time.monotonic()
            if remaining > 0:
                try:
                    requests.put(request, timeout=remaining)
                    return
                except queue.Full:
                    pass
            self._count_shed("deadline")
            raise DeadlineExceededError(
                f"{request.kind} batch deadline passed while waiting for queue space"
            )
        if self.admission == "reject":
            try:
                requests.put_nowait(request)
            except queue.Full:
                self._count_shed("overload")
                raise ServerOverloadedError(
                    f"request queue full ({self.queue_limit} batches)"
                ) from None
            return
        # shed-oldest: evict stale work in favour of fresh work.  The
        # loop races benignly with workers draining the queue — every
        # iteration either enqueues, sheds one victim, or observes the
        # queue momentarily empty and retries.
        while True:
            try:
                requests.put_nowait(request)
                return
            except queue.Full:
                pass
            try:
                victim = requests.get_nowait()
            except queue.Empty:
                continue
            if victim is None:  # close() sentinel: put it back, stop shedding
                requests.put(victim)
                self._count_shed("closed")
                raise ServerClosedError("server is closed")
            self._count_shed("overload")
            victim.reply_queue.put(
                (
                    None,
                    0.0,
                    ServerOverloadedError(
                        f"shed from a full queue ({self.queue_limit} batches) "
                        f"in favour of newer work"
                    ),
                )
            )

    # ------------------------------------------------------------------
    # client surface
    # ------------------------------------------------------------------
    def _submit(
        self, kind: str, payload: Any, deadline: Optional[float] = None
    ) -> BatchReply:
        if self._closed:
            raise ServerClosedError("server is closed")
        if deadline is not None and deadline <= 0:
            raise ValueError(f"deadline must be positive seconds, got {deadline}")
        reply: "queue.Queue[Any]" = queue.Queue()
        submitted = time.perf_counter()
        deadline_at = None if deadline is None else time.monotonic() + deadline
        self._admit(_Request(kind, payload, reply, submitted, deadline_at))
        with self._metrics_lock:
            self._m_queue_depth.set(self._requests.qsize())
        results, processing, error = reply.get()
        if error is not None:
            raise error
        return BatchReply(
            results=results,
            processing_seconds=processing,
            round_trip_seconds=time.perf_counter() - submitted,
        )

    def submit_subscriptions(
        self, batch: Sequence[Subscription], deadline: Optional[float] = None
    ) -> BatchReply:
        """Insert a subscription batch (the paper's ``n_S_b`` unit)."""
        return self._submit("subscribe", list(batch), deadline)

    def submit_unsubscriptions(
        self, sub_ids: Sequence[Any], deadline: Optional[float] = None
    ) -> BatchReply:
        """Remove a batch of subscriptions by id."""
        return self._submit("unsubscribe", list(sub_ids), deadline)

    def submit_events(
        self, batch: Sequence[Event], deadline: Optional[float] = None
    ) -> BatchReply:
        """Match an event batch (the paper's ``n_E_b`` unit); the reply's
        results hold one id-list per event."""
        return self._submit("publish", list(batch), deadline)

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def stats(self) -> Dict[str, Any]:
        """Unified stats shape: server counters plus the engine's own."""
        with self._metrics_lock:
            counters: Dict[str, Any] = {}
            for kind in _KINDS:
                counters[f"batches_{kind}"] = self._m_batches[kind].value
                counters[f"items_{kind}"] = self._m_items[kind].value
                counters[f"seconds_{kind}"] = self._m_batch_seconds[kind].sum
            for reason in _SHED_REASONS:
                counters[f"shed_{reason}"] = self._m_shed[reason].value
        out = {
            "name": "batch-server",
            "subscriptions": len(self.matcher),
            "workers": self.workers,
            "queue_depth": self._requests.qsize(),
            "queue_limit": self.queue_limit or 0,
            "admission": self.admission,
            "counters": counters,
            "matcher": self.matcher.stats(),
        }
        if self.wal is not None:
            out["wal"] = self.wal.stats()
        return out

    def health(self) -> Dict[str, Any]:
        """One overload-focused snapshot of the serving stack.

        ``status`` is ``"ok"``, ``"degraded"`` (any shard breaker not
        closed, or any delivery channel disconnected), or ``"closed"``.
        Also reports queue depth vs. limit, per-reason shed counts,
        worker liveness, per-shard breaker states (when the engine
        quarantines), WAL lag (appends not yet fsynced), and — when a
        delivery manager is attached — the at-least-once channel and
        dead-letter state.  This is what ``repro health`` prints.
        """
        with self._metrics_lock:
            shed = {r: int(self._m_shed[r].value) for r in _SHED_REASONS}
        breakers: Optional[Dict[str, str]] = None
        breaker_states = getattr(self.matcher, "breaker_states", None)
        if callable(breaker_states):
            states = breaker_states()
            if states is not None:
                breakers = {str(shard): state for shard, state in states.items()}
        executor: Optional[Dict[str, Any]] = None
        executor_health = getattr(self.matcher, "executor_health", None)
        if callable(executor_health):
            executor = executor_health()
        delivery: Optional[Dict[str, Any]] = None
        if self.delivery is not None:
            delivery = self.delivery.health()
        status = "ok"
        if breakers and any(s != BREAKER_CLOSED for s in breakers.values()):
            status = "degraded"
        if delivery is not None and delivery["disconnected"]:
            # A quarantined subscriber is shedding its deliveries to the
            # DLQ; the stack is serving, but not everyone.
            status = "degraded"
        if executor is not None and executor["alive"] < executor["workers"]:
            # A dead shard worker not yet probed back to life degrades
            # the stack even before its breaker notices.
            status = "degraded"
        if self._closed:
            status = "closed"
        out: Dict[str, Any] = {
            "status": status,
            "workers": self.workers,
            "workers_alive": sum(t.is_alive() for t in self._threads),
            "queue_depth": self._requests.qsize(),
            "queue_limit": self.queue_limit or 0,
            "admission": self.admission,
            "shed": shed,
            "subscriptions": len(self.matcher),
            "breakers": breakers,
            "executor": executor,
        }
        if self.wal is not None:
            wal_stats = self.wal.stats()
            out["wal"] = {
                "bytes": wal_stats["bytes"],
                "unsynced_appends": wal_stats["unsynced_appends"],
            }
        if delivery is not None:
            out["delivery"] = delivery
        return out

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Stop the workers (idempotent); pending batches finish first.

        Workers drain everything queued ahead of the stop sentinels, so
        in-flight batches get real replies; anything that slips in
        behind the sentinels (a submit racing with close) is answered
        with :class:`ServerClosedError` instead of hanging its caller.
        """
        with self._close_lock:
            if self._closed:
                return
            self._closed = True
        for _ in self._threads:
            self._requests.put(None)
        for thread in self._threads:
            thread.join(timeout=10.0)
        # Drain-on-close: fail leftovers (racing submits, or requests a
        # dead worker never reached) rather than leaving callers blocked.
        while True:
            try:
                request = self._requests.get_nowait()
            except queue.Empty:
                break
            if request is None:
                continue
            self._count_shed("closed")
            request.reply_queue.put(
                (None, 0.0, ServerClosedError("server closed before processing"))
            )

    def __enter__(self) -> "BatchServer":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
        # Worker-loop failures are bugs, not per-request errors; surface
        # them at the context boundary unless an exception is already
        # propagating (never mask the caller's own failure).
        if self._worker_errors and exc_info[0] is None:
            raise self._worker_errors[0]
