"""A loopback batch server: the paper's measurement boundary.

Section 6.1: "The workload generation task ran as a separate process …
timings therefore include the interprocess communication times and
individual timings account for the processing of an entire batch."
This module provides the in-process equivalent: the matcher runs on a
dedicated worker thread, clients submit fixed-size batches through
queues, and the reply carries both the results and the server-side
processing time — so harnesses can measure *with* the submission hop
(like the paper) or subtract it.

Multi-worker mode (``workers > 1``) serves the queue from several
threads at once.  Matchers that declare ``thread_safe = True`` (the
:class:`~repro.system.sharding.ShardedMatcher`, whose per-shard locks
let concurrent batches pipeline across shards) are used as-is; any
other matcher is wrapped in a
:class:`~repro.core.threadsafe.ThreadSafeMatcher`, which keeps the
results correct but serializes the actual matching.
"""

from __future__ import annotations

import dataclasses
import queue
import threading
import time
from typing import Any, Dict, List, Optional, Sequence

from repro.core.errors import ReproError
from repro.core.matcher import Matcher
from repro.core.threadsafe import ThreadSafeMatcher
from repro.core.types import Event, Subscription
from repro.matchers.dynamic import DynamicMatcher
from repro.obs.registry import MetricsRegistry
from repro.system.wal import WriteAheadLog

#: Request kinds a batch can carry (the label set of the server families).
_KINDS = ("subscribe", "unsubscribe", "publish")


class ServerClosedError(ReproError, RuntimeError):
    """A batch was submitted to a server that has shut down."""


@dataclasses.dataclass
class BatchReply:
    """Outcome of one submitted batch."""

    #: Per-event match lists (events) or accepted count (subscriptions).
    results: Any
    #: Seconds the worker spent processing the batch (excl. queueing).
    processing_seconds: float
    #: Seconds from submit to reply as seen by the client (incl. hop).
    round_trip_seconds: float


@dataclasses.dataclass
class _Request:
    kind: str
    payload: Any
    reply_queue: "queue.Queue[Any]"
    submitted_at: float


class BatchServer:
    """Matcher on one or more worker threads, fed through a request queue."""

    def __init__(
        self,
        matcher: Optional[Matcher] = None,
        workers: int = 1,
        metrics: Optional[MetricsRegistry] = None,
        wal: Optional["WriteAheadLog"] = None,
    ) -> None:
        if workers < 1:
            raise ValueError(f"worker count must be >= 1, got {workers}")
        matcher = matcher if matcher is not None else DynamicMatcher()
        if workers > 1 and not getattr(matcher, "thread_safe", False):
            matcher = ThreadSafeMatcher(matcher)
        self.matcher = matcher
        self.workers = workers
        # Durability: mutations are journaled per item but fsynced once
        # per *batch* — the batch boundary is the natural amortization
        # point (the paper submits in n_S_b / n_E_b units), so even
        # wal("always") pays one disk sync per batch, not per item.
        self.wal = wal
        self._requests: "queue.Queue[Optional[_Request]]" = queue.Queue()
        self._closed = False
        # Server-side observability: one sample per *batch*, so a live
        # registry is the default.  Workers share children — updates are
        # serialized by this lock, not by the GIL.
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self._metrics_lock = threading.Lock()
        self._bind_metrics()
        self._threads = [
            threading.Thread(target=self._serve, daemon=True, name=f"repro-server-{i}")
            for i in range(workers)
        ]
        for thread in self._threads:
            thread.start()

    def _bind_metrics(self) -> None:
        m = self.metrics
        self._m_queue_depth = m.gauge(
            "repro_server_queue_depth", "Batches waiting in the request queue."
        ).labels()
        batches = m.counter(
            "repro_server_batches_total", "Batches processed, by request kind.", ("kind",)
        )
        items = m.counter(
            "repro_server_items_total",
            "Items (subscriptions/ids/events) processed, by request kind.",
            ("kind",),
        )
        seconds = m.histogram(
            "repro_server_batch_seconds",
            "Server-side processing latency per batch, by request kind.",
            ("kind",),
        )
        self._m_batches = {k: batches.labels(kind=k) for k in _KINDS}
        self._m_items = {k: items.labels(kind=k) for k in _KINDS}
        self._m_batch_seconds = {k: seconds.labels(kind=k) for k in _KINDS}

    # ------------------------------------------------------------------
    # worker
    # ------------------------------------------------------------------
    def _serve(self) -> None:
        while True:
            request = self._requests.get()
            if request is None:
                return
            start = time.perf_counter()
            try:
                wal = self.wal
                if request.kind == "subscribe":
                    n = 0
                    for sub in request.payload:
                        self.matcher.add(sub)
                        if wal is not None:
                            wal.append_subscribe(sub, at=wal.now())
                        n += 1
                    results: Any = n
                elif request.kind == "unsubscribe":
                    results = []
                    for sid in request.payload:
                        results.append(self.matcher.remove(sid).id)
                        if wal is not None:
                            wal.append_unsubscribe(sid, at=wal.now())
                elif request.kind == "publish":
                    results = [self.matcher.match(e) for e in request.payload]
                else:  # pragma: no cover - guarded by the submit methods
                    raise AssertionError(request.kind)
                if wal is not None and request.kind != "publish":
                    wal.sync()  # flush-on-batch boundary
                elapsed = time.perf_counter() - start
                with self._metrics_lock:
                    self._m_batches[request.kind].inc()
                    self._m_items[request.kind].inc(len(request.payload))
                    self._m_batch_seconds[request.kind].observe(elapsed)
                    self._m_queue_depth.set(self._requests.qsize())
                request.reply_queue.put((results, elapsed, None))
            except Exception as exc:  # deliver failures to the caller
                request.reply_queue.put((None, 0.0, exc))

    # ------------------------------------------------------------------
    # client surface
    # ------------------------------------------------------------------
    def _submit(self, kind: str, payload: Any) -> BatchReply:
        if self._closed:
            raise ServerClosedError("server is closed")
        reply: "queue.Queue[Any]" = queue.Queue()
        submitted = time.perf_counter()
        self._requests.put(_Request(kind, payload, reply, submitted))
        with self._metrics_lock:
            self._m_queue_depth.set(self._requests.qsize())
        results, processing, error = reply.get()
        if error is not None:
            raise error
        return BatchReply(
            results=results,
            processing_seconds=processing,
            round_trip_seconds=time.perf_counter() - submitted,
        )

    def submit_subscriptions(self, batch: Sequence[Subscription]) -> BatchReply:
        """Insert a subscription batch (the paper's ``n_S_b`` unit)."""
        return self._submit("subscribe", list(batch))

    def submit_unsubscriptions(self, sub_ids: Sequence[Any]) -> BatchReply:
        """Remove a batch of subscriptions by id."""
        return self._submit("unsubscribe", list(sub_ids))

    def submit_events(self, batch: Sequence[Event]) -> BatchReply:
        """Match an event batch (the paper's ``n_E_b`` unit); the reply's
        results hold one id-list per event."""
        return self._submit("publish", list(batch))

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def stats(self) -> Dict[str, Any]:
        """Unified stats shape: server counters plus the engine's own."""
        with self._metrics_lock:
            counters: Dict[str, Any] = {}
            for kind in _KINDS:
                counters[f"batches_{kind}"] = self._m_batches[kind].value
                counters[f"items_{kind}"] = self._m_items[kind].value
                counters[f"seconds_{kind}"] = self._m_batch_seconds[kind].sum
        out = {
            "name": "batch-server",
            "subscriptions": len(self.matcher),
            "workers": self.workers,
            "queue_depth": self._requests.qsize(),
            "counters": counters,
            "matcher": self.matcher.stats(),
        }
        if self.wal is not None:
            out["wal"] = self.wal.stats()
        return out

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Stop the workers (idempotent); pending batches finish first."""
        if self._closed:
            return
        self._closed = True
        for _ in self._threads:
            self._requests.put(None)
        for thread in self._threads:
            thread.join(timeout=10.0)

    def __enter__(self) -> "BatchServer":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
