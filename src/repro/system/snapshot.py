"""Broker snapshots: persist and restore the live subscription state.

A snapshot is JSON lines: one header record (carrying the saving
broker's clock so recovery can age the snapshot against a newer WAL
tail), then one record per live subscription carrying its predicates,
its remaining validity (relative, so restore re-anchors on the new
broker's clock) and, for formula disjuncts, the logical subscription id
they belong to.

Retained *events* are deliberately not persisted: their validity
windows are short-lived by nature and the paper's system model treats
them as stream state, not durable state.

Snapshots are one half of the durability story; the other half is the
write-ahead log (:mod:`repro.system.wal`), which records the mutations
*since* the last snapshot so :func:`repro.system.recovery.recover` can
rebuild the pre-crash state.
"""

from __future__ import annotations

import dataclasses
import json
from typing import Any, Dict, List, Optional, TextIO, Tuple

from repro.core.errors import ReproError
from repro.core.types import Subscription
from repro.io import SerializationError, subscription_from_dict, subscription_to_dict
from repro.system.broker import PubSubBroker

#: Snapshot format version (bump on incompatible changes).
FORMAT_VERSION = 1


class SnapshotError(ReproError, ValueError):
    """Malformed snapshot stream or non-empty restore target."""


@dataclasses.dataclass(frozen=True)
class SnapshotRecord:
    """One persisted subscription: payload, remaining validity, identity."""

    subscription: Subscription
    #: Seconds of validity left at save time; None = immortal.
    ttl_remaining: Optional[float]
    #: Logical (formula) subscription id this disjunct belongs to, if any.
    logical: Optional[Any]


def save_snapshot(broker: PubSubBroker, fp: TextIO) -> int:
    """Write the broker's live subscriptions; returns how many.

    Works with any matcher backend (including the sharded and
    thread-safe wrappers) through the public
    :meth:`~repro.core.matcher.Matcher.iter_subscriptions` surface.
    """
    broker.purge_expired()
    now = broker.clock.now()
    header = {"type": "repro-broker-snapshot", "version": FORMAT_VERSION, "clock": now}
    fp.write(json.dumps(header, sort_keys=True) + "\n")
    count = 0
    for sub in broker.matcher.iter_subscriptions():
        expires_at = broker._sub_expires.get(sub.id)
        record: Dict[str, Any] = {
            "type": "subscription",
            "subscription": subscription_to_dict(sub),
            "ttl_remaining": None if expires_at is None else max(0.0, expires_at - now),
        }
        logical = broker._logical_of.get(sub.id)
        if logical is not None:
            record["logical"] = logical
        fp.write(json.dumps(record, sort_keys=True) + "\n")
        count += 1
    return count


def read_snapshot(fp: TextIO) -> Tuple[Optional[float], List[SnapshotRecord]]:
    """Parse a snapshot stream; returns ``(save_clock, records)``.

    ``save_clock`` is the saving broker's clock at save time (None for
    snapshots written before the header carried it).  Raises
    :class:`SnapshotError` on any malformed line — snapshots are written
    atomically, so unlike the WAL there is no torn tail to tolerate.
    """
    first = fp.readline()
    try:
        header = json.loads(first)
    except json.JSONDecodeError as exc:
        raise SnapshotError(f"bad snapshot header: {exc}") from exc
    if not isinstance(header, dict) or header.get("type") != "repro-broker-snapshot":
        raise SnapshotError("not a broker snapshot")
    if header.get("version") != FORMAT_VERSION:
        raise SnapshotError(f"unsupported snapshot version {header.get('version')!r}")
    clock = header.get("clock")
    if clock is not None and not isinstance(clock, (int, float)):
        raise SnapshotError(f"bad snapshot clock {clock!r}")
    records: List[SnapshotRecord] = []
    for lineno, line in enumerate(fp, start=2):
        line = line.strip()
        if not line:
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError as exc:
            raise SnapshotError(f"line {lineno}: invalid JSON: {exc}") from exc
        if record.get("type") != "subscription":
            raise SnapshotError(f"line {lineno}: unexpected record type")
        try:
            sub = subscription_from_dict(record["subscription"])
        except SerializationError as exc:
            raise SnapshotError(f"line {lineno}: {exc}") from exc
        ttl = record.get("ttl_remaining")
        if ttl is not None and not isinstance(ttl, (int, float)):
            raise SnapshotError(f"line {lineno}: bad ttl_remaining {ttl!r}")
        records.append(SnapshotRecord(sub, ttl, record.get("logical")))
    return clock, records


def load_snapshot(broker: PubSubBroker, fp: TextIO) -> int:
    """Restore a snapshot into an *empty* broker; returns subscriptions.

    Validity windows resume with their remaining duration measured from
    the restoring broker's current clock.  Records whose remaining ttl
    was already zero or negative at save time are *skipped*, not revived
    as immortal.  Retro-matching is skipped — the restored subscriptions
    already saw their past.  The restore is not re-logged to an attached
    write-ahead log (the snapshot itself is the durable copy).
    """
    if broker.subscription_count:
        raise SnapshotError("snapshot restore requires an empty broker")
    _clock, records = read_snapshot(fp)
    count = 0
    with broker.wal_suppressed():
        for record in records:
            ttl = record.ttl_remaining
            if ttl is not None and ttl <= 0:
                # Already expired when saved; restoring it as immortal
                # (the old `ttl or None` collapse) was a bug.
                continue
            broker.subscribe(record.subscription, ttl=ttl, notify_retained=False)
            if record.logical is not None:
                broker._logical_of[record.subscription.id] = record.logical
                broker._formula_disjuncts.setdefault(record.logical, []).append(
                    record.subscription.id
                )
            count += 1
    return count
