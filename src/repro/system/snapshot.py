"""Broker snapshots: persist and restore the live subscription state.

A snapshot is JSON lines: one header record, then one record per live
subscription carrying its predicates, its remaining validity (relative,
so restore re-anchors on the new broker's clock) and, for formula
disjuncts, the logical subscription id they belong to.

Retained *events* are deliberately not persisted: their validity
windows are short-lived by nature and the paper's system model treats
them as stream state, not durable state.
"""

from __future__ import annotations

import json
from typing import Any, Dict, TextIO

from repro.core.errors import ReproError
from repro.io import SerializationError, subscription_from_dict, subscription_to_dict
from repro.system.broker import PubSubBroker

#: Snapshot format version (bump on incompatible changes).
FORMAT_VERSION = 1


class SnapshotError(ReproError, ValueError):
    """Malformed snapshot stream or non-empty restore target."""


def save_snapshot(broker: PubSubBroker, fp: TextIO) -> int:
    """Write the broker's live subscriptions; returns how many."""
    broker.purge_expired()
    now = broker.clock.now()
    header = {"type": "repro-broker-snapshot", "version": FORMAT_VERSION}
    fp.write(json.dumps(header) + "\n")
    count = 0
    for sub_id, sub in broker.matcher._subs.items():
        expires_at = broker._sub_expires.get(sub_id)
        record: Dict[str, Any] = {
            "type": "subscription",
            "subscription": subscription_to_dict(sub),
            "ttl_remaining": None if expires_at is None else max(0.0, expires_at - now),
        }
        logical = broker._logical_of.get(sub_id)
        if logical is not None:
            record["logical"] = logical
        fp.write(json.dumps(record, sort_keys=True) + "\n")
        count += 1
    return count


def load_snapshot(broker: PubSubBroker, fp: TextIO) -> int:
    """Restore a snapshot into an *empty* broker; returns subscriptions.

    Validity windows resume with their remaining duration measured from
    the restoring broker's current clock.  Retro-matching is skipped —
    the restored subscriptions already saw their past.
    """
    if broker.subscription_count:
        raise SnapshotError("snapshot restore requires an empty broker")
    first = fp.readline()
    try:
        header = json.loads(first)
    except json.JSONDecodeError as exc:
        raise SnapshotError(f"bad snapshot header: {exc}") from exc
    if header.get("type") != "repro-broker-snapshot":
        raise SnapshotError("not a broker snapshot")
    if header.get("version") != FORMAT_VERSION:
        raise SnapshotError(f"unsupported snapshot version {header.get('version')!r}")
    count = 0
    for lineno, line in enumerate(fp, start=2):
        line = line.strip()
        if not line:
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError as exc:
            raise SnapshotError(f"line {lineno}: invalid JSON: {exc}") from exc
        if record.get("type") != "subscription":
            raise SnapshotError(f"line {lineno}: unexpected record type")
        try:
            sub = subscription_from_dict(record["subscription"])
        except SerializationError as exc:
            raise SnapshotError(f"line {lineno}: {exc}") from exc
        ttl = record.get("ttl_remaining")
        broker.subscribe(sub, ttl=ttl if ttl is None or ttl > 0 else None,
                         notify_retained=False)
        logical = record.get("logical")
        if logical is not None:
            broker._logical_of[sub.id] = logical
            broker._formula_disjuncts.setdefault(logical, []).append(sub.id)
        count += 1
    return count
