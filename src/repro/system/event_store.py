"""Validity-windowed event retention with a retro-matching index.

The paper's system "stores both valid subscriptions and valid events";
retained events let a *new subscription* be evaluated against what was
recently published (the complementary half of the matching problem).
Expiry is a lazy min-heap: each operation first pops events whose
interval ended.

Retro-matching uses an inverted index over the events' concrete
``(attribute, value)`` pairs: a new subscription with equality
predicates probes its rarest pair and verifies only those candidates —
the mirror image of the forward path's access-predicate idea.
Subscriptions without equality predicates fall back to a scan.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.core.types import Event, Subscription, Value

#: Inverted-index key: one concrete event pair.
Pair = Tuple[str, Value]


class EventStore:
    """Ordered store of events with per-event expiry and a pair index."""

    def __init__(self) -> None:
        # (expires_at, seq) heap + seq -> (event, expires_at) map.
        self._heap: List[Tuple[float, int]] = []
        self._live: Dict[int, Tuple[Event, float]] = {}
        self._seq = itertools.count()
        # (attribute, value) -> seqs of live events carrying that pair.
        self._by_pair: Dict[Pair, Set[int]] = {}

    def add(self, event: Event, expires_at: float) -> int:
        """Retain *event* until *expires_at*; returns its sequence number."""
        seq = next(self._seq)
        self._live[seq] = (event, expires_at)
        heapq.heappush(self._heap, (expires_at, seq))
        for pair in event.items():
            self._by_pair.setdefault(pair, set()).add(seq)
        return seq

    def _forget(self, seq: int) -> bool:
        entry = self._live.pop(seq, None)
        if entry is None:
            return False
        event, _expires = entry
        for pair in event.items():
            bucket = self._by_pair.get(pair)
            if bucket is not None:
                bucket.discard(seq)
                if not bucket:
                    del self._by_pair[pair]
        return True

    def purge(self, now: float) -> int:
        """Drop everything expired at *now*; returns how many."""
        dropped = 0
        heap = self._heap
        while heap and heap[0][0] <= now:
            _exp, seq = heapq.heappop(heap)
            if self._forget(seq):
                dropped += 1
        return dropped

    def valid_events(self, now: float) -> Iterator[Event]:
        """Iterate events still valid at *now* (publication order)."""
        for seq in sorted(self._live):
            event, expires_at = self._live[seq]
            if expires_at > now:
                yield event

    # ------------------------------------------------------------------
    # retro-matching
    # ------------------------------------------------------------------
    def retro_match(self, subscription: Subscription, now: float) -> List[Event]:
        """Valid events satisfying *subscription*, in publication order.

        Equality predicates narrow the candidate set through the pair
        index (probing the rarest pair); the survivors get a full check.
        """
        candidates: Optional[Set[int]] = None
        for pred in subscription.equality_predicates():
            bucket = self._by_pair.get((pred.attribute, pred.value))
            if not bucket:
                return []
            if candidates is None or len(bucket) < len(candidates):
                candidates = bucket
        seqs = sorted(candidates) if candidates is not None else sorted(self._live)
        out = []
        for seq in seqs:
            entry = self._live.get(seq)
            if entry is None:
                continue
            event, expires_at = entry
            if expires_at > now and subscription.is_satisfied_by(event):
                out.append(event)
        return out

    def __len__(self) -> int:
        return len(self._live)

    def __repr__(self) -> str:
        return f"EventStore(live={len(self._live)}, pairs={len(self._by_pair)})"
