"""The publish/subscribe broker: validity intervals over any matcher.

Implements the system model of Section 1: a stream of subscriptions and
a stream of events, each valid for an interval.  Two complementary
functionalities:

* ``publish`` — find the live subscriptions the event satisfies and
  notify their owners (optionally retaining the event);
* ``subscribe`` — register the subscription and, when events are being
  retained, immediately evaluate it against the still-valid events
  (retroactive notifications).

The matching engine is pluggable (:class:`DynamicMatcher` by default —
the paper's recommended configuration); expiry is lazy, driven by the
injected clock.
"""

from __future__ import annotations

import contextlib
import heapq
import itertools
from typing import (
    TYPE_CHECKING,
    Any,
    Callable,
    Dict,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from repro.core.errors import (
    ExpiredError,
    InvalidSubscriptionError,
    UnknownSubscriptionError,
)
from repro.core.matcher import Matcher
from repro.core.types import Event, Predicate, Subscription
from repro.lang.parser import parse_subscriptions
from repro.matchers.dynamic import DynamicMatcher
from repro.system.clock import Clock, SystemClock
from repro.system.delivery import DeliveryManager
from repro.system.event_store import EventStore
from repro.system.notifier import Notification, Notifier, QueueNotifier
from repro.system.resilience import PartialResults

if TYPE_CHECKING:  # runtime import would be circular (wal → snapshot → broker)
    from repro.system.wal import WriteAheadLog

#: Things subscribe() accepts: a full Subscription or bare predicates.
SubscriptionLike = Union[Subscription, Sequence[Predicate]]


class PubSubBroker:
    """Validity-windowed publish/subscribe over a matching engine."""

    def __init__(
        self,
        matcher: Optional[Matcher] = None,
        clock: Optional[Clock] = None,
        notifier: Optional[Notifier] = None,
        default_subscription_ttl: Optional[float] = None,
        event_retention_ttl: Optional[float] = None,
        wal: Optional["WriteAheadLog"] = None,
        delivery: Optional[DeliveryManager] = None,
    ) -> None:
        """Create a broker.

        Parameters
        ----------
        matcher:
            matching engine; defaults to a fresh :class:`DynamicMatcher`.
        clock:
            time source; defaults to :class:`SystemClock`.
        notifier:
            delivery sink; defaults to a :class:`QueueNotifier` (drain it
            via :attr:`notifier`).
        default_subscription_ttl:
            lifetime of subscriptions subscribed without an explicit
            ``ttl``; None = immortal.
        event_retention_ttl:
            how long published events stay matchable against *new*
            subscriptions; None = events are not retained.
        wal:
            optional :class:`~repro.system.wal.WriteAheadLog`; when set,
            every accepted subscribe/unsubscribe is journaled so the
            broker can be rebuilt by :func:`repro.system.recovery.recover`.
        delivery:
            optional :class:`~repro.system.delivery.DeliveryManager`.
            Matches for subscribers with a registered channel route
            through it (acked, redelivered, dead-lettered at-least-once
            semantics); everything else keeps the fire-and-forget
            ``notifier``.  Publish pumps its redelivery state machine
            lazily, the same way expiry is lazy.  Build it on the same
            clock as the broker — redelivery deadlines age in the
            broker's time domain.
        """
        self.matcher = matcher if matcher is not None else DynamicMatcher()
        self.clock = clock if clock is not None else SystemClock()
        self.notifier = notifier if notifier is not None else QueueNotifier()
        self.delivery = delivery
        self.default_subscription_ttl = default_subscription_ttl
        self.event_retention_ttl = event_retention_ttl
        self.wal: Optional["WriteAheadLog"] = None
        self._wal_suppress = 0
        #: Fault-injection hook (tests): called with a named crash point
        #: around every durability-relevant step; raising from it
        #: simulates a crash at that exact point.
        self.crash_hook: Optional[Callable[[str], None]] = None
        self._events = EventStore()
        self._sub_expiry_heap: List[Tuple[float, Any]] = []
        self._sub_expires: Dict[Any, float] = {}
        self._auto_id = itertools.count()
        # DNF formula support: logical id <-> disjunct subscription ids.
        self._formula_disjuncts: Dict[Any, List[Any]] = {}
        self._logical_of: Dict[Any, Any] = {}
        #: Lifetime counters.
        self.counters: Dict[str, int] = {
            "published": 0,
            "subscribed": 0,
            "unsubscribed": 0,
            "expired_subscriptions": 0,
            "notifications": 0,
            "degraded_publishes": 0,
        }
        if wal is not None:
            self.attach_wal(wal)

    # ------------------------------------------------------------------
    # durability plumbing
    # ------------------------------------------------------------------
    def attach_wal(self, wal: "WriteAheadLog") -> None:
        """Journal all future mutations to *wal*.

        An anchor is appended immediately, pinning this broker's current
        clock in the log's time domain (the WAL and the broker must
        share a clock for recovery's ttl aging to be exact).  An
        attached delivery manager without its own log starts journaling
        ``deliver``/``settle`` records to the same WAL.
        """
        self.wal = wal
        wal.append_anchor(self.clock.now())
        if self.delivery is not None and self.delivery.wal is None:
            self.delivery.wal = wal

    @contextlib.contextmanager
    def wal_suppressed(self) -> Iterator[None]:
        """Suspend WAL journaling (snapshot restore / recovery replay:
        the durable copy already exists, re-logging it would double it)."""
        self._wal_suppress += 1
        try:
            yield
        finally:
            self._wal_suppress -= 1

    def _wal_active(self) -> bool:
        return self.wal is not None and not self._wal_suppress

    def _crash_point(self, name: str) -> None:
        if self.crash_hook is not None:
            self.crash_hook(name)

    # ------------------------------------------------------------------
    # expiry plumbing
    # ------------------------------------------------------------------
    def purge_expired(self) -> int:
        """Drop every expired subscription and event; returns subs dropped."""
        now = self.clock.now()
        self._events.purge(now)
        dropped = 0
        heap = self._sub_expiry_heap
        while heap and heap[0][0] <= now:
            _exp, sub_id = heapq.heappop(heap)
            # The heap may hold stale entries for re-subscribed ids.
            expires = self._sub_expires.get(sub_id)
            if expires is not None and expires <= now:
                del self._sub_expires[sub_id]
                self._logical_of.pop(sub_id, None)
                try:
                    self.matcher.remove(sub_id)
                    dropped += 1
                except KeyError:
                    # Already unsubscribed explicitly; the heap entry is stale.
                    pass
        self.counters["expired_subscriptions"] += dropped
        if dropped and self._wal_active():
            # Expiry is recomputed from ttls at recovery, so it is not
            # journaled per subscription — but an anchor pins the clock
            # so recovery's crash-time estimate keeps pace.
            self.wal.append_anchor(now)
        return dropped

    # ------------------------------------------------------------------
    # subscribe / unsubscribe
    # ------------------------------------------------------------------
    def subscribe(
        self,
        subscription: SubscriptionLike,
        ttl: Optional[float] = None,
        notify_retained: bool = True,
    ) -> Any:
        """Register a subscription; returns its id.

        Bare predicate sequences get an auto-generated id.  When events
        are retained, still-valid past events are matched immediately and
        notified (set ``notify_retained=False`` to skip).
        """
        self.purge_expired()
        if not isinstance(subscription, Subscription):
            preds = list(subscription)
            if not preds:
                raise InvalidSubscriptionError("empty predicate list")
            subscription = Subscription(f"sub-{next(self._auto_id)}", preds)
        ttl = self.default_subscription_ttl if ttl is None else ttl
        if ttl is not None and ttl <= 0:
            raise ExpiredError(f"subscription ttl must be positive, got {ttl}")
        self._crash_point("subscribe:pre-apply")
        self.matcher.add(subscription)
        if ttl is not None:
            expires_at = self.clock.now() + ttl
            self._sub_expires[subscription.id] = expires_at
            heapq.heappush(self._sub_expiry_heap, (expires_at, subscription.id))
        self.counters["subscribed"] += 1
        if self._wal_active():
            # Applied-then-logged: a crash in the gap loses only this
            # not-yet-acknowledged mutation — still a consistent prefix.
            self._crash_point("subscribe:pre-log")
            self.wal.append_subscribe(subscription, ttl=ttl, at=self.clock.now())
            self._crash_point("subscribe:post-log")
        if notify_retained and len(self._events):
            now = self.clock.now()
            for event in self._events.retro_match(subscription, now):
                self._notify(subscription.id, event, now)
        return subscription.id

    def subscribe_formula(
        self, text: str, sub_id: Any = None, ttl: Optional[float] = None
    ) -> Any:
        """Register a boolean formula (``and``/``or``/``not``) as one
        logical subscription.

        The formula is expanded to DNF (the paper's conclusion notes the
        prototype "already provides an efficient support to a
        subscription language consisting of disjunctive normal form
        conditions"); each disjunct becomes an internal subscription,
        but notifications carry the one logical id and each event
        notifies it at most once.
        """
        if sub_id is None:
            sub_id = f"sub-{next(self._auto_id)}"
        disjuncts = parse_subscriptions(text, f"{sub_id}~dnf")
        ids = []
        # Disjuncts are journaled below with their logical id attached,
        # so the per-disjunct subscribe must not log them bare.
        with self.wal_suppressed():
            for disjunct in disjuncts:
                ids.append(self.subscribe(disjunct, ttl=ttl, notify_retained=False))
        self._formula_disjuncts[sub_id] = ids
        for did in ids:
            self._logical_of[did] = sub_id
        if self._wal_active():
            effective_ttl = self.default_subscription_ttl if ttl is None else ttl
            now = self.clock.now()
            self._crash_point("subscribe:pre-log")
            for disjunct in disjuncts:
                self.wal.append_subscribe(
                    disjunct, ttl=effective_ttl, logical=sub_id, at=now
                )
            self._crash_point("subscribe:post-log")
        # Retro-match once at the logical level (deduplicated).
        if len(self._events):
            now = self.clock.now()
            for event in self._events.valid_events(now):
                if any(d.is_satisfied_by(event) for d in disjuncts):
                    self._notify(sub_id, event, now)
        return sub_id

    def unsubscribe(self, sub_id: Any) -> Subscription:
        """Remove a subscription before its interval ends.

        For formula subscriptions every disjunct is removed and the
        first disjunct's Subscription is returned.
        """
        disjuncts = self._formula_disjuncts.pop(sub_id, None)
        if disjuncts is not None:
            removed = []
            for did in disjuncts:
                self._logical_of.pop(did, None)
                self._sub_expires.pop(did, None)
                try:
                    removed.append(self.matcher.remove(did))
                except KeyError:
                    # The disjunct already expired; fine.
                    pass
            if not removed:
                raise UnknownSubscriptionError(sub_id)
            self.counters["unsubscribed"] += 1
            self._wal_unsubscribed(sub_id)
            return removed[0]
        sub = self.matcher.remove(sub_id)
        self._sub_expires.pop(sub_id, None)
        self.counters["unsubscribed"] += 1
        self._wal_unsubscribed(sub_id)
        return sub

    def _wal_unsubscribed(self, sub_id: Any) -> None:
        """Journal one accepted unsubscription (logical or plain id)."""
        if self._wal_active():
            self._crash_point("unsubscribe:pre-log")
            self.wal.append_unsubscribe(sub_id, at=self.clock.now())
            self._crash_point("unsubscribe:post-log")

    def subscribe_batch(
        self, subscriptions: Iterable[SubscriptionLike], ttl: Optional[float] = None
    ) -> List[Any]:
        """Batch submission (the paper submits in ``n_S_b`` batches).

        The whole batch shares one WAL durability boundary
        (:meth:`WriteAheadLog.batched`): under the ``always`` fsync
        policy this issues a single fsync for the batch instead of one
        per subscription, matching the per-batch promise the
        :class:`~repro.system.server.BatchServer` documents.
        """
        if self.wal is None or self._wal_suppress:
            return [self.subscribe(s, ttl=ttl) for s in subscriptions]
        with self.wal.batched():
            return [self.subscribe(s, ttl=ttl) for s in subscriptions]

    # ------------------------------------------------------------------
    # publish
    # ------------------------------------------------------------------
    def publish(self, event: Event, ttl: Optional[float] = None) -> List[Any]:
        """Match *event* against live subscriptions; returns matched ids.

        Every match produces a notification through the configured sink.
        When retention is on (constructor or per-call ``ttl``), the event
        stays matchable against future subscriptions until it expires.
        """
        self.purge_expired()
        now = self.clock.now()
        if self.delivery is not None:
            # Lazy pump, like lazy expiry: redeliveries and ack-timeout
            # expirations advance on every publish, so a pure
            # publish-driven workload needs no background thread.
            self.delivery.pump(now)
        raw = self.matcher.match(event)
        # Collapse formula disjuncts onto their logical id, once per event.
        matched: List[Any] = []
        seen = set()
        logical_of = self._logical_of
        for sub_id in raw:
            logical = logical_of.get(sub_id, sub_id)
            if logical not in seen:
                seen.add(logical)
                matched.append(logical)
        if self.delivery is not None and matched:
            # Batched hot path: one manager lock for the whole match
            # list; ids without a channel come back for the notifier.
            unhandled = self.delivery.dispatch_matches(matched, event, now)
        else:
            unhandled = matched
        for sub_id in unhandled:
            self.notifier.deliver(Notification(sub_id, event, now))
        self.counters["notifications"] += len(matched)
        ttl = self.event_retention_ttl if ttl is None else ttl
        if ttl is not None and ttl > 0:
            self._events.add(event, now + ttl)
        self.counters["published"] += 1
        if getattr(raw, "degraded", False):
            # A quarantining engine answered without its sick shards;
            # hand the incompleteness flag on to the publisher.
            self.counters["degraded_publishes"] += 1
            return PartialResults(
                matched, degraded=True, failed_shards=raw.failed_shards
            )
        return matched

    def publish_batch(
        self, events: Iterable[Event], ttl: Optional[float] = None
    ) -> List[List[Any]]:
        """Publish many events; returns the per-event match lists."""
        return [self.publish(e, ttl=ttl) for e in events]

    def _notify(self, sub_id: Any, event: Event, now: float) -> None:
        if self.delivery is not None and self.delivery.handles(sub_id):
            self.delivery.dispatch(sub_id, event, now=now)
        else:
            self.notifier.deliver(Notification(sub_id, event, now))
        self.counters["notifications"] += 1

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    @property
    def subscription_count(self) -> int:
        """Live subscriptions (before lazy expiry)."""
        return len(self.matcher)

    @property
    def retained_event_count(self) -> int:
        """Events currently retained for retro-matching."""
        return len(self._events)

    def stats(self) -> Dict[str, Any]:
        """Broker counters plus the engine's own statistics."""
        out = {
            "subscriptions": self.subscription_count,
            "retained_events": self.retained_event_count,
            "counters": dict(self.counters),
            "matcher": self.matcher.stats(),
        }
        if self.wal is not None:
            out["wal"] = self.wal.stats()
        if self.delivery is not None:
            out["delivery"] = self.delivery.stats()
        return out

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Release engine resources (idempotent).

        Matters for engines with real resources behind them — the
        sharded matcher's fan-out pool and, under ``executor="process"``,
        its shard worker processes.  The WAL (if attached) stays open:
        its lifetime belongs to whoever attached it.
        """
        close = getattr(self.matcher, "close", None)
        if callable(close):
            close()

    def __enter__(self) -> "PubSubBroker":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
