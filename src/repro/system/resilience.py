"""Overload-safe serving primitives: deadlines, retries, circuit breakers.

The paper's engine matches hundreds of events per second against
millions of subscriptions; the serving layer around it must keep doing
so *under stress* — a full queue, a slow client, a crashing shard.
This module holds the mechanisms the serving stack composes:

* **Admission policies** (:data:`ADMISSION_POLICIES`) — what a
  :class:`~repro.system.server.BatchServer` with a bounded queue does
  when the queue is full: ``block`` the producer, ``reject`` the new
  request (:class:`ServerOverloadedError`), or ``shed-oldest`` — evict
  the stalest queued request in favour of the new one (the evicted
  caller gets the overload error instead).
* **Deadlines** — requests may carry a deadline, checked when a worker
  *dequeues* them: work that expired while queued is shed with
  :class:`DeadlineExceededError` rather than matched (matching an event
  nobody is still waiting for only deepens the overload).
* **Retries** (:class:`RetryingClient`, :class:`RetryPolicy`) — capped
  exponential backoff with decorrelated jitter and a bounded retry
  budget, wrapping any server-like object's ``submit_*`` surface.
* **Circuit breakers** (:class:`CircuitBreaker`) — the classic
  closed/open/half-open state machine.  The
  :class:`~repro.system.sharding.ShardedMatcher` keeps one per shard so
  a crashing or slow shard is quarantined (skipped, its absence flagged
  by ``degraded=True`` on the :class:`PartialResults`) instead of
  poisoning every publish, and probed for recovery once its cool-down
  elapses.

Everything here is dependency-free and clock-injectable, so the chaos
suite drives every state transition deterministically under a
:class:`~repro.system.clock.VirtualClock`.
"""

from __future__ import annotations

import random
import threading
import time
from typing import Any, Callable, Dict, Iterator, List, Optional, Tuple

from repro.core.errors import ReproError
from repro.system.clock import Clock, SystemClock

#: What a bounded server queue does when full (see module docstring).
ADMISSION_POLICIES = ("block", "reject", "shed-oldest")

#: Circuit breaker states, in increasing order of distrust.
BREAKER_CLOSED = "closed"
BREAKER_HALF_OPEN = "half-open"
BREAKER_OPEN = "open"

#: Breaker state → the numeric value of the ``repro_breaker_state``
#: gauge (0 = healthy, 2 = quarantined; half-open probes in between).
BREAKER_STATE_VALUES = {BREAKER_CLOSED: 0, BREAKER_HALF_OPEN: 1, BREAKER_OPEN: 2}


class ServerOverloadedError(ReproError, RuntimeError):
    """A request was refused or shed because the server queue is full."""


class DeadlineExceededError(ReproError, TimeoutError):
    """A request's deadline passed before a worker started on it."""


class RetryBudgetExceededError(ReproError, RuntimeError):
    """A retrying client ran out of attempts (or wall-clock budget).

    Chains the last underlying failure as ``__cause__``.
    """


class WorkerDiedError(ReproError, RuntimeError):
    """A shard's worker process died (or stopped answering) mid-request.

    Raised by the process execution backend
    (:mod:`repro.system.procpool`) when a worker's pipe goes dead — the
    process was killed, crashed, or exceeded the pool's per-request
    timeout.  The :class:`~repro.system.sharding.ShardedMatcher` maps it
    onto the same per-shard breaker/quarantine machinery as any other
    shard failure: the breaker trips, events skip the shard (degraded
    :class:`PartialResults`), and the half-open probe respawns the
    worker and replays its subscriptions.
    """

    def __init__(self, message: str, shard: Optional[int] = None) -> None:
        super().__init__(message)
        #: Index of the shard whose worker died, when known.
        self.shard = shard


class WorkerStateError(WorkerDiedError):
    """A worker answered with a stale registry epoch.

    The parent mirrors every worker's subscription table by forwarding
    mutations through the same ordered command pipe as event batches;
    each reply carries the worker's mutation epoch so a desynchronized
    worker (a lost command, a corrupted pipe) is *detected* instead of
    silently decoding match bits against the wrong id table.  Treated
    exactly like a dead worker: the next use respawns and replays.
    """


class PartialResults(list):
    """A match-result list that knows whether it is complete.

    Plain ``list`` everywhere a list is expected; ``degraded`` is True
    when one or more quarantined/failed shards could not contribute
    (their indexes are in ``failed_shards``), so the ids present are
    correct but possibly not exhaustive.
    """

    degraded: bool = False
    failed_shards: Tuple[int, ...] = ()

    def __init__(
        self,
        iterable=(),
        degraded: bool = False,
        failed_shards: Tuple[int, ...] = (),
    ) -> None:
        super().__init__(iterable)
        self.degraded = degraded
        self.failed_shards = tuple(failed_shards)


class CircuitBreaker:
    """Closed → open → half-open failure isolation for one dependency.

    * **closed** — traffic flows; ``failure_threshold`` *consecutive*
      failures trip the breaker open.
    * **open** — :meth:`allow` answers False (callers skip the
      dependency) until ``reset_timeout`` seconds pass, then the next
      :meth:`allow` moves to half-open.
    * **half-open** — up to ``half_open_probes`` trial calls are let
      through; any failure re-opens (restarting the cool-down), while
      ``half_open_probes`` successes close the breaker again.

    Thread-safe; the clock is injectable (:class:`VirtualClock` in
    tests).  ``on_transition(old, new)`` fires outside hot paths on
    every state change — the sharded engine uses it to keep the
    ``repro_breaker_state`` gauge current.
    """

    def __init__(
        self,
        failure_threshold: int = 5,
        reset_timeout: float = 30.0,
        half_open_probes: int = 1,
        clock: Optional[Clock] = None,
        on_transition: Optional[Callable[[str, str], None]] = None,
    ) -> None:
        if failure_threshold < 1:
            raise ValueError(f"failure threshold must be >= 1, got {failure_threshold}")
        if reset_timeout < 0:
            raise ValueError(f"reset timeout must be >= 0, got {reset_timeout}")
        if half_open_probes < 1:
            raise ValueError(f"half-open probes must be >= 1, got {half_open_probes}")
        self.failure_threshold = failure_threshold
        self.reset_timeout = reset_timeout
        self.half_open_probes = half_open_probes
        self.clock = clock if clock is not None else SystemClock()
        self.on_transition = on_transition
        self._lock = threading.Lock()
        self._state = BREAKER_CLOSED
        self._consecutive_failures = 0
        self._opened_at = 0.0
        self._probes_in_flight = 0
        self._probe_successes = 0
        #: Lifetime counters (state transitions and decisions).
        self.counters: Dict[str, int] = {
            "failures": 0,
            "successes": 0,
            "rejections": 0,
            "opened": 0,
            "half_opened": 0,
            "closed": 0,
        }

    # ------------------------------------------------------------------
    # state machine
    # ------------------------------------------------------------------
    def _transition_locked(self, new_state: str) -> Optional[Tuple[str, str]]:
        old, self._state = self._state, new_state
        if new_state == BREAKER_OPEN:
            self._opened_at = self.clock.now()
            self.counters["opened"] += 1
        elif new_state == BREAKER_HALF_OPEN:
            self._probes_in_flight = 0
            self._probe_successes = 0
            self.counters["half_opened"] += 1
        else:
            self._consecutive_failures = 0
            self.counters["closed"] += 1
        return (old, new_state) if old != new_state else None

    def _notify(self, change: Optional[Tuple[str, str]]) -> None:
        if change is not None and self.on_transition is not None:
            self.on_transition(*change)

    def _maybe_half_open_locked(self) -> Optional[Tuple[str, str]]:
        """Open → half-open once the cool-down elapsed (lazy, on read)."""
        if (
            self._state == BREAKER_OPEN
            and self.clock.now() - self._opened_at >= self.reset_timeout
        ):
            return self._transition_locked(BREAKER_HALF_OPEN)
        return None

    @property
    def state(self) -> str:
        """Current state (advances open → half-open lazily)."""
        with self._lock:
            change = self._maybe_half_open_locked()
            state = self._state
        self._notify(change)
        return state

    def allow(self) -> bool:
        """May a call proceed right now?

        Half-open admits at most ``half_open_probes`` concurrent trial
        calls; every allowed call must be answered with exactly one
        :meth:`record_success` or :meth:`record_failure`.
        """
        with self._lock:
            change = self._maybe_half_open_locked()
            if self._state == BREAKER_CLOSED:
                allowed = True
            elif self._state == BREAKER_HALF_OPEN:
                allowed = self._probes_in_flight < self.half_open_probes
                if allowed:
                    self._probes_in_flight += 1
            else:
                allowed = False
            if not allowed:
                self.counters["rejections"] += 1
        self._notify(change)
        return allowed

    def record_success(self) -> None:
        """An allowed call completed correctly."""
        with self._lock:
            self.counters["successes"] += 1
            self._consecutive_failures = 0
            change = None
            if self._state == BREAKER_HALF_OPEN:
                self._probes_in_flight = max(0, self._probes_in_flight - 1)
                self._probe_successes += 1
                if self._probe_successes >= self.half_open_probes:
                    change = self._transition_locked(BREAKER_CLOSED)
        self._notify(change)

    def record_failure(self) -> None:
        """An allowed call failed (exception, or deemed too slow)."""
        with self._lock:
            self.counters["failures"] += 1
            self._consecutive_failures += 1
            change = None
            if self._state == BREAKER_HALF_OPEN:
                # A failed probe: distrust immediately, restart cool-down.
                change = self._transition_locked(BREAKER_OPEN)
            elif (
                self._state == BREAKER_CLOSED
                and self._consecutive_failures >= self.failure_threshold
            ):
                change = self._transition_locked(BREAKER_OPEN)
        self._notify(change)

    def force_open(self) -> None:
        """Trip the breaker administratively (manual quarantine)."""
        with self._lock:
            change = self._transition_locked(BREAKER_OPEN)
        self._notify(change)

    def reset(self) -> None:
        """Close the breaker administratively (manual heal)."""
        with self._lock:
            change = self._transition_locked(BREAKER_CLOSED)
        self._notify(change)

    def stats(self) -> Dict[str, Any]:
        """JSON-serializable breaker snapshot (same contract as matchers)."""
        state = self.state  # advances open → half-open lazily
        with self._lock:
            return {
                "state": state,
                "consecutive_failures": self._consecutive_failures,
                "failure_threshold": self.failure_threshold,
                "reset_timeout": self.reset_timeout,
                "counters": dict(self.counters),
            }


class RetryPolicy:
    """Capped exponential backoff with decorrelated jitter.

    The delay sequence follows the "decorrelated jitter" recipe: each
    sleep is drawn uniformly from ``[base_delay, prev * 3]`` and capped
    at ``max_delay``, which spreads retry storms instead of
    synchronizing them.  The budget is two-dimensional: at most
    ``max_attempts`` tries, and (optionally) at most ``budget_seconds``
    of wall-clock spent sleeping between them.
    """

    def __init__(
        self,
        max_attempts: int = 5,
        base_delay: float = 0.01,
        max_delay: float = 1.0,
        budget_seconds: Optional[float] = None,
        rng: Optional[random.Random] = None,
    ) -> None:
        if max_attempts < 1:
            raise ValueError(f"max attempts must be >= 1, got {max_attempts}")
        if base_delay < 0:
            raise ValueError(f"base delay must be >= 0, got {base_delay}")
        if max_delay < base_delay:
            raise ValueError(
                f"max delay {max_delay} must be >= base delay {base_delay}"
            )
        if budget_seconds is not None and budget_seconds < 0:
            raise ValueError(f"budget must be >= 0, got {budget_seconds}")
        self.max_attempts = max_attempts
        self.base_delay = base_delay
        self.max_delay = max_delay
        self.budget_seconds = budget_seconds
        self.rng = rng if rng is not None else random.Random()

    def delays(self) -> Iterator[float]:
        """The backoff sequence: one delay per *retry* (attempts - 1)."""
        delay = self.base_delay
        for _ in range(self.max_attempts - 1):
            delay = min(
                self.max_delay, self.rng.uniform(self.base_delay, max(delay, self.base_delay) * 3)
            )
            yield delay


class RetryingClient:
    """Wrap a server's ``submit_*`` surface with bounded retries.

    Retries only the failures that retrying can fix (overload sheds by
    default; pass ``retry_on`` to widen), re-raising everything else —
    a :class:`DuplicateSubscriptionError` will never succeed on attempt
    two, so it must not consume budget.  When the budget runs out a
    :class:`RetryBudgetExceededError` chains the last failure.

    ``sleep`` is injectable so tests observe the backoff sequence in
    virtual time.
    """

    def __init__(
        self,
        server: Any,
        policy: Optional[RetryPolicy] = None,
        retry_on: Tuple[type, ...] = (ServerOverloadedError,),
        sleep: Callable[[float], None] = time.sleep,
        time_source: Callable[[], float] = time.monotonic,
    ) -> None:
        self.server = server
        self.policy = policy if policy is not None else RetryPolicy()
        self.retry_on = retry_on
        self.sleep = sleep
        self.time_source = time_source
        #: Lifetime counters across all submissions.
        self.counters: Dict[str, int] = {"attempts": 0, "retries": 0, "exhausted": 0}

    # ------------------------------------------------------------------
    # the retry loop
    # ------------------------------------------------------------------
    def _call(self, method: str, *args: Any, **kwargs: Any) -> Any:
        policy = self.policy
        started = self.time_source()
        delays = policy.delays()
        attempt = 0
        while True:
            attempt += 1
            self.counters["attempts"] += 1
            try:
                return getattr(self.server, method)(*args, **kwargs)
            except self.retry_on as exc:
                delay = next(delays, None)
                if delay is None:
                    self.counters["exhausted"] += 1
                    raise RetryBudgetExceededError(
                        f"{method} failed after {attempt} attempts"
                    ) from exc
                if (
                    policy.budget_seconds is not None
                    and self.time_source() - started + delay > policy.budget_seconds
                ):
                    self.counters["exhausted"] += 1
                    raise RetryBudgetExceededError(
                        f"{method} exceeded its {policy.budget_seconds}s retry "
                        f"budget after {attempt} attempts"
                    ) from exc
                self.counters["retries"] += 1
                self.sleep(delay)

    # ------------------------------------------------------------------
    # the submit surface (mirrors BatchServer)
    # ------------------------------------------------------------------
    def submit_subscriptions(self, batch, **kwargs: Any) -> Any:
        """Insert a subscription batch, retrying on overload."""
        return self._call("submit_subscriptions", batch, **kwargs)

    def submit_unsubscriptions(self, sub_ids, **kwargs: Any) -> Any:
        """Remove a batch of subscriptions by id, retrying on overload."""
        return self._call("submit_unsubscriptions", sub_ids, **kwargs)

    def submit_events(self, batch, **kwargs: Any) -> Any:
        """Match an event batch, retrying on overload."""
        return self._call("submit_events", batch, **kwargs)

    def stats(self) -> Dict[str, Any]:
        """Client-side retry counters."""
        return {
            "name": "retrying-client",
            "max_attempts": self.policy.max_attempts,
            "counters": dict(self.counters),
        }
