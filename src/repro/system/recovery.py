"""Crash recovery: rebuild a broker from its snapshot and WAL tail.

The durable state of a broker is (last snapshot, WAL since that
snapshot).  :func:`recover` merges the two into the pre-crash
subscription set and installs it into an empty broker:

1. the snapshot's records seed a merge table keyed by subscription id,
   each carrying its *absolute* expiry in the source broker's clock
   domain (the snapshot header's ``clock`` plus the record's remaining
   ttl);
2. the WAL's longest valid prefix is replayed over the table in order —
   ``subscribe`` inserts/overwrites, ``unsubscribe`` deletes (including
   every disjunct of a logical formula id), ``anchor`` only advances
   time, and ``deliver``/``settle`` pairs fold into a
   :class:`~repro.system.delivery.DeliveryLedger` whose still-open
   entries (dispatched, never settled) are exactly the unacked
   in-flight notifications the crash interrupted;
3. the crash time is estimated as the newest timestamp seen anywhere
   (so clock anchors tighten ttl aging even across mutation-free
   stretches, and records with negative clock skew cannot move it
   backwards); every surviving entry is installed with its *remaining*
   validity, re-anchored on the recovering broker's clock, and entries
   that already expired before the crash are skipped.

The merge is idempotent: replaying records that predate the snapshot
(possible when a crash lands between compaction's snapshot rename and
its log restart) rewrites entries with the same absolute expiry, so the
result is unchanged.  Everything after the first damaged WAL record is
discarded — recovery yields a *prefix-consistent* state, never a
partially-trusted one.

When the recovering broker carries a
:class:`~repro.system.delivery.DeliveryManager` (``broker.delivery``),
the ledger's open entries are re-queued into it for redelivery
(subscribers that have not re-registered yet get theirs the moment they
do) and its dead letters are re-installed in the manager's
:class:`~repro.system.delivery.DeadLetterQueue` — an at-least-once
delivery survives a crash at any WAL offset.
"""

from __future__ import annotations

import dataclasses
import os
from typing import IO, Any, Dict, List, Optional, Tuple, Union

from repro.core.errors import ReproError
from repro.core.types import Subscription
from repro.io import SerializationError, event_from_dict, subscription_from_dict
from repro.obs.registry import MetricsRegistry
from repro.system.broker import PubSubBroker
from repro.system.delivery import DeliveryLedger
from repro.system.snapshot import read_snapshot
from repro.system.wal import read_wal


class RecoveryError(ReproError, ValueError):
    """Recovery precondition violated (e.g. a non-empty target broker)."""


@dataclasses.dataclass
class RecoveryReport:
    """What one :func:`recover` run saw and rebuilt."""

    #: Subscriptions installed into the recovering broker.
    restored: int = 0
    #: Subscription records read from the snapshot.
    snapshot_records: int = 0
    #: Valid WAL records replayed (all kinds).
    wal_records: int = 0
    replayed_subscribes: int = 0
    replayed_unsubscribes: int = 0
    anchors: int = 0
    #: ``deliver`` / ``settle`` records folded into the delivery ledger.
    replayed_deliveries: int = 0
    replayed_settles: int = 0
    #: Deliveries still open at the crash (re-queued for redelivery).
    unacked_deliveries: int = 0
    #: Dead letters reconstructed from the log.
    recovered_dead_letters: int = 0
    #: Entries dropped because their validity ended before the crash.
    skipped_expired: int = 0
    #: WAL lines distrusted after the first damaged record.
    torn_tail_discarded: int = 0
    #: Unsubscribes whose target was already gone (expired at source).
    unknown_unsubscribes: int = 0
    #: Estimated source-broker clock at crash time.
    source_clock: Optional[float] = None

    def as_dict(self) -> Dict[str, Any]:
        """JSON-serializable form (the CLI's ``repro recover`` output)."""
        return dataclasses.asdict(self)


@dataclasses.dataclass
class _Entry:
    subscription: Subscription
    #: Absolute expiry in the source clock domain; None = immortal.
    expires_src: Optional[float]
    logical: Optional[Any]


def _bind_metrics(registry: MetricsRegistry):
    replayed = registry.counter(
        "repro_recovery_replayed_total",
        "WAL records replayed during recovery, by kind.",
        ("kind",),
    )
    return {
        "subscribe": replayed.labels(kind="subscribe"),
        "unsubscribe": replayed.labels(kind="unsubscribe"),
        "anchor": replayed.labels(kind="anchor"),
        "deliver": replayed.labels(kind="deliver"),
        "settle": replayed.labels(kind="settle"),
        "restored": registry.counter(
            "repro_recovery_restored_total",
            "Subscriptions installed into the recovering broker.",
        ).labels(),
        "skipped_expired": registry.counter(
            "repro_recovery_skipped_expired_total",
            "Entries dropped at recovery because they expired pre-crash.",
        ).labels(),
        "torn_tail_discarded": registry.counter(
            "repro_recovery_torn_tail_discarded_total",
            "WAL lines distrusted after the first damaged record.",
        ).labels(),
    }


def recover(
    broker: PubSubBroker,
    snapshot_fp: Optional[IO[str]] = None,
    wal_fp: Optional[IO[str]] = None,
    metrics: Optional[MetricsRegistry] = None,
) -> RecoveryReport:
    """Restore *broker* (must be empty) from a snapshot and/or WAL.

    Either stream may be omitted: a snapshot alone behaves like
    :func:`~repro.system.snapshot.load_snapshot` (plus aging against any
    later anchors), a WAL alone rebuilds from an empty base.  Raises
    :class:`RecoveryError` on a non-empty broker,
    :class:`~repro.system.snapshot.SnapshotError` /
    :class:`~repro.system.wal.WalError` on inputs that are not a
    snapshot / WAL at all.  The rebuilt state is *not* re-logged to any
    attached WAL — compact afterwards to re-establish durability.
    """
    if broker.subscription_count:
        raise RecoveryError("recovery requires an empty broker")
    report = RecoveryReport()

    snap_clock: Optional[float] = None
    snap_records = []
    if snapshot_fp is not None:
        snap_clock, snap_records = read_snapshot(snapshot_fp)
        report.snapshot_records = len(snap_records)

    wal_records: List[Dict[str, Any]] = []
    if wal_fp is not None:
        wal_records, report.torn_tail_discarded = read_wal(wal_fp)

    times = [
        float(r["at"]) for r in wal_records if isinstance(r.get("at"), (int, float))
    ]
    if snap_clock is None and snapshot_fp is not None:
        # Legacy snapshot without a clock header: anchor it at the
        # earliest WAL time (compaction restarts the log, so the first
        # record is the best lower bound), or zero with no WAL.
        snap_clock = min(times) if times else 0.0

    entries: Dict[Any, _Entry] = {}
    for record in snap_records:
        ttl = record.ttl_remaining
        if ttl is not None and ttl <= 0:
            # Expired when saved (the pre-fix format could contain
            # these); never revive them.
            report.skipped_expired += 1
            continue
        expires = None if ttl is None else snap_clock + ttl
        entries[record.subscription.id] = _Entry(
            record.subscription, expires, record.logical
        )

    ledger = DeliveryLedger()
    for index, record in enumerate(wal_records):
        kind = record.get("type")
        at = record.get("at")
        if not isinstance(at, (int, float)):
            at = None
        if kind == "anchor":
            report.anchors += 1
        elif kind in ("deliver", "settle"):
            ledger.apply(record)
            if kind == "deliver":
                report.replayed_deliveries += 1
            else:
                report.replayed_settles += 1
        elif kind == "subscribe":
            try:
                sub = subscription_from_dict(record["subscription"])
            except (KeyError, TypeError, SerializationError):
                # Structurally valid JSON but not a replayable record:
                # treat like tail damage — trust nothing further.
                report.torn_tail_discarded += len(wal_records) - index
                break
            ttl = record.get("ttl")
            if ttl is not None and not isinstance(ttl, (int, float)):
                report.torn_tail_discarded += len(wal_records) - index
                break
            base = at if at is not None else (times and max(times)) or 0.0
            expires = None if ttl is None else base + ttl
            entries[sub.id] = _Entry(sub, expires, record.get("logical"))
            report.replayed_subscribes += 1
        elif kind == "unsubscribe":
            sid = record.get("id")
            removed = entries.pop(sid, None) is not None
            for key in [k for k, e in entries.items() if e.logical == sid]:
                del entries[key]
                removed = True
            if not removed:
                report.unknown_unsubscribes += 1
            report.replayed_unsubscribes += 1
        report.wal_records += 1

    if snap_clock is not None:
        times.append(snap_clock)
    now_src = max(times) if times else 0.0
    report.source_clock = now_src if (snapshot_fp or wal_records) else None

    with broker.wal_suppressed():
        for entry in entries.values():
            remaining = (
                None if entry.expires_src is None else entry.expires_src - now_src
            )
            if remaining is not None and remaining <= 0:
                report.skipped_expired += 1
                continue
            broker.subscribe(entry.subscription, ttl=remaining, notify_retained=False)
            if entry.logical is not None:
                broker._logical_of[entry.subscription.id] = entry.logical
                broker._formula_disjuncts.setdefault(entry.logical, []).append(
                    entry.subscription.id
                )
            report.restored += 1

    report.unacked_deliveries = len(ledger.outstanding)
    report.recovered_dead_letters = len(ledger.dead)
    delivery = getattr(broker, "delivery", None)
    if delivery is not None:
        # Re-queue under a suppressed WAL stance?  No — restore() never
        # journals (the surviving ``deliver`` records already cover
        # these), so re-queuing is side-effect-free on the log.
        for (sub_id, seq), info in ledger.outstanding.items():
            try:
                event = event_from_dict(info["event"])
            except (KeyError, TypeError, SerializationError):
                continue  # a ledger entry we cannot reconstruct
            delivery.restore(sub_id, seq, event, at=info["at"])
        for dead in ledger.dead:
            try:
                event = event_from_dict(dead["event"])
            except (KeyError, TypeError, SerializationError):
                continue
            delivery.restore_dead_letter(
                dead["sub"],
                dead["seq"],
                event,
                dead["reason"],
                dead["attempts"],
                dead["at"],
            )

    if metrics is not None:
        m = _bind_metrics(metrics)
        m["subscribe"].inc(report.replayed_subscribes)
        m["unsubscribe"].inc(report.replayed_unsubscribes)
        m["anchor"].inc(report.anchors)
        m["deliver"].inc(report.replayed_deliveries)
        m["settle"].inc(report.replayed_settles)
        m["restored"].inc(report.restored)
        m["skipped_expired"].inc(report.skipped_expired)
        m["torn_tail_discarded"].inc(report.torn_tail_discarded)
    return report


def recover_files(
    broker: PubSubBroker,
    snapshot_path: Optional[Union[str, os.PathLike]] = None,
    wal_path: Optional[Union[str, os.PathLike]] = None,
    metrics: Optional[MetricsRegistry] = None,
) -> RecoveryReport:
    """:func:`recover` from file paths, tolerating absent files.

    A missing snapshot or WAL file is simply not part of the durable
    state yet (e.g. a broker that crashed before its first compaction).
    """
    snap_fp = wal_fp = None
    try:
        if snapshot_path is not None and os.path.exists(snapshot_path):
            snap_fp = open(snapshot_path, encoding="utf-8")
        if wal_path is not None and os.path.exists(wal_path):
            wal_fp = open(wal_path, encoding="utf-8")
        return recover(broker, snap_fp, wal_fp, metrics=metrics)
    finally:
        for fp in (snap_fp, wal_fp):
            if fp is not None:
                fp.close()
