"""Sharded parallel matching: hash-partition subscriptions over N engines.

The paper's algorithms are single-threaded by design; this module is the
horizontal-scale layer above them.  A :class:`ShardedMatcher` owns N
independent inner matchers (any registered backend), places each
subscription on exactly one of them through a pluggable
:class:`~repro.system.router.ShardRouter`, and answers ``match`` by
fanning the event out to the router's candidate shards — on a thread
pool when more than one shard must be probed — and concatenating the
per-shard results in ascending shard order (deterministic regardless of
completion order).

Because the shards partition the subscription set, per-shard results are
disjoint and the union is exactly what a single matcher over the full
set would return; ``tests/properties/test_prop_sharding.py`` pins that
equivalence against the brute-force oracle for every router.

Thread safety: one reentrant metadata lock guards placement maps,
counters and the router; one lock per shard serializes access to that
inner engine (the inner matchers mutate internal state even on
``match``).  Concurrent callers therefore pipeline across shards — the
design the multi-worker :class:`~repro.system.server.BatchServer`
relies on — while each inner engine still sees strictly serial
operations.

Observability: routing counters live in a
:class:`~repro.obs.registry.MetricsRegistry` (per-shard populations,
per-shard events-routed, whole-shard skips, fan-out/merge latency
histograms), so the benefit of affinity routing is measurable
(``benchmarks/bench_sharding.py``) rather than asserted.  The sharded
layer is coarse-grained, so it carries a live registry by default;
``use_metrics`` swaps in a shared registry and propagates it to every
inner engine with a distinct ``shard`` label (keeping each series
single-writer under that shard's lock).  ``use_tracer`` records one
fan-out span per event with per-shard children.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import ThreadPoolExecutor
from typing import Any, Callable, Dict, List, Optional, Union

from repro.core.errors import DuplicateSubscriptionError, UnknownSubscriptionError
from repro.core.matcher import Matcher
from repro.core.types import Event, Subscription
from repro.obs.registry import MetricsRegistry
from repro.obs.tracer import Tracer
from repro.system.router import ShardRouter, make_router

#: How an inner engine may be specified: a ready factory, or a registered
#: algorithm name resolved through :func:`repro.matchers.make_matcher`.
InnerSpec = Union[str, Callable[[], Matcher]]


def _resolve_inner(inner: InnerSpec) -> Callable[[], Matcher]:
    if callable(inner):
        return inner
    # Imported lazily: repro.matchers registers "sharded" from this module.
    from repro.matchers import make_matcher

    return lambda: make_matcher(inner)


class ShardedMatcher(Matcher):
    """Hash-partitioned fan-out over N inner matchers."""

    name = "sharded"
    #: Safe for concurrent callers (per-shard locking); the multi-worker
    #: server checks this flag before deciding whether to wrap.
    thread_safe = True

    def __init__(
        self,
        shards: int = 4,
        router: Union[str, ShardRouter] = "affinity",
        inner: InnerSpec = "dynamic",
        parallel: bool = True,
        max_workers: Optional[int] = None,
    ) -> None:
        if shards < 1:
            raise ValueError(f"shard count must be >= 1, got {shards}")
        self.router = router if isinstance(router, ShardRouter) else make_router(router, shards)
        if self.router.shards != shards:
            raise ValueError(
                f"router built for {self.router.shards} shards, matcher has {shards}"
            )
        factory = _resolve_inner(inner)
        self._shards: List[Matcher] = [factory() for _ in range(shards)]
        self._shard_locks = [threading.Lock() for _ in range(shards)]
        self._meta = threading.RLock()
        self._shard_of: Dict[Any, int] = {}
        self._population = [0] * shards
        self._parallel = parallel and shards > 1
        self._max_workers = max_workers or shards
        self._pool: Optional[ThreadPoolExecutor] = None
        # The fan-out layer records a handful of samples per event, so a
        # live registry is the default here (inner engines stay no-op
        # until use_metrics propagates a shared registry to them).
        self.metrics = MetricsRegistry()
        self._bind_metrics()

    # ------------------------------------------------------------------
    # observability
    # ------------------------------------------------------------------
    def _bind_metrics(self) -> None:
        m = self.metrics
        self._m_events = m.counter(
            "repro_sharded_events_total", "Events fanned out by the sharded engine."
        ).labels()
        self._m_skipped = m.counter(
            "repro_sharded_shards_skipped_total",
            "Whole-shard skips the router achieved.",
        ).labels()
        visits = m.counter(
            "repro_sharded_shard_visits_total",
            "Events routed to each shard.",
            ("shard",),
        )
        self._m_visits = [visits.labels(shard=str(i)) for i in range(len(self._shards))]
        self._m_fanout_seconds = m.histogram(
            "repro_sharded_fanout_seconds",
            "Per-event latency of the candidate-shard fan-out.",
        ).labels()
        self._m_merge_seconds = m.histogram(
            "repro_sharded_merge_seconds",
            "Per-event latency of concatenating per-shard results.",
        ).labels()

    def use_metrics(self, registry: Optional[MetricsRegistry] = None) -> MetricsRegistry:
        """Attach a (shared) registry here *and* on every inner engine.

        Each inner engine is stamped with its shard index as the
        ``shard`` label, so the per-engine families stay one-writer-per-
        series even when the fan-out pool probes shards concurrently.
        """
        registry = super().use_metrics(registry)
        for index, inner in enumerate(self._shards):
            inner.metrics_shard = str(index)
            inner.use_metrics(registry)
        return registry

    def use_tracer(self, tracer: Optional[Tracer] = None) -> Tracer:
        """Attach a tracer to the fan-out layer and every inner engine."""
        tracer = super().use_tracer(tracer)
        for inner in self._shards:
            inner.use_tracer(tracer)
        return tracer

    @property
    def counters(self) -> Dict[str, Any]:
        """Cumulative routing counters (read from the registry families)."""
        return {
            "events": self._m_events.value,
            "shard_visits": sum(c.value for c in self._m_visits),
            "shards_skipped": self._m_skipped.value,
            "fanout_seconds": self._m_fanout_seconds.sum,
            "merge_seconds": self._m_merge_seconds.sum,
        }

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    @property
    def shards(self) -> int:
        """Number of partitions."""
        return len(self._shards)

    def shard(self, index: int) -> Matcher:
        """The inner engine of one shard (for inspection/tests)."""
        return self._shards[index]

    def shard_ids(self) -> List[List[Any]]:
        """Per-shard lists of resident subscription ids."""
        with self._meta:
            out: List[List[Any]] = [[] for _ in self._shards]
            for sub_id, shard in self._shard_of.items():
                out[shard].append(sub_id)
            return out

    def close(self) -> None:
        """Shut down the fan-out thread pool (idempotent)."""
        with self._meta:
            pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=True)

    def __enter__(self) -> "ShardedMatcher":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def _ensure_pool(self) -> ThreadPoolExecutor:
        with self._meta:
            if self._pool is None:
                self._pool = ThreadPoolExecutor(
                    max_workers=self._max_workers,
                    thread_name_prefix="repro-shard",
                )
            return self._pool

    # ------------------------------------------------------------------
    # mutation
    # ------------------------------------------------------------------
    def add(self, subscription: Subscription) -> None:
        with self._meta:
            if subscription.id in self._shard_of:
                raise DuplicateSubscriptionError(subscription.id)
            shard = self.router.shard_for(subscription)
            self._shard_of[subscription.id] = shard
            self._population[shard] += 1
        try:
            with self._shard_locks[shard]:
                self._shards[shard].add(subscription)
        except BaseException:
            with self._meta:
                del self._shard_of[subscription.id]
                self._population[shard] -= 1
                self.router.on_remove(subscription, shard)
            raise

    def remove(self, sub_id: Any) -> Subscription:
        with self._meta:
            shard = self._shard_of.get(sub_id)
            if shard is None:
                raise UnknownSubscriptionError(sub_id)
        with self._shard_locks[shard]:
            subscription = self._shards[shard].remove(sub_id)
        with self._meta:
            del self._shard_of[sub_id]
            self._population[shard] -= 1
            self.router.on_remove(subscription, shard)
        return subscription

    def rebuild(self) -> None:
        """Forward to inner engines that have a rebuild step (static)."""
        for shard, inner in enumerate(self._shards):
            rebuild = getattr(inner, "rebuild", None)
            if callable(rebuild):
                with self._shard_locks[shard]:
                    rebuild()

    # ------------------------------------------------------------------
    # matching
    # ------------------------------------------------------------------
    def _match_shard(self, shard: int, event: Event) -> List[Any]:
        with self._shard_locks[shard]:
            return self._shards[shard].match(event)

    def match(self, event: Event) -> List[Any]:
        with self._meta:
            candidates = [
                s for s in self.router.candidate_shards(event) if self._population[s]
            ]
            self._m_events.inc()
            self._m_skipped.inc(len(self._shards) - len(candidates))
            for s in candidates:
                self._m_visits[s].inc()
        span = None
        if self.tracer.enabled:
            span = self.tracer.start(
                "fanout",
                engine=self.name,
                shards=len(self._shards),
                candidates=len(candidates),
                skipped=len(self._shards) - len(candidates),
            )
        if not candidates:
            if span is not None:
                self.tracer.finish(span.add(matched=0))
            return []
        start = time.perf_counter()
        if self._parallel and len(candidates) > 1:
            pool = self._ensure_pool()
            futures = [pool.submit(self._match_shard, s, event) for s in candidates]
            per_shard = [f.result() for f in futures]
        else:
            per_shard = [self._match_shard(s, event) for s in candidates]
        merged_at = time.perf_counter()
        merged: List[Any] = []
        for ids in per_shard:
            merged.extend(ids)
        done = time.perf_counter()
        with self._meta:
            self._m_fanout_seconds.observe(merged_at - start)
            self._m_merge_seconds.observe(done - merged_at)
        if span is not None:
            for shard, ids in zip(candidates, per_shard):
                span.child("shard", index=shard, matched=len(ids))
            span.add(
                matched=len(merged),
                fanout_ns=int((merged_at - start) * 1e9),
                merge_ns=int((done - merged_at) * 1e9),
            )
            self.tracer.finish(span)
        return merged

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def get(self, sub_id: Any) -> Subscription:
        """Look up a stored subscription by id (any backend supporting it)."""
        with self._meta:
            shard = self._shard_of.get(sub_id)
            if shard is None:
                raise UnknownSubscriptionError(sub_id)
        with self._shard_locks[shard]:
            return self._shards[shard].get(sub_id)  # type: ignore[attr-defined]

    def iter_subscriptions(self) -> List[Subscription]:
        out: List[Subscription] = []
        for shard, inner in enumerate(self._shards):
            with self._shard_locks[shard]:
                out.extend(inner.iter_subscriptions())
        return out

    def __len__(self) -> int:
        with self._meta:
            return sum(self._population)

    def stats(self) -> Dict[str, Any]:
        with self._meta:
            base = super().stats()
            base["shards"] = len(self._shards)
            base["inner"] = self._shards[0].name
            base["parallel"] = self._parallel
            base["per_shard_subscriptions"] = list(self._population)
            base["per_shard_events_routed"] = [c.value for c in self._m_visits]
            base["counters"] = self.counters
            base["router"] = self.router.stats()
        return base
