"""Sharded parallel matching: hash-partition subscriptions over N engines.

The paper's algorithms are single-threaded by design; this module is the
horizontal-scale layer above them.  A :class:`ShardedMatcher` owns N
independent inner matchers (any registered backend), places each
subscription on exactly one of them through a pluggable
:class:`~repro.system.router.ShardRouter`, and answers ``match`` by
fanning the event out to the router's candidate shards — on a thread
pool when more than one shard must be probed — and concatenating the
per-shard results in ascending shard order (deterministic regardless of
completion order).

Because the shards partition the subscription set, per-shard results are
disjoint and the union is exactly what a single matcher over the full
set would return; ``tests/properties/test_prop_sharding.py`` pins that
equivalence against the brute-force oracle for every router.

Thread safety: one reentrant metadata lock guards placement maps,
counters and the router; one lock per shard serializes access to that
inner engine (the inner matchers mutate internal state even on
``match``).  Concurrent callers therefore pipeline across shards — the
design the multi-worker :class:`~repro.system.server.BatchServer`
relies on — while each inner engine still sees strictly serial
operations.

Observability: routing counters live in a
:class:`~repro.obs.registry.MetricsRegistry` (per-shard populations,
per-shard events-routed, whole-shard skips, fan-out/merge latency
histograms), so the benefit of affinity routing is measurable
(``benchmarks/bench_sharding.py``) rather than asserted.  The sharded
layer is coarse-grained, so it carries a live registry by default;
``use_metrics`` swaps in a shared registry and propagates it to every
inner engine with a distinct ``shard`` label (keeping each series
single-writer under that shard's lock).  ``use_tracer`` records one
fan-out span per event with per-shard children.

Shard quarantine (``breaker=``; see ``docs/resilience.md``): with
per-shard :class:`~repro.system.resilience.CircuitBreaker` protection
enabled, a shard whose inner engine raises (or answers slower than
``slow_match_seconds``) repeatedly is quarantined instead of poisoning
every publish — events skip it, ``match`` returns the healthy shards'
results as a :class:`~repro.system.resilience.PartialResults` flagged
``degraded=True``, and *new* subscriptions are overflow-placed on a
healthy neighbour (tracked so routing stays sound for any router: the
overflow shards are always probed).  After the breaker's cool-down the
next event runs a half-open probe through the shard; success heals it.
Without ``breaker`` (the default) behaviour is exactly the pre-quarantine
contract: inner-engine exceptions propagate to the caller.

Execution backends (``executor=``; see ``docs/scaling.md``): the default
``"thread"`` executor keeps every inner engine in-process and is
GIL-capped at roughly one core of matching work.  ``"process"`` places
each shard's engine in its own worker process
(:class:`~repro.system.procpool.ProcessShard` over a
:class:`~repro.system.procpool.ProcessPool`), making the fan-out
parallelism literal: the thread pool blocks in pipe ``recv`` (releasing
the GIL) while N workers match on N cores.  Everything above the shard
boundary — routing, per-shard locks, breakers, the deterministic
ascending-shard merge — is shared between both executors, and a dead
worker surfaces as :class:`~repro.system.resilience.WorkerDiedError`,
which the breaker machinery treats like any other shard failure:
quarantine, degraded :class:`PartialResults`, respawn-and-replay on the
half-open probe.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import ThreadPoolExecutor
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple, Union

from repro.core.errors import DuplicateSubscriptionError, UnknownSubscriptionError
from repro.core.matcher import Matcher
from repro.core.types import Event, Subscription
from repro.obs.registry import MetricsRegistry
from repro.obs.tracer import Tracer
from repro.system.resilience import (
    BREAKER_CLOSED,
    BREAKER_STATE_VALUES,
    CircuitBreaker,
    PartialResults,
)
from repro.system.router import ShardRouter, make_router

#: How per-shard breakers may be requested: ``True`` for defaults, a
#: kwargs dict for :class:`CircuitBreaker`, or a zero-arg factory.
BreakerSpec = Union[None, bool, Dict[str, Any], Callable[[], CircuitBreaker]]

#: How an inner engine may be specified: a ready factory, or a registered
#: algorithm name resolved through :func:`repro.matchers.make_matcher`.
InnerSpec = Union[str, Callable[[], Matcher]]

#: The execution backends ``executor=`` accepts.
EXECUTORS = ("thread", "process")


def _resolve_inner(inner: InnerSpec) -> Callable[[], Matcher]:
    if callable(inner):
        return inner
    # Imported lazily: repro.matchers registers "sharded" from this module.
    from repro.matchers import make_matcher

    return lambda: make_matcher(inner)


class ShardedMatcher(Matcher):
    """Hash-partitioned fan-out over N inner matchers."""

    name = "sharded"
    #: Safe for concurrent callers (per-shard locking); the multi-worker
    #: server checks this flag before deciding whether to wrap.
    thread_safe = True

    def __init__(
        self,
        shards: int = 4,
        router: Union[str, ShardRouter] = "affinity",
        inner: InnerSpec = "dynamic",
        parallel: bool = True,
        max_workers: Optional[int] = None,
        breaker: BreakerSpec = None,
        slow_match_seconds: Optional[float] = None,
        executor: str = "thread",
        start_method: Optional[str] = None,
        worker_timeout: Optional[float] = None,
        codec: str = "auto",
    ) -> None:
        if shards < 1:
            raise ValueError(f"shard count must be >= 1, got {shards}")
        if slow_match_seconds is not None and slow_match_seconds <= 0:
            raise ValueError(
                f"slow-match threshold must be positive, got {slow_match_seconds}"
            )
        if executor not in EXECUTORS:
            raise ValueError(f"unknown executor {executor!r}; known: {EXECUTORS}")
        self.router = router if isinstance(router, ShardRouter) else make_router(router, shards)
        if self.router.shards != shards:
            raise ValueError(
                f"router built for {self.router.shards} shards, matcher has {shards}"
            )
        factory = _resolve_inner(inner)
        self.executor = executor
        self._procpool = None
        if executor == "process":
            # Imported lazily: the process backend pulls in numpy (for
            # the bit-matrix transport), which the thread path never needs.
            from repro.system.procpool import ProcessPool, ProcessShard

            self._procpool = ProcessPool(
                [factory] * shards,
                start_method=start_method,
                request_timeout=worker_timeout,
                codec=codec,
            )
            self._shards: List[Matcher] = [
                ProcessShard(self._procpool, index) for index in range(shards)
            ]
        else:
            self._shards = [factory() for _ in range(shards)]
        self._shard_locks = [threading.Lock() for _ in range(shards)]
        self._meta = threading.RLock()
        self._shard_of: Dict[Any, int] = {}
        self._population = [0] * shards
        self._parallel = parallel and shards > 1
        self._max_workers = max_workers or shards
        self._pool: Optional[ThreadPoolExecutor] = None
        # Quarantine state: one breaker per shard (None = disabled), the
        # per-shard count of overflow-placed subscriptions (placed off
        # their router-preferred shard while it was quarantined — those
        # shards must always be probed for routing to stay sound), and
        # the preferred shard of each overflow placement (for router
        # bookkeeping on removal).
        self.slow_match_seconds = slow_match_seconds
        self._breakers: Optional[List[CircuitBreaker]] = None
        if breaker:
            self._breakers = [
                self._build_breaker(breaker, index) for index in range(shards)
            ]
        self._overflow = [0] * shards
        self._routed_of: Dict[Any, int] = {}
        # The fan-out layer records a handful of samples per event, so a
        # live registry is the default here (inner engines stay no-op
        # until use_metrics propagates a shared registry to them).
        self.metrics = MetricsRegistry()
        self._bind_metrics()

    def _build_breaker(self, spec: BreakerSpec, index: int) -> CircuitBreaker:
        if spec is True:
            built = CircuitBreaker()
        elif isinstance(spec, dict):
            built = CircuitBreaker(**spec)
        elif callable(spec):
            built = spec()
        else:  # pragma: no cover - guarded by the truthiness check above
            raise ValueError(f"unsupported breaker spec {spec!r}")
        user_hook = built.on_transition

        def on_transition(old: str, new: str, _shard: int = index) -> None:
            self._on_breaker_transition(_shard, new)
            if user_hook is not None:
                user_hook(old, new)

        built.on_transition = on_transition
        return built

    def _on_breaker_transition(self, shard: int, new_state: str) -> None:
        with self._meta:
            self._m_breaker_state[shard].set(BREAKER_STATE_VALUES[new_state])
            self._m_breaker_transitions.labels(shard=str(shard), state=new_state).inc()

    # ------------------------------------------------------------------
    # observability
    # ------------------------------------------------------------------
    def _bind_metrics(self) -> None:
        m = self.metrics
        self._m_events = m.counter(
            "repro_sharded_events_total", "Events fanned out by the sharded engine."
        ).labels()
        self._m_skipped = m.counter(
            "repro_sharded_shards_skipped_total",
            "Whole-shard skips the router achieved.",
        ).labels()
        visits = m.counter(
            "repro_sharded_shard_visits_total",
            "Events routed to each shard.",
            ("shard",),
        )
        self._m_visits = [visits.labels(shard=str(i)) for i in range(len(self._shards))]
        self._m_fanout_seconds = m.histogram(
            "repro_sharded_fanout_seconds",
            "Per-event latency of the candidate-shard fan-out.",
        ).labels()
        self._m_merge_seconds = m.histogram(
            "repro_sharded_merge_seconds",
            "Per-event latency of concatenating per-shard results.",
        ).labels()
        breaker_state = m.gauge(
            "repro_breaker_state",
            "Per-shard breaker state (0 closed, 1 half-open, 2 open).",
            ("shard",),
        )
        self._m_breaker_state = [
            breaker_state.labels(shard=str(i)) for i in range(len(self._shards))
        ]
        self._m_breaker_transitions = m.counter(
            "repro_breaker_transitions_total",
            "Breaker state transitions, by shard and entered state.",
            ("shard", "state"),
        )
        self._m_degraded = m.counter(
            "repro_sharded_degraded_total",
            "Events answered with partial (degraded) results.",
        ).labels()
        self._m_quarantine_skips = m.counter(
            "repro_sharded_quarantine_skips_total",
            "Candidate-shard probes skipped because the breaker was open.",
        ).labels()
        self._m_rerouted = m.counter(
            "repro_sharded_rerouted_total",
            "Subscriptions overflow-placed away from a quarantined shard.",
        ).labels()
        if self._breakers is not None:
            for i, b in enumerate(self._breakers):
                self._m_breaker_state[i].set(BREAKER_STATE_VALUES[b.state])

    def use_metrics(self, registry: Optional[MetricsRegistry] = None) -> MetricsRegistry:
        """Attach a (shared) registry here *and* on every inner engine.

        Each inner engine is stamped with its shard index as the
        ``shard`` label, so the per-engine families stay one-writer-per-
        series even when the fan-out pool probes shards concurrently.
        """
        registry = super().use_metrics(registry)
        for index, inner in enumerate(self._shards):
            inner.metrics_shard = str(index)
            inner.use_metrics(registry)
        if self._procpool is not None:
            self._procpool.use_metrics(registry)
        return registry

    def use_tracer(self, tracer: Optional[Tracer] = None) -> Tracer:
        """Attach a tracer to the fan-out layer and every inner engine."""
        tracer = super().use_tracer(tracer)
        for inner in self._shards:
            inner.use_tracer(tracer)
        return tracer

    @property
    def counters(self) -> Dict[str, Any]:
        """Cumulative routing counters (read from the registry families)."""
        return {
            "events": self._m_events.value,
            "shard_visits": sum(c.value for c in self._m_visits),
            "shards_skipped": self._m_skipped.value,
            "fanout_seconds": self._m_fanout_seconds.sum,
            "merge_seconds": self._m_merge_seconds.sum,
            "degraded_events": self._m_degraded.value,
            "quarantine_skips": self._m_quarantine_skips.value,
            "rerouted_subscriptions": self._m_rerouted.value,
        }

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    @property
    def shards(self) -> int:
        """Number of partitions."""
        return len(self._shards)

    def shard(self, index: int) -> Matcher:
        """The inner engine of one shard (for inspection/tests)."""
        return self._shards[index]

    def breaker(self, index: int) -> Optional[CircuitBreaker]:
        """The circuit breaker of one shard (None if quarantine is off)."""
        if self._breakers is None:
            return None
        return self._breakers[index]

    def breaker_states(self) -> Optional[Dict[int, str]]:
        """Shard → breaker state (None if quarantine is off).

        Reading the state advances lazy open → half-open transitions, so
        polling this (``repro health`` does) is enough to see recovery
        probes become available.
        """
        if self._breakers is None:
            return None
        return {i: b.state for i, b in enumerate(self._breakers)}

    def shard_ids(self) -> List[List[Any]]:
        """Per-shard lists of resident subscription ids."""
        with self._meta:
            out: List[List[Any]] = [[] for _ in self._shards]
            for sub_id, shard in self._shard_of.items():
                out[shard].append(sub_id)
            return out

    def close(self) -> None:
        """Shut down the fan-out thread pool and any worker processes
        (idempotent)."""
        with self._meta:
            pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=True)
        if self._procpool is not None:
            self._procpool.close()

    def executor_health(self) -> Dict[str, Any]:
        """Executor liveness for health endpoints.

        The thread executor is always fully "alive"; the process
        executor reports configured vs. live workers (a gap means a
        worker died and has not yet been probed back to life).
        """
        if self._procpool is None:
            return {
                "executor": "thread",
                "workers": len(self._shards),
                "alive": len(self._shards),
            }
        health = {
            "executor": "process",
            "workers": self._procpool.workers,
            "alive": self._procpool.alive_count(),
            "start_method": self._procpool.start_method,
            "codec": self._procpool.codec,
        }
        if self._procpool.arena is not None:
            health["shm"] = self._procpool.arena.health()
        return health

    def __enter__(self) -> "ShardedMatcher":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def _ensure_pool(self) -> ThreadPoolExecutor:
        with self._meta:
            if self._pool is None:
                self._pool = ThreadPoolExecutor(
                    max_workers=self._max_workers,
                    thread_name_prefix="repro-shard",
                )
            return self._pool

    # ------------------------------------------------------------------
    # mutation
    # ------------------------------------------------------------------
    def _healthy_shard_near(self, preferred: int) -> int:
        """The nearest shard with a closed breaker (or *preferred* if none)."""
        breakers = self._breakers
        n = len(self._shards)
        for step in range(1, n):
            candidate = (preferred + step) % n
            if breakers[candidate].state == BREAKER_CLOSED:
                return candidate
        return preferred

    def add(self, subscription: Subscription) -> None:
        with self._meta:
            if subscription.id in self._shard_of:
                raise DuplicateSubscriptionError(subscription.id)
            preferred = self.router.shard_for(subscription)
            shard = preferred
            if (
                self._breakers is not None
                and self._breakers[preferred].state != BREAKER_CLOSED
            ):
                # Quarantined destination: overflow-place on a healthy
                # neighbour.  The preferred shard is remembered so the
                # router's bookkeeping stays exact on removal, and the
                # overflow count keeps the actual shard probe-eligible
                # for every event (routing soundness for any router).
                shard = self._healthy_shard_near(preferred)
                if shard != preferred:
                    self._overflow[shard] += 1
                    self._routed_of[subscription.id] = preferred
                    self._m_rerouted.inc()
            self._shard_of[subscription.id] = shard
            self._population[shard] += 1
        try:
            with self._shard_locks[shard]:
                self._shards[shard].add(subscription)
        except BaseException:
            with self._meta:
                del self._shard_of[subscription.id]
                self._population[shard] -= 1
                preferred = self._routed_of.pop(subscription.id, shard)
                if preferred != shard:
                    self._overflow[shard] -= 1
                self.router.on_remove(subscription, preferred)
            if self._breakers is not None:
                self._breakers[shard].record_failure()
            raise

    def remove(self, sub_id: Any) -> Subscription:
        with self._meta:
            shard = self._shard_of.get(sub_id)
            if shard is None:
                raise UnknownSubscriptionError(sub_id)
        with self._shard_locks[shard]:
            subscription = self._shards[shard].remove(sub_id)
        with self._meta:
            del self._shard_of[sub_id]
            self._population[shard] -= 1
            preferred = self._routed_of.pop(sub_id, shard)
            if preferred != shard:
                self._overflow[shard] -= 1
            self.router.on_remove(subscription, preferred)
        return subscription

    def rebuild(self) -> None:
        """Forward to inner engines that have a rebuild step (static)."""
        for shard, inner in enumerate(self._shards):
            rebuild = getattr(inner, "rebuild", None)
            if callable(rebuild):
                with self._shard_locks[shard]:
                    rebuild()

    # ------------------------------------------------------------------
    # matching
    # ------------------------------------------------------------------
    def _match_shard(self, shard: int, event: Event) -> List[Any]:
        with self._shard_locks[shard]:
            return self._shards[shard].match(event)

    def _match_shard_batch(
        self, shard: int, events: List[Event]
    ) -> List[List[Any]]:
        with self._shard_locks[shard]:
            return self._shards[shard].match_batch(events)

    def match_batch(self, events: Sequence[Event]) -> List[List[Any]]:
        """Batched fan-out: each shard sees one sub-batch, merged per event.

        Events are routed per shard exactly as :meth:`match` routes them
        individually; each probed shard runs its inner batch kernel over
        the events routed to it, and per-event results are concatenated
        in ascending shard order — the same deterministic merge order as
        the scalar path, independent of completion order.  Breaker mode
        and tracing fall back to the per-event path (quarantine
        accounting and fan-out spans are per event by design).
        """
        events = list(events)
        n = len(events)
        if not events:
            return []
        if self._breakers is not None or self.tracer.enabled:
            return [self.match(e) for e in events]
        # A shard's row list; None is the identity routing — the whole
        # batch in order — so broadcast fan-outs never build, pickle or
        # re-gather per-event row lists at all.
        rows_of: Dict[int, Optional[List[int]]] = {}
        skipped = 0
        with self._meta:
            if self.router.prunes():
                for row, event in enumerate(events):
                    candidates = sorted(
                        s
                        for s in set(self.router.candidate_shards(event))
                        if self._population[s]
                    )
                    skipped += len(self._shards) - len(candidates)
                    for s in candidates:
                        rows_of.setdefault(s, []).append(row)
            else:
                populated = [
                    s for s in range(len(self._shards)) if self._population[s]
                ]
                rows_of = {s: None for s in populated}
                skipped = (len(self._shards) - len(populated)) * n
            self._m_events.inc(n)
            self._m_skipped.inc(skipped)
            for s, rows in rows_of.items():
                self._m_visits[s].inc(n if rows is None else len(rows))
        out: List[List[Any]] = [[] for _ in events]
        probe = sorted(rows_of)
        if not probe:
            return out
        start = time.perf_counter()
        results = None
        if self._procpool is not None and self._procpool.arena is not None:
            results = self._match_batch_shm(events, rows_of, probe)
        if results is None:

            def sub_batch(s: int) -> List[Event]:
                rows = rows_of[s]
                return events if rows is None else [events[r] for r in rows]

            if self._parallel and len(probe) > 1:
                pool = self._ensure_pool()
                futures = [
                    pool.submit(self._match_shard_batch, s, sub_batch(s))
                    for s in probe
                ]
                results = [f.result() for f in futures]
            else:
                results = [
                    self._match_shard_batch(s, sub_batch(s)) for s in probe
                ]
        merged_at = time.perf_counter()
        for s, per_event in zip(probe, results):
            rows = rows_of[s]
            for r, ids in zip(range(n) if rows is None else rows, per_event):
                out[r].extend(ids)
        done = time.perf_counter()
        with self._meta:
            self._m_fanout_seconds.observe(merged_at - start)
            self._m_merge_seconds.observe(done - merged_at)
        return out

    def _match_batch_shm(
        self,
        events: List[Event],
        rows_of: Dict[int, Optional[List[int]]],
        probe: List[int],
    ) -> Optional[List[List[List[Any]]]]:
        """Write-once fan-out over the process pool's shm arena.

        The batch is packed into one event slot with ``len(probe)``
        readers; every probed shard then receives only the tiny slot
        descriptor plus its row list (None = the whole batch, read in
        place) and acks the slot when done (in a
        ``finally`` inside :meth:`ProcessShard.match_batch_shm`, so
        worker death cannot strand it).  Returns None — pipe fallback —
        when the batch cannot ride the arena (odd-path values, slot too
        small, no slot free in time); the pool counts each reason in
        ``repro_shm_fallback_total``.
        """
        pool = self._procpool
        ticket = pool.publish_events(events, readers=len(probe))
        if ticket is None:
            return None

        def run(s: int) -> List[List[Any]]:
            with self._shard_locks[s]:
                return self._shards[s].match_batch_shm(ticket, rows_of[s])

        if self._parallel and len(probe) > 1:
            # Every submitted future runs (even after an earlier one
            # fails), so every reader ack is issued exactly once.
            tpool = self._ensure_pool()
            futures = [tpool.submit(run, s) for s in probe]
            return [f.result() for f in futures]
        done = 0
        try:
            results = []
            for s in probe:
                results.append(run(s))
                done += 1
            return results
        except BaseException:
            # Shards never reached still hold reader claims; release
            # them so the slot returns to the ring.
            for _ in range(len(probe) - done - 1):
                pool.arena.ring.ack(ticket)
            raise

    def _match_shard_serial(
        self, shard: int, events: List[Event]
    ) -> List[List[Any]]:
        inner = self._shards[shard]
        with self._shard_locks[shard]:
            serial = getattr(inner, "match_serial", None)
            if callable(serial):
                return serial(events)
            return [inner.match(e) for e in events]

    def match_serial(self, events: Sequence[Event]) -> List[List[Any]]:
        """Scalar-semantics sequence matching with the IPC latency hidden.

        Result-identical to ``[self.match(e) for e in events]`` (each
        event is matched by the inner engines' *scalar* path), but
        events are first routed and grouped per shard exactly as
        :meth:`match_batch` groups them, and each probed shard receives
        its events as one pipelined burst of ``match`` commands on the
        process executor (a plain loop on the thread executor).  Per-
        event results merge in ascending shard order — the same
        deterministic contract as the scalar and batch paths.  Breaker
        mode and tracing fall back to the per-event path.
        """
        events = list(events)
        if not events:
            return []
        if self._breakers is not None or self.tracer.enabled:
            return [self.match(e) for e in events]
        rows_of: Dict[int, List[int]] = {}
        skipped = 0
        with self._meta:
            for row, event in enumerate(events):
                candidates = sorted(
                    s
                    for s in set(self.router.candidate_shards(event))
                    if self._population[s]
                )
                skipped += len(self._shards) - len(candidates)
                for s in candidates:
                    rows_of.setdefault(s, []).append(row)
            self._m_events.inc(len(events))
            self._m_skipped.inc(skipped)
            for s, rows in rows_of.items():
                self._m_visits[s].inc(len(rows))
        out: List[List[Any]] = [[] for _ in events]
        probe = sorted(rows_of)
        if not probe:
            return out
        start = time.perf_counter()
        if self._parallel and len(probe) > 1:
            pool = self._ensure_pool()
            futures = [
                pool.submit(
                    self._match_shard_serial, s, [events[r] for r in rows_of[s]]
                )
                for s in probe
            ]
            results = [f.result() for f in futures]
        else:
            results = [
                self._match_shard_serial(s, [events[r] for r in rows_of[s]])
                for s in probe
            ]
        merged_at = time.perf_counter()
        for s, per_event in zip(probe, results):
            for r, ids in zip(rows_of[s], per_event):
                out[r].extend(ids)
        done = time.perf_counter()
        with self._meta:
            self._m_fanout_seconds.observe(merged_at - start)
            self._m_merge_seconds.observe(done - merged_at)
        return out

    def _match_shard_guarded(
        self, shard: int, event: Event
    ) -> Tuple[Optional[List[Any]], Optional[Exception], float]:
        """One shard probe that reports instead of raising (breaker mode)."""
        start = time.perf_counter()
        try:
            ids = self._match_shard(shard, event)
        except Exception as exc:
            return None, exc, time.perf_counter() - start
        return ids, None, time.perf_counter() - start

    def match(self, event: Event) -> List[Any]:
        breakers = self._breakers
        with self._meta:
            candidates = set(self.router.candidate_shards(event))
            if breakers is not None:
                # Overflow shards hold subscriptions whose router-
                # preferred home was quarantined at add time; the router
                # does not know about them, so they are always probed.
                candidates.update(s for s, n in enumerate(self._overflow) if n)
            candidates = sorted(s for s in candidates if self._population[s])
            self._m_events.inc()
            self._m_skipped.inc(len(self._shards) - len(candidates))
        # Breaker gating happens outside the metadata lock (the breakers
        # carry their own locks); quarantined shards are skipped and the
        # result flagged degraded — their subscriptions exist but cannot
        # be checked right now.
        quarantined: List[int] = []
        if breakers is not None:
            probe = []
            for s in candidates:
                if breakers[s].allow():
                    probe.append(s)
                else:
                    quarantined.append(s)
        else:
            probe = candidates
        with self._meta:
            for s in probe:
                self._m_visits[s].inc()
            if quarantined:
                self._m_quarantine_skips.inc(len(quarantined))
        span = None
        if self.tracer.enabled:
            span = self.tracer.start(
                "fanout",
                engine=self.name,
                shards=len(self._shards),
                candidates=len(candidates),
                skipped=len(self._shards) - len(candidates),
                quarantined=len(quarantined),
            )
        if not probe:
            degraded = bool(quarantined)
            with self._meta:
                if degraded:
                    self._m_degraded.inc()
            if span is not None:
                self.tracer.finish(span.add(matched=0, degraded=degraded))
            if breakers is None:
                return []
            return PartialResults(
                degraded=degraded, failed_shards=tuple(quarantined)
            )
        start = time.perf_counter()
        if breakers is None:
            if self._parallel and len(probe) > 1:
                pool = self._ensure_pool()
                futures = [pool.submit(self._match_shard, s, event) for s in probe]
                outcomes = [(f.result(), None, 0.0) for f in futures]
            else:
                outcomes = [(self._match_shard(s, event), None, 0.0) for s in probe]
        else:
            if self._parallel and len(probe) > 1:
                pool = self._ensure_pool()
                futures = [
                    pool.submit(self._match_shard_guarded, s, event) for s in probe
                ]
                outcomes = [f.result() for f in futures]
            else:
                outcomes = [self._match_shard_guarded(s, event) for s in probe]
            for s, (_ids, error, elapsed) in zip(probe, outcomes):
                slow = (
                    self.slow_match_seconds is not None
                    and elapsed > self.slow_match_seconds
                )
                if error is not None or slow:
                    # A slow answer is still *used* (it is correct) but
                    # counts against the shard's health.
                    breakers[s].record_failure()
                else:
                    breakers[s].record_success()
        merged_at = time.perf_counter()
        failed = list(quarantined)
        merged: List[Any] = []
        per_shard: List[Optional[List[Any]]] = []
        for s, (ids, error, _elapsed) in zip(probe, outcomes):
            per_shard.append(ids)
            if error is not None:
                failed.append(s)
            else:
                merged.extend(ids)
        done = time.perf_counter()
        degraded = bool(failed)
        with self._meta:
            self._m_fanout_seconds.observe(merged_at - start)
            self._m_merge_seconds.observe(done - merged_at)
            if degraded:
                self._m_degraded.inc()
        if span is not None:
            for shard, ids in zip(probe, per_shard):
                span.child(
                    "shard",
                    index=shard,
                    matched=len(ids) if ids is not None else -1,
                )
            span.add(
                matched=len(merged),
                degraded=degraded,
                fanout_ns=int((merged_at - start) * 1e9),
                merge_ns=int((done - merged_at) * 1e9),
            )
            self.tracer.finish(span)
        if breakers is None:
            return merged
        return PartialResults(
            merged, degraded=degraded, failed_shards=tuple(sorted(failed))
        )

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def get(self, sub_id: Any) -> Subscription:
        """Look up a stored subscription by id (any backend supporting it)."""
        with self._meta:
            shard = self._shard_of.get(sub_id)
            if shard is None:
                raise UnknownSubscriptionError(sub_id)
        with self._shard_locks[shard]:
            return self._shards[shard].get(sub_id)  # type: ignore[attr-defined]

    def iter_subscriptions(self) -> List[Subscription]:
        out: List[Subscription] = []
        for shard, inner in enumerate(self._shards):
            with self._shard_locks[shard]:
                out.extend(inner.iter_subscriptions())
        return out

    def __len__(self) -> int:
        with self._meta:
            return sum(self._population)

    def stats(self) -> Dict[str, Any]:
        breakers = None
        if self._breakers is not None:
            # Collected outside the metadata lock: reading a breaker's
            # state may fire its transition callback, which re-enters
            # the (reentrant) lock but is tidier kept out of it.
            breakers = {str(i): b.stats() for i, b in enumerate(self._breakers)}
        with self._meta:
            base = super().stats()
            base["shards"] = len(self._shards)
            base["inner"] = self._shards[0].name
            base["parallel"] = self._parallel
            base["executor"] = self.executor
            if self._procpool is not None:
                base["procpool"] = self._procpool.stats()
            base["per_shard_subscriptions"] = list(self._population)
            base["per_shard_events_routed"] = [c.value for c in self._m_visits]
            base["counters"] = self.counters
            base["router"] = self.router.stats()
            if breakers is not None:
                base["breakers"] = breakers
                base["overflow_per_shard"] = list(self._overflow)
        return base
