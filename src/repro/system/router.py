"""Shard routing policies for the sharded matching engine.

A :class:`ShardRouter` decides two things for a fixed shard count:

* **placement** — which shard stores a newly added subscription
  (:meth:`ShardRouter.shard_for`);
* **pruning** — which shards could possibly hold matches for an event
  (:meth:`ShardRouter.candidate_shards`); every shard outside the
  returned set is skipped without being probed.

Correctness contract: for every subscription *s* placed on shard *i* and
every event *e* with ``s.is_satisfied_by(e)``, ``candidate_shards(e)``
must contain *i*.  Returning *all* shards is always sound; the routers
differ in how aggressively they prune.

Three policies are provided:

``roundrobin``
    Balanced placement, no pruning.  The baseline: every event visits
    every shard.
``hash``
    Placement by a stable hash of the subscription id, no pruning.
    Balanced under churn (a removed id frees capacity exactly where it
    was) and deterministic across processes — Python's salted string
    hash is deliberately avoided.
``affinity``
    Attribute-affinity placement: subscriptions are routed by the value
    of one of their *equality* predicates, so all subscriptions that
    demand ``a = v`` land on the same shard.  An event then only visits
    the one shard per routing attribute that its own value hashes to —
    and when the event lacks a routing attribute entirely, every
    subscription routed through that attribute is provably unmatched and
    its shards are skipped wholesale.  Subscriptions with no equality
    predicate fall back to hash placement and their shards are always
    visited.

Routers are deliberately unaware of the matchers behind the shards; the
:class:`~repro.system.sharding.ShardedMatcher` owns those and consults
the router around every operation.
"""

from __future__ import annotations

import abc
import zlib
from typing import Any, Dict, List, Optional, Tuple

from repro.core.types import Event, Subscription, Value


def _stable_hash(text: str) -> int:
    """A process-independent hash (str.__hash__ is salted per run)."""
    return zlib.crc32(text.encode("utf-8", "surrogatepass"))


def _canonical_value(value: Value) -> Value:
    """Collapse numerically-equal values to one routing key.

    ``1``, ``1.0`` and ``True`` satisfy the same equality predicates, so
    they must hash to the same shard; whole floats are folded to ints
    (bools are already normalized by the core types).
    """
    if isinstance(value, float) and value.is_integer():
        return int(value)
    return value


class ShardRouter(abc.ABC):
    """Placement + pruning policy over a fixed number of shards."""

    #: Machine-readable policy name (the ``--router`` CLI value).
    name: str = "abstract"

    def __init__(self, shards: int) -> None:
        if shards < 1:
            raise ValueError(f"shard count must be >= 1, got {shards}")
        self.shards = shards

    @abc.abstractmethod
    def shard_for(self, subscription: Subscription) -> int:
        """Pick (and record) the shard that will store *subscription*."""

    def on_remove(self, subscription: Subscription, shard: int) -> None:
        """Forget a subscription previously placed on *shard*."""

    def candidate_shards(self, event: Event) -> List[int]:
        """Ascending shard indexes that may hold matches for *event*."""
        return list(range(self.shards))

    def prunes(self) -> bool:
        """Whether this policy can ever return fewer than all shards.

        Policies inheriting the default :meth:`candidate_shards` always
        broadcast, so the batch fan-out may skip the per-event candidate
        scan entirely and route every populated shard the whole batch.
        """
        return type(self).candidate_shards is not ShardRouter.candidate_shards

    def stats(self) -> Dict[str, Any]:
        """Router-specific statistics for the metrics surface."""
        return {"router": self.name, "shards": self.shards}


class RoundRobinRouter(ShardRouter):
    """Cycle through the shards on every insert; never prune."""

    name = "roundrobin"

    def __init__(self, shards: int) -> None:
        super().__init__(shards)
        self._next = 0

    def shard_for(self, subscription: Subscription) -> int:
        shard = self._next
        self._next = (self._next + 1) % self.shards
        return shard


class HashRouter(ShardRouter):
    """Stable-hash the subscription id; never prune."""

    name = "hash"

    def shard_for(self, subscription: Subscription) -> int:
        return _stable_hash(repr(subscription.id)) % self.shards


class AffinityRouter(ShardRouter):
    """Co-locate subscriptions by one equality predicate's value.

    The routing key of a subscription is its lexicographically smallest
    equality attribute together with that attribute's (smallest) demanded
    value.  Events probe at most one shard per *live* routing attribute,
    plus every shard holding keyless (no-equality) subscriptions.
    """

    name = "affinity"

    def __init__(self, shards: int) -> None:
        super().__init__(shards)
        #: Live subscriptions routed through each attribute.
        self._attr_refs: Dict[str, int] = {}
        #: Keyless subscriptions per shard (those shards are never pruned).
        self._keyless: Dict[int, int] = {}

    # ------------------------------------------------------------------
    # routing key
    # ------------------------------------------------------------------
    @staticmethod
    def routing_key(subscription: Subscription) -> Optional[Tuple[str, Value]]:
        """The ``(attribute, value)`` this subscription is pinned to.

        ``None`` when the subscription has no equality predicate (it can
        match events regardless of any single attribute value, so no
        value-based pinning is sound).
        """
        eq_attrs = subscription.equality_attributes
        if not eq_attrs:
            return None
        attribute = min(eq_attrs)
        values = sorted(
            (
                _canonical_value(p.value)
                for p in subscription.predicates_on(attribute)
                if p.operator.is_equality
            ),
            key=repr,
        )
        # Conjunctions demand *all* listed values; routing by the first
        # is sound because an event matching the subscription carries
        # every one of them (so only one can exist: a == v1 == v2).
        return attribute, values[0]

    @staticmethod
    def _shard_of_key(attribute: str, value: Value, shards: int) -> int:
        return _stable_hash(f"{attribute}={_canonical_value(value)!r}") % shards

    # ------------------------------------------------------------------
    # placement
    # ------------------------------------------------------------------
    def shard_for(self, subscription: Subscription) -> int:
        key = self.routing_key(subscription)
        if key is None:
            shard = _stable_hash(repr(subscription.id)) % self.shards
            self._keyless[shard] = self._keyless.get(shard, 0) + 1
            return shard
        attribute, value = key
        self._attr_refs[attribute] = self._attr_refs.get(attribute, 0) + 1
        return self._shard_of_key(attribute, value, self.shards)

    def on_remove(self, subscription: Subscription, shard: int) -> None:
        key = self.routing_key(subscription)
        if key is None:
            remaining = self._keyless.get(shard, 0) - 1
            if remaining > 0:
                self._keyless[shard] = remaining
            else:
                self._keyless.pop(shard, None)
            return
        attribute = key[0]
        remaining = self._attr_refs.get(attribute, 0) - 1
        if remaining > 0:
            self._attr_refs[attribute] = remaining
        else:
            self._attr_refs.pop(attribute, None)

    # ------------------------------------------------------------------
    # pruning
    # ------------------------------------------------------------------
    def candidate_shards(self, event: Event) -> List[int]:
        candidates = set(self._keyless)
        for attribute in self._attr_refs:
            if event.has(attribute):
                value = event.get(attribute)
                candidates.add(self._shard_of_key(attribute, value, self.shards))
            # An event without the attribute cannot satisfy any
            # subscription whose routing key demands it: those shards
            # contribute no candidates at all.
        return sorted(candidates)

    def stats(self) -> Dict[str, Any]:
        base = super().stats()
        base["routing_attributes"] = dict(sorted(self._attr_refs.items()))
        # str keys: the stats contract demands stable JSON round-trips
        # (json.dumps would silently coerce int keys to strings anyway).
        base["keyless_per_shard"] = {
            str(shard): n for shard, n in sorted(self._keyless.items())
        }
        return base


#: Policy name → router class, for the CLI and the sharded matcher.
ROUTERS: Dict[str, type] = {
    RoundRobinRouter.name: RoundRobinRouter,
    HashRouter.name: HashRouter,
    AffinityRouter.name: AffinityRouter,
}


def make_router(policy: str, shards: int) -> ShardRouter:
    """Build a router by policy name (see :data:`ROUTERS`)."""
    try:
        cls = ROUTERS[policy]
    except KeyError:
        known = ", ".join(sorted(ROUTERS))
        raise ValueError(f"unknown router {policy!r}; known: {known}") from None
    return cls(shards)
