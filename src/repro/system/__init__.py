"""The publish/subscribe system around the matcher: broker, clocks, delivery."""

from repro.system.broker import PubSubBroker, SubscriptionLike
from repro.system.clock import Clock, SystemClock, VirtualClock
from repro.system.event_store import EventStore
from repro.system.notifier import (
    CallbackNotifier,
    FanoutNotifier,
    Notification,
    Notifier,
    NullNotifier,
    QueueNotifier,
)
from repro.system.router import (
    AffinityRouter,
    HashRouter,
    ROUTERS,
    RoundRobinRouter,
    ShardRouter,
    make_router,
)
from repro.system.recovery import (
    RecoveryError,
    RecoveryReport,
    recover,
    recover_files,
)
from repro.system.procpool import ProcessPool, ProcessShard
from repro.system.resilience import (
    ADMISSION_POLICIES,
    BREAKER_CLOSED,
    BREAKER_HALF_OPEN,
    BREAKER_OPEN,
    CircuitBreaker,
    DeadlineExceededError,
    PartialResults,
    RetryBudgetExceededError,
    RetryPolicy,
    RetryingClient,
    ServerOverloadedError,
    WorkerDiedError,
    WorkerStateError,
)
from repro.system.server import BatchReply, BatchServer, ServerClosedError
from repro.system.sharding import EXECUTORS, ShardedMatcher
from repro.system.snapshot import (
    SnapshotError,
    SnapshotRecord,
    load_snapshot,
    read_snapshot,
    save_snapshot,
)
from repro.system.wal import FSYNC_POLICIES, WalError, WriteAheadLog, read_wal

__all__ = [
    "ADMISSION_POLICIES",
    "AffinityRouter",
    "BREAKER_CLOSED",
    "BREAKER_HALF_OPEN",
    "BREAKER_OPEN",
    "BatchReply",
    "BatchServer",
    "CallbackNotifier",
    "CircuitBreaker",
    "Clock",
    "DeadlineExceededError",
    "EXECUTORS",
    "EventStore",
    "FSYNC_POLICIES",
    "HashRouter",
    "PartialResults",
    "ProcessPool",
    "ProcessShard",
    "ROUTERS",
    "RecoveryError",
    "RecoveryReport",
    "RetryBudgetExceededError",
    "RetryPolicy",
    "RetryingClient",
    "RoundRobinRouter",
    "ServerClosedError",
    "ServerOverloadedError",
    "ShardRouter",
    "ShardedMatcher",
    "FanoutNotifier",
    "Notification",
    "Notifier",
    "NullNotifier",
    "PubSubBroker",
    "QueueNotifier",
    "SnapshotError",
    "SnapshotRecord",
    "SubscriptionLike",
    "SystemClock",
    "VirtualClock",
    "WalError",
    "WorkerDiedError",
    "WorkerStateError",
    "WriteAheadLog",
    "load_snapshot",
    "make_router",
    "read_snapshot",
    "read_wal",
    "recover",
    "recover_files",
    "save_snapshot",
]
