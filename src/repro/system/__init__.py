"""The publish/subscribe system around the matcher: broker, clocks, delivery."""

from repro.system.broker import PubSubBroker, SubscriptionLike
from repro.system.clock import Clock, SystemClock, VirtualClock
from repro.system.event_store import EventStore
from repro.system.notifier import (
    CallbackNotifier,
    FanoutNotifier,
    Notification,
    Notifier,
    NullNotifier,
    QueueNotifier,
)
from repro.system.router import (
    AffinityRouter,
    HashRouter,
    ROUTERS,
    RoundRobinRouter,
    ShardRouter,
    make_router,
)
from repro.system.recovery import (
    RecoveryError,
    RecoveryReport,
    recover,
    recover_files,
)
from repro.system.server import BatchReply, BatchServer, ServerClosedError
from repro.system.sharding import ShardedMatcher
from repro.system.snapshot import (
    SnapshotError,
    SnapshotRecord,
    load_snapshot,
    read_snapshot,
    save_snapshot,
)
from repro.system.wal import FSYNC_POLICIES, WalError, WriteAheadLog, read_wal

__all__ = [
    "AffinityRouter",
    "BatchReply",
    "BatchServer",
    "CallbackNotifier",
    "Clock",
    "EventStore",
    "FSYNC_POLICIES",
    "HashRouter",
    "ROUTERS",
    "RecoveryError",
    "RecoveryReport",
    "RoundRobinRouter",
    "ServerClosedError",
    "ShardRouter",
    "ShardedMatcher",
    "FanoutNotifier",
    "Notification",
    "Notifier",
    "NullNotifier",
    "PubSubBroker",
    "QueueNotifier",
    "SnapshotError",
    "SnapshotRecord",
    "SubscriptionLike",
    "SystemClock",
    "VirtualClock",
    "WalError",
    "WriteAheadLog",
    "load_snapshot",
    "make_router",
    "read_snapshot",
    "read_wal",
    "recover",
    "recover_files",
    "save_snapshot",
]
