"""The publish/subscribe system around the matcher: broker, clocks, delivery."""

from repro.system.broker import PubSubBroker, SubscriptionLike
from repro.system.clock import Clock, SystemClock, VirtualClock
from repro.system.event_store import EventStore
from repro.system.notifier import (
    CallbackNotifier,
    FanoutNotifier,
    Notification,
    Notifier,
    NullNotifier,
    QueueNotifier,
)
from repro.system.router import (
    AffinityRouter,
    HashRouter,
    ROUTERS,
    RoundRobinRouter,
    ShardRouter,
    make_router,
)
from repro.system.server import BatchReply, BatchServer, ServerClosedError
from repro.system.sharding import ShardedMatcher
from repro.system.snapshot import SnapshotError, load_snapshot, save_snapshot

__all__ = [
    "AffinityRouter",
    "BatchReply",
    "BatchServer",
    "CallbackNotifier",
    "Clock",
    "EventStore",
    "HashRouter",
    "ROUTERS",
    "RoundRobinRouter",
    "ServerClosedError",
    "ShardRouter",
    "ShardedMatcher",
    "FanoutNotifier",
    "Notification",
    "Notifier",
    "NullNotifier",
    "PubSubBroker",
    "QueueNotifier",
    "SnapshotError",
    "SubscriptionLike",
    "SystemClock",
    "VirtualClock",
    "load_snapshot",
    "make_router",
    "save_snapshot",
]
