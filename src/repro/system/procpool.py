"""Process-per-shard execution backend for the sharded matcher.

The paper's premise is matching "as fast as the hardware allows", but a
thread-based :class:`~repro.system.sharding.ShardedMatcher` is
GIL-capped at roughly one core of matching work.  This module makes the
parallelism literal: one **worker process per shard**, each owning a
private matcher instance, fed over an ordered duplex pipe and answering
on the same pipe — so the existing fan-out thread pool blocks in
``recv`` (releasing the GIL) while N workers match concurrently on N
cores.

Design contract (pinned by ``tests/system/test_procpool_conformance.py``
and ``tests/properties/test_prop_procpool.py``):

* **One ordered command pipe per worker.**  Subscription mutations and
  event batches travel through the *same* pipe, strictly
  request/response, so every worker observes exactly the operation
  sequence its parent issued — the property the determinism tests pin.
  The parent mirrors each worker's subscription table by applying the
  same sequence locally; the mirror is the replay source after a
  crash and the id table for decoding packed match results.
* **Epoch checking.**  Every reply carries the worker's mutation epoch;
  a mismatch against the parent's mirror epoch (a lost command, a
  corrupted pipe) raises :class:`~repro.system.resilience.WorkerStateError`
  instead of silently decoding match bits against the wrong id table.
* **Worker death is a shard failure, not a crash.**  A dead or hung
  worker surfaces as :class:`~repro.system.resilience.WorkerDiedError`
  from that one call; the *next* call through the shard transparently
  respawns the worker, replays its subscriptions from the mirror, and
  proceeds.  Under ``breaker=`` the sharded layer therefore gets the
  issue lifecycle for free: death trips the breaker, events skip the
  shard (degraded ``PartialResults``), and the half-open probe is what
  respawns and re-converges it.
* **Numpy transport with a pickle fallback.**  Event batches whose
  values are all float64-exact numbers cross the pipe as columnar
  arrays plus packed presence/int-ness bit rows, and match results
  return as a packed uint64 (events × shard-subscriptions) bit matrix —
  both reusing :mod:`repro.batch.bitmatrix`'s layout.  Strings, NaN-free
  oversized ints and other odd-path values fall back to pickling the
  objects themselves (the core types pickle via their constructors).

Worker lifecycle: spawn → warm-up handshake (the worker builds its
matcher and reports its name/pid, so factory failures surface at
construction) → serve → graceful ``stop`` on :meth:`ProcessPool.close`
(abrupt ``terminate``/``kill`` for stragglers).  Metrics:
``repro_procpool_workers`` (live workers), ``repro_procpool_respawns_total``
(by shard) and ``repro_procpool_ipc_seconds`` (by op).
"""

from __future__ import annotations

import multiprocessing
import os
import time
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.batch.bitmatrix import pack_bits, unpack_bits
from repro.batch.columns import ColumnarBatch
from repro.core.errors import UnknownSubscriptionError
from repro.core.matcher import Matcher
from repro.core.types import Event, Subscription
from repro.obs.registry import MetricsRegistry
from repro.system.resilience import WorkerDiedError, WorkerStateError
from repro.system.shm import ShmArena, ShmLayoutError, SlotTicket

#: Result/event transport codecs: ``auto`` packs bit matrices and
#: columnar event batches when possible, ``pickle`` forces the object
#: fallback everywhere (differential tests run both), and ``shm`` moves
#: both directions through a shared-memory arena (write-once event
#: slots, in-place result regions; see :mod:`repro.system.shm`) with the
#: pipe demoted to a control channel — pipe ``auto`` remains the
#: fallback for batches the columnar layout cannot carry.
CODECS = ("auto", "pickle", "shm")

#: Poll granularity while waiting on a worker reply.  ``Connection.poll``
#: returns the instant data arrives; this only bounds how often worker
#: liveness is re-checked, so death never turns into a hang.
_POLL_SECONDS = 0.02

#: IPC op label values (the ``repro_procpool_ipc_seconds`` label set).
_IPC_OPS = ("mutate", "match", "batch", "control")

#: ``repro_shm_fallback_total`` reason label values: the batch could not
#: ride the columnar layout at all (``oddpath``), no free slot appeared
#: within the publish timeout (``slot_wait``), the batch was larger than
#: one slot (``slot_full``), or a worker's result matrix outgrew its
#: region and came back over the pipe (``result_full``).
SHM_FALLBACK_REASONS = ("oddpath", "slot_wait", "slot_full", "result_full")

#: How long a publish waits for a free event slot before falling back to
#: the pipe transport (slow readers should degrade, not deadlock).
_SLOT_WAIT_SECONDS = 2.0


def payload_nbytes(obj: Any) -> int:
    """Cheap structural size estimate of one pipe payload, in bytes.

    Feeds ``repro_procpool_bytes_total`` without re-serializing: arrays
    report their buffers, containers recurse, scalars count one machine
    word.  Close enough to pickle framing to compare transports by
    bytes-moved; not an exact wire size.
    """
    if obj is None or isinstance(obj, (bool, int, float)):
        return 8
    if isinstance(obj, np.ndarray):
        return obj.nbytes
    if isinstance(obj, (str, bytes, bytearray)):
        return len(obj)
    if isinstance(obj, dict):
        return sum(payload_nbytes(k) + payload_nbytes(v) for k, v in obj.items())
    if isinstance(obj, (list, tuple, set, frozenset)):
        return 8 + sum(payload_nbytes(item) for item in obj)
    pairs = getattr(obj, "pairs", None)  # Event
    if isinstance(pairs, dict):
        return payload_nbytes(pairs)
    return 64


# ----------------------------------------------------------------------
# wire codecs (shared by parent and worker)
# ----------------------------------------------------------------------
def encode_events(events: Sequence[Event], codec: str = "auto") -> Tuple[str, Any]:
    """Encode an event batch for the pipe.

    Returns ``("cols", attrs, values, presence, ints)`` — float64 value
    matrix plus packed presence and was-int bit rows — when every value
    is a float64-exact number, else ``("objs", list(events))``.
    """
    if codec == "auto" and events:
        batch = ColumnarBatch.from_events(events)
        if batch is not None:
            return ("cols", batch.attrs, batch.values, batch.presence, batch.ints)
    return ("objs", list(events))


def decode_events(
    payload: Tuple[str, Any], rows: Optional[Sequence[int]] = None
) -> List[Event]:
    """Inverse of :func:`encode_events`.

    *rows* selects a subset of the batch to materialize (in the given
    order) — the shm path publishes the whole batch once and each shard
    decodes only the rows routed to it.
    """
    if payload[0] == "objs":
        events = payload[1]
        return list(events) if rows is None else [events[r] for r in rows]
    batch = ColumnarBatch(*payload[1:])
    if rows is not None:
        batch = batch.select(rows)
    return batch.to_events()


def match_payload(
    matcher: Matcher, payload: Tuple[str, Any], rows: Optional[Sequence[int]] = None
) -> List[List[Any]]:
    """Match one wire payload against *matcher* (the worker's hot path).

    Columnar payloads feed :meth:`Matcher.match_batch_columnar` so the
    vectorized predicate phase runs straight off the matrices — when
    *rows* is the identity routing the arrays (possibly shm slot views)
    are used in place, otherwise the routed sub-batch is copied out.
    Object payloads take the ordinary :meth:`Matcher.match_batch`.
    """
    if payload[0] == "objs":
        events = payload[1]
        if rows is not None:
            events = [events[r] for r in rows]
        return matcher.match_batch(list(events))
    batch = ColumnarBatch(*payload[1:])
    if rows is not None and list(rows) != list(range(len(batch))):
        batch = batch.select(rows)
    return matcher.match_batch_columnar(batch)


def results_truth(
    lists: List[List[Any]], index_of: Dict[Any, int]
) -> Optional[np.ndarray]:
    """Per-event match lists as a boolean matrix over the id table.

    None when an id falls outside the table (an exotic wrapper) — the
    caller then ships the lists themselves.
    """
    truth = np.zeros((len(lists), len(index_of)), dtype=bool)
    try:
        for row, ids in enumerate(lists):
            for sub_id in ids:
                truth[row, index_of[sub_id]] = True
    except KeyError:
        return None
    return truth


def encode_results(
    lists: List[List[Any]], index_of: Dict[Any, int], codec: str = "auto"
) -> Tuple[str, Any]:
    """Encode per-event match lists as a packed bit matrix over the
    worker's id table (``("bits", packed)``), or the lists themselves."""
    if codec != "pickle" and index_of:
        truth = results_truth(lists, index_of)
        if truth is None:
            # An id outside the registry (an exotic wrapper): fall back.
            return ("lists", [list(ids) for ids in lists])
        return ("bits", pack_bits(truth))
    return ("lists", [list(ids) for ids in lists])


def decode_results(payload: Tuple[str, Any], table: List[Any]) -> List[List[Any]]:
    """Inverse of :func:`encode_results`, against the parent's mirror table."""
    if payload[0] == "lists":
        return payload[1]
    truth = unpack_bits(payload[1], len(table))
    # One nonzero over the whole matrix, not one per row: hit pairs come
    # back row-major, so each row's ids append in column order exactly
    # as the per-row scan produced them.
    out: List[List[Any]] = [[] for _ in range(truth.shape[0])]
    rows, cols = np.nonzero(truth)
    for row, col in zip(rows.tolist(), cols.tolist()):
        out[row].append(table[col])
    return out


# ----------------------------------------------------------------------
# the worker process
# ----------------------------------------------------------------------
def _send(conn, status: str, value: Any) -> None:
    try:
        conn.send((status, value))
    except (ValueError, TypeError, AttributeError, ImportError):
        # Unpicklable payload (odd exception state): degrade to a
        # message-preserving stand-in rather than wedging the pipe.
        conn.send(("err", RuntimeError(f"unpicklable worker reply: {value!r}")))


def _serve_batch_shm(
    arena: ShmArena,
    worker_index: int,
    matcher: Matcher,
    index_of: Dict[Any, int],
    codec: str,
    msg: Tuple,
) -> Tuple[str, Any]:
    """One ``batch_shm`` request inside the worker.

    Reads the published slot in place, matches the rows routed to this
    shard, and writes the packed result matrix into the worker's own
    region — replying ``("shmres", rows, words)`` — or falls back to
    pipe bits when the matrix outgrows the region.
    """
    slot_index, generation, rows = msg[1], msg[2], msg[3]
    attrs, values, presence, ints = arena.read_slot(slot_index, generation)
    lists = match_payload(matcher, ("cols", attrs, values, presence, ints), rows)
    truth = results_truth(lists, index_of)
    if truth is not None:
        descriptor = arena.write_result(worker_index, generation, truth)
        if descriptor is not None:
            return ("shmres",) + descriptor
    # Result region too small (or exotic ids): the bits ride the pipe
    # instead — correctness over zero-copy.
    return encode_results(lists, index_of, codec)


def worker_main(
    conn,
    factory: Callable[[], Matcher],
    codec: str,
    shm_spec: Optional[Dict[str, Any]] = None,
) -> None:
    """Serve one shard's matcher over *conn* until EOF or ``stop``.

    Exposed (not underscore-private) because ``spawn``/``forkserver``
    start methods must import it by qualified name.

    Under the ``shm`` codec *shm_spec* names the parent's arena: the
    worker attaches both segments (never unlinks — the parent owns
    them), reads event slots in place, and writes packed results into
    its own ``shm_spec["worker_index"]`` region.
    """
    arena: Optional[ShmArena] = None
    worker_index = -1
    try:
        matcher = factory()
        if shm_spec is not None:
            worker_index = shm_spec["worker_index"]
            arena = ShmArena.attach(shm_spec)
    except BaseException as exc:
        _send(conn, "err", exc)
        conn.close()
        return
    _send(conn, "ok", {"name": getattr(matcher, "name", "?"), "pid": os.getpid()})
    live: Dict[Any, None] = {}  # insertion-ordered live sub ids
    epoch = 0
    index_of: Optional[Dict[Any, int]] = None
    while True:
        try:
            msg = conn.recv()
        except (EOFError, OSError):
            break
        op = msg[0]
        try:
            if op == "batch":
                lists = match_payload(matcher, msg[1])
                if index_of is None:
                    index_of = {sub_id: i for i, sub_id in enumerate(live)}
                reply: Any = (epoch, encode_results(lists, index_of, codec))
            elif op == "batch_shm":
                if arena is None:
                    raise RuntimeError("batch_shm without an attached arena")
                if index_of is None:
                    index_of = {sub_id: i for i, sub_id in enumerate(live)}
                # Handled in a helper so the slot views it takes are
                # dropped at return — a lingering view would block the
                # arena unmap at shutdown (exported-pointer semantics).
                reply = (
                    epoch,
                    _serve_batch_shm(
                        arena, worker_index, matcher, index_of, codec, msg
                    ),
                )
            elif op == "match":
                reply = (epoch, list(matcher.match(msg[1])))
            elif op == "add":
                matcher.add(msg[1])
                live[msg[1].id] = None
                epoch += 1
                index_of = None
                reply = epoch
            elif op == "remove":
                matcher.remove(msg[1])
                live.pop(msg[1], None)
                epoch += 1
                index_of = None
                reply = epoch
            elif op == "rebuild":
                rebuild = getattr(matcher, "rebuild", None)
                if callable(rebuild):
                    rebuild()
                reply = True
            elif op == "stats":
                reply = matcher.stats()
            elif op == "ping":
                reply = epoch
            elif op == "stop":
                _send(conn, "ok", True)
                break
            else:
                raise RuntimeError(f"unknown worker command {op!r}")
        except Exception as exc:
            _send(conn, "err", exc)
        else:
            _send(conn, "ok", reply)
    if arena is not None:
        arena.close()
    conn.close()


# ----------------------------------------------------------------------
# the parent-side pool
# ----------------------------------------------------------------------
class _Worker:
    """Parent-side record of one live worker process."""

    __slots__ = ("process", "conn", "name", "pid", "dead")

    def __init__(self, process, conn, name: str, pid: int) -> None:
        self.process = process
        self.conn = conn
        self.name = name
        self.pid = pid
        self.dead = False


class ProcessPool:
    """N worker processes, one per shard, each serving one matcher.

    ``request_timeout`` bounds any single IPC round trip: a worker that
    stops answering (a deadlocked inner engine, a wedged pipe) is killed
    and reported as :class:`WorkerDiedError` instead of hanging the
    caller — the executor-level deadlock guard the chaos suite leans on.
    ``start_method`` defaults to ``fork`` where available (factories may
    be closures); pass ``spawn``/``forkserver`` with picklable factories
    for platforms without fork.
    """

    def __init__(
        self,
        factories: Sequence[Callable[[], Matcher]],
        start_method: Optional[str] = None,
        request_timeout: Optional[float] = None,
        codec: str = "auto",
        metrics: Optional[MetricsRegistry] = None,
        shm_slots: int = 4,
        shm_slot_bytes: int = 1 << 20,
        shm_result_bytes: int = 1 << 20,
    ) -> None:
        if not factories:
            raise ValueError("a process pool needs at least one shard factory")
        if codec not in CODECS:
            raise ValueError(f"unknown codec {codec!r}; known: {CODECS}")
        if request_timeout is not None and request_timeout <= 0:
            raise ValueError(
                f"request timeout must be positive seconds, got {request_timeout}"
            )
        if start_method is None:
            methods = multiprocessing.get_all_start_methods()
            start_method = "fork" if "fork" in methods else methods[0]
        self._ctx = multiprocessing.get_context(start_method)
        self.start_method = start_method
        self.request_timeout = request_timeout
        self.codec = codec
        self._factories = list(factories)
        self._workers: List[Optional[_Worker]] = [None] * len(factories)
        self._closed = False
        self.arena: Optional[ShmArena] = None
        if codec == "shm":
            self.arena = ShmArena.create(
                workers=len(self._factories),
                slots=shm_slots,
                slot_bytes=shm_slot_bytes,
                result_bytes=shm_result_bytes,
            )
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self._bind_metrics()
        try:
            for index in range(len(factories)):
                self.spawn(index)
        except BaseException:
            # A mid-loop factory failure must not leak the workers (or
            # /dev/shm segments) already brought up.
            self.close()
            raise

    # -- observability --------------------------------------------------
    def _bind_metrics(self) -> None:
        m = self.metrics
        self._m_workers = m.gauge(
            "repro_procpool_workers", "Live shard worker processes."
        ).labels()
        respawns = m.counter(
            "repro_procpool_respawns_total",
            "Worker respawns after a death, by shard.",
            ("shard",),
        )
        self._m_respawns = [
            respawns.labels(shard=str(i)) for i in range(len(self._factories))
        ]
        ipc = m.histogram(
            "repro_procpool_ipc_seconds",
            "Round-trip latency of one worker pipe request, by op.",
            ("op",),
        )
        self._m_ipc = {op: ipc.labels(op=op) for op in _IPC_OPS}
        pipe_bytes = m.counter(
            "repro_procpool_bytes_total",
            "Estimated bytes moved over the worker command pipes, by "
            "direction and configured codec.",
            ("direction", "codec"),
        )
        self._m_pipe_bytes = {
            direction: pipe_bytes.labels(direction=direction, codec=self.codec)
            for direction in ("send", "recv")
        }
        shm_bytes = m.counter(
            "repro_shm_bytes_total",
            "Bytes placed in (publish) and read back from (result) the "
            "shared-memory arena.",
            ("direction",),
        )
        self._m_shm_bytes = {
            direction: shm_bytes.labels(direction=direction)
            for direction in ("publish", "result")
        }
        self._m_shm_wait = m.histogram(
            "repro_shm_slot_wait_seconds",
            "Time a publish waited for a free event slot.",
        ).labels()
        shm_fallback = m.counter(
            "repro_shm_fallback_total",
            "Shared-memory batches that degraded to the pipe transport, "
            "by reason.",
            ("reason",),
        )
        self._m_shm_fallback = {
            reason: shm_fallback.labels(reason=reason)
            for reason in SHM_FALLBACK_REASONS
        }
        self._m_workers.set(self.alive_count())

    def use_metrics(self, registry: Optional[MetricsRegistry] = None) -> MetricsRegistry:
        """Attach a (shared) registry and rebind the pool families."""
        self.metrics = MetricsRegistry() if registry is None else registry
        self._bind_metrics()
        return self.metrics

    # -- lifecycle ------------------------------------------------------
    @property
    def workers(self) -> int:
        """Configured worker count (== shard count)."""
        return len(self._factories)

    def alive(self, index: int) -> bool:
        """Is shard *index*'s worker up and trusted?"""
        worker = self._workers[index]
        return worker is not None and not worker.dead and worker.process.is_alive()

    def alive_count(self) -> int:
        """Workers currently up."""
        return sum(self.alive(i) for i in range(len(self._factories)))

    def worker_pid(self, index: int) -> Optional[int]:
        """OS pid of shard *index*'s worker (None when down)."""
        worker = self._workers[index]
        return None if worker is None else worker.pid

    def spawn(self, index: int) -> None:
        """Start (or restart) shard *index*'s worker and run the warm-up
        handshake; raises the factory's own error if construction fails."""
        if self._closed:
            raise WorkerDiedError("process pool is closed", shard=index)
        self._reap(index)
        shm_spec = None
        if self.arena is not None:
            # Respawns reattach the same segments: the spec names them
            # and pins this worker's result region.
            shm_spec = dict(self.arena.spec(), worker_index=index)
        parent_conn, child_conn = self._ctx.Pipe()
        process = self._ctx.Process(
            target=worker_main,
            args=(child_conn, self._factories[index], self.codec, shm_spec),
            daemon=True,
            name=f"repro-shard-{index}",
        )
        process.start()
        child_conn.close()  # EOF detection needs the parent copy gone
        worker = _Worker(process, parent_conn, "?", process.pid or -1)
        try:
            status, value = self._recv(worker, index)
        except WorkerDiedError:
            self._m_workers.set(self.alive_count())
            raise
        if status == "err":
            process.join(timeout=1.0)
            parent_conn.close()
            raise value
        worker.name = value.get("name", "?")
        worker.pid = value.get("pid", worker.pid)
        self._workers[index] = worker
        self._m_workers.set(self.alive_count())

    def respawn(self, index: int) -> None:
        """Replace a dead worker (counted in ``repro_procpool_respawns_total``)."""
        self.spawn(index)
        self._m_respawns[index].inc()

    def note_death(self, index: int) -> None:
        """Mark shard *index*'s worker untrusted and reclaim its process."""
        worker = self._workers[index]
        if worker is not None:
            worker.dead = True
        self._reap(index)
        self._m_workers.set(self.alive_count())

    def _reap(self, index: int) -> None:
        worker = self._workers[index]
        if worker is None:
            return
        if worker.process.is_alive():
            worker.process.terminate()
            worker.process.join(timeout=1.0)
            if worker.process.is_alive():  # pragma: no cover - stubborn child
                worker.process.kill()
                worker.process.join(timeout=1.0)
        try:
            worker.conn.close()
        except OSError:  # pragma: no cover - already gone
            pass
        self._workers[index] = None

    def close(self) -> None:
        """Stop every worker: graceful ``stop`` first, then terminate."""
        if self._closed:
            return
        self._closed = True
        for index, worker in enumerate(self._workers):
            if worker is None:
                continue
            if not worker.dead and worker.process.is_alive():
                try:
                    worker.conn.send(("stop",))
                    worker.process.join(timeout=2.0)
                except (OSError, ValueError):
                    pass
            self._reap(index)
        if self.arena is not None:
            # Workers are gone; unmapping + unlinking here is the only
            # place the segments leave /dev/shm.
            self.arena.close()
        self._m_workers.set(0)

    # -- shared-memory publish path ------------------------------------
    def publish_events(
        self,
        events: Sequence[Event],
        readers: int,
        timeout: float = _SLOT_WAIT_SECONDS,
    ) -> Optional[SlotTicket]:
        """Pack *events* once into a free arena slot for *readers* shards.

        Returns the slot ticket (every reader must be driven through
        :meth:`ProcessShard.match_batch_shm`, which acks it), or None
        when the batch must take the pipe instead — odd-path values,
        a batch bigger than one slot, or no slot freeing up in time.
        Every None is counted in ``repro_shm_fallback_total``.
        """
        if self.arena is None or self.arena.ring is None:
            raise RuntimeError("publish_events requires the shm codec")
        payload = encode_events(events, "auto")
        if payload[0] != "cols":
            self._m_shm_fallback["oddpath"].inc()
            return None
        _tag, attrs, values, presence, ints = payload
        waited = time.perf_counter()
        ticket = self.arena.ring.acquire(readers, timeout=timeout)
        self._m_shm_wait.observe(time.perf_counter() - waited)
        if ticket is None:
            self._m_shm_fallback["slot_wait"].inc()
            return None
        try:
            nbytes = self.arena.write_slot(ticket, attrs, values, presence, ints)
        except BaseException:
            self._release_ticket(ticket)
            raise
        if nbytes is None:
            self._release_ticket(ticket)
            self._m_shm_fallback["slot_full"].inc()
            return None
        ticket.nbytes = nbytes
        self._m_shm_bytes["publish"].inc(nbytes)
        return ticket

    def _release_ticket(self, ticket: SlotTicket) -> None:
        """Return an unread slot to the ring (all its readers at once)."""
        if self.arena is None or self.arena.ring is None:
            return
        for _ in range(ticket.readers):
            self.arena.ring.ack(ticket)

    def __enter__(self) -> "ProcessPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- the request/response hop --------------------------------------
    def request(self, index: int, message: Tuple, op: str = "control") -> Any:
        """One ordered round trip to shard *index*'s worker.

        Returns the worker's ``("ok", value)`` / ``("err", exc)`` tuple;
        raises :class:`WorkerDiedError` (after marking the worker dead)
        if the worker exits, the pipe breaks, or the reply exceeds
        ``request_timeout``.
        """
        worker = self._workers[index]
        if worker is None or worker.dead:
            raise WorkerDiedError(f"shard {index} has no live worker", shard=index)
        start = time.perf_counter()
        try:
            worker.conn.send(message)
        except (OSError, ValueError, BrokenPipeError) as exc:
            self.note_death(index)
            raise WorkerDiedError(
                f"shard {index} worker pipe broke on send: {exc}", shard=index
            ) from exc
        self._m_pipe_bytes["send"].inc(payload_nbytes(message))
        reply = self._recv(worker, index)
        self._m_pipe_bytes["recv"].inc(payload_nbytes(reply))
        self._m_ipc[op if op in self._m_ipc else "control"].observe(
            time.perf_counter() - start
        )
        return reply

    def request_many(
        self,
        index: int,
        messages: Sequence[Tuple],
        op: str = "control",
        window: int = 32,
    ) -> List[Tuple[str, Any]]:
        """Pipelined round trips: up to *window* requests in flight.

        The command pipe is ordered and the worker serves strictly in
        sequence, so writing ahead of the replies changes nothing about
        *what* the worker computes — it only hides the per-message pipe
        latency (one scheduler hand-off per window instead of one per
        request).  The *window* bound keeps the reply direction drained
        so neither pipe buffer can fill and deadlock.

        Always drains one reply per message before returning, even when
        an early reply is ``("err", exc)`` — an undrained successor
        would desynchronize the next request on this pipe.  Worker death
        raises :class:`WorkerDiedError` exactly as :meth:`request` does.
        """
        worker = self._workers[index]
        if worker is None or worker.dead:
            raise WorkerDiedError(f"shard {index} has no live worker", shard=index)
        messages = list(messages)
        replies: List[Tuple[str, Any]] = []
        start = time.perf_counter()
        sent = 0
        while len(replies) < len(messages):
            try:
                while sent < len(messages) and sent - len(replies) < window:
                    worker.conn.send(messages[sent])
                    self._m_pipe_bytes["send"].inc(payload_nbytes(messages[sent]))
                    sent += 1
            except (OSError, ValueError, BrokenPipeError) as exc:
                self.note_death(index)
                raise WorkerDiedError(
                    f"shard {index} worker pipe broke mid-stream: {exc}",
                    shard=index,
                ) from exc
            reply = self._recv(worker, index)
            self._m_pipe_bytes["recv"].inc(payload_nbytes(reply))
            replies.append(reply)
        if messages:
            hist = self._m_ipc[op if op in self._m_ipc else "control"]
            share = (time.perf_counter() - start) / len(messages)
            for _ in messages:
                hist.observe(share)
        return replies

    def _recv(self, worker: _Worker, index: int) -> Any:
        deadline = (
            None
            if self.request_timeout is None
            else time.monotonic() + self.request_timeout
        )
        while True:
            try:
                if worker.conn.poll(_POLL_SECONDS):
                    return worker.conn.recv()
            except (EOFError, OSError) as exc:
                self.note_death(index)
                raise WorkerDiedError(
                    f"shard {index} worker died mid-request: {exc}", shard=index
                ) from exc
            if not worker.process.is_alive():
                # Drain a reply that raced the exit before declaring death.
                try:
                    if worker.conn.poll(0):
                        return worker.conn.recv()
                except (EOFError, OSError):
                    pass
                self.note_death(index)
                raise WorkerDiedError(
                    f"shard {index} worker (pid {worker.pid}) died mid-request",
                    shard=index,
                )
            if deadline is not None and time.monotonic() >= deadline:
                self.note_death(index)
                raise WorkerDiedError(
                    f"shard {index} worker (pid {worker.pid}) exceeded the "
                    f"{self.request_timeout}s request timeout",
                    shard=index,
                )

    def stats(self) -> Dict[str, Any]:
        """JSON-serializable pool snapshot (same contract as matchers)."""
        out = {
            "name": "procpool",
            "workers": len(self._factories),
            "alive": self.alive_count(),
            "start_method": self.start_method,
            "codec": self.codec,
            "request_timeout": self.request_timeout,
            "counters": {
                "respawns": int(sum(c.value for c in self._m_respawns)),
                "ipc_requests": int(
                    sum(h.count for h in self._m_ipc.values())
                ),
                "ipc_seconds": float(
                    sum(h.sum for h in self._m_ipc.values())
                ),
                "pipe_bytes": {
                    direction: int(c.value)
                    for direction, c in self._m_pipe_bytes.items()
                },
            },
        }
        if self.arena is not None:
            out["shm"] = dict(
                self.arena.health(),
                bytes={
                    direction: int(c.value)
                    for direction, c in self._m_shm_bytes.items()
                },
                fallbacks={
                    reason: int(c.value)
                    for reason, c in self._m_shm_fallback.items()
                },
            )
        return out


class ProcessShard(Matcher):
    """Matcher-shaped proxy for one shard's worker process.

    Drops into :class:`~repro.system.sharding.ShardedMatcher` exactly
    where an inner engine would sit, so routing, per-shard locking,
    breakers and the deterministic merge order all apply unchanged.
    Keeps the authoritative subscription mirror (the replay source and
    result-decoding id table) on the parent side; every call transits
    the worker's ordered command pipe through :meth:`ProcessPool.request`.

    Self-healing: if the worker is marked dead, the next call respawns
    it and replays the mirror *before* sending — which is precisely the
    half-open probe's job when a breaker quarantines the shard.
    """

    thread_safe = False  # the sharded layer serializes per-shard access

    def __init__(self, pool: ProcessPool, index: int) -> None:
        self.pool = pool
        self.index = index
        self._mirror: Dict[Any, Subscription] = {}
        self._epoch = 0
        self._table: Optional[List[Any]] = None

    @property
    def name(self) -> str:  # type: ignore[override]
        worker = self.pool._workers[self.index]
        return worker.name if worker is not None else "process-shard"

    @property
    def epoch(self) -> int:
        """The parent-side mutation epoch (mirrors the worker's)."""
        return self._epoch

    # -- plumbing -------------------------------------------------------
    def _call(self, message: Tuple, op: str) -> Any:
        if not self.pool.alive(self.index):
            self._heal()
        status, value = self.pool.request(self.index, message, op)
        if status == "err":
            raise value
        return value

    def _heal(self) -> None:
        """Respawn the worker and replay the subscription mirror."""
        self.pool.respawn(self.index)
        for sub in self._mirror.values():
            status, value = self.pool.request(self.index, ("add", sub), "mutate")
            if status == "err":
                raise value
        # A fresh worker's epoch counts only the replayed adds.
        self._epoch = len(self._mirror)
        self._table = None

    def _check_epoch(self, worker_epoch: int) -> None:
        if worker_epoch != self._epoch:
            self.pool.note_death(self.index)
            raise WorkerStateError(
                f"shard {self.index} worker answered with epoch {worker_epoch}, "
                f"parent mirror is at {self._epoch}",
                shard=self.index,
            )

    def _id_table(self) -> List[Any]:
        if self._table is None:
            self._table = list(self._mirror)
        return self._table

    # -- the Matcher surface --------------------------------------------
    def add(self, subscription: Subscription) -> None:
        worker_epoch = self._call(("add", subscription), "mutate")
        self._mirror[subscription.id] = subscription
        self._epoch += 1
        self._table = None
        self._check_epoch(worker_epoch)

    def remove(self, sub_id: Any) -> Subscription:
        worker_epoch = self._call(("remove", sub_id), "mutate")
        subscription = self._mirror.pop(sub_id)
        self._epoch += 1
        self._table = None
        self._check_epoch(worker_epoch)
        return subscription

    def match(self, event: Event) -> List[Any]:
        worker_epoch, ids = self._call(("match", event), "match")
        self._check_epoch(worker_epoch)
        return ids

    def match_batch(self, events: Sequence[Event]) -> List[List[Any]]:
        events = list(events)
        if not events:
            return []
        if self.pool.arena is not None:
            # Single-reader shm path (the sharded layer publishes once
            # for all shards itself; this covers direct shard calls).
            if not self.pool.alive(self.index):
                self._heal()
            ticket = self.pool.publish_events(events, readers=1)
            if ticket is not None:
                return self.match_batch_shm(ticket, None)
        codec = "pickle" if self.pool.codec == "pickle" else "auto"
        payload = encode_events(events, codec)
        worker_epoch, results = self._call(("batch", payload), "batch")
        self._check_epoch(worker_epoch)
        return decode_results(results, self._id_table())

    def match_batch_shm(
        self, ticket: SlotTicket, rows: Optional[List[int]]
    ) -> List[List[Any]]:
        """Match the published slot's batch (or its *rows* subset).

        Consumes exactly one reader ack of *ticket* — in a ``finally``,
        so a worker that dies (or desyncs) mid-request still frees the
        slot for the next batch.  Results arrive through this shard's
        arena region when they fit, over the pipe otherwise.
        """
        pool = self.pool
        try:
            if not pool.alive(self.index):
                self._heal()
            worker_epoch, results = self._call(
                ("batch_shm", ticket.index, ticket.generation, rows), "batch"
            )
            self._check_epoch(worker_epoch)
            table = self._id_table()
            if results[0] == "shmres":
                _tag, n_rows, n_words = results
                packed = pool.arena.read_result(
                    self.index, ticket.generation, n_rows, n_words
                )
                pool._m_shm_bytes["result"].inc(packed.nbytes)
                return decode_results(("bits", packed), table)
            pool._m_shm_fallback["result_full"].inc()
            return decode_results(results, table)
        finally:
            if pool.arena is not None and pool.arena.ring is not None:
                pool.arena.ring.ack(ticket)

    def match_serial(self, events: Sequence[Event]) -> List[List[Any]]:
        """Scalar-semantics stream: ``[self.match(e) for e in events]``.

        One ``match`` command per event, pipelined through
        :meth:`ProcessPool.request_many` so the per-event pipe latency
        collapses to one hand-off per window.  Unlike :meth:`match_batch`
        the worker runs its *scalar* matching path per event — the lane
        whose cost tracks the resident population — so this is the
        submission mode that shows horizontal partitioning directly.
        """
        events = list(events)
        if not events:
            return []
        if not self.pool.alive(self.index):
            self._heal()
        replies = self.pool.request_many(
            self.index, [("match", e) for e in events], "match"
        )
        out: List[List[Any]] = []
        error: Optional[BaseException] = None
        for status, value in replies:
            if status == "err":
                error = error or value
                continue
            worker_epoch, ids = value
            self._check_epoch(worker_epoch)
            out.append(ids)
        if error is not None:
            raise error
        return out

    def rebuild(self) -> None:
        """Forward the build step to the worker's engine (if it has one)."""
        self._call(("rebuild",), "control")

    def get(self, sub_id: Any) -> Subscription:
        """Mirror lookup (authoritative; works even while the worker is down)."""
        try:
            return self._mirror[sub_id]
        except KeyError:
            raise UnknownSubscriptionError(sub_id) from None

    def iter_subscriptions(self) -> List[Subscription]:
        return list(self._mirror.values())

    def __len__(self) -> int:
        return len(self._mirror)

    def stats(self) -> Dict[str, Any]:
        """The worker engine's stats, or a mirror-only view when down."""
        try:
            return self._call(("stats",), "control")
        except WorkerDiedError:
            return {
                "name": self.name,
                "subscriptions": len(self._mirror),
                "counters": {},
                "worker": "down",
            }
